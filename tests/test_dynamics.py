"""Tests for the time-dependent diffusion curve."""

import numpy as np
import pytest

from repro import FluidParams, Trajectory
from repro.analysis.dynamics import diffusion_vs_lag
from repro.errors import ConfigurationError


def _brownian_trajectory(D=0.8, frames=300, n=100, dt=0.01, seed=0):
    rng = np.random.default_rng(seed)
    steps = rng.normal(0, np.sqrt(2 * D * dt), size=(frames, n, 3))
    return Trajectory(times=np.arange(frames) * dt,
                      positions=np.cumsum(steps, axis=0),
                      box_length=50.0, fluid=FluidParams())


def test_flat_for_pure_brownian_motion():
    traj = _brownian_trajectory()
    tau, d = diffusion_vs_lag(traj, max_lag=20)
    assert tau.shape == d.shape == (20,)
    np.testing.assert_allclose(d, 0.8, rtol=0.1)


def test_default_max_lag_half_trajectory():
    traj = _brownian_trajectory(frames=41)
    tau, d = diffusion_vs_lag(traj)
    assert tau.size == 20


def test_tau_spacing():
    traj = _brownian_trajectory(frames=50, dt=0.02)
    tau, _ = diffusion_vs_lag(traj, max_lag=5)
    np.testing.assert_allclose(tau, 0.02 * np.arange(1, 6))


def test_ballistic_motion_grows_linearly():
    # r = v t -> MSD = v^2 t^2 -> D(tau) ~ tau
    frames = 30
    pos = (np.arange(frames)[:, None, None]
           * np.array([1.0, 0.0, 0.0])[None, None, :])
    traj = Trajectory(times=np.arange(frames) * 1.0, positions=pos,
                      box_length=10.0, fluid=FluidParams())
    tau, d = diffusion_vs_lag(traj, max_lag=10)
    np.testing.assert_allclose(d, tau / 6.0, rtol=1e-10)


def test_requires_frames():
    traj = Trajectory(times=np.array([0.0]), positions=np.zeros((1, 2, 3)),
                      box_length=5.0, fluid=FluidParams())
    with pytest.raises(ConfigurationError):
        diffusion_vs_lag(traj)
