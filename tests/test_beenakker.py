"""Tests for Beenakker's Ewald scalar functions.

The two deep consistency properties:

1. divergence-freeness ``f' + g' + 2g/r = 0`` (the reciprocal projector
   ``I - khat khat^T`` is transverse, so the real-space remainder must
   be too),
2. recovery of the plain RPY tensor as ``xi -> 0`` and vanishing as
   ``xi -> inf`` (the splitting moves everything between the two sums).
"""

import math

import numpy as np
import pytest

from repro.rpy import beenakker
from repro.rpy.tensor import rpy_scalar_coefficients


def test_divergence_free_identity():
    # numerical derivative check of f' + g' + 2 g / r == 0
    xi = 0.8
    r = np.linspace(2.1, 8.0, 50)
    h = 1e-6
    f_p, g_p = beenakker.real_space_coefficients(r + h, xi)
    f_m, g_m = beenakker.real_space_coefficients(r - h, xi)
    _, g0 = beenakker.real_space_coefficients(r, xi)
    div = (f_p - f_m) / (2 * h) + (g_p - g_m) / (2 * h) + 2 * g0 / r
    scale = np.abs(g0).max()
    np.testing.assert_allclose(div, 0.0, atol=1e-6 * max(scale, 1.0))


def test_small_xi_limit_recovers_rpy():
    r = np.array([2.5, 4.0, 7.0])
    # the splitting converges linearly in xi: error ~ 4.5 xi a / sqrt(pi)
    f, g = beenakker.real_space_coefficients(r, xi=1e-6)
    f_rpy, g_rpy = rpy_scalar_coefficients(r, 1.0)
    np.testing.assert_allclose(f, f_rpy, rtol=1e-4)
    np.testing.assert_allclose(g, g_rpy, rtol=1e-4)


def test_large_xi_real_space_vanishes():
    f, g = beenakker.real_space_coefficients(np.array([3.0]), xi=10.0)
    assert abs(f[0]) < 1e-10
    assert abs(g[0]) < 1e-10


def test_self_scalar_limits():
    assert beenakker.self_mobility_scalar(1e-9) == pytest.approx(1.0)
    # exact formula at xi = 0.5, a = 1
    xa = 0.5
    expect = 1 - 6 * xa / math.sqrt(math.pi) + 40 * xa ** 3 / (
        3 * math.sqrt(math.pi))
    assert beenakker.self_mobility_scalar(0.5) == pytest.approx(expect)


def test_reciprocal_scalar_zero_mode_excluded():
    out = beenakker.reciprocal_scalar(np.array([0.0, 1.0]), xi=1.0)
    assert out[0] == 0.0
    assert out[1] != 0.0


def test_reciprocal_scalar_formula():
    # direct evaluation of Eq. 5 at one wavenumber
    k2, xi, a = 2.0, 0.7, 1.0
    x = k2 / (4 * xi * xi)
    # chi = 1 + k^2/(4 xi^2) + k^4/(8 xi^4) = 1 + x + 2 x^2
    expect = ((a - a ** 3 * k2 / 3.0) * (1 + x + 2.0 * x * x)
              * (6 * math.pi / k2) * math.exp(-x))
    out = beenakker.reciprocal_scalar(np.array([k2]), xi, a)
    assert out[0] == pytest.approx(expect, rel=1e-12)


def test_reciprocal_scalar_gaussian_decay():
    xi = 1.0
    k_small = beenakker.reciprocal_scalar(np.array([1.0]), xi)
    k_large = beenakker.reciprocal_scalar(np.array([400.0]), xi)
    assert abs(k_large[0]) < 1e-30 * abs(k_small[0])


def test_cutoff_helpers_monotone():
    assert beenakker.real_space_cutoff(1.0, 1e-8) > beenakker.real_space_cutoff(1.0, 1e-4)
    assert beenakker.reciprocal_cutoff(1.0, 1e-8) > beenakker.reciprocal_cutoff(1.0, 1e-4)
    # scaling with xi
    assert beenakker.real_space_cutoff(2.0, 1e-6) == pytest.approx(
        beenakker.real_space_cutoff(1.0, 1e-6) / 2)


def test_cutoff_helpers_validate_tol():
    with pytest.raises(ValueError):
        beenakker.real_space_cutoff(1.0, 0.0)
    with pytest.raises(ValueError):
        beenakker.reciprocal_cutoff(1.0, 2.0)


def test_overlap_correction_zero_beyond_contact():
    df, dg = beenakker.overlap_correction_coefficients(np.array([2.0, 3.0]))
    np.testing.assert_allclose(df, 0.0)
    np.testing.assert_allclose(dg, 0.0)


def test_overlap_correction_continuity_at_contact():
    df, dg = beenakker.overlap_correction_coefficients(
        np.array([2.0 - 1e-10]))
    assert abs(df[0]) < 1e-9
    assert abs(dg[0]) < 1e-9


def test_overlap_correction_matches_branch_difference():
    r = np.array([1.2])
    df, dg = beenakker.overlap_correction_coefficients(r)
    f_reg, g_reg = rpy_scalar_coefficients(r, 1.0)
    f_far = 0.75 / r + 0.5 / r ** 3
    g_far = 0.75 / r - 1.5 / r ** 3
    assert df[0] == pytest.approx(float(f_reg[0] - f_far[0]), rel=1e-12)
    assert dg[0] == pytest.approx(float(g_reg[0] - g_far[0]), rel=1e-12)


def test_real_space_tensors_shape_and_symmetry():
    rng = np.random.default_rng(0)
    rij = rng.standard_normal((10, 3)) + np.array([4.0, 0, 0])
    t = beenakker.real_space_tensors(rij, xi=0.7)
    assert t.shape == (10, 3, 3)
    np.testing.assert_allclose(t, t.transpose(0, 2, 1), rtol=1e-12)


def test_rejects_invalid_inputs():
    with pytest.raises(ValueError):
        beenakker.real_space_coefficients(np.array([0.0]), 1.0)
    with pytest.raises(ValueError):
        beenakker.real_space_coefficients(np.array([1.0]), -1.0)
