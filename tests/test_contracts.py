"""Tests of the runtime-contract layer under REPRO_CHECKS=0/1/strict."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lint import contracts
from repro.lint.contracts import (
    BASIC,
    OFF,
    STRICT,
    array_arg,
    check_level,
    force_block_arg,
    positions_arg,
    radii_arg,
    returns_spd,
    spd_arg,
    trajectory_arg,
)
from repro.utils.validation import as_force_block, as_radii


@pytest.fixture
def checks(monkeypatch):
    """Set REPRO_CHECKS for the duration of one test."""
    def _set(value: str) -> None:
        monkeypatch.setenv("REPRO_CHECKS", value)
    return _set


# ----------------------------------------------------------------------
# level parsing
# ----------------------------------------------------------------------

def test_check_level_default_is_basic(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKS", raising=False)
    assert check_level() == BASIC


@pytest.mark.parametrize("value,level", [
    ("0", OFF), ("off", OFF), ("false", OFF), ("none", OFF),
    ("1", BASIC), ("on", BASIC), ("basic", BASIC),
    ("2", STRICT), ("strict", STRICT), ("STRICT", STRICT), ("full", STRICT),
])
def test_check_level_parsing(checks, value, level):
    checks(value)
    assert check_level() == level


def test_check_level_rejects_unknown_value(checks):
    checks("sometimes")
    with pytest.raises(ConfigurationError):
        check_level()


# ----------------------------------------------------------------------
# positions_arg
# ----------------------------------------------------------------------

@positions_arg()
def _centroid(positions):
    return np.asarray(positions).mean(axis=0)


def test_positions_arg_normalizes_lists(checks):
    checks("1")
    out = _centroid([[0.0, 0.0, 0.0], [2.0, 2.0, 2.0]])
    np.testing.assert_allclose(out, [1.0, 1.0, 1.0])


@pytest.mark.parametrize("value", ["1", "strict"])
def test_positions_arg_rejects_n_by_2(checks, value):
    checks(value)
    with pytest.raises(ConfigurationError):
        _centroid(np.zeros((4, 2)))


def test_positions_arg_off_passes_malformed_through(checks):
    checks("0")
    out = _centroid(np.zeros((4, 2)))
    assert out.shape == (2,)


def test_positions_arg_nan_only_caught_at_strict(checks):
    bad = np.zeros((3, 3))
    bad[1, 1] = np.nan
    checks("1")
    assert np.isnan(_centroid(bad)).any()
    checks("strict")
    with pytest.raises(ConfigurationError):
        _centroid(bad)


def test_positions_arg_resolves_positional_and_keyword(checks):
    checks("1")

    @positions_arg()
    def shifted(offset, positions):
        return positions + offset

    r = np.zeros((2, 3))
    np.testing.assert_allclose(shifted(1.0, r), np.ones((2, 3)))
    np.testing.assert_allclose(shifted(1.0, positions=r), np.ones((2, 3)))
    with pytest.raises(ConfigurationError):
        shifted(1.0, np.zeros(5))


def test_contract_decorator_rejects_missing_param():
    with pytest.raises(ConfigurationError):
        @positions_arg("coords")
        def f(positions):
            return positions


# ----------------------------------------------------------------------
# force_block_arg
# ----------------------------------------------------------------------

@force_block_arg()
def _norm(forces):
    return float(np.linalg.norm(forces))


def test_force_block_accepts_flat_and_blocked(checks):
    checks("1")
    assert _norm(np.ones(6)) > 0
    assert _norm(np.ones((6, 4))) > 0


@pytest.mark.parametrize("bad", [
    np.ones(7),            # not a multiple of 3
    np.ones((6, 0)),       # s == 0
    np.ones((2, 2, 2)),    # wrong rank
])
def test_force_block_rejects_malformed(checks, bad):
    checks("1")
    with pytest.raises(ConfigurationError):
        _norm(bad)


def test_force_block_finite_scan_strict_only(checks):
    bad = np.full(6, np.inf)
    checks("1")
    assert _norm(bad) == np.inf
    checks("strict")
    with pytest.raises(ConfigurationError):
        _norm(bad)


# ----------------------------------------------------------------------
# radii_arg / as_radii
# ----------------------------------------------------------------------

def test_as_radii_normalizes():
    out = as_radii([1.0, 2.0, 0.5])
    assert out.dtype == np.float64
    assert out.shape == (3,)


@pytest.mark.parametrize("bad", [
    [[1.0, 2.0]],           # wrong rank
    [1.0, -2.0],            # negative
    [1.0, 0.0],             # zero
    [1.0, np.nan],          # non-finite
])
def test_as_radii_rejects(bad):
    with pytest.raises((ConfigurationError, ValueError)):
        as_radii(bad)


def test_as_radii_checks_count():
    with pytest.raises(ValueError):
        as_radii([1.0, 1.0], n=3)


def test_radii_arg_contract(checks):
    checks("1")

    @radii_arg()
    def total(radii):
        return float(radii.sum())

    assert total([1.0, 2.0]) == 3.0
    with pytest.raises(ConfigurationError):
        total([1.0, -1.0])


# ----------------------------------------------------------------------
# as_force_block hardening (s == 0)
# ----------------------------------------------------------------------

def test_as_force_block_rejects_zero_vectors():
    with pytest.raises(ValueError, match="s == 0"):
        as_force_block(np.ones((6, 0)), 2)


def test_as_force_block_optional_finite_scan():
    bad = np.full(6, np.nan)
    as_force_block(bad, 2)  # default: no scan
    with pytest.raises(ValueError):
        as_force_block(bad, 2, check_finite=True)


# ----------------------------------------------------------------------
# trajectory_arg / array_arg
# ----------------------------------------------------------------------

def test_trajectory_arg(checks):
    checks("1")

    @trajectory_arg("trajectory")
    def n_frames(trajectory):
        return trajectory.shape[0]

    assert n_frames(np.zeros((5, 4, 3))) == 5
    with pytest.raises(ConfigurationError):
        n_frames(np.zeros((5, 4)))


def test_array_arg_rank_check(checks):
    checks("1")

    @array_arg("z", ndim=(1,))
    def first(z):
        return z[0]

    assert first(np.arange(3.0)) == 0.0
    with pytest.raises(ConfigurationError):
        first(np.zeros((3, 2)))


# ----------------------------------------------------------------------
# SPD contracts
# ----------------------------------------------------------------------

def _spd(n=4):
    a = np.diag(np.arange(1.0, n + 1.0))
    a[0, 1] = a[1, 0] = 0.1
    return a


def _not_spd(n=4):
    m = np.eye(n)
    m[0, 0] = -1.0
    return m


def test_spd_arg_strict_rejects_indefinite(checks):
    @spd_arg("mobility")
    def trace(mobility):
        return float(np.trace(mobility))

    checks("1")
    trace(_not_spd())  # spd check is strict-only
    checks("strict")
    assert trace(_spd()) > 0
    with pytest.raises(ConfigurationError, match="positive definite"):
        trace(_not_spd())


def test_spd_arg_strict_rejects_asymmetric(checks):
    @spd_arg("mobility")
    def trace(mobility):
        return float(np.trace(mobility))

    checks("strict")
    m = _spd()
    m[0, 1] = 5.0
    with pytest.raises(ConfigurationError, match="symmetric"):
        trace(m)


def test_returns_spd_strict_checks_return_value(checks):
    @returns_spd("debug mobility")
    def build(good):
        return _spd() if good else _not_spd()

    checks("1")
    build(False)
    checks("strict")
    build(True)
    with pytest.raises(ConfigurationError, match="debug mobility"):
        build(False)


def test_spd_check_skips_large_matrices(checks):
    checks("strict")

    @returns_spd("big")
    def build(n):
        return _not_spd(n)

    build(contracts.SPD_CHECK_MAX_DIM + 3)  # too large to eig-check


# ----------------------------------------------------------------------
# acceptance criteria on the real entry points
# ----------------------------------------------------------------------

def test_rpy_mobility_rejects_n_by_2_positions(checks):
    from repro.rpy.tensor import mobility_matrix_free

    checks("strict")
    with pytest.raises(ConfigurationError):
        mobility_matrix_free(np.zeros((4, 2)))


def test_cholesky_generator_rejects_non_spd_mobility(checks):
    from repro.core.brownian import CholeskyBrownianGenerator

    checks("strict")
    gen = CholeskyBrownianGenerator(kT=1.0, dt=1e-3)
    with pytest.raises(ConfigurationError):
        gen.generate(_not_spd(6), np.ones(6))


def test_returns_spd_passes_on_real_mobility(checks):
    from repro.rpy.tensor import mobility_matrix_free

    checks("strict")
    rng = np.random.default_rng(3)
    r = rng.uniform(0.0, 10.0, size=(8, 3))
    m = mobility_matrix_free(r)
    assert m.shape == (24, 24)


def test_contracts_introspection_attribute():
    from repro.core.brownian import CholeskyBrownianGenerator
    from repro.krylov.block_lanczos import block_lanczos_sqrt
    from repro.krylov.lanczos import lanczos_sqrt
    from repro.pme.operator import PMEOperator
    from repro.rpy.ewald import EwaldSummation
    from repro.rpy.polydisperse import mobility_matrix_polydisperse
    from repro.rpy.tensor import mobility_matrix_free
    from repro.sparse.bcsr import BlockCSR

    decorated = [
        PMEOperator.__init__,
        PMEOperator.apply,
        mobility_matrix_free,
        mobility_matrix_polydisperse,
        EwaldSummation.matrix,
        EwaldSummation.apply,
        lanczos_sqrt,
        block_lanczos_sqrt,
        BlockCSR.matvec,
        CholeskyBrownianGenerator.generate,
    ]
    for func in decorated:
        names = getattr(func, "__repro_contracts__", ())
        assert names, f"{func.__qualname__} lost its contracts"


def test_off_level_is_pure_passthrough(checks):
    checks("0")
    calls = []

    @positions_arg()
    def probe(positions):
        calls.append(positions)
        return positions

    sentinel = object()
    assert probe(sentinel) is sentinel  # not even np.asarray at OFF
    assert calls == [sentinel]
