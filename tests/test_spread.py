"""Tests for PME spreading/interpolation and the P matrix."""

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError
from repro.pme.spread import (
    InterpolationMatrix,
    interpolate_on_the_fly,
    spread_on_the_fly,
)


@pytest.fixture
def setup():
    box = Box(12.0)
    rng = np.random.default_rng(5)
    r = rng.uniform(0, box.length, size=(25, 3))
    return box, r, rng


def test_p_has_p3_nonzeros_per_row(setup):
    box, r, _ = setup
    p = 4
    interp = InterpolationMatrix(r, box, K=16, p=p)
    counts = np.diff(interp.matrix.indptr)
    assert np.all(counts == p ** 3)


def test_row_sums_are_one(setup):
    # spreading a unit "charge" deposits exactly one unit on the mesh
    box, r, _ = setup
    interp = InterpolationMatrix(r, box, K=16, p=6)
    row_sums = np.asarray(interp.matrix.sum(axis=1)).ravel()
    np.testing.assert_allclose(row_sums, 1.0, atol=1e-12)


def test_spread_conserves_total(setup):
    box, r, rng = setup
    interp = InterpolationMatrix(r, box, K=16, p=6)
    f = rng.standard_normal(r.shape[0])
    mesh = interp.spread(f)
    assert mesh.sum() == pytest.approx(f.sum(), rel=1e-10)


def test_spread_interpolate_adjoint(setup):
    # <P^T f, U> == <f, P U> for all f, U
    box, r, rng = setup
    interp = InterpolationMatrix(r, box, K=12, p=4)
    f = rng.standard_normal(r.shape[0])
    u = rng.standard_normal(12 ** 3)
    assert np.dot(interp.spread(f), u) == pytest.approx(
        np.dot(f, interp.interpolate(u)), rel=1e-10)


def test_interpolation_of_constant_field_is_exact(setup):
    # partition of unity: a constant mesh field interpolates exactly
    box, r, _ = setup
    interp = InterpolationMatrix(r, box, K=16, p=6)
    values = interp.interpolate(np.full(16 ** 3, 2.5))
    np.testing.assert_allclose(values, 2.5, atol=1e-12)


def test_b_corrected_interpolation_reproduces_smooth_field(setup):
    # the smooth-PME identity: deconvolving the mesh field with the
    # Euler spline coefficients b(k) before P-interpolation reproduces
    # a band-limited field at the particles to spline accuracy
    from repro.pme.bspline import euler_spline_coefficients
    box, r, _ = setup
    K, p = 32, 6
    interp = InterpolationMatrix(r, box, K=K, p=p)
    grid = np.arange(K) * (box.length / K)
    x, y, z = np.meshgrid(grid, grid, grid, indexing="ij")
    k0 = 2 * np.pi / box.length
    field = np.sin(k0 * x) * np.cos(2 * k0 * y) * np.sin(k0 * z)
    b = euler_spline_coefficients(K, p)
    bz = b[: K // 2 + 1]
    spec = np.fft.rfftn(field) * (b[:, None, None] * b[None, :, None]
                                  * bz[None, None, :])
    corrected = np.fft.irfftn(spec, s=(K, K, K), axes=(0, 1, 2))
    values = interp.interpolate(corrected.ravel())
    exact = (np.sin(k0 * r[:, 0]) * np.cos(2 * k0 * r[:, 1])
             * np.sin(k0 * r[:, 2]))
    np.testing.assert_allclose(values, exact, atol=1e-5)


def test_on_the_fly_matches_matrix(setup):
    box, r, rng = setup
    K, p = 16, 6
    interp = InterpolationMatrix(r, box, K=K, p=p)
    f = rng.standard_normal((r.shape[0], 3))
    np.testing.assert_allclose(spread_on_the_fly(r, box, K, p, f),
                               interp.spread(f), atol=1e-12)
    u = rng.standard_normal((K ** 3, 3))
    np.testing.assert_allclose(interpolate_on_the_fly(r, box, K, p, u),
                               interp.interpolate(u), atol=1e-12)


def test_on_the_fly_chunking(setup):
    box, r, rng = setup
    f = rng.standard_normal(r.shape[0])
    full = spread_on_the_fly(r, box, 16, 4, f)
    chunked = spread_on_the_fly(r, box, 16, 4, f, chunk=7)
    np.testing.assert_allclose(chunked, full, atol=1e-12)


def test_particle_on_mesh_point():
    # a particle exactly on a mesh point with p=2 deposits its whole
    # weight on a single point.  Note the SPME convention: the weight of
    # mesh point k is M_p(u - k), whose maximum for p=2 sits at
    # u - k = 1, i.e. one mesh unit *below* the particle; the phase
    # factor in b(k) compensates this shift in Fourier space.
    box = Box(8.0)
    r = np.array([[2.0, 4.0, 6.0]])  # mesh coords (4, 8, 12) for K=16
    interp = InterpolationMatrix(r, box, K=16, p=2)
    mesh = interp.spread(np.array([1.0])).reshape(16, 16, 16)
    assert mesh[3, 7, 11] == pytest.approx(1.0)
    assert mesh.sum() == pytest.approx(1.0)


def test_periodic_wraparound_spreading():
    # a particle near the origin spreads onto high-index mesh points
    box = Box(8.0)
    r = np.array([[0.05, 0.05, 0.05]])
    interp = InterpolationMatrix(r, box, K=16, p=4)
    mesh = interp.spread(np.array([1.0])).reshape(16, 16, 16)
    assert mesh[15, 15, 15] > 0  # wrapped contribution
    assert mesh.sum() == pytest.approx(1.0)


def test_multivector_spread(setup):
    box, r, rng = setup
    interp = InterpolationMatrix(r, box, K=12, p=4)
    f = rng.standard_normal((r.shape[0], 5))
    block = interp.spread(f)
    for c in range(5):
        np.testing.assert_allclose(block[:, c], interp.spread(f[:, c]),
                                   atol=1e-12)


def test_memory_accounting(setup):
    box, r, _ = setup
    interp = InterpolationMatrix(r, box, K=16, p=4)
    assert interp.memory_bytes >= 8 * r.shape[0] * 4 ** 3


def test_validation():
    box = Box(8.0)
    r = np.zeros((3, 3))
    with pytest.raises(ConfigurationError):
        InterpolationMatrix(r, box, K=4, p=6)   # K < p
    with pytest.raises(ConfigurationError):
        InterpolationMatrix(r, box, K=16, p=1)  # bad order
