"""End-to-end integration tests spanning the whole stack.

These exercise the workflows the paper's evaluation runs: build a
suspension, simulate with both algorithms, measure diffusion, check the
physics — at miniature scale so they stay fast.
"""

import numpy as np
import pytest

from repro import (
    HybridScheduler,
    PMEOperator,
    Simulation,
    diffusion_coefficient,
    make_suspension,
    pme_relative_error,
    short_time_self_diffusion,
    tune_parameters,
)
from repro.krylov import block_lanczos_sqrt
from repro.rpy.ewald import EwaldSummation


def test_full_matrix_free_workflow():
    susp = make_suspension(60, 0.2, seed=0)
    sim = Simulation(susp, algorithm="matrix-free", dt=1e-3, lambda_rpy=8,
                     seed=1, e_k=1e-2, target_ep=1e-2)
    traj, stats = sim.run(n_steps=24, record_interval=4)
    assert traj.n_frames == 7
    assert stats.mobility_updates == 3
    d = diffusion_coefficient(traj, lag_frames=1)
    assert 0.1 < d < 1.2        # physical range: crowded but diffusing
    assert np.all(np.isfinite(traj.positions))


def test_ewald_and_matrix_free_same_statistics():
    # same system, both algorithms: short-time diffusion must agree
    # within the (loose) statistics of a short run
    susp = make_suspension(50, 0.2, seed=5)
    d = {}
    for alg, kwargs in (("ewald", dict(ewald_tol=1e-6)),
                        ("matrix-free", dict(target_ep=1e-3, e_k=1e-4))):
        sim = Simulation(susp, algorithm=alg, dt=1e-3, lambda_rpy=10,
                         seed=7, **kwargs)
        traj, _ = sim.run(n_steps=30, record_interval=1)
        d[alg] = diffusion_coefficient(traj, lag_frames=1)
    assert d["matrix-free"] == pytest.approx(d["ewald"], rel=0.25)


def test_crowding_slows_diffusion():
    # the paper's Fig. 3 physics at miniature scale
    results = {}
    for phi in (0.05, 0.35):
        susp = make_suspension(40, phi, seed=2)
        sim = Simulation(susp, dt=1e-3, lambda_rpy=10, seed=3,
                         target_ep=1e-2, e_k=1e-2)
        traj, _ = sim.run(n_steps=40, record_interval=1)
        results[phi] = diffusion_coefficient(traj, lag_frames=2)
    assert results[0.35] < results[0.05]
    assert short_time_self_diffusion(0.35) < short_time_self_diffusion(0.05)


def test_tuned_operator_with_krylov_displacements():
    # Algorithm 2's two pillars composed directly
    susp = make_suspension(45, 0.2, seed=4)
    params = tune_parameters(susp.n, susp.box, target_ep=1e-3)
    op = PMEOperator(susp.positions, susp.box, params)
    assert pme_relative_error(op, n_probe=2) < 1e-3
    z = np.random.default_rng(0).standard_normal((3 * susp.n, 6))
    y, info = block_lanczos_sqrt(op.apply, z, tol=1e-3)
    assert info.converged
    # compare against the dense reference square root
    from repro.krylov import dense_sqrt_apply
    m = EwaldSummation(box=susp.box, tol=1e-10).matrix(susp.positions)
    ref = dense_sqrt_apply(m, z)
    err = np.linalg.norm(y - ref) / np.linalg.norm(ref)
    assert err < 5e-3


def test_hybrid_execution_in_simulation_context():
    susp = make_suspension(30, 0.15, seed=6)
    params = tune_parameters(susp.n, susp.box, target_ep=1e-2)
    op = PMEOperator(susp.positions, susp.box, params)
    scheduler = HybridScheduler()
    f = np.random.default_rng(1).standard_normal((3 * susp.n, 4))
    u, plan = scheduler.execute(op, f)
    np.testing.assert_allclose(u, op.apply(f), rtol=1e-12)
    assert plan.cpu_only_time > 0
