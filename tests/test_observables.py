"""Tests for run-time monitors."""

import numpy as np
import pytest

from repro import Box, RepulsiveHarmonic
from repro.core.integrators import MatrixFreeBD
from repro.core.observables import (
    EnergyMonitor,
    MinSeparationMonitor,
    Monitor,
    MSDMonitor,
    compose,
)
from repro.errors import ConfigurationError
from repro.systems import random_suspension


@pytest.fixture(scope="module")
def run_setup():
    susp = random_suspension(25, 0.15, seed=12)
    bd = MatrixFreeBD(box=susp.box, force_field=None, dt=1e-3,
                      lambda_rpy=5, seed=0, target_ep=1e-2)
    return susp, bd


def test_interval_sampling(run_setup):
    susp, bd = run_setup
    mon = MSDMonitor(reference=susp.positions, interval=3)
    bd.run(susp.positions, 10, callback=mon)
    assert mon.steps == [3, 6, 9]


def test_msd_monitor_grows(run_setup):
    susp, bd = run_setup
    mon = MSDMonitor(reference=susp.positions, interval=1)
    bd.run(susp.positions, 12, callback=mon)
    steps, values = mon.series()
    assert values[0] > 0
    # Brownian MSD grows roughly linearly: the last value well above the first
    assert values[-1] > 3 * values[0]


def test_min_separation_monitor(run_setup):
    susp, bd = run_setup
    mon = MinSeparationMonitor(susp.box, interval=2)
    bd.run(susp.positions, 6, callback=mon)
    _, values = mon.series()
    assert np.all(values > 0)
    assert np.all(np.isfinite(values))


def test_min_separation_single_particle():
    box = Box(10.0)
    mon = MinSeparationMonitor(box)
    mon(1, np.array([[5.0, 5.0, 5.0]]), np.array([[5.0, 5.0, 5.0]]))
    assert mon.values == [float("inf")]


def test_energy_monitor(run_setup):
    susp, bd = run_setup
    field = RepulsiveHarmonic(susp.box)
    mon = EnergyMonitor(field, interval=1)
    bd.run(susp.positions, 4, callback=mon)
    # non-overlapping suspension: energies stay ~0 over a short run
    assert all(v >= 0 for v in mon.values)


def test_compose_runs_all(run_setup):
    susp, bd = run_setup
    m1 = MSDMonitor(reference=susp.positions, interval=1)
    m2 = MinSeparationMonitor(susp.box, interval=2)
    order = []
    bd.run(susp.positions, 4,
           callback=compose(m1, m2, lambda s, w, u: order.append(s)))
    assert len(m1.values) == 4
    assert len(m2.values) == 2
    assert order == [1, 2, 3, 4]


def test_validation():
    with pytest.raises(ConfigurationError):
        Monitor(interval=0)
    with pytest.raises(ConfigurationError):
        compose()
    with pytest.raises(NotImplementedError):
        Monitor().sample(None, None)
