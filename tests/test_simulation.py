"""Tests for the Simulation driver and Trajectory container."""

import numpy as np
import pytest

from repro import Simulation, Trajectory
from repro.errors import ConfigurationError
from repro.systems import random_suspension


@pytest.fixture(scope="module")
def suspension():
    return random_suspension(25, 0.1, seed=10)


def test_recording_interval(suspension):
    sim = Simulation(suspension, dt=1e-3, lambda_rpy=4, seed=0,
                     target_ep=1e-2)
    traj, stats = sim.run(n_steps=12, record_interval=3)
    assert traj.n_frames == 5                 # frame 0 + steps 3,6,9,12
    np.testing.assert_allclose(traj.times,
                               [0.0, 3e-3, 6e-3, 9e-3, 12e-3])
    assert stats.n_steps == 12


def test_first_frame_is_initial_state(suspension):
    sim = Simulation(suspension, dt=1e-3, seed=0, target_ep=1e-2)
    traj, _ = sim.run(n_steps=2)
    np.testing.assert_array_equal(traj.positions[0], suspension.positions)


def test_consecutive_runs_continue(suspension):
    sim = Simulation(suspension, dt=1e-3, lambda_rpy=4, seed=0,
                     target_ep=1e-2)
    traj1, _ = sim.run(n_steps=4)
    traj2, _ = sim.run(n_steps=4)
    # second run starts from where the first ended (wrapped)
    wrapped_end = suspension.box.wrap(traj1.positions[-1])
    np.testing.assert_allclose(traj2.positions[0], wrapped_end)


def test_ewald_algorithm_choice(suspension):
    sim = Simulation(suspension, algorithm="ewald", dt=1e-3, seed=0)
    traj, _ = sim.run(n_steps=2)
    assert traj.n_frames == 3


def test_unknown_algorithm_rejected(suspension):
    with pytest.raises(ConfigurationError):
        Simulation(suspension, algorithm="magic")


def test_run_validation(suspension):
    sim = Simulation(suspension, dt=1e-3, seed=0, target_ep=1e-2)
    with pytest.raises(ConfigurationError):
        sim.run(n_steps=0)
    with pytest.raises(ConfigurationError):
        sim.run(n_steps=5, record_interval=0)


def test_trajectory_properties(suspension):
    t = Trajectory(times=np.array([0.0, 0.5, 1.0]),
                   positions=np.zeros((3, 7, 3)), box_length=5.0,
                   fluid=suspension.fluid)
    assert t.n_frames == 3
    assert t.n_particles == 7
    assert t.dt_frame == pytest.approx(0.5)


def test_trajectory_dt_requires_frames(suspension):
    t = Trajectory(times=np.array([0.0]), positions=np.zeros((1, 2, 3)),
                   box_length=5.0, fluid=suspension.fluid)
    with pytest.raises(ConfigurationError):
        _ = t.dt_frame


def test_force_free_option(suspension):
    sim = Simulation(suspension, force_field=None, dt=1e-3, seed=0,
                     target_ep=1e-2)
    traj, _ = sim.run(n_steps=2)
    assert traj.n_frames == 3
