"""Tests for repro.geometry.box."""

import math

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError


def test_volume():
    assert Box(3.0).volume == pytest.approx(27.0)


def test_invalid_length():
    for bad in (0.0, -1.0, float("nan"), float("inf")):
        with pytest.raises(ConfigurationError):
            Box(bad)


def test_for_volume_fraction_roundtrip():
    box = Box.for_volume_fraction(100, 0.2, radius=1.0)
    assert box.volume_fraction(100, 1.0) == pytest.approx(0.2)


def test_for_volume_fraction_radius_scaling():
    b1 = Box.for_volume_fraction(10, 0.1, radius=1.0)
    b2 = Box.for_volume_fraction(10, 0.1, radius=2.0)
    assert b2.length == pytest.approx(2.0 * b1.length)


def test_for_volume_fraction_rejects_dense():
    with pytest.raises(ConfigurationError):
        Box.for_volume_fraction(10, 0.8)


def test_for_volume_fraction_rejects_nonpositive_n():
    with pytest.raises(ConfigurationError):
        Box.for_volume_fraction(0, 0.2)


def test_minimum_image_delegation():
    box = Box(10.0)
    np.testing.assert_allclose(
        box.minimum_image(np.array([[6.0, 0.0, 0.0]])), [[-4.0, 0.0, 0.0]])


def test_distances_minimum_image():
    box = Box(10.0)
    r = np.array([[0.5, 0.0, 0.0], [9.5, 0.0, 0.0]])
    rij, dist = box.distances(r, np.array([0]), np.array([1]))
    assert dist[0] == pytest.approx(1.0)
    np.testing.assert_allclose(rij, [[1.0, 0.0, 0.0]])


def test_distances_vector_orientation():
    # rij points from j to i
    box = Box(10.0)
    r = np.array([[2.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    rij, _ = box.distances(r, np.array([0]), np.array([1]))
    np.testing.assert_allclose(rij, [[1.0, 0.0, 0.0]])


def test_fractional():
    box = Box(8.0)
    u = box.fractional(np.array([[4.0, 0.0, 2.0]]), 16)
    np.testing.assert_allclose(u, [[8.0, 0.0, 4.0]])


def test_box_is_hashable_and_frozen():
    box = Box(5.0)
    assert hash(box) == hash(Box(5.0))
    with pytest.raises(Exception):
        box.length = 6.0


def test_volume_fraction_formula():
    box = Box(10.0)
    expected = 5 * (4.0 / 3.0) * math.pi / 1000.0
    assert box.volume_fraction(5, 1.0) == pytest.approx(expected)
