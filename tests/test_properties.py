"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *arbitrary* valid inputs, spanning
several subsystems at once: metamorphic PBC properties, spectral
positivity of the mobility through the matrix-free stack, adjointness
of spreading/interpolation, and translation covariance of the whole
PME operator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Box, PMEOperator, PMEParams
from repro.pme.spread import InterpolationMatrix
from repro.rpy.ewald import EwaldSummation

settings.register_profile("repro", deadline=None, max_examples=15)
settings.load_profile("repro")


def _positions(n, L, seed):
    return np.random.default_rng(seed).uniform(0, L, size=(n, 3))


@given(st.integers(2, 25), st.integers(0, 10_000))
def test_ewald_mobility_spd_property(n, seed):
    """The periodic RPY mobility is SPD for arbitrary configurations,
    including heavily overlapping ones."""
    box = Box(12.0)
    r = _positions(n, box.length, seed)
    m = EwaldSummation(box=box, tol=1e-6).matrix(r)
    assert np.linalg.eigvalsh(m).min() > 0


@given(st.integers(3, 30), st.integers(0, 10_000))
def test_pme_operator_quadratic_form_positive(n, seed):
    """x^T M x > 0 through the full matrix-free stack (PME accuracy can
    perturb eigenvalues only within e_p, far from flipping signs)."""
    box = Box(14.0)
    r = _positions(n, box.length, seed)
    op = PMEOperator(r, box, PMEParams(xi=0.9, r_max=4.0, K=32, p=4))
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(3 * n)
    assert float(x @ op.apply(x)) > 0


@given(st.integers(2, 40), st.integers(0, 10_000),
       st.floats(-30.0, 30.0), st.floats(-30.0, 30.0), st.floats(-30.0, 30.0))
def test_pme_translation_covariance(n, seed, dx, dy, dz):
    """Rigid translation of all particles leaves M f unchanged.

    The exact operator is exactly translation invariant; PME breaks it
    only through mesh registration, i.e. at the level of the PME error
    e_p — so the tolerance is a small multiple of e_p for these
    parameters (xi h ~ 0.2, p = 6 -> e_p ~ 1e-4).
    """
    box = Box(10.0)
    r = _positions(n, box.length, seed)
    params = PMEParams(xi=1.0, r_max=4.0, K=48, p=6)
    f = np.random.default_rng(seed + 2).standard_normal(3 * n)
    u1 = PMEOperator(r, box, params).apply(f)
    u2 = PMEOperator(r + np.array([dx, dy, dz]), box, params).apply(f)
    np.testing.assert_allclose(u2, u1, atol=1e-3 * max(1.0, np.abs(u1).max()))


@given(st.integers(1, 30), st.integers(4, 6), st.integers(0, 10_000))
def test_spread_interpolate_adjoint_property(n, p, seed):
    """<P^T f, U> == <f, P U> for arbitrary configurations and orders."""
    box = Box(9.0)
    K = 16
    r = _positions(n, box.length, seed)
    interp = InterpolationMatrix(r, box, K, p)
    rng = np.random.default_rng(seed + 3)
    f = rng.standard_normal(n)
    u = rng.standard_normal(K ** 3)
    lhs = float(np.dot(interp.spread(f), u))
    rhs = float(np.dot(f, interp.interpolate(u)))
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


@given(st.integers(1, 30), st.integers(0, 10_000))
def test_spreading_conserves_charge_property(n, seed):
    """Total spread weight equals total particle weight (any config)."""
    box = Box(7.0)
    r = _positions(n, box.length, seed)
    interp = InterpolationMatrix(r, box, 16, 6)
    f = np.random.default_rng(seed + 4).standard_normal(n)
    assert interp.spread(f).sum() == pytest.approx(f.sum(), rel=1e-9,
                                                   abs=1e-9)


@given(st.integers(2, 20), st.integers(0, 10_000))
def test_cell_list_translation_invariance(n, seed):
    """The pair list is invariant under rigid translation (mod wrap)."""
    from repro.neighbor.celllist import CellList
    from repro.neighbor.pairs import canonicalize_pairs
    box = Box(8.0)
    r = _positions(n, box.length, seed)
    shift = np.random.default_rng(seed + 5).uniform(-20, 20, size=3)
    cl = CellList(box, 2.5)
    p1 = canonicalize_pairs(*cl.pairs(r))
    p2 = canonicalize_pairs(*cl.pairs(r + shift))
    np.testing.assert_array_equal(p1[0], p2[0])
    np.testing.assert_array_equal(p1[1], p2[1])


@given(st.integers(2, 15), st.integers(0, 10_000))
def test_mobility_reciprocity_property(n, seed):
    """Lorentz reciprocity: the velocity particle i gets from a force on
    j equals what j gets from the same force on i (M symmetric),
    through the PME operator."""
    box = Box(12.0)
    r = _positions(n, box.length, seed)
    op = PMEOperator(r, box, PMEParams(xi=0.9, r_max=4.0, K=24, p=4))
    rng = np.random.default_rng(seed + 6)
    i, j = rng.integers(0, n, size=2)
    fi = np.zeros(3 * n)
    fj = np.zeros(3 * n)
    fi[3 * i] = 1.0      # unit x-force on i
    fj[3 * j + 1] = 1.0  # unit y-force on j
    u_from_i = op.apply(fi)
    u_from_j = op.apply(fj)
    assert u_from_i[3 * j + 1] == pytest.approx(u_from_j[3 * i], rel=1e-6,
                                                abs=1e-9)
