"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out
    assert "numpy" in out


def test_tune(capsys):
    assert main(["tune", "-n", "500"]) == 0
    out = capsys.readouterr().out
    assert "K=" in out
    assert "alpha=" in out


def test_simulate_and_analyze(tmp_path, capsys):
    out_file = tmp_path / "traj.npz"
    rc = main(["simulate", "-n", "25", "--phi", "0.1", "--steps", "6",
               "--record-interval", "2", "--e-p", "1e-2",
               "-o", str(out_file)])
    assert rc == 0
    assert out_file.exists()
    rc = main(["analyze", str(out_file)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "D(tau->0)" in out


def test_simulate_ewald_backend(tmp_path):
    out_file = tmp_path / "traj.npz"
    rc = main(["simulate", "-n", "20", "--steps", "4",
               "--algorithm", "ewald", "-o", str(out_file)])
    assert rc == 0
    from repro.core.trajectory_io import load_trajectory
    traj = load_trajectory(out_file)
    assert traj.n_particles == 20


def test_profile_prints_phase_table(tmp_path, capsys):
    metrics = tmp_path / "m.prom"
    rc = main(["profile", "-n", "30", "--phi", "0.1", "--steps", "2",
               "--e-p", "1e-2", "--metrics", str(metrics)])
    assert rc == 0
    out = capsys.readouterr().out
    for phase in ("spread", "fft", "influence", "ifft", "interpolate",
                  "real"):
        assert phase in out
    assert "meas/pred" in out
    assert metrics.exists()
    from repro.obs.schema import validate_prometheus_text
    validate_prometheus_text(metrics.read_text())


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--algorithm", "magic"])


def test_analyze_max_lag(tmp_path, capsys):
    # build a tiny trajectory directly
    from repro import FluidParams, Trajectory
    from repro.core.trajectory_io import save_trajectory
    rng = np.random.default_rng(0)
    traj = Trajectory(times=np.arange(10) * 0.1,
                      positions=np.cumsum(
                          rng.normal(0, 0.1, (10, 5, 3)), axis=0),
                      box_length=10.0, fluid=FluidParams())
    path = tmp_path / "t.npz"
    save_trajectory(path, traj)
    assert main(["analyze", str(path), "--max-lag", "3"]) == 0
    out = capsys.readouterr().out
    assert "D(tau=" in out
