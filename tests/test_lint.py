"""Tests of the static layer: rules RPR001-RPR012, CLI, output formats."""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    REPORT_JSON_SCHEMA,
    all_rules,
    lint_paths,
    lint_source,
    resolve_selection,
)
from repro.lint.cli import main as lint_main

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def rule_ids(source: str) -> list[str]:
    """Rule ids reported for an in-memory snippet."""
    return [f.rule for f in lint_source(dedent(source), "<snippet>")]


# ----------------------------------------------------------------------
# the registry itself
# ----------------------------------------------------------------------

def test_at_least_ten_rules_registered():
    rules = all_rules()
    assert len(rules) >= 10
    ids = [r.meta.id for r in rules]
    assert ids == sorted(ids)
    for expected in ([f"RPR00{k}" for k in range(1, 10)]
                     + ["RPR010", "RPR011", "RPR012"]):
        assert expected in ids


def test_every_rule_has_summary_and_rationale():
    for rule in all_rules():
        assert rule.meta.summary
        assert rule.meta.rationale


def test_resolve_selection_prefixes():
    assert resolve_selection(["RPR001"], None) == {"RPR001"}
    everything = resolve_selection(None, None)
    assert resolve_selection(["RPR"], None) == everything
    assert "RPR007" not in resolve_selection(None, ["RPR007"])
    with pytest.raises(ConfigurationError):
        resolve_selection(["RPR9"], None)
    with pytest.raises(ConfigurationError):
        resolve_selection(None, ["XXX1"])


# ----------------------------------------------------------------------
# RPR001 unvalidated positions
# ----------------------------------------------------------------------

def test_rpr001_flags_unvalidated_positions():
    assert "RPR001" in rule_ids("""
        def displace(positions, dt):
            return positions + dt
    """)


def test_rpr001_accepts_as_positions_call():
    assert "RPR001" not in rule_ids("""
        from repro.utils.validation import as_positions

        def displace(positions, dt):
            r = as_positions(positions)
            return r + dt
    """)


def test_rpr001_accepts_contract_decorator():
    assert "RPR001" not in rule_ids("""
        from repro.lint.contracts import positions_arg

        @positions_arg()
        def displace(positions, dt):
            return positions + dt
    """)


def test_rpr001_skips_private_abstract_and_delegating():
    assert "RPR001" not in rule_ids("""
        from abc import abstractmethod

        def _helper(positions):
            return positions

        class Base:
            @abstractmethod
            def forces(self, positions):
                \"\"\"stub\"\"\"

        class Child(Base):
            def __init__(self, positions, extra):
                super().__init__(positions)
                self.extra = extra
    """)


# ----------------------------------------------------------------------
# RPR002 global RNG
# ----------------------------------------------------------------------

def test_rpr002_flags_global_rng():
    findings = lint_source(dedent("""
        import numpy as np
        z = np.random.rand(3)
        np.random.seed(0)
    """), "<snippet>")
    assert [f.rule for f in findings] == ["RPR002", "RPR002"]
    assert "np.random.rand" in findings[0].message


def test_rpr002_accepts_generator_api():
    assert "RPR002" not in rule_ids("""
        import numpy as np
        rng = np.random.default_rng(42)
        z = rng.standard_normal(3)
    """)


# ----------------------------------------------------------------------
# RPR003 unguarded cholesky
# ----------------------------------------------------------------------

def test_rpr003_flags_bare_cholesky():
    assert "RPR003" in rule_ids("""
        import numpy as np

        def factor(m):
            return np.linalg.cholesky(m)
    """)


def test_rpr003_accepts_guarded_cholesky():
    assert "RPR003" not in rule_ids("""
        import numpy as np

        def factor(m):
            try:
                return np.linalg.cholesky(m)
            except np.linalg.LinAlgError as exc:
                raise RuntimeError("not SPD") from exc
    """)


# ----------------------------------------------------------------------
# RPR004 missing minimum image
# ----------------------------------------------------------------------

def test_rpr004_flags_raw_pair_distance_in_periodic_module():
    assert "RPR004" in rule_ids("""
        import numpy as np
        from repro.geometry.box import Box

        def distances(r, i, j):
            return np.linalg.norm(r[i] - r[j], axis=1)
    """)


def test_rpr004_ignores_modules_without_box():
    assert "RPR004" not in rule_ids("""
        import numpy as np

        def distances(r, i, j):
            return np.linalg.norm(r[i] - r[j], axis=1)
    """)


def test_rpr004_ignores_plain_residual_norms():
    assert "RPR004" not in rule_ids("""
        import numpy as np
        from repro.geometry.box import Box

        def error(u_pme, u_ref):
            return np.linalg.norm(u_pme - u_ref)
    """)


# ----------------------------------------------------------------------
# RPR005 dtype drift
# ----------------------------------------------------------------------

def test_rpr005_flags_reduced_precision_dtypes():
    findings = rule_ids("""
        import numpy as np
        a = np.zeros(3, dtype=np.float32)
        b = np.empty(3, dtype="float32")
    """)
    assert findings.count("RPR005") == 2


def test_rpr005_accepts_float64():
    assert "RPR005" not in rule_ids("""
        import numpy as np
        a = np.zeros(3, dtype=np.float64)
        b = np.zeros(3)
    """)


# ----------------------------------------------------------------------
# RPR006 swallowed exceptions
# ----------------------------------------------------------------------

def test_rpr006_flags_swallowing_handlers():
    findings = rule_ids("""
        def run(op):
            try:
                op()
            except Exception:
                pass
            try:
                op()
            except:
                return None
    """)
    assert findings.count("RPR006") == 2


def test_rpr006_accepts_narrow_or_reraising_handlers():
    assert "RPR006" not in rule_ids("""
        def run(op):
            try:
                op()
            except ValueError:
                pass
            try:
                op()
            except Exception:
                raise
    """)


# ----------------------------------------------------------------------
# RPR007 mutable defaults
# ----------------------------------------------------------------------

def test_rpr007_flags_mutable_defaults():
    findings = rule_ids("""
        def collect(x, out=[]):
            out.append(x)
            return out

        def index(x, table=dict()):
            return table
    """)
    assert findings.count("RPR007") == 2


def test_rpr007_accepts_none_default():
    assert "RPR007" not in rule_ids("""
        def collect(x, out=None):
            out = [] if out is None else out
            out.append(x)
            return out
    """)


# ----------------------------------------------------------------------
# RPR008 assert validation
# ----------------------------------------------------------------------

def test_rpr008_flags_assert():
    assert "RPR008" in rule_ids("""
        def apply(m, f):
            assert f.ndim == 1, "flat vectors only"
            return m @ f
    """)


# ----------------------------------------------------------------------
# RPR009 direct wall-clock reads
# ----------------------------------------------------------------------

def test_rpr009_flags_time_module_clocks():
    findings = rule_ids("""
        import time

        def work():
            t0 = time.perf_counter()
            step()
            return time.perf_counter() - t0
    """)
    assert findings.count("RPR009") == 2


def test_rpr009_flags_imported_clock_name():
    assert "RPR009" in rule_ids("""
        from time import monotonic

        def stamp():
            return monotonic()
    """)


def test_rpr009_ignores_bare_time_call():
    # `time` alone is too common a user symbol (e.g. a parameter) to flag
    assert "RPR009" not in rule_ids("""
        def advance(time):
            return time() + 1
    """)


def test_rpr009_exempts_timing_bench_obs_and_tests():
    snippet = dedent("""
        import time
        T0 = time.perf_counter()
    """)
    for path in ("src/repro/utils/timing.py", "src/repro/obs/trace.py",
                 "src/repro/bench/harness.py", "benchmarks/bench_fig5.py",
                 "tests/test_timing.py"):
        assert all(f.rule != "RPR009"
                   for f in lint_source(snippet, path)), path
    assert any(f.rule == "RPR009"
               for f in lint_source(snippet, "src/repro/pme/spread.py"))


# ----------------------------------------------------------------------
# RPR010 failures dropped outside the resilience taxonomy
# ----------------------------------------------------------------------

def test_rpr010_flags_silently_dropped_failure():
    findings = rule_ids("""
        def boundary():
            try:
                step()
            except Exception:
                result = None
    """)
    assert "RPR010" in findings
    assert "RPR006" in findings  # strictly narrower sibling also fires


def test_rpr010_flags_bare_except_and_tuple_handlers():
    assert "RPR010" in rule_ids("""
        def f():
            try:
                step()
            except:
                pass
    """)
    assert "RPR010" in rule_ids("""
        def f():
            try:
                step()
            except (ValueError, Exception):
                pass
    """)


def test_rpr010_accepts_reraise():
    assert "RPR010" not in rule_ids("""
        def f():
            try:
                step()
            except Exception:
                cleanup()
                raise
    """)


def test_rpr010_accepts_taxonomy_routing():
    # converting to a classified StepFailure at a process boundary
    assert "RPR010" not in rule_ids("""
        from repro.resilience.failures import StepFailure

        def worker_boundary(conn):
            try:
                step()
            except Exception as exc:
                conn.send(StepFailure.from_exception(exc))
    """)
    # recording on a RecoveryLog
    assert "RPR010" not in rule_ids("""
        def f(log):
            try:
                step()
            except Exception as exc:
                log.record(1, classify_exception(exc), "drop")
    """)


def test_rpr010_ignores_narrow_handlers():
    assert "RPR010" not in rule_ids("""
        def f():
            try:
                step()
            except ValueError:
                pass
    """)


def test_rpr010_suppressible_independently_of_rpr006():
    findings = rule_ids("""
        def f():
            try:
                step()
            except Exception:  # noqa: RPR006 - boundary, but untyped
                pass
    """)
    assert "RPR006" not in findings
    assert "RPR010" in findings


# ----------------------------------------------------------------------
# noqa suppression and parse failures
# ----------------------------------------------------------------------

def test_noqa_blanket_and_specific():
    assert rule_ids("""
        import numpy as np
        a = np.random.rand(3)  # noqa
        b = np.random.rand(3)  # noqa: RPR002
    """) == []


def test_noqa_other_rule_does_not_suppress():
    assert "RPR002" in rule_ids("""
        import numpy as np
        a = np.random.rand(3)  # noqa: RPR005
    """)


def test_syntax_error_becomes_rpr000_finding():
    findings = lint_source("def broken(:\n", "bad.py")
    assert len(findings) == 1
    assert findings[0].rule == "RPR000"


# ----------------------------------------------------------------------
# the enforceable gate: the package itself lints clean
# ----------------------------------------------------------------------

def test_repo_src_is_lint_clean():
    findings, files_checked = lint_paths([SRC_DIR])
    assert files_checked > 50
    assert findings == []


# ----------------------------------------------------------------------
# CLI: exit codes, select/ignore, formats
# ----------------------------------------------------------------------

SEEDED_VIOLATIONS = dedent("""
    import numpy as np

    def jitter(positions, scale=[]):
        assert scale, "scale required"
        noise = np.random.rand(*positions.shape)
        return positions + np.asarray(noise, dtype=np.float32)
""")


@pytest.fixture
def seeded_file(tmp_path):
    path = tmp_path / "seeded.py"
    path.write_text(SEEDED_VIOLATIONS)
    return path


def test_cli_nonzero_exit_on_seeded_violations(seeded_file, capsys):
    assert lint_main([str(seeded_file)]) == 1
    out = capsys.readouterr().out
    for rule in ("RPR001", "RPR002", "RPR005", "RPR007", "RPR008"):
        assert rule in out


def test_cli_zero_exit_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    assert lint_main([str(clean)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_select_restricts_rules(seeded_file, capsys):
    assert lint_main([str(seeded_file), "--select", "RPR002"]) == 1
    out = capsys.readouterr().out
    assert "RPR002" in out
    assert "RPR007" not in out


def test_cli_ignore_can_silence_everything(seeded_file):
    code = lint_main([str(seeded_file),
                      "--ignore", "RPR001,RPR002,RPR005,RPR007,RPR008"])
    assert code == 0


def test_cli_unknown_rule_is_usage_error(seeded_file, capsys):
    assert lint_main([str(seeded_file), "--select", "NOPE"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "does_not_exist.py")]) == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR009" in out


def _validate_against_schema(doc: dict) -> None:
    """Minimal structural validation against REPORT_JSON_SCHEMA."""
    for key in REPORT_JSON_SCHEMA["required"]:
        assert key in doc
    assert isinstance(doc["version"], int)
    assert isinstance(doc["files_checked"], int)
    assert isinstance(doc["counts"], dict)
    finding_schema = REPORT_JSON_SCHEMA["properties"]["findings"]["items"]
    for finding in doc["findings"]:
        for key in finding_schema["required"]:
            assert key in finding
        assert finding["line"] >= 1
        assert finding["col"] >= 0
        assert finding["rule"].startswith("RPR")


def test_cli_json_output_matches_schema(seeded_file, capsys):
    assert lint_main([str(seeded_file), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    _validate_against_schema(doc)
    assert doc["files_checked"] == 1
    assert sum(doc["counts"].values()) == len(doc["findings"])
    assert doc["counts"]["RPR002"] == 1


def test_repro_cli_lint_subcommand(seeded_file):
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(seeded_file)]) == 1
    assert repro_main(["lint", str(seeded_file), "--select", "RPR006"]) == 0


# ----------------------------------------------------------------------
# RPR011 ad-hoc worker pools outside repro.exec
# ----------------------------------------------------------------------

def test_rpr011_flags_executor_construction():
    findings = rule_ids("""
        from concurrent.futures import ThreadPoolExecutor
        import concurrent.futures as cf

        def run(tasks):
            with ThreadPoolExecutor(max_workers=4) as pool:
                pool.map(lambda t: t(), tasks)
            other = cf.ProcessPoolExecutor(2)
            return other
    """)
    assert findings.count("RPR011") == 2


def test_rpr011_flags_multiprocessing_pool():
    assert "RPR011" in rule_ids("""
        import multiprocessing as mp

        def run():
            return mp.Pool(4)
    """)


def test_rpr011_ignores_unrelated_pool_names():
    # a bare user-defined Pool() is not the multiprocessing one
    assert "RPR011" not in rule_ids("""
        def run(Pool):
            return Pool(4)
    """)


def test_rpr011_exempts_exec_package_and_tests():
    snippet = dedent("""
        from concurrent.futures import ThreadPoolExecutor
        POOL = ThreadPoolExecutor(2)
    """)
    for path in ("src/repro/exec/context.py", "tests/test_exec.py"):
        assert all(f.rule != "RPR011"
                   for f in lint_source(snippet, path)), path
    assert any(f.rule == "RPR011"
               for f in lint_source(snippet, "src/repro/pme/spread.py"))


# ----------------------------------------------------------------------
# RPR012 blocking calls in async serve code
# ----------------------------------------------------------------------

def serve_rule_ids(source: str) -> list[str]:
    """Rule ids for a snippet lint-checked as a serve-layer module."""
    return [f.rule for f in lint_source(dedent(source),
                                        "src/repro/serve/snippet.py")]


def test_rpr012_flags_blocking_calls_in_async_def():
    findings = serve_rule_ids("""
        import time
        import subprocess

        async def handler(conn):
            time.sleep(0.1)
            subprocess.run(["ls"])
            data = conn.recv()
            with open("f.txt") as fh:
                return fh.read(), data
    """)
    assert findings.count("RPR012") == 4


def test_rpr012_ignores_awaited_and_sync_contexts():
    findings = serve_rule_ids("""
        import asyncio
        import time

        def sync_helper():
            time.sleep(0.1)          # sync function: fine

        async def handler(loop, pool):
            await asyncio.sleep(0.1)  # awaited: fine

            def work():
                time.sleep(1.0)       # executor target: fine

            return await loop.run_in_executor(pool, work)
    """)
    assert "RPR012" not in findings


def test_rpr012_only_applies_to_serve_paths():
    snippet = dedent("""
        import time

        async def poll():
            time.sleep(0.5)
    """)
    assert any(f.rule == "RPR012" for f in lint_source(
        snippet, "src/repro/serve/jobs.py"))
    for path in ("src/repro/runtime/worker.py",
                 "tests/serve/test_x.py", "tests/test_serve.py"):
        assert all(f.rule != "RPR012"
                   for f in lint_source(snippet, path)), path


def test_rpr012_serve_package_is_clean():
    findings, files_checked = lint_paths(
        [str(SRC_DIR / "repro" / "serve")])
    assert files_checked >= 7
    assert [f for f in findings if f.rule == "RPR012"] == []
