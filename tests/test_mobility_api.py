"""Tests for the unified MobilityOperator API and the batched pipeline.

Covers the protocol conformance of every implementer, the equivalence
of ``apply_block`` and per-column ``apply``, the deprecation shims
(``operator(f)`` and positional config construction), the ``replace``
helpers, the :class:`~repro.pme.cache.MobilityCache` reuse and the
block-Lanczos regression (batched operator vs legacy callable).
"""

import warnings

import numpy as np
import pytest

from repro import Box, PMEOperator, PMEParams
from repro.core.brownian import KrylovBrownianGenerator
from repro.core.mobility import (
    CallableMobility,
    DenseMobilityMatrix,
    MobilityOperator,
    as_mobility,
)
from repro.krylov.block_lanczos import block_lanczos_sqrt
from repro.obs import trace as _trace
from repro.pme.cache import MobilityCache
from repro.resilience.recovery import materialize_operator
from repro.rpy.ewald import EwaldSummation


@pytest.fixture(scope="module")
def system():
    n = 20
    box = Box.for_volume_fraction(n, 0.2)
    rng = np.random.default_rng(7)
    r = rng.uniform(0, box.length, size=(n, 3))
    params = PMEParams(xi=1.0, r_max=3.0, K=24, p=4)
    return box, r, params


@pytest.fixture(scope="module")
def spd_matrix():
    rng = np.random.default_rng(11)
    a = rng.standard_normal((30, 30))
    return a @ a.T + 30.0 * np.eye(30)


# ---------------------------------------------------------------------------
# protocol conformance
# ---------------------------------------------------------------------------

def test_pme_operator_conforms(system):
    box, r, params = system
    op = PMEOperator(r, box, params)
    assert isinstance(op, MobilityOperator)
    assert op.shape == (3 * r.shape[0],) * 2


def test_dense_matrix_wrapper_conforms(spd_matrix):
    op = DenseMobilityMatrix(spd_matrix)
    assert isinstance(op, MobilityOperator)
    assert op.shape == spd_matrix.shape


def test_callable_wrapper_conforms(spd_matrix):
    op = CallableMobility(lambda v: spd_matrix @ v, dim=30)
    assert isinstance(op, MobilityOperator)
    assert op.shape == (30, 30)


def test_ewald_as_operator_conforms(system):
    box, r, _ = system
    op = EwaldSummation(box=box, tol=1e-8).as_operator(r)
    assert isinstance(op, DenseMobilityMatrix)
    assert isinstance(op, MobilityOperator)
    f = np.ones(3 * r.shape[0])
    np.testing.assert_allclose(op.apply(f), op.matrix @ f)


def test_non_operators_do_not_conform():
    assert not isinstance(object(), MobilityOperator)
    assert not isinstance(np.eye(3), MobilityOperator)


# ---------------------------------------------------------------------------
# as_mobility normalization
# ---------------------------------------------------------------------------

def test_as_mobility_passthrough(spd_matrix):
    op = DenseMobilityMatrix(spd_matrix)
    assert as_mobility(op) is op


def test_as_mobility_wraps_matrix_and_callable(spd_matrix):
    assert isinstance(as_mobility(spd_matrix), DenseMobilityMatrix)
    wrapped = as_mobility(lambda v: spd_matrix @ v, dim=30)
    assert isinstance(wrapped, CallableMobility)
    x = np.arange(30.0)
    np.testing.assert_allclose(wrapped.apply(x), spd_matrix @ x)


def test_as_mobility_rejects_garbage():
    with pytest.raises(TypeError):
        as_mobility(42)


def test_callable_block_falls_back_to_columns(spd_matrix):
    def vector_only(v):
        if np.asarray(v).ndim != 1:
            raise ValueError("vectors only")
        return spd_matrix @ v

    op = CallableMobility(vector_only, dim=30)
    f = np.random.default_rng(3).standard_normal((30, 4))
    np.testing.assert_allclose(op.apply_block(f), spd_matrix @ f,
                               rtol=1e-12, atol=1e-12)


# ---------------------------------------------------------------------------
# batched apply_block vs sequential apply
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("store_p", [True, False])
def test_apply_block_matches_per_column_apply(system, store_p):
    box, r, params = system
    op = PMEOperator(r, box, params, store_p=store_p)
    rng = np.random.default_rng(0)
    f = rng.standard_normal((3 * r.shape[0], 8))
    block = op.apply_block(f)
    for c in range(f.shape[1]):
        ref = op.apply(f[:, c])
        err = (np.linalg.norm(block[:, c] - ref)
               / np.linalg.norm(ref))
        assert err <= 1e-13


def test_apply_block_flat_vector_and_fortran_input(system):
    box, r, params = system
    op = PMEOperator(r, box, params)
    rng = np.random.default_rng(1)
    flat = rng.standard_normal(3 * r.shape[0])
    np.testing.assert_allclose(op.apply_block(flat), op.apply(flat),
                               rtol=1e-12, atol=1e-14)
    f = np.asfortranarray(rng.standard_normal((3 * r.shape[0], 3)))
    np.testing.assert_allclose(op.apply_block(f),
                               op.apply_block(np.ascontiguousarray(f)))


def test_linear_operator_routes_matmat_through_block(system):
    box, r, params = system
    op = PMEOperator(r, box, params)
    lo = op.as_linear_operator()
    rng = np.random.default_rng(2)
    f = rng.standard_normal((3 * r.shape[0], 4))
    np.testing.assert_allclose(lo @ f, op.apply_block(f),
                               rtol=1e-12, atol=1e-14)


def test_apply_block_spans_carry_vector_counts(system):
    box, r, params = system
    op = PMEOperator(r, box, params)
    tracer = _trace.Tracer()
    previous = _trace.set_tracer(tracer)
    try:
        f = np.random.default_rng(4).standard_normal((3 * r.shape[0], 6))
        op.apply_block(f)
    finally:
        _trace.set_tracer(previous)
    vectors = [e.args.get("vectors") for e in tracer.events
               if e.name == "pme.fft" and e.phase == "X"]
    assert vectors == [6]


# ---------------------------------------------------------------------------
# deprecation shims
# ---------------------------------------------------------------------------

def test_direct_call_raises_on_pme_operator(system):
    box, r, params = system
    op = PMEOperator(r, box, params)
    f = np.ones(3 * r.shape[0])
    with pytest.raises(TypeError, match="apply"):
        op(f)


def test_direct_call_raises_on_dense_wrapper(spd_matrix):
    op = DenseMobilityMatrix(spd_matrix)
    with pytest.raises(TypeError, match="apply"):
        op(np.ones(30))


def test_callable_wrapper_call_still_works(spd_matrix):
    op = CallableMobility(lambda v: spd_matrix @ v, dim=30)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        op(np.ones(30))


def test_positional_params_raise():
    with pytest.raises(TypeError, match="keyword arguments"):
        PMEParams(1.0, 4.0, 24)
    PMEParams(xi=1.0, r_max=4.0, K=24)    # keyword form: fine


def test_positional_generator_raises():
    with pytest.raises(TypeError, match="KrylovBrownianGenerator"):
        KrylovBrownianGenerator(1.0, 1e-3)
    KrylovBrownianGenerator(kT=1.0, dt=1e-3)


def test_replace_on_frozen_dataclass_params():
    params = PMEParams(xi=1.0, r_max=4.0, K=24, p=4)
    finer = params.replace(K=32)
    assert finer.K == 32 and finer.xi == params.xi
    assert params.K == 24


def test_replace_on_plain_generator_config():
    gen = KrylovBrownianGenerator(kT=2.0, dt=1e-3, tol=1e-2)
    tighter = gen.replace(tol=1e-6)
    assert tighter.tol == 1e-6
    assert tighter.scale == gen.scale
    assert gen.tol == 1e-2


# ---------------------------------------------------------------------------
# mobility-reuse cache
# ---------------------------------------------------------------------------

def test_cache_reuses_position_independent_state(system):
    box, r, params = system
    cache = MobilityCache()
    op1 = PMEOperator(r, box, params, cache=cache)
    assert cache.hits == 0 and cache.misses >= 2
    rng = np.random.default_rng(5)
    r2 = rng.uniform(0, box.length, size=r.shape)
    op2 = PMEOperator(r2, box, params, cache=cache)
    assert cache.hits >= 2          # mesh + influence answered from cache
    assert op2.influence is op1.influence
    assert op2.mesh is op1.mesh


def test_cache_workspaces_shared_across_rebuilds(system):
    box, r, params = system
    cache = MobilityCache()
    op = PMEOperator(r, box, params, cache=cache)
    f = np.random.default_rng(6).standard_normal((3 * r.shape[0], 4))
    op.apply_block(f)
    misses_after_first = cache.misses
    op.apply_block(f)
    op2 = PMEOperator(r, box, params, cache=cache)
    op2.apply_block(f)
    assert cache.misses == misses_after_first
    stats = cache.stats()
    assert stats["workspaces"] == 1
    assert stats["memory_bytes"] > 0


# ---------------------------------------------------------------------------
# solvers consume the protocol
# ---------------------------------------------------------------------------

def test_block_lanczos_matches_legacy_callable(spd_matrix):
    rng = np.random.default_rng(8)
    z = rng.standard_normal((30, 4))
    y_op, info_op = block_lanczos_sqrt(DenseMobilityMatrix(spd_matrix), z,
                                       tol=1e-10)
    y_cb, info_cb = block_lanczos_sqrt(lambda v: spd_matrix @ v, z,
                                       tol=1e-10)
    # the callable accepts blocks, so both paths run identical arithmetic
    np.testing.assert_array_equal(y_op, y_cb)
    assert info_op.iterations == info_cb.iterations
    assert info_op.n_matvecs == info_cb.n_matvecs


def test_block_lanczos_on_batched_pme_operator(system):
    box, r, params = system
    op = PMEOperator(r, box, params)
    rng = np.random.default_rng(9)
    z = rng.standard_normal((3 * r.shape[0], 4))
    y_batched, _ = block_lanczos_sqrt(op, z, tol=1e-8)
    y_legacy, _ = block_lanczos_sqrt(op.apply, z, tol=1e-8)
    np.testing.assert_allclose(y_batched, y_legacy, rtol=1e-9, atol=1e-11)


def test_materialize_operator_accepts_all_forms(spd_matrix):
    dense = materialize_operator(spd_matrix, 30)
    np.testing.assert_allclose(dense, spd_matrix)
    via_callable = materialize_operator(lambda v: spd_matrix @ v, 30)
    np.testing.assert_allclose(via_callable, spd_matrix)
    via_operator = materialize_operator(DenseMobilityMatrix(spd_matrix), 30)
    np.testing.assert_allclose(via_operator, spd_matrix)
