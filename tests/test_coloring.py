"""Tests for the independent-set (8-color) spreading schedule."""

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError
from repro.parallel.coloring import ColoredSpreader, IndependentSetColoring
from repro.pme.spread import InterpolationMatrix


@pytest.fixture
def setup():
    box = Box(16.0)
    rng = np.random.default_rng(21)
    r = rng.uniform(0, box.length, size=(120, 3))
    return box, r


def test_colored_spread_matches_matrix(setup):
    box, r = setup
    K, p = 32, 4
    spreader = ColoredSpreader(r, box, K, p)
    interp = InterpolationMatrix(r, box, K, p)
    rng = np.random.default_rng(0)
    f = rng.standard_normal(r.shape[0])
    np.testing.assert_allclose(spreader.spread(f), interp.spread(f),
                               atol=1e-13)


def test_colored_spread_multivector(setup):
    box, r = setup
    spreader = ColoredSpreader(r, box, 32, 4)
    interp = InterpolationMatrix(r, box, 32, 4)
    f = np.random.default_rng(1).standard_normal((r.shape[0], 3))
    np.testing.assert_allclose(spreader.spread(f), interp.spread(f),
                               atol=1e-13)


def test_eight_colors_in_3d(setup):
    box, r = setup
    spreader = ColoredSpreader(r, box, 32, 4)
    assert spreader.n_colors == 8


def test_groups_partition_particles(setup):
    box, r = setup
    coloring = IndependentSetColoring(32, 4)
    groups = coloring.groups(r, box)
    all_indices = np.sort(np.concatenate(groups))
    np.testing.assert_array_equal(all_indices, np.arange(r.shape[0]))


def test_block_footprints_disjoint_within_color(setup):
    # the race-freedom property: within a color, different blocks write
    # disjoint sets of mesh points
    box, r = setup
    spreader = ColoredSpreader(r, box, 32, 4)
    for color in range(spreader.n_colors):
        footprints = spreader.block_footprints(color)
        for a in range(len(footprints)):
            for b in range(a + 1, len(footprints)):
                overlap = np.intersect1d(footprints[a], footprints[b])
                assert overlap.size == 0, (
                    f"color {color}: blocks {a} and {b} share mesh points")


def test_even_block_count_per_dim():
    for K, p in ((32, 4), (48, 6), (40, 4), (36, 6)):
        coloring = IndependentSetColoring(K, p)
        nb = coloring.blocks_per_dim
        assert nb == 1 or nb % 2 == 0
        # blocks at least p wide
        assert np.all(np.diff(coloring.block_edges) >= p)


def test_tiny_mesh_single_color():
    coloring = IndependentSetColoring(8, 6)
    assert coloring.n_colors == 1
    box = Box(4.0)
    r = np.random.default_rng(2).uniform(0, 4.0, size=(10, 3))
    spreader = ColoredSpreader(r, box, 8, 6)
    interp = InterpolationMatrix(r, box, 8, 6)
    f = np.ones(10)
    np.testing.assert_allclose(spreader.spread(f), interp.spread(f),
                               atol=1e-13)


def test_rejects_mesh_smaller_than_order():
    with pytest.raises(ConfigurationError):
        IndependentSetColoring(4, 6)
