"""Tests for host performance-model self-calibration."""

from repro.perfmodel import PMECostModel, calibrate_host


def test_calibrated_machine_is_usable():
    machine = calibrate_host(mesh_dims=(16, 32))
    assert machine.stream_bandwidth_gbs > 0
    assert machine.fft_rate(16) > 0
    assert machine.ifft_rate(32) > 0
    model = PMECostModel(machine)
    assert model.t_reciprocal(1000, 32, 6) > 0


def test_calibrated_rates_physically_plausible():
    machine = calibrate_host(mesh_dims=(16, 32))
    # a working CPU manages somewhere between 0.05 and 500 GF/s on a
    # 3-D FFT and between 0.5 and 1000 GB/s on a copy
    for K in (16, 32):
        assert 0.05 < machine.fft_rate(K) < 500
    assert 0.5 < machine.stream_bandwidth_gbs < 1000


def test_prediction_brackets_measurement():
    # the calibrated model should predict a real reciprocal application
    # within an order of magnitude (it is a bound-style model)
    import numpy as np
    from repro import Box, PMEOperator, PMEParams
    from repro.bench import measure_seconds

    machine = calibrate_host(mesh_dims=(32,))
    model = PMECostModel(machine)
    n, K, p = 1000, 32, 6
    box = Box.for_volume_fraction(n, 0.2)
    rng = np.random.default_rng(0)
    r = rng.uniform(0, box.length, size=(n, 3))
    op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=K, p=p))
    f = rng.standard_normal(3 * n)
    measured = measure_seconds(lambda: op.apply_reciprocal(f), repeats=3,
                               warmup=1).best
    predicted = model.t_reciprocal(n, K, p)
    assert predicted / 10 < measured < predicted * 10
