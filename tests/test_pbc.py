"""Tests for repro.utils.pbc."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.pbc import (
    fractional_coordinates,
    minimum_image,
    wrap_positions,
)

finite_coords = arrays(np.float64, (7, 3),
                       elements=st.floats(-1e6, 1e6, allow_nan=False))


def test_minimum_image_inside_box_unchanged():
    dr = np.array([[1.0, -2.0, 3.0]])
    out = minimum_image(dr, 10.0)
    np.testing.assert_allclose(out, dr)


def test_minimum_image_folds_large_displacement():
    dr = np.array([[9.0, 0.0, 0.0]])
    out = minimum_image(dr, 10.0)
    np.testing.assert_allclose(out, [[-1.0, 0.0, 0.0]])


def test_minimum_image_negative():
    dr = np.array([[-7.0, 0.0, 0.0]])
    np.testing.assert_allclose(minimum_image(dr, 10.0), [[3.0, 0.0, 0.0]])


@given(finite_coords)
@settings(max_examples=50, deadline=None)
def test_minimum_image_in_half_open_interval(dr):
    out = minimum_image(dr, 12.5)
    assert np.all(out >= -12.5 / 2 - 1e-9)
    assert np.all(out <= 12.5 / 2 + 1e-9)


@given(finite_coords)
@settings(max_examples=50, deadline=None)
def test_minimum_image_idempotent(dr):
    once = minimum_image(dr, 9.0)
    twice = minimum_image(once, 9.0)
    np.testing.assert_allclose(once, twice, atol=1e-9)


@given(finite_coords)
@settings(max_examples=50, deadline=None)
def test_wrap_positions_in_box(r):
    out = wrap_positions(r, 7.25)
    assert np.all(out >= 0.0)
    assert np.all(out < 7.25)


def test_wrap_positions_exact_multiple():
    out = wrap_positions(np.array([[10.0, 20.0, -10.0]]), 10.0)
    np.testing.assert_allclose(out, 0.0, atol=1e-12)


def test_wrap_preserves_relative_position():
    r = np.array([[13.7, -4.2, 25.1]])
    out = wrap_positions(r, 10.0)
    np.testing.assert_allclose(minimum_image(out - r, 10.0), 0.0, atol=1e-9)


def test_fractional_coordinates_range():
    r = np.array([[0.0, 5.0, 9.999999]])
    u = fractional_coordinates(r, 10.0, 32)
    assert np.all(u >= 0)
    assert np.all(u < 32)


def test_fractional_coordinates_scaling():
    r = np.array([[2.5, 5.0, 7.5]])
    u = fractional_coordinates(r, 10.0, 64)
    np.testing.assert_allclose(u, [[16.0, 32.0, 48.0]])
