"""Tests for the two BD integrators (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro import Box, FluidParams
from repro.core.forces import ConstantForce, RepulsiveHarmonic
from repro.core.integrators import EwaldBD, MatrixFreeBD
from repro.errors import ConfigurationError
from repro.pme.operator import PMEParams
from repro.systems import random_suspension


@pytest.fixture(scope="module")
def suspension():
    return random_suspension(30, 0.15, seed=4)


def _nearly_deterministic_fluid():
    # vanishing temperature: Brownian term negligible, drift dominates
    return FluidParams(kT=1e-18)


class TestDriftConsistency:
    def test_algorithms_agree_at_zero_temperature(self, suspension):
        # with negligible noise both algorithms integrate the same ODE;
        # they must agree to the PME accuracy e_p
        fluid = _nearly_deterministic_fluid()
        force = ConstantForce(np.array([1.0, -0.5, 0.25]))
        common = dict(box=suspension.box, fluid=fluid, force_field=force,
                      dt=1e-3, lambda_rpy=5, seed=0)
        r1, _ = EwaldBD(**common, ewald_tol=1e-8).run(
            suspension.positions, 10)
        r2, _ = MatrixFreeBD(**common, target_ep=1e-5).run(
            suspension.positions, 10)
        np.testing.assert_allclose(r2, r1, atol=1e-6)

    def test_constant_force_drives_drift_along_force(self):
        # under a uniform +x force at negligible temperature every
        # particle drifts in +x (mobility is SPD and near-diagonal-
        # dominant), with only small transverse motion from HI coupling
        susp = random_suspension(20, 0.1, seed=8)
        fluid = _nearly_deterministic_fluid()
        force = ConstantForce(np.array([1.0, 0.0, 0.0]))
        bd = MatrixFreeBD(box=susp.box, fluid=fluid, force_field=force,
                          dt=1e-3, lambda_rpy=4, seed=0, target_ep=1e-4)
        r_final, _ = bd.run(susp.positions, 4)
        disp = r_final - susp.positions
        assert np.all(disp[:, 0] > 0)
        assert np.abs(disp[:, 0]).mean() > 3 * np.abs(disp[:, 1:]).mean()


class TestRunMechanics:
    def test_stats_counting(self, suspension):
        bd = MatrixFreeBD(box=suspension.box, force_field=None, dt=1e-3,
                          lambda_rpy=4, seed=1, target_ep=1e-2)
        _, stats = bd.run(suspension.positions, 10)
        assert stats.n_steps == 10
        assert stats.mobility_updates == 3      # ceil(10 / 4)
        assert len(stats.krylov_iterations) == 3

    def test_callback_invoked_every_step(self, suspension):
        bd = MatrixFreeBD(box=suspension.box, force_field=None, dt=1e-3,
                          lambda_rpy=5, seed=1, target_ep=1e-2)
        steps = []
        bd.run(suspension.positions, 7,
               callback=lambda s, w, u: steps.append(s))
        assert steps == list(range(1, 8))

    def test_unwrapped_continuity(self, suspension):
        # unwrapped positions never jump by more than a fraction of L
        bd = MatrixFreeBD(box=suspension.box, dt=1e-3,
                          force_field=RepulsiveHarmonic(suspension.box),
                          lambda_rpy=5, seed=2, target_ep=1e-2)
        prev = [suspension.positions.copy()]

        def check(step, wrapped, unwrapped):
            jump = np.abs(unwrapped - prev[0]).max()
            assert jump < suspension.box.length / 4
            prev[0] = unwrapped.copy()

        bd.run(suspension.positions, 6, callback=check)

    def test_seed_reproducibility(self, suspension):
        kw = dict(box=suspension.box, force_field=None, dt=1e-3,
                  lambda_rpy=4, target_ep=1e-2)
        r1, _ = MatrixFreeBD(**kw, seed=42).run(suspension.positions, 6)
        r2, _ = MatrixFreeBD(**kw, seed=42).run(suspension.positions, 6)
        np.testing.assert_array_equal(r1, r2)

    def test_explicit_pme_params_used(self, suspension):
        params = PMEParams(xi=0.8, r_max=4.0, K=32, p=4)
        bd = MatrixFreeBD(box=suspension.box, force_field=None, dt=1e-3,
                          lambda_rpy=4, seed=0, pme_params=params)
        bd.run(suspension.positions, 2)
        assert bd.operator.params == params

    def test_memory_accounting_orders(self, suspension):
        # matrix-free memory is far below the dense algorithm's O(n^2)
        common = dict(box=suspension.box, force_field=None, dt=1e-3,
                      lambda_rpy=4, seed=0)
        ew = EwaldBD(**common)
        ew.run(suspension.positions, 1)
        mf = MatrixFreeBD(**common, target_ep=1e-2)
        mf.run(suspension.positions, 1)
        assert ew.mobility_memory_bytes() == 2 * (3 * 30) ** 2 * 8
        assert mf.mobility_memory_bytes() > 0

    def test_validation(self, suspension):
        with pytest.raises(ConfigurationError):
            MatrixFreeBD(box=suspension.box, dt=0.0)
        with pytest.raises(ConfigurationError):
            MatrixFreeBD(box=suspension.box, dt=1e-3, lambda_rpy=0)


class TestPhysicalBehaviour:
    def test_free_diffusion_msd_scale(self):
        # a very dilute system diffuses with D ~ D_0: MSD over t steps
        # ~ 6 D t dt within statistical error
        susp = random_suspension(40, 0.01, seed=9)
        bd = MatrixFreeBD(box=susp.box, force_field=None, dt=1e-2,
                          lambda_rpy=10, seed=3, target_ep=1e-2)
        n_steps = 20
        r_final, _ = bd.run(susp.positions, n_steps)
        disp = r_final - susp.positions
        msd = float((disp ** 2).sum(axis=1).mean())
        expected = 6.0 * 1.0 * n_steps * 1e-2
        assert msd == pytest.approx(expected, rel=0.5)

    def test_repulsion_resolves_overlap(self):
        # two overlapping particles should separate under BD
        box = Box(12.0)
        r0 = np.array([[5.0, 5.0, 5.0], [6.2, 5.0, 5.0]])
        bd = MatrixFreeBD(box=box, force_field=RepulsiveHarmonic(box),
                          dt=1e-4, lambda_rpy=5, seed=4,
                          pme_params=PMEParams(xi=1.0, r_max=4.0, K=32, p=4))
        r_final, _ = bd.run(r0, 50)
        dist = np.linalg.norm(box.minimum_image(r_final[0] - r_final[1]))
        assert dist > 1.2
