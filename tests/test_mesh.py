"""Tests for the PME mesh."""

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError
from repro.pme.mesh import Mesh


def test_spacing_and_counts():
    mesh = Mesh(Box(10.0), 32)
    assert mesh.spacing == pytest.approx(10.0 / 32)
    assert mesh.n_points == 32 ** 3
    assert mesh.shape == (32, 32, 32)
    assert mesh.rshape == (32, 32, 17)


def test_nyquist():
    mesh = Mesh(Box(8.0), 16)
    assert mesh.nyquist == pytest.approx(np.pi * 16 / 8.0)


def test_wavenumbers_signed_layout():
    mesh = Mesh(Box(2 * np.pi), 8)   # L = 2 pi -> k = signed mode number
    kx, ky, kz = mesh.wavenumbers()
    np.testing.assert_allclose(kx, [0, 1, 2, 3, -4, -3, -2, -1])
    np.testing.assert_allclose(kz, [0, 1, 2, 3, 4])


def test_k2_grid_consistency():
    mesh = Mesh(Box(5.0), 8)
    k2 = mesh.k2_grid()
    assert k2.shape == mesh.rshape
    assert k2[0, 0, 0] == 0.0
    kx, _, _ = mesh.wavenumbers()
    assert k2[1, 0, 0] == pytest.approx(kx[1] ** 2)


def test_hermitian_weight_counts_all_modes():
    # sum of weights = K^3 (total number of modes in the full spectrum)
    for K in (8, 9, 16):
        mesh = Mesh(Box(3.0), K)
        assert mesh.hermitian_weight().sum() == pytest.approx(K ** 3)


def test_parseval_with_hermitian_weight():
    # |x|^2 == (1/K^3) sum_k w_k |X_k|^2 for real x under rfftn
    rng = np.random.default_rng(0)
    mesh = Mesh(Box(1.0), 12)
    x = rng.standard_normal(mesh.shape)
    spec = np.fft.rfftn(x)
    lhs = np.sum(x * x)
    rhs = np.sum(mesh.hermitian_weight() * np.abs(spec) ** 2) / mesh.n_points
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_rejects_tiny_mesh():
    with pytest.raises(ConfigurationError):
        Mesh(Box(1.0), 1)
