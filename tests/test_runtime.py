"""Tests of the supervised ensemble runtime (repro.runtime).

Unit layers (backoff, circuit breaker, task specs, manifest, fault
plan, signals, worker logic) run in-process; the integration layers
spawn real worker processes, and the 1,000-step soak (``-m faults``)
injects every process-fault kind and asserts the supervisor accounts
for all of them.
"""

from __future__ import annotations

import json
import os
import signal
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pme.operator import PMEParams
from repro.resilience.backoff import (
    BackoffPolicy,
    CircuitBreaker,
    next_dt_scale,
)
from repro.resilience.failures import FailureKind, StepFailure
from repro.runtime import (
    CampaignManifest,
    GracefulShutdown,
    ProcessFaultPlan,
    Supervisor,
    TaskRecord,
    TaskSpec,
    TaskState,
    make_ensemble,
    positions_digest,
)
from repro.runtime.faults import EXPECTED_OBSERVATIONS
from repro.runtime.worker import _run_task, failure_report

#: Small-but-real PME parameters keeping worker tasks fast.
PME = PMEParams(xi=0.9, r_max=3.0, K=16, p=4)


def _specs(n_tasks=3, n_steps=30, **kw):
    kw.setdefault("n", 20)
    kw.setdefault("phi", 0.1)
    kw.setdefault("seed", 3)
    kw.setdefault("lambda_rpy", 10)
    return make_ensemble(n_tasks, n_steps=n_steps, pme=PME, **kw)


def _run(tmp_path, specs_or_records, sub="c", **kw):
    d = str(tmp_path / sub)
    os.makedirs(d, exist_ok=True)
    kw.setdefault("hang_timeout", 60.0)
    kw.setdefault("backoff", BackoffPolicy(initial=0.05, max_delay=0.2))
    return Supervisor(specs_or_records, d, **kw).run()


# ----------------------------------------------------------------------
# backoff policy and circuit breaker
# ----------------------------------------------------------------------

def test_backoff_delays_grow_and_cap():
    policy = BackoffPolicy(initial=0.5, factor=2.0, max_delay=3.0,
                           jitter=0.0)
    assert policy.delay(0) == pytest.approx(0.5)
    assert policy.delay(1) == pytest.approx(1.0)
    assert policy.delay(2) == pytest.approx(2.0)
    assert policy.delay(5) == pytest.approx(3.0)  # capped


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = BackoffPolicy(initial=1.0, factor=2.0, max_delay=64.0,
                           jitter=0.1)
    for attempt in range(5):
        d1 = policy.delay(attempt, seed=11)
        d2 = policy.delay(attempt, seed=11)
        assert d1 == d2  # replay-identical
        raw = min(1.0 * 2.0 ** attempt, 64.0)
        assert abs(d1 - raw) <= 0.1 * raw + 1e-12
    # different seeds decorrelate retry storms
    assert policy.delay(1, seed=1) != policy.delay(1, seed=2)


def test_backoff_validation():
    with pytest.raises(ConfigurationError):
        BackoffPolicy(initial=-1.0)
    with pytest.raises(ConfigurationError):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ConfigurationError):
        BackoffPolicy(jitter=1.5)


def test_next_dt_scale_decays_to_floor():
    scale = 1.0
    seen = []
    while (scale := next_dt_scale(scale, 0.5, 0.1)) is not None:
        seen.append(scale)
    assert seen == pytest.approx([0.5, 0.25, 0.125])
    assert next_dt_scale(0.125, 0.5, 0.1) is None


def test_circuit_breaker_trips_and_resets():
    breaker = CircuitBreaker(failure_threshold=2)
    assert not breaker.record_failure()
    assert breaker.record_failure()
    assert breaker.open
    assert breaker.total_failures == 2
    breaker.reset()
    assert not breaker.open
    assert breaker.total_failures == 2  # lifetime count survives reset
    assert not breaker.record_failure()
    breaker.record_success()
    assert breaker.failures == 0


# ----------------------------------------------------------------------
# task specs, ensemble derivation, manifest
# ----------------------------------------------------------------------

def test_task_spec_json_roundtrip():
    spec = _specs(1)[0]
    again = TaskSpec.from_json(json.loads(json.dumps(spec.to_json())))
    assert again == spec
    assert again.pme == PME


def test_make_ensemble_seeds_are_deterministic_and_distinct():
    a = make_ensemble(4, n=10, phi=0.1, n_steps=5, seed=9)
    b = make_ensemble(4, n=10, phi=0.1, n_steps=5, seed=9)
    assert a == b
    seeds = {(s.seed, s.system_seed) for s in a}
    assert len(seeds) == 4
    with pytest.raises(ConfigurationError):
        make_ensemble(0, n=10, phi=0.1, n_steps=5)


def test_manifest_roundtrip_and_resumability(tmp_path):
    records = [TaskRecord(spec=s) for s in _specs(2)]
    records[0].state = TaskState.DONE
    records[0].digest = "d" * 64
    manifest = CampaignManifest(tasks=records, fault_spec="seed=1,kill=1",
                                worker_restarts={"worker-death": 2})
    path = tmp_path / "campaign.json"
    manifest.save(path)
    loaded = CampaignManifest.load(path)
    assert loaded.resumable  # one task still pending
    assert loaded.counts() == {"done": 1, "pending": 1}
    assert loaded.fault_spec == "seed=1,kill=1"
    assert loaded.worker_restarts == {"worker-death": 2}
    assert loaded.tasks[0].digest == "d" * 64


def test_manifest_rejects_unknown_version(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps({"version": 99, "tasks": []}))
    with pytest.raises(ConfigurationError):
        CampaignManifest.load(path)


# ----------------------------------------------------------------------
# process-fault plan
# ----------------------------------------------------------------------

def test_fault_plan_spec_roundtrip():
    plan = ProcessFaultPlan.from_spec(
        "seed=7,kill=2,hang=1,slow-per-step=0.25")
    assert plan.seed == 7
    assert plan.counts == {"kill": 2, "hang": 1}
    assert plan.slow_per_step == 0.25
    again = ProcessFaultPlan.from_spec(plan.to_spec())
    assert (again.seed, again.counts, again.slow_per_step) == (
        plan.seed, plan.counts, plan.slow_per_step)


def test_fault_plan_rejects_bad_specs():
    for spec in ("kill", "frobnicate=1", "kill=-1"):
        with pytest.raises(ConfigurationError):
            ProcessFaultPlan.from_spec(spec)


def test_fault_plan_assignment_is_deterministic_one_per_task():
    ids = list(range(8))
    steps = {i: 100 for i in ids}
    plan1 = ProcessFaultPlan(seed=3, counts={"kill": 2, "corrupt": 1})
    plan2 = ProcessFaultPlan(seed=3, counts={"kill": 2, "corrupt": 1})
    f1 = plan1.assign(ids, steps)
    f2 = plan2.assign(ids, steps)
    assert [(f.task_id, f.kind, f.at_step) for f in f1] == \
           [(f.task_id, f.kind, f.at_step) for f in f2]
    assert len({f.task_id for f in f1}) == 3  # one fault per task
    for f in f1:
        assert 1 <= f.at_step < 100


def test_fault_plan_refuses_more_faults_than_tasks():
    plan = ProcessFaultPlan(counts={"kill": 3})
    with pytest.raises(ConfigurationError):
        plan.assign([1, 2], {1: 10, 2: 10})


def test_fault_plan_first_attempt_only_and_accounting():
    plan = ProcessFaultPlan(seed=0, counts={"hang": 1})
    plan.assign([5], {5: 40})
    assert plan.fault_for(5, attempt=0) is not None
    assert plan.fault_for(5, attempt=1) is None
    assert plan.unaccounted()
    fault = plan.observe(5, "hang-timeout")
    assert fault is not None and fault.accounted()
    assert not plan.unaccounted()


def test_fault_plan_wrong_observation_stays_unaccounted():
    plan = ProcessFaultPlan(seed=0, counts={"kill": 1})
    plan.assign([1], {1: 40})
    plan.observe(1, "corrupt-result")  # kill must surface as worker-death
    assert plan.unaccounted()
    assert "worker-death" in EXPECTED_OBSERVATIONS["kill"]


# ----------------------------------------------------------------------
# graceful-shutdown signals
# ----------------------------------------------------------------------

def test_graceful_shutdown_flags_and_restores():
    seen = []
    before = signal.getsignal(signal.SIGTERM)
    with GracefulShutdown(on_signal=seen.append) as shutdown:
        assert not shutdown.triggered
        os.kill(os.getpid(), signal.SIGTERM)
        assert shutdown.triggered
        assert shutdown.signal_name == "SIGTERM"
        assert seen == ["SIGTERM"]
    assert signal.getsignal(signal.SIGTERM) is before


# ----------------------------------------------------------------------
# worker logic (in-process, stub connection)
# ----------------------------------------------------------------------

class _StubConn:
    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)


class _NeverStop:
    @staticmethod
    def is_set():
        return False


def _worker_messages(tmp_path, spec, fault=None, attempt=0):
    conn = _StubConn()
    os.makedirs(str(tmp_path), exist_ok=True)
    _run_task(conn, _NeverStop(), spec, attempt=attempt, fault=fault,
              safe_mode=False, checkpoint_dir=str(tmp_path),
              slow_per_step=0.0, heartbeat_interval=0.01)
    return conn.sent


def test_worker_completes_task_with_verifiable_digest(tmp_path):
    spec = _specs(1, n_steps=20)[0]
    messages = _worker_messages(tmp_path, spec)
    done = [m for m in messages if m["msg"] == "done"]
    assert len(done) == 1
    assert done[0]["completed_step"] == 20
    assert positions_digest(done[0]["positions"]) == done[0]["digest"]
    ckpts = [m for m in messages if m["msg"] == "checkpoint"]
    assert [m["completed_step"] for m in ckpts] == [10, 20]
    assert os.path.exists(spec.checkpoint_path(str(tmp_path)))


def test_worker_corrupt_fault_breaks_payload_not_digest(tmp_path):
    spec = _specs(1, n_steps=20)[0]
    clean = _worker_messages(tmp_path / "a", spec)
    faulty = _worker_messages(
        tmp_path / "b", spec, fault={"kind": "corrupt", "at_step": 5})
    done_clean = [m for m in clean if m["msg"] == "done"][0]
    done_bad = [m for m in faulty if m["msg"] == "done"][0]
    # the digest is of the TRUE positions; the payload was corrupted
    assert done_bad["digest"] == done_clean["digest"]
    assert positions_digest(done_bad["positions"]) != done_bad["digest"]


def test_worker_resumes_from_checkpoint_bit_exactly(tmp_path):
    spec = _specs(1, n_steps=40)[0]
    full = _worker_messages(tmp_path / "full", spec)
    digest_full = [m for m in full if m["msg"] == "done"][0]["digest"]

    # first 20 steps only, then resume the remaining 20 from disk
    half_spec = TaskSpec.from_json({**spec.to_json(), "n_steps": 20})
    _worker_messages(tmp_path / "part", half_spec)
    resumed = _worker_messages(tmp_path / "part", spec, attempt=1)
    digest_resumed = [m for m in resumed if m["msg"] == "done"][0]["digest"]
    assert digest_resumed == digest_full


def test_failure_report_structure():
    failure = StepFailure(FailureKind.LANCZOS_NONCONVERGENCE, "boom",
                          step=7, diagnostics={"iterations": 3})
    report = failure_report(failure, attempt=2)
    assert report["kind"] == "lanczos-nonconvergence"
    assert report["step"] == 7
    assert report["attempt"] == 2
    assert report["diagnostics"] == {"iterations": 3}
    json.dumps(report)  # manifest-serializable


# ----------------------------------------------------------------------
# supervised campaigns (real worker processes)
# ----------------------------------------------------------------------

def test_campaign_single_vs_multi_worker_bit_identity(tmp_path):
    r1 = _run(tmp_path, _specs(), "w1", n_workers=1)
    r3 = _run(tmp_path, _specs(), "w3", n_workers=3)
    assert r1.manifest.counts() == {"done": 3}
    assert len(r1.digests) == 3
    assert r1.digests == r3.digests
    assert not r1.restarts


def test_campaign_drain_and_resume_bit_identity(tmp_path):
    reference = _run(tmp_path, _specs(2, n_steps=400), "ref", n_workers=2)

    d = str(tmp_path / "drained")
    os.makedirs(d)
    supervisor = Supervisor(_specs(2, n_steps=400), d, n_workers=2,
                            hang_timeout=60.0)
    threading.Timer(1.0, supervisor.request_drain).start()
    report = supervisor.run()
    assert report.drained
    manifest = CampaignManifest.load(os.path.join(d, "campaign.json"))
    assert manifest.drained and manifest.resumable
    # drain stops at lambda_RPY block boundaries
    for record in manifest.tasks:
        assert record.completed_step % record.spec.lambda_rpy == 0

    resumed = Supervisor(manifest.tasks, d, n_workers=2,
                         hang_timeout=60.0).run()
    assert resumed.manifest.counts() == {"done": 2}
    assert resumed.digests == reference.digests


def test_campaign_quarantines_poison_task(tmp_path):
    # an impossible system spec (real-space cutoff larger than half the
    # box) makes the worker fail on every attempt: breaker opens ->
    # safe-mode reroute -> opens again -> quarantine
    bad = TaskSpec(task_id=0, n=10, phi=0.3, n_steps=20, seed=1,
                   system_seed=1,
                   pme=PMEParams(xi=0.9, r_max=1000.0, K=16, p=4))
    report = _run(tmp_path, [bad], n_workers=1, breaker_threshold=2)
    (task,) = report.manifest.tasks
    assert task.state is TaskState.QUARANTINED
    assert task.safe_mode  # the reroute was attempted before giving up
    assert task.failure is not None and task.failure["kind"]


# ----------------------------------------------------------------------
# the 1,000-step process-fault soak
# ----------------------------------------------------------------------

@pytest.mark.faults
def test_ensemble_soak_all_process_faults_accounted(tmp_path):
    """10 tasks x 100 steps with one fault of every kind injected.

    Every injected fault must be matched to the supervision event that
    detected it, and the campaign must still complete every task.
    """
    specs = _specs(10, n_steps=100, n=16)
    plan = ProcessFaultPlan.from_spec(
        "seed=13,kill=1,hang=1,slow=1,corrupt=1,slow-per-step=0.5")
    report = _run(tmp_path, specs, n_workers=3, fault_plan=plan,
                  hang_timeout=2.5, deadline=12.0)

    assert sum(s.n_steps for s in specs) == 1000
    assert report.manifest.counts() == {"done": 10}
    assert len(plan.faults) == 4
    assert plan.unaccounted() == [], (
        f"unaccounted faults: {plan.unaccounted()}; "
        f"restarts: {report.restarts}")
    observed = {f.kind: f.observed for f in plan.faults}
    for kind, reason in observed.items():
        assert reason in EXPECTED_OBSERVATIONS[kind]
    # every fault recovery implies at least one retry or restart
    assert report.restarts  # kill/hang/slow all force a worker death
    manifest = CampaignManifest.load(report_manifest_path(tmp_path))
    assert manifest.counts() == {"done": 10}
    assert sum(manifest.worker_restarts.values()) == len(report.restarts)


def report_manifest_path(tmp_path):
    return os.path.join(str(tmp_path / "c"), "campaign.json")


def test_worker_restart_budget_aborts(tmp_path):
    # a plan with a kill fault and a restart budget of zero must abort
    specs = _specs(1, n_steps=30)
    plan = ProcessFaultPlan(seed=1, counts={"kill": 1})
    with pytest.raises(StepFailure):
        _run(tmp_path, specs, n_workers=1, fault_plan=plan,
             max_worker_restarts=0)
    # the manifest still landed on disk for post-mortem
    assert os.path.exists(report_manifest_path(tmp_path))


# ----------------------------------------------------------------------
# cross-process observability collection
# ----------------------------------------------------------------------

def _metric_value(registry, name, **labels):
    return registry.counter(name, **labels).value


def test_traced_campaign_clean(tmp_path):
    """A healthy traced campaign merges into one named timeline."""
    from repro import obs
    from repro.obs.collect import spans_for_task
    from repro.obs.schema import validate_file

    specs = _specs(2, n_steps=10)
    obs.enable()
    try:
        report = _run(tmp_path, specs, n_workers=2)
    finally:
        obs.disable()

    assert report.manifest.counts() == {"done": 2}
    collection = report.collection
    assert collection is not None

    # one process track per participant, supervisor listed first
    doc = collection.merged.to_chrome_trace()
    names = [e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert names[0] == "supervisor"
    assert set(names) == {"supervisor", "worker-0", "worker-1"}

    # supervisor<->worker correlation through the task id
    correlated = spans_for_task(collection.merged.events,
                                specs[0].task_id)
    assert any(e["name"] == "supervisor.task" for e in correlated)
    assert any(e.get("worker_id") is not None for e in correlated)

    # a clean run counts each BD step exactly once across all workers
    total_steps = sum(s.n_steps for s in specs)
    assert _metric_value(collection.metrics,
                         "bd_steps_total") == total_steps

    # canonical exports landed next to campaign.json and validate
    d = tmp_path / "c"
    for filename in ("campaign-trace.json", "campaign-metrics.json",
                     "campaign-metrics.prom"):
        path = d / filename
        assert path.exists()
        if path.suffix == ".json":
            validate_file(path)


@pytest.mark.faults
def test_traced_fault_campaign_observability(tmp_path):
    """Kill + hang faults under tracing: spools survive SIGKILL, the
    restart/lag metrics carry exact values, and the physics digests
    stay bit-identical to the same campaign run untraced."""
    from collections import Counter

    from repro import obs

    def campaign(sub, traced):
        specs = _specs(3, n_steps=20, n=16)
        plan = ProcessFaultPlan.from_spec("seed=13,kill=1,hang=1")
        if traced:
            obs.enable()
        try:
            return _run(tmp_path, specs, sub=sub, n_workers=3,
                        fault_plan=plan, hang_timeout=1.0,
                        deadline=8.0)
        finally:
            if traced:
                obs.disable()

    untraced = campaign("untraced", traced=False)
    traced = campaign("traced", traced=True)

    for report in (untraced, traced):
        assert report.manifest.counts() == {"done": 3}
        assert report.restarts  # the kill and the hang both fired
    # observability must not perturb the physics: recovery schedules
    # and final positions agree bit-for-bit with the untraced run
    assert traced.digests == untraced.digests

    collection = traced.collection
    assert collection is not None

    # restart counters match the supervision log exactly, per reason
    reasons = Counter(r.reason for r in traced.restarts)
    assert reasons.get("worker-death") and reasons.get("hang-timeout")
    for reason, count in reasons.items():
        assert _metric_value(collection.metrics, "worker_restarts_total",
                             reason=reason) == count

    # the heartbeat-lag gauge holds the campaign's running maximum,
    # which the hang fault pushed past the 1 s timeout
    lag = collection.metrics.gauge(
        "supervisor_heartbeat_lag_seconds").value
    assert lag == pytest.approx(traced.max_heartbeat_lag)
    assert lag >= 1.0

    # every restarted (SIGKILLed or hung) worker's spool was recovered
    recovered = {s.worker_id for s in collection.spools}
    assert {r.worker_id for r in traced.restarts} <= recovered
    assert collection.recovered_events > 0

    # aggregated step counter equals the sum over worker snapshots and
    # covers every logical step (checkpoint-resume re-runs may add a
    # few re-counted steps on top)
    snapshot_total = 0.0
    for path in (tmp_path / "traced").glob("obs-worker-*.metrics.json"):
        doc = json.loads(path.read_text(encoding="utf-8"))
        for family in doc["metrics"]:
            if family["name"] == "bd_steps_total":
                snapshot_total += sum(s["value"]
                                      for s in family["series"])
    merged_steps = _metric_value(collection.metrics, "bd_steps_total")
    assert merged_steps == snapshot_total
    assert merged_steps >= sum(
        t.spec.n_steps for t in traced.manifest.tasks)

    # the merged timeline names a distinct track per worker process
    doc = collection.merged.to_chrome_trace()
    names = [e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert names[0] == "supervisor"
    assert {f"worker-{w}" for w in recovered} <= set(names)


def test_graceful_shutdown_nested_contexts_all_trigger():
    inner_seen, outer_seen = [], []
    before = signal.getsignal(signal.SIGTERM)
    with GracefulShutdown(on_signal=outer_seen.append) as outer:
        with GracefulShutdown(on_signal=inner_seen.append) as inner:
            os.kill(os.getpid(), signal.SIGTERM)
            # one signal trips the whole stack: the inner handler
            # chains delivery to the outer GracefulShutdown
            assert inner.triggered and outer.triggered
            assert inner_seen == ["SIGTERM"]
            assert outer_seen == ["SIGTERM"]
        # inner exit restored the outer handler; a second signal
        # still reaches the (already triggered) outer context
        os.kill(os.getpid(), signal.SIGTERM)
        assert outer_seen == ["SIGTERM", "SIGTERM"]
    assert signal.getsignal(signal.SIGTERM) is before


def test_graceful_shutdown_does_not_invoke_foreign_handlers():
    foreign_calls = []

    def foreign(signum, frame):
        foreign_calls.append(signum)

    before = signal.getsignal(signal.SIGTERM)
    signal.signal(signal.SIGTERM, foreign)
    try:
        with GracefulShutdown() as shutdown:
            os.kill(os.getpid(), signal.SIGTERM)
            assert shutdown.triggered
            # the foreign handler is *restored*, never *chained*
            assert foreign_calls == []
        assert signal.getsignal(signal.SIGTERM) is foreign
        os.kill(os.getpid(), signal.SIGTERM)
        assert foreign_calls == [signal.SIGTERM]
    finally:
        signal.signal(signal.SIGTERM, before)
