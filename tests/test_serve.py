"""Tests for ``repro.serve`` — protocol, batching, caching, service.

The load-bearing assertions are the determinism contracts:

* a batched ``mobility.apply`` answer equals a direct
  ``PMEOperator.apply_block`` call **byte for byte** (slicing columns
  out of a coalesced batch changes nothing);
* a served ``simulate`` digest equals a direct ``Simulation.run`` of
  the same recipe;
* under oversubscription the service sheds load instead of queueing
  unboundedly, and a shed request carries a usable Retry-After.

No pytest-asyncio: async scenarios run under ``asyncio.run`` inside
ordinary test functions; socket tests drive the real server over a
Unix socket in-process.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.exec import ExecutionContext
from repro.pme.cache import MobilityCache
from repro.pme.operator import PMEOperator
from repro.pme.tuning import tune_parameters
from repro.serve import (
    MobilityBatcher,
    OperatorPool,
    ProtocolError,
    ResultCache,
    ServeClient,
    ServeSettings,
    SimulationService,
    SingleFlight,
    SystemSpec,
)
from repro.serve.batching import build_operator
from repro.serve.protocol import (
    decode_array,
    decode_line,
    encode_array,
    encode_message,
    validate_request,
)
from repro.systems.suspension import make_suspension

SPEC = SystemSpec(n=16, phi=0.2, system_seed=0)


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------

def test_array_codec_roundtrip_is_bit_exact():
    rng = np.random.default_rng(0)
    arr = rng.standard_normal((7, 3)) * 1e-17 + rng.standard_normal((7, 3))
    decoded = decode_array(encode_array(arr))
    assert decoded.dtype == np.float64
    assert decoded.tobytes() == arr.tobytes()


def test_decode_array_accepts_lists_and_rejects_garbage():
    assert decode_array([1.0, 2.0]).tolist() == [1.0, 2.0]
    with pytest.raises(ProtocolError):
        decode_array("nope")
    with pytest.raises(ProtocolError):
        decode_array({"shape": [3], "b64": "AAAA"})  # wrong byte count


def test_message_framing_roundtrip():
    message = {"op": "ping", "id": "x", "nested": {"a": [1, 2]}}
    line = encode_message(message)
    assert line.endswith(b"\n")
    assert decode_line(line) == message
    with pytest.raises(ProtocolError):
        decode_line(b"not json\n")
    with pytest.raises(ProtocolError):
        decode_line(b"[1, 2]\n")  # not an object


def test_validate_request_envelope():
    assert validate_request({"op": "ping", "id": 1}) == "ping"
    with pytest.raises(ProtocolError):
        validate_request({"op": "nope", "id": 1})
    with pytest.raises(ProtocolError):
        validate_request({"op": "ping", "id": None})


def test_system_spec_validation_and_unknown_fields():
    with pytest.raises(ProtocolError):
        SystemSpec(n=0)
    with pytest.raises(ProtocolError):
        SystemSpec(n=10, phi=0.9)
    with pytest.raises(ProtocolError):
        SystemSpec.from_json({"n": 10, "bogus": 1})
    with pytest.raises(ProtocolError):
        SystemSpec.from_json({"phi": 0.1})  # n required
    spec = SystemSpec.from_json({"n": 10, "phi": 0.1})
    assert spec.n == 10 and spec.phi == 0.1


def test_fingerprint_vs_operator_key_granularity():
    a = SystemSpec(n=16, dt=1e-3)
    b = SystemSpec(n=16, dt=2e-3)      # dt: simulate-only knob
    c = SystemSpec(n=16, e_p=1e-4)     # e_p: changes the operator
    assert a.fingerprint() != b.fingerprint()
    assert a.operator_key() == b.operator_key()
    assert a.operator_key() != c.operator_key()
    assert a.fingerprint() == SystemSpec(n=16, dt=1e-3).fingerprint()


# ----------------------------------------------------------------------
# result cache + single flight
# ----------------------------------------------------------------------

def test_result_cache_lru_eviction():
    cache = ResultCache(max_entries=2, ttl=None)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refresh a: b becomes LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_result_cache_ttl_expiry_with_injected_clock():
    clock = [0.0]
    cache = ResultCache(max_entries=8, ttl=10.0, clock=lambda: clock[0])
    cache.put("k", "v")
    clock[0] = 9.0
    assert cache.get("k") == "v"
    clock[0] = 20.1
    assert cache.get("k") is None
    assert cache.stats.expirations == 1
    assert len(cache) == 0              # expired entry was dropped


def test_single_flight_deduplicates_concurrent_callers():
    async def scenario():
        flight = SingleFlight()
        calls = []

        async def compute():
            calls.append(1)
            await asyncio.sleep(0.02)
            return "result"

        results = await asyncio.gather(
            *(flight.run("k", compute) for _ in range(5)))
        assert results == ["result"] * 5
        assert len(calls) == 1
        assert flight.joined == 4
        assert flight.active() == 0

    asyncio.run(scenario())


def test_single_flight_failure_is_not_cached():
    async def scenario():
        flight = SingleFlight()
        attempts = []

        async def failing():
            attempts.append(1)
            raise ValueError("boom")

        with pytest.raises(ValueError):
            await flight.run("k", failing)

        async def working():
            return 42

        assert await flight.run("k", working) == 42
        assert len(attempts) == 1

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# batching: bit identity against direct apply_block
# ----------------------------------------------------------------------

def test_batched_applies_bit_identical_to_direct():
    rng = np.random.default_rng(7)
    widths = (1, 2, 1, 3, 1)
    forces = [rng.standard_normal((3 * SPEC.n, s)) for s in widths]

    # direct reference: a fresh operator, one apply per request
    operator, _cache = build_operator(SPEC)
    reference = [operator.apply_block(f) for f in forces]

    async def scenario():
        with ExecutionContext("threads", workers=2) as context:
            pool = OperatorPool(context.thread_pool(), max_systems=2)
            batcher = MobilityBatcher(pool, context.thread_pool(),
                                      max_batch=sum(widths),
                                      max_wait=0.05)
            results = await asyncio.gather(
                *(batcher.submit(SPEC, f) for f in forces))
            await batcher.drain()
            return results, batcher.stats()

    results, stats = asyncio.run(scenario())
    # all five requests coalesced into one apply_block
    assert stats["batches_flushed"] == 1
    assert stats["requests_batched"] == len(widths)
    assert stats["backlog_columns"] == 0
    for got, want in zip(results, reference):
        assert got.shape == want.shape
        assert got.tobytes() == want.tobytes()


def test_batcher_flushes_at_max_batch_without_waiting():
    async def scenario():
        with ExecutionContext("threads", workers=1) as context:
            pool = OperatorPool(context.thread_pool())
            batcher = MobilityBatcher(pool, context.thread_pool(),
                                      max_batch=2, max_wait=60.0)
            rng = np.random.default_rng(0)
            forces = [rng.standard_normal((3 * SPEC.n, 1))
                      for _ in range(2)]
            # max_wait is a minute: only the size trigger can flush
            results = await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(SPEC, f)
                                 for f in forces)), timeout=30.0)
            await batcher.drain()
            assert batcher.batches_flushed == 1
            return results

    results = asyncio.run(scenario())
    assert all(r.shape == (3 * SPEC.n, 1) for r in results)


def test_batcher_rejects_wrong_shape():
    async def scenario():
        with ExecutionContext("threads", workers=1) as context:
            pool = OperatorPool(context.thread_pool())
            batcher = MobilityBatcher(pool, context.thread_pool())
            with pytest.raises(ProtocolError):
                await batcher.submit(SPEC, np.zeros((5, 1)))

    asyncio.run(scenario())


def test_operator_pool_builds_once_and_bounds_residency():
    async def scenario():
        with ExecutionContext("threads", workers=2) as context:
            pool = OperatorPool(context.thread_pool(), max_systems=1)
            entries = await asyncio.gather(
                *(pool.acquire(SPEC.operator_key(), SPEC)
                  for _ in range(4)))
            assert pool.builds == 1
            assert all(e is entries[0] for e in entries)
            other = SystemSpec(n=18, phi=0.2)
            await pool.acquire(other.operator_key(), other)
            assert pool.builds == 2
            assert len(pool) == 1       # LRU bound evicted the first

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# MobilityCache under concurrency (satellite)
# ----------------------------------------------------------------------

def test_mobility_cache_concurrent_hit_miss_counters_exact():
    from repro.geometry.box import Box

    cache = MobilityCache()
    box = Box.for_volume_fraction(16, 0.2)
    n_threads, n_lookups = 8, 50
    barrier = threading.Barrier(n_threads)

    def hammer():
        barrier.wait()
        for _ in range(n_lookups):
            cache.mesh(box, 8)

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # exactly one build ever happened, and no lookup was lost
    assert cache.misses == 1
    assert cache.hits == n_threads * n_lookups - 1
    assert cache.stats()["meshes"] == 1


def test_mobility_cache_rebuild_during_apply_stays_bit_identical():
    suspension = make_suspension(16, 0.2, seed=0)
    params = tune_parameters(suspension.n, suspension.box,
                             fluid=suspension.fluid)
    cache = MobilityCache()
    operator = PMEOperator(suspension.positions, suspension.box, params,
                           fluid=suspension.fluid, cache=cache)
    rng = np.random.default_rng(3)
    forces = rng.standard_normal((3 * 16, 2))
    reference = operator.apply_block(forces).copy()

    barrier = threading.Barrier(2)
    outputs: list[bytes] = []
    errors: list[BaseException] = []

    def rebuild():
        # the Algorithm-2 cadence: fresh operators against the shared
        # cache while another thread is applying
        try:
            barrier.wait()
            for _ in range(4):
                PMEOperator(suspension.positions, suspension.box,
                            params, fluid=suspension.fluid, cache=cache)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def apply():
        try:
            barrier.wait()
            for _ in range(4):
                outputs.append(operator.apply_block(forces).tobytes())
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=rebuild),
               threading.Thread(target=apply)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert all(out == reference.tobytes() for out in outputs)
    stats = cache.stats()
    # every rebuild was answered from the cache: entry counts stayed
    # at one per kind and the counters balanced
    assert stats["meshes"] == 1 and stats["influences"] == 1
    assert stats["hits"] + stats["misses"] >= 8


# ----------------------------------------------------------------------
# full service over a Unix socket
# ----------------------------------------------------------------------

def _settings(tmp_path, **overrides) -> ServeSettings:
    defaults = dict(socket_path=str(tmp_path / "serve.sock"),
                    work_dir=str(tmp_path / "jobs"),
                    compute_threads=2, max_wait=2e-3)
    defaults.update(overrides)
    return ServeSettings(**defaults)


def _run_service(settings: ServeSettings, scenario):
    """Run ``scenario(service)`` against a started service."""

    async def main():
        service = SimulationService(settings)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()

    return asyncio.run(main())


async def _request(path: str, *messages, keep_reading: bool = True):
    """Open a connection, pipeline requests, collect the responses."""
    reader, writer = await asyncio.open_unix_connection(
        path, limit=2 ** 25)
    for message in messages:
        writer.write(encode_message(message))
    await writer.drain()
    responses = []
    if keep_reading:
        while len(responses) < len(messages):
            line = await reader.readline()
            if not line:
                break
            decoded = json.loads(line)
            if "event" in decoded:
                continue
            responses.append(decoded)
    writer.close()
    return responses


def test_service_mobility_bit_identity_and_cache(tmp_path):
    rng = np.random.default_rng(11)
    forces = rng.standard_normal(3 * SPEC.n)
    operator, _ = build_operator(SPEC)
    want = operator.apply_block(forces.reshape(-1, 1))[:, 0]

    async def scenario(service):
        path = service.settings.socket_path
        request = {"op": "mobility.apply", "id": 1,
                   "system": SPEC.to_json(),
                   "forces": encode_array(forces)}
        first, = await _request(path, request)
        again, = await _request(path, {**request, "id": 2})
        return first, again

    first, again = _run_service(_settings(tmp_path), scenario)
    assert first["status"] == "ok"
    got = decode_array(first["result"]["velocities"])
    assert got.tobytes() == want.tobytes()
    # identical request: served from the result cache, same bytes
    assert again["result"]["cached"] is True
    assert decode_array(
        again["result"]["velocities"]).tobytes() == want.tobytes()


def test_service_simulate_digest_matches_direct_simulation(tmp_path):
    from repro.core.simulation import Simulation
    from repro.runtime.tasks import positions_digest

    spec = SystemSpec(n=16, phi=0.2, system_seed=0, lambda_rpy=4)
    seed, steps = 5, 8

    # direct path: the same deterministic recipe, run in-process
    suspension = make_suspension(spec.n, spec.phi, seed=spec.system_seed)
    params = tune_parameters(suspension.n, suspension.box,
                             target_ep=spec.e_p, p=spec.p,
                             fluid=suspension.fluid)
    simulation = Simulation(suspension, dt=spec.dt,
                            lambda_rpy=spec.lambda_rpy, seed=seed,
                            pme_params=params, e_k=spec.e_k)
    trajectory, _stats = simulation.run(steps, record_interval=steps)
    direct_digest = positions_digest(trajectory.positions[-1])

    async def scenario(service):
        path = service.settings.socket_path
        response, = await _request(path, {
            "op": "simulate", "id": "job-1", "system": spec.to_json(),
            "seed": seed, "steps": steps})
        return response

    response = _run_service(_settings(tmp_path), scenario)
    assert response["status"] == "ok", response
    assert response["result"]["state"] == "done"
    assert response["result"]["digest"] == direct_digest


def test_service_simulate_concurrent_requests_deduplicate(tmp_path):
    spec = SystemSpec(n=16, phi=0.2, lambda_rpy=4)

    async def scenario(service):
        path = service.settings.socket_path
        request = {"op": "simulate", "system": spec.to_json(),
                   "seed": 1, "steps": 8}
        pair = await asyncio.gather(
            _request(path, {**request, "id": "a"}),
            _request(path, {**request, "id": "b"}))
        return pair, service.jobs.started

    (first, second), started = _run_service(_settings(tmp_path), scenario)
    assert started == 1              # one campaign served both clients
    assert first[0]["result"]["digest"] == second[0]["result"]["digest"]


def test_service_sheds_under_oversubscription(tmp_path):
    rng = np.random.default_rng(0)
    max_queue = 4
    n_requests = 16                   # 4x the queue budget

    async def scenario(service):
        path = service.settings.socket_path
        requests = [{"op": "mobility.apply", "id": i,
                     "system": SPEC.to_json(),
                     "forces": encode_array(
                         rng.standard_normal(3 * SPEC.n))}
                    for i in range(n_requests)]
        responses = await _request(path, *requests)
        return responses, service.admission.shed_total, \
            service.batcher.backlog_columns

    settings = _settings(tmp_path, max_batch=2,
                         max_queue_columns=max_queue,
                         max_inflight=n_requests + 1, compute_threads=1)
    responses, shed_total, backlog = _run_service(settings, scenario)
    statuses = [r["status"] for r in responses]
    assert len(responses) == n_requests
    assert statuses.count("shed") >= 1          # load was refused...
    assert statuses.count("ok") >= 1            # ...not the whole burst
    assert shed_total == statuses.count("shed")
    assert backlog == 0
    for response in responses:
        if response["status"] == "shed":
            assert response["retry_after"] > 0
            assert response["reason"] in ("queue_full", "oversized")


def test_service_per_client_inflight_cap(tmp_path):
    rng = np.random.default_rng(1)

    async def scenario(service):
        path = service.settings.socket_path
        requests = [{"op": "mobility.apply", "id": i,
                     "system": SPEC.to_json(),
                     "forces": encode_array(
                         rng.standard_normal(3 * SPEC.n))}
                    for i in range(6)]
        return await _request(path, *requests)

    settings = _settings(tmp_path, max_inflight=1, max_batch=2,
                         compute_threads=1)
    responses = _run_service(settings, scenario)
    sheds = [r for r in responses if r["status"] == "shed"]
    assert sheds and all(r["reason"] == "client_inflight"
                         for r in sheds)


def test_service_survives_client_disconnect_mid_request(tmp_path):
    rng = np.random.default_rng(2)
    forces = rng.standard_normal(3 * SPEC.n)

    async def scenario(service):
        path = service.settings.socket_path
        # client 1 fires a request and vanishes without reading
        await _request(path, {"op": "mobility.apply", "id": 1,
                              "system": SPEC.to_json(),
                              "forces": encode_array(forces)},
                       keep_reading=False)
        # client 2 (and the server) must be unaffected
        response, = await _request(path, {
            "op": "mobility.apply", "id": 2,
            "system": SPEC.to_json(),
            "forces": encode_array(forces)})
        return response

    response = _run_service(_settings(tmp_path), scenario)
    assert response["status"] == "ok"


def test_service_cancels_abandoned_simulate(tmp_path):
    spec = SystemSpec(n=16, phi=0.2, lambda_rpy=4)

    async def scenario(service):
        path = service.settings.socket_path
        reader, writer = await asyncio.open_unix_connection(
            path, limit=2 ** 25)
        writer.write(encode_message({
            "op": "simulate", "id": "gone", "system": spec.to_json(),
            "seed": 9, "steps": 400}))
        await writer.drain()
        # wait for the job to actually start, then vanish
        for _ in range(200):
            if service.jobs.active:
                break
            await asyncio.sleep(0.05)
        assert service.jobs.active, "job never started"
        writer.close()
        job = next(iter(service.jobs.active.values()))
        for _ in range(600):
            if job.cancelled and not service.jobs.active:
                break
            await asyncio.sleep(0.05)
        return job.cancelled, dict(service.jobs.active), job.state

    cancelled, active, state = _run_service(_settings(tmp_path), scenario)
    assert cancelled                  # disconnect triggered the drain
    assert not active                 # and the job was retired
    assert state in ("drained", "done")


def test_service_stats_and_latency_quantiles(tmp_path):
    rng = np.random.default_rng(4)

    async def scenario(service):
        path = service.settings.socket_path
        for i in range(3):
            await _request(path, {
                "op": "mobility.apply", "id": i,
                "system": SPEC.to_json(),
                "forces": encode_array(
                    rng.standard_normal(3 * SPEC.n))})
        stats, = await _request(path, {"op": "stats", "id": "s"})
        return stats["result"]

    stats = _run_service(_settings(tmp_path), scenario)
    latency = stats["latency"]["mobility.apply"]
    assert latency["count"] == 3
    assert 0 < latency["p50_s"] <= latency["p90_s"] <= latency["p99_s"]
    assert stats["batcher"]["requests_batched"] == 3
    assert stats["operators"]["resident"] == 1
    assert stats["cache"]["misses"] >= 3


def test_serve_client_roundtrip_and_retry(tmp_path):
    """The sync client library against the real server, in a thread."""
    rng = np.random.default_rng(5)
    forces = rng.standard_normal(3 * SPEC.n)
    operator, _ = build_operator(SPEC)
    want = operator.apply_block(forces.reshape(-1, 1))[:, 0]

    async def scenario(service):
        loop = asyncio.get_running_loop()
        path = service.settings.socket_path

        def client_work():
            with ServeClient(socket_path=path, max_retries=8) as client:
                assert client.ping()["protocol"] == "repro-serve/1"
                velocities = client.mobility_apply(SPEC, forces)
                progress = []
                result = client.simulate(
                    SystemSpec(n=16, lambda_rpy=4), steps=8, seed=2,
                    on_progress=lambda step, of: progress.append(step))
                return velocities, result, progress

        return await loop.run_in_executor(None, client_work)

    velocities, result, progress = _run_service(
        _settings(tmp_path), scenario)
    assert velocities.tobytes() == want.tobytes()
    assert result["state"] == "done" and result["digest"]
    assert progress and progress[-1] == 8
