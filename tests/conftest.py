"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Box, FluidParams, REDUCED
from repro.systems import random_suspension


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(20140519)  # IPDPS 2014 conference date


@pytest.fixture
def small_box():
    """A 20x20x20 periodic box."""
    return Box(20.0)


@pytest.fixture
def small_suspension():
    """A 40-particle suspension at Phi = 0.2 (deterministic)."""
    return random_suspension(40, 0.2, seed=7)


@pytest.fixture
def medium_suspension():
    """A 120-particle suspension at Phi = 0.2 (deterministic)."""
    return random_suspension(120, 0.2, seed=3)


@pytest.fixture
def fluid():
    """The reduced-unit fluid parameters."""
    return REDUCED
