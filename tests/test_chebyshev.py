"""Tests for the Chebyshev (Fixman) Brownian displacement method."""

import numpy as np
import pytest

from repro import Box
from repro.core.brownian import ChebyshevBrownianGenerator
from repro.errors import ConvergenceError
from repro.krylov import dense_sqrt_apply
from repro.krylov.chebyshev import (
    chebyshev_coefficients,
    chebyshev_sqrt,
    eigenvalue_bounds,
)
from repro.rpy.ewald import EwaldSummation


def _random_spd(d, seed, lo=0.5, hi=4.0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((d, d)))
    eigs = np.geomspace(lo, hi, d)
    return (q * eigs) @ q.T, lo, hi


class TestEigenvalueBounds:
    def test_brackets_spectrum(self):
        m, lo, hi = _random_spd(60, 0)
        l_min, l_max = eigenvalue_bounds(lambda v: m @ v, 60)
        assert l_min <= lo + 1e-9
        assert l_max >= hi - 1e-9

    def test_tightness(self):
        m, lo, hi = _random_spd(80, 1)
        l_min, l_max = eigenvalue_bounds(lambda v: m @ v, 80, n_iter=40)
        assert l_min > 0.5 * lo
        assert l_max < 2.0 * hi

    def test_small_dimension(self):
        m = np.diag([1.0, 2.0, 3.0])
        l_min, l_max = eigenvalue_bounds(lambda v: m @ v, 3, n_iter=10)
        assert l_min <= 1.0 + 1e-9
        assert l_max >= 3.0 - 1e-9

    def test_rejects_indefinite(self):
        m = np.diag([1.0, -2.0, 3.0, 0.5])
        with pytest.raises(ConvergenceError):
            eigenvalue_bounds(lambda v: m @ v, 4)


class TestCoefficients:
    def test_scalar_accuracy(self):
        c = chebyshev_coefficients(0.5, 4.0, tol=1e-6)
        x = np.linspace(0.5, 4.0, 200)
        t = (2 * x - 4.5) / 3.5
        b1 = np.zeros_like(t)
        b2 = np.zeros_like(t)
        for ck in c[:0:-1]:
            b1, b2 = 2 * t * b1 - b2 + ck, b1
        approx = t * b1 - b2 + 0.5 * c[0]
        assert np.max(np.abs(approx - np.sqrt(x)) / np.sqrt(x)) < 1e-6

    def test_degree_grows_with_condition(self):
        c_easy = chebyshev_coefficients(1.0, 2.0, tol=1e-4)
        c_hard = chebyshev_coefficients(0.01, 2.0, tol=1e-4)
        assert c_hard.size > c_easy.size

    def test_raises_on_cap(self):
        with pytest.raises(ConvergenceError):
            chebyshev_coefficients(1e-9, 1.0, tol=1e-10, max_degree=16)

    def test_validates_interval(self):
        with pytest.raises(ValueError):
            chebyshev_coefficients(2.0, 1.0)
        with pytest.raises(ValueError):
            chebyshev_coefficients(0.0, 1.0)


class TestChebyshevSqrt:
    def test_matches_dense_reference(self):
        m, lo, hi = _random_spd(50, 2)
        z = np.random.default_rng(3).standard_normal(50)
        y, info = chebyshev_sqrt(lambda v: m @ v, z, lo * 0.99, hi * 1.01,
                                 tol=1e-6)
        ref = dense_sqrt_apply(m, z)
        assert np.linalg.norm(y - ref) / np.linalg.norm(ref) < 1e-5
        assert info.converged

    def test_block_matches_columns(self):
        m, lo, hi = _random_spd(40, 4)
        z = np.random.default_rng(5).standard_normal((40, 6))
        y, info = chebyshev_sqrt(lambda v: m @ v, z, lo, hi, tol=1e-5)
        for c in range(6):
            yc, _ = chebyshev_sqrt(lambda v: m @ v, z[:, c], lo, hi,
                                   tol=1e-5)
            np.testing.assert_allclose(y[:, c], yc, rtol=1e-12)
        # Clenshaw needs degree + 1 operator applications per column
        assert info.n_matvecs == 6 * (info.iterations + 1)

    def test_polynomial_amortized_over_block(self):
        # same polynomial degree regardless of block width
        m, lo, hi = _random_spd(40, 6)
        _, info1 = chebyshev_sqrt(lambda v: m @ v,
                                  np.ones(40), lo, hi, tol=1e-4)
        _, info8 = chebyshev_sqrt(lambda v: m @ v,
                                  np.ones((40, 8)), lo, hi, tol=1e-4)
        assert info8.iterations == info1.iterations


class TestGeneratorOnRealMobility:
    @pytest.fixture(scope="class")
    def mobility(self):
        box = Box(15.0)
        rng = np.random.default_rng(7)
        r = rng.uniform(0, box.length, size=(8, 3))
        return EwaldSummation(box=box, tol=1e-10).matrix(r)

    def test_covariance(self, mobility):
        kT, dt = 1.0, 1e-3
        gen = ChebyshevBrownianGenerator(kT=kT, dt=dt, tol=1e-5)
        d = mobility.shape[0]
        rng = np.random.default_rng(8)
        acc = np.zeros((d, d))
        n_samples = 30_000
        batch = 500
        for _ in range(n_samples // batch):
            z = rng.standard_normal((d, batch))
            g = gen.generate(lambda v: mobility @ v, z)
            acc += g @ g.T
        cov = acc / n_samples
        target = 2 * kT * dt * mobility
        assert np.abs(cov - target).max() < 0.05 * np.abs(target).max()

    def test_quadratic_form_matches_krylov(self, mobility):
        from repro.core.brownian import KrylovBrownianGenerator
        z = np.random.default_rng(9).standard_normal((mobility.shape[0], 4))
        g_cheb = ChebyshevBrownianGenerator(kT=1.0, dt=1e-3, tol=1e-8).generate(
            lambda v: mobility @ v, z)
        g_kry = KrylovBrownianGenerator(kT=1.0, dt=1e-3, tol=1e-9).generate(
            lambda v: mobility @ v, z)
        # both approximate the same principal square root action
        np.testing.assert_allclose(g_cheb, g_kry, rtol=1e-4, atol=1e-8)

    def test_reports_bounds_and_info(self, mobility):
        gen = ChebyshevBrownianGenerator(kT=1.0, dt=1e-3, tol=1e-3)
        z = np.random.default_rng(10).standard_normal(mobility.shape[0])
        gen.generate(lambda v: mobility @ v, z)
        assert gen.last_bounds is not None
        assert gen.last_bounds[0] > 0
        assert gen.last_info.n_matvecs > gen.last_info.iterations
