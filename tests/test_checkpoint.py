"""Tests for simulation checkpointing and bit-exact resumption."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    checkpoint_callback,
    load_checkpoint,
    resume,
    save_checkpoint,
)
from repro.core.integrators import MatrixFreeBD
from repro.errors import ConfigurationError
from repro.pme.operator import PMEParams
from repro.systems import random_suspension

PARAMS = PMEParams(xi=0.9, r_max=4.0, K=24, p=4)


def _integrator(susp, seed=5):
    return MatrixFreeBD(box=susp.box, force_field=None, dt=1e-3,
                        lambda_rpy=4, seed=seed, pme_params=PARAMS)


def test_rng_state_roundtrip(tmp_path):
    rng = np.random.default_rng(123)
    rng.standard_normal(100)       # advance the stream
    path = tmp_path / "c.npz"
    save_checkpoint(path, np.zeros((2, 3)), np.zeros((2, 3)), 7, rng)
    _, _, step, rng2 = load_checkpoint(path)
    assert step == 7
    np.testing.assert_array_equal(rng2.standard_normal(10),
                                  rng.standard_normal(10))


def test_bit_exact_resumption(tmp_path):
    susp = random_suspension(20, 0.1, seed=1)

    # uninterrupted run: 12 steps
    bd_full = _integrator(susp)
    full, _ = bd_full.run(susp.positions, 12)

    # interrupted run: 8 steps, checkpoint, resume 4 (block-aligned:
    # 8 and 12 are multiples of lambda_rpy=4)
    bd_part = _integrator(susp)
    path = tmp_path / "ckpt.npz"
    bd_part.run(susp.positions, 8,
                callback=checkpoint_callback(path, bd_part, 8))
    bd_resumed = _integrator(susp, seed=999)   # seed replaced on resume
    resumed, _ = resume(path, bd_resumed, 4)

    np.testing.assert_array_equal(resumed, full)


def test_resume_offsets_callback_steps(tmp_path):
    susp = random_suspension(15, 0.1, seed=2)
    bd = _integrator(susp)
    path = tmp_path / "c.npz"
    bd.run(susp.positions, 4, callback=checkpoint_callback(path, bd, 4))
    bd2 = _integrator(susp)
    steps = []
    resume(path, bd2, 4, callback=lambda s, w, u: steps.append(s))
    assert steps == [5, 6, 7, 8]


def test_unaligned_interval_warns(tmp_path):
    susp = random_suspension(10, 0.1, seed=3)
    bd = _integrator(susp)
    with pytest.warns(UserWarning, match="lambda_RPY"):
        checkpoint_callback(tmp_path / "c.npz", bd, 3)


def test_rejects_foreign_file(tmp_path):
    path = tmp_path / "x.npz"
    np.savez(path, nothing=np.ones(2))
    with pytest.raises(ConfigurationError):
        load_checkpoint(path)


def test_interval_validation(tmp_path):
    susp = random_suspension(10, 0.1, seed=4)
    bd = _integrator(susp)
    with pytest.raises(ConfigurationError):
        checkpoint_callback(tmp_path / "c.npz", bd, 0)
