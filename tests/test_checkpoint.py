"""Tests for simulation checkpointing and bit-exact resumption."""

import pathlib

import numpy as np
import pytest

from repro.core.checkpoint import (
    checkpoint_callback,
    load_checkpoint,
    load_checkpoint_with_fallback,
    previous_checkpoint_path,
    resume,
    save_checkpoint,
)
from repro.core.integrators import MatrixFreeBD
from repro.errors import CheckpointCorruptionError, ConfigurationError
from repro.pme.operator import PMEParams
from repro.systems import random_suspension

PARAMS = PMEParams(xi=0.9, r_max=4.0, K=24, p=4)


def _integrator(susp, seed=5):
    return MatrixFreeBD(box=susp.box, force_field=None, dt=1e-3,
                        lambda_rpy=4, seed=seed, pme_params=PARAMS)


def test_rng_state_roundtrip(tmp_path):
    rng = np.random.default_rng(123)
    rng.standard_normal(100)       # advance the stream
    path = tmp_path / "c.npz"
    save_checkpoint(path, np.zeros((2, 3)), np.zeros((2, 3)), 7, rng)
    _, _, step, rng2 = load_checkpoint(path)
    assert step == 7
    np.testing.assert_array_equal(rng2.standard_normal(10),
                                  rng.standard_normal(10))


def test_bit_exact_resumption(tmp_path):
    susp = random_suspension(20, 0.1, seed=1)

    # uninterrupted run: 12 steps
    bd_full = _integrator(susp)
    full, _ = bd_full.run(susp.positions, 12)

    # interrupted run: 8 steps, checkpoint, resume 4 (block-aligned:
    # 8 and 12 are multiples of lambda_rpy=4)
    bd_part = _integrator(susp)
    path = tmp_path / "ckpt.npz"
    bd_part.run(susp.positions, 8,
                callback=checkpoint_callback(path, bd_part, 8))
    bd_resumed = _integrator(susp, seed=999)   # seed replaced on resume
    resumed, _ = resume(path, bd_resumed, 4)

    np.testing.assert_array_equal(resumed, full)


def test_resume_offsets_callback_steps(tmp_path):
    susp = random_suspension(15, 0.1, seed=2)
    bd = _integrator(susp)
    path = tmp_path / "c.npz"
    bd.run(susp.positions, 4, callback=checkpoint_callback(path, bd, 4))
    bd2 = _integrator(susp)
    steps = []
    resume(path, bd2, 4, callback=lambda s, w, u: steps.append(s))
    assert steps == [5, 6, 7, 8]


def test_unaligned_interval_warns(tmp_path):
    susp = random_suspension(10, 0.1, seed=3)
    bd = _integrator(susp)
    with pytest.warns(UserWarning, match="lambda_RPY"):
        checkpoint_callback(tmp_path / "c.npz", bd, 3)


def test_rejects_foreign_file(tmp_path):
    path = tmp_path / "x.npz"
    np.savez(path, nothing=np.ones(2))
    with pytest.raises(ConfigurationError):
        load_checkpoint(path)


def test_interval_validation(tmp_path):
    susp = random_suspension(10, 0.1, seed=4)
    bd = _integrator(susp)
    with pytest.raises(ConfigurationError):
        checkpoint_callback(tmp_path / "c.npz", bd, 0)


# ---------------------------------------------------------------------------
# corruption detection, atomic writes, rotation and fallback
# ---------------------------------------------------------------------------

def _write_checkpoint(path, step=7, seed=123):
    rng = np.random.default_rng(seed)
    wrapped = rng.random((4, 3))
    save_checkpoint(path, wrapped, wrapped + 1.0, step, rng)
    return path


def test_truncated_checkpoint_raises_corruption(tmp_path):
    path = _write_checkpoint(tmp_path / "c.npz")
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(size // 2)
    with pytest.raises(CheckpointCorruptionError):
        load_checkpoint(path)


def test_bitflipped_checkpoint_fails_checksum(tmp_path):
    import struct
    import zipfile

    path = _write_checkpoint(tmp_path / "c.npz")
    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo("wrapped.npy")
    raw = bytearray(path.read_bytes())
    # flip one byte inside the wrapped-positions member's data: the
    # deflate stream / zip CRC breaks, or — were the byte to survive
    # decompression — the embedded SHA-256 catches the altered payload
    name_len, extra_len = struct.unpack_from("<HH", raw,
                                             info.header_offset + 26)
    data_start = info.header_offset + 30 + name_len + extra_len
    raw[data_start + info.compress_size // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointCorruptionError):
        load_checkpoint(path)


def test_missing_checksum_rejected(tmp_path):
    # a version-2 archive without a checksum member is not a checkpoint
    path = tmp_path / "c.npz"
    np.savez(path, format_version=2, wrapped=np.zeros((2, 3)),
             unwrapped=np.zeros((2, 3)), step=1,
             rng_state=np.frombuffer(b"{}", dtype=np.uint8))
    with pytest.raises(ConfigurationError):
        load_checkpoint(path)


def test_save_is_atomic_on_write_failure(tmp_path, monkeypatch):
    path = _write_checkpoint(tmp_path / "c.npz", step=1)
    before = path.read_bytes()

    def exploding_savez(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(np, "savez_compressed", exploding_savez)
    rng = np.random.default_rng(0)
    with pytest.raises(OSError):
        save_checkpoint(path, np.ones((2, 3)), np.ones((2, 3)), 2, rng)
    # the old checkpoint is untouched and no temp files leak
    assert path.read_bytes() == before
    assert [p.name for p in tmp_path.iterdir()] == ["c.npz"]
    _, _, step, _ = load_checkpoint(path)
    assert step == 1


def test_callback_rotates_previous_checkpoint(tmp_path):
    susp = random_suspension(16, 0.1, seed=6)
    bd = _integrator(susp)
    path = tmp_path / "c.npz"
    bd.run(susp.positions, 8, callback=checkpoint_callback(path, bd, 4))
    prev = pathlib.Path(previous_checkpoint_path(path))
    assert path.exists() and prev.exists()
    _, _, latest_step, _ = load_checkpoint(path)
    _, _, prev_step, _ = load_checkpoint(prev)
    assert (latest_step, prev_step) == (8, 4)


def test_fallback_loads_previous_when_latest_corrupt(tmp_path):
    path = tmp_path / "c.npz"
    _write_checkpoint(tmp_path / (path.name + ".prev"), step=4)
    _write_checkpoint(path, step=8)
    with open(path, "r+b") as fh:
        fh.truncate(10)

    wrapped, unwrapped, step, rng, used = load_checkpoint_with_fallback(path)
    assert step == 4
    assert used.endswith(".prev")


def test_fallback_raises_primary_error_when_both_corrupt(tmp_path):
    path = tmp_path / "c.npz"
    for p in (tmp_path / (path.name + ".prev"), path):
        _write_checkpoint(p)
        with open(p, "r+b") as fh:
            fh.truncate(10)
    with pytest.raises(CheckpointCorruptionError) as exc_info:
        load_checkpoint_with_fallback(path)
    assert "c.npz" in str(exc_info.value)
    assert isinstance(exc_info.value.__cause__, CheckpointCorruptionError)


def test_resume_falls_back_to_rotated_checkpoint(tmp_path):
    susp = random_suspension(16, 0.1, seed=9)
    bd = _integrator(susp)
    path = tmp_path / "c.npz"
    bd.run(susp.positions, 8, callback=checkpoint_callback(path, bd, 4))
    with open(path, "r+b") as fh:       # corrupt the latest (step 8)
        fh.truncate(20)
    bd2 = _integrator(susp, seed=999)
    final, stats = resume(path, bd2, 4)  # resumes from step 4 instead
    assert np.all(np.isfinite(final))
    with pytest.raises(CheckpointCorruptionError):
        resume(path, _integrator(susp), 4, fallback=False)


def test_version1_checkpoint_still_loads(tmp_path):
    # forward-compat: archives written before checksums were added
    import json

    rng = np.random.default_rng(5)
    state = json.dumps(rng.bit_generator.state)
    path = tmp_path / "old.npz"
    np.savez(path, format_version=1, wrapped=np.zeros((2, 3)),
             unwrapped=np.zeros((2, 3)), step=3,
             rng_state=np.frombuffer(state.encode(), dtype=np.uint8))
    wrapped, unwrapped, step, rng2 = load_checkpoint(path)
    assert step == 3
    np.testing.assert_array_equal(rng2.standard_normal(4),
                                  rng.standard_normal(4))
