"""Tests for the consolidated runtime configuration (repro.config).

Precedence contract: ``env > CLI > defaults``.  The resolver re-reads
the environment on every call (fingerprint-cached), so long-running
processes see live flips — the behavior the contracts layer relied on
before the knobs were consolidated here.
"""

import json

import pytest

from repro import config as config_mod
from repro.cli import main
from repro.config import (
    ENV_VARS,
    RuntimeConfig,
    clear_cli_overrides,
    config_table,
    get_config,
    set_cli_overrides,
)
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    """Each test starts from defaults: no REPRO_* vars, no CLI values."""
    for var in ENV_VARS.values():
        monkeypatch.delenv(var, raising=False)
    clear_cli_overrides()
    yield
    clear_cli_overrides()


# ---------------------------------------------------------------------------
# resolution and precedence
# ---------------------------------------------------------------------------

def test_defaults():
    cfg = get_config()
    assert cfg.backend == "serial"
    assert cfg.exec_workers == 0
    assert cfg.checks == "1"
    assert cfg.no_ckernel is False
    assert cfg.bench_scale == "ci"


def test_env_beats_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "threads")
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
    monkeypatch.setenv("REPRO_NO_CKERNEL", "yes")
    cfg = get_config()
    assert cfg.backend == "threads"
    assert cfg.exec_workers == 3
    assert cfg.no_ckernel is True


def test_cli_beats_defaults():
    set_cli_overrides(backend="processes", exec_workers=2)
    cfg = get_config()
    assert cfg.backend == "processes"
    assert cfg.exec_workers == 2


def test_env_beats_cli(monkeypatch):
    set_cli_overrides(backend="processes", exec_workers=8)
    monkeypatch.setenv("REPRO_BACKEND", "threads")
    cfg = get_config()
    assert cfg.backend == "threads"      # env wins
    assert cfg.exec_workers == 8         # CLI survives where env is unset


def test_none_cli_values_are_ignored():
    set_cli_overrides(backend=None, exec_workers=4)
    cfg = get_config()
    assert cfg.backend == "serial"
    assert cfg.exec_workers == 4


def test_unknown_cli_field_rejected():
    with pytest.raises(TypeError, match="unknown config fields"):
        set_cli_overrides(nonsense=1)


def test_live_env_flip_reresolves(monkeypatch):
    assert get_config().backend == "serial"
    monkeypatch.setenv("REPRO_BACKEND", "threads")
    assert get_config().backend == "threads"
    monkeypatch.delenv("REPRO_BACKEND")
    assert get_config().backend == "serial"


def test_resolution_is_cached(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "threads")
    assert get_config() is get_config()


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def test_invalid_backend_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "gpu")
    with pytest.raises(ConfigurationError, match="backend"):
        get_config()


def test_negative_workers_rejected():
    with pytest.raises(ConfigurationError, match="exec_workers"):
        RuntimeConfig(exec_workers=-1)


def test_non_integer_workers_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "many")
    with pytest.raises(ConfigurationError, match="integer"):
        get_config()


def test_resolved_workers():
    assert RuntimeConfig(backend="serial", exec_workers=9) \
        .resolved_workers() == 1
    assert RuntimeConfig(backend="threads", exec_workers=3) \
        .resolved_workers() == 3
    assert RuntimeConfig(backend="threads", exec_workers=0) \
        .resolved_workers() >= 1     # auto: one per available CPU


# ---------------------------------------------------------------------------
# provenance table and `repro config show`
# ---------------------------------------------------------------------------

def test_config_table_provenance(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "threads")
    set_cli_overrides(exec_workers=2)
    sources = {name: source for name, _, _, source in config_table()}
    assert sources["backend"] == "env"
    assert sources["exec_workers"] == "cli"
    assert sources["checks"] == "default"


def test_cli_config_show_table(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "5")
    assert main(["config", "show"]) == 0
    out = capsys.readouterr().out
    assert "REPRO_BACKEND" in out and "REPRO_EXEC_WORKERS" in out
    line = next(ln for ln in out.splitlines()
                if ln.startswith("exec_workers"))
    assert "5" in line and "env" in line


def test_cli_config_show_json(capsys):
    assert main(["config", "show", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["backend"] == "serial"
    assert set(payload) == set(ENV_VARS)


def test_cli_backend_flag_feeds_config(tmp_path, capsys):
    out_file = tmp_path / "traj.npz"
    rc = main(["simulate", "-n", "16", "--steps", "2", "--backend",
               "threads", "--exec-workers", "2", "-o", str(out_file)])
    assert rc == 0
    cfg = get_config()
    assert cfg.backend == "threads" and cfg.exec_workers == 2


def test_config_module_is_the_single_reader():
    """No src module outside repro.config reads REPRO_* directly."""
    import pathlib

    root = pathlib.Path(config_mod.__file__).parent
    offenders = []
    for path in root.rglob("*.py"):
        if path.name == "config.py":
            continue
        text = path.read_text()
        for var in ENV_VARS.values():
            if f'"{var}"' in text or f"'{var}'" in text:
                offenders.append(f"{path.name}: {var}")
    assert not offenders, offenders
