"""Tests for suspension and lattice generators."""

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError
from repro.systems import (
    bead_spring_chain,
    fcc_positions,
    lattice_suspension,
    make_suspension,
    random_suspension,
    simple_cubic_positions,
)


class TestLattices:
    def test_simple_cubic_count_and_bounds(self):
        r = simple_cubic_positions(27, 9.0)
        assert r.shape == (27, 3)
        assert np.all(r >= 0) and np.all(r < 9.0)

    def test_simple_cubic_partial_fill(self):
        r = simple_cubic_positions(20, 9.0)
        assert r.shape == (20, 3)
        # all sites distinct
        assert len({tuple(row) for row in np.round(r, 9)}) == 20

    def test_simple_cubic_spacing(self):
        r = simple_cubic_positions(8, 10.0)
        dists = np.linalg.norm(r[0] - r[1:], axis=1)
        assert dists.min() == pytest.approx(5.0)

    def test_fcc_count(self):
        r = fcc_positions(32, 10.0)
        assert r.shape == (32, 3)
        assert len({tuple(row) for row in np.round(r, 9)}) == 32

    def test_fcc_nearest_neighbor(self):
        # 4 sites/cell, 1 cell: nn distance = L/sqrt(2)/1 * 1/... = L*sqrt(2)/2
        r = fcc_positions(4, 10.0)
        d = np.linalg.norm(r[0] - r[1:], axis=1)
        assert d.min() == pytest.approx(10.0 / np.sqrt(2))

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            simple_cubic_positions(0, 5.0)
        with pytest.raises(ConfigurationError):
            fcc_positions(-1, 5.0)


class TestRandomSuspension:
    def test_no_overlap(self):
        susp = random_suspension(100, 0.2, seed=0)
        assert susp.min_separation() >= 2.0

    def test_volume_fraction(self):
        susp = random_suspension(50, 0.15, seed=1)
        assert susp.volume_fraction == pytest.approx(0.15)

    def test_deterministic_seed(self):
        s1 = random_suspension(30, 0.1, seed=5)
        s2 = random_suspension(30, 0.1, seed=5)
        np.testing.assert_array_equal(s1.positions, s2.positions)

    def test_different_seeds_differ(self):
        s1 = random_suspension(30, 0.1, seed=5)
        s2 = random_suspension(30, 0.1, seed=6)
        assert not np.allclose(s1.positions, s2.positions)

    def test_positions_in_box(self):
        susp = random_suspension(60, 0.25, seed=2)
        assert np.all(susp.positions >= 0)
        assert np.all(susp.positions < susp.box.length)

    def test_invalid_phi(self):
        with pytest.raises(ConfigurationError):
            random_suspension(10, 0.0)
        with pytest.raises(ConfigurationError):
            random_suspension(10, 0.8)


class TestLatticeSuspension:
    @pytest.mark.parametrize("phi", [0.2, 0.35, 0.45])
    def test_no_overlap_dense(self, phi):
        susp = lattice_suspension(108, phi, seed=0)
        assert susp.min_separation() >= 2.0 - 1e-9

    def test_jitter_breaks_lattice(self):
        s0 = lattice_suspension(32, 0.3, seed=0, jitter=0.0)
        s1 = lattice_suspension(32, 0.3, seed=0, jitter=0.3)
        assert not np.allclose(s0.positions, s1.positions)

    def test_volume_fraction(self):
        susp = lattice_suspension(64, 0.4, seed=1)
        assert susp.volume_fraction == pytest.approx(0.4)


class TestMakeSuspension:
    def test_auto_choice_runs_both_regimes(self):
        dilute = make_suspension(40, 0.1, seed=0)
        dense = make_suspension(40, 0.4, seed=0)
        assert dilute.min_separation() >= 2.0
        assert dense.min_separation() >= 2.0 - 1e-9


class TestPolymer:
    def test_chain_connectivity(self):
        box = Box(60.0)
        susp, bonds = bead_spring_chain(20, 2.5, box, seed=0)
        assert susp.n == 20
        assert bonds.shape == (19, 2)
        # consecutive beads at the bond length
        for a, b in bonds:
            dr = box.minimum_image(susp.positions[a] - susp.positions[b])
            assert np.linalg.norm(dr) == pytest.approx(2.5, rel=1e-9)

    def test_self_avoiding(self):
        box = Box(60.0)
        susp, _ = bead_spring_chain(30, 2.2, box, seed=1)
        assert susp.min_separation() >= 2.0

    def test_rejects_overlapping_bond_length(self):
        with pytest.raises(ConfigurationError):
            bead_spring_chain(5, 1.5, Box(50.0))

    def test_rejects_short_chain(self):
        with pytest.raises(ConfigurationError):
            bead_spring_chain(1, 2.5, Box(50.0))
