"""Tests for repro.obs.collect: spools, merging, metric aggregation.

The cross-process collection pipeline is exercised here at the unit
level (spool round trips, torn-line recovery, deterministic merges,
aggregation semantics); the full supervisor/worker integration lives
in ``tests/test_runtime.py``.
"""

import json
import os

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.collect import (
    SpoolingSession,
    SpoolWriter,
    TraceContext,
    TrackGroup,
    aggregate_metrics,
    find_spools,
    merge_traces,
    metrics_snapshot_path,
    read_spool,
    spans_for_task,
    spool_path,
)
from repro.obs.schema import (
    SchemaError,
    validate_chrome_trace,
    validate_file,
    validate_trace_header,
)
from repro.obs.trace import TRACE_SCHEMA, read_jsonl, read_jsonl_header


@pytest.fixture(autouse=True)
def _clean_obs_globals():
    """Every test starts and ends with observability disabled."""
    previous_tracer = obs.set_tracer(None)
    previous_registry = obs.set_metrics(None)
    yield
    obs.set_tracer(previous_tracer)
    obs.set_metrics(previous_registry)


def _event(name="w.step", ts=1.0, dur=0.5, tid=1, pid=100,
           worker_id=None, task_id=None, **args):
    out = {"name": name, "ph": "X" if dur else "i", "ts": ts,
           "dur": dur, "tid": tid, "depth": 0, "pid": pid}
    if worker_id is not None:
        out["worker_id"] = worker_id
    if task_id is not None:
        out["task_id"] = task_id
    if args:
        out["args"] = args
    return out


# ----------------------------------------------------------------------
# trace context + schema v2
# ----------------------------------------------------------------------

class TestTraceContext:
    def test_json_roundtrip(self):
        ctx = TraceContext(trace_id="campaign-abc123", task_id=4)
        assert TraceContext.from_json(ctx.to_json()) == ctx

    def test_task_spec_carries_context_on_the_wire_only(self):
        from repro.runtime.tasks import TaskSpec

        spec = TaskSpec(task_id=2, n=10, phi=0.1, n_steps=5, seed=1,
                        system_seed=2)
        assert "trace" not in spec.to_json()  # manifests stay stable

        import dataclasses
        stamped = dataclasses.replace(
            spec, trace=TraceContext(trace_id="campaign-x", task_id=2))
        wire = stamped.to_json()
        assert wire["trace"] == {"trace_id": "campaign-x", "task_id": 2}
        back = TaskSpec.from_json(wire)
        assert back.trace == stamped.trace
        # identity fields unaffected by the stamp
        assert back.seed == spec.seed and back.task_id == spec.task_id

    def test_tracer_stamps_identity_fields(self):
        tracer = obs.Tracer(worker_id=3, task_id=7)
        with tracer.span("x"):
            pass
        (event,) = tracer.events
        assert (event.pid, event.worker_id, event.task_id) == \
            (os.getpid(), 3, 7)
        d = event.to_dict()
        assert (d["pid"], d["worker_id"], d["task_id"]) == \
            (os.getpid(), 3, 7)

    def test_header_schema_and_validation(self):
        tracer = obs.Tracer(worker_id=1)
        header = tracer.header()
        assert header["schema"] == TRACE_SCHEMA
        assert header["dropped"] == 0
        validate_trace_header(header)
        with pytest.raises(SchemaError):
            validate_trace_header({"schema": "other/1", "dropped": 0})
        with pytest.raises(SchemaError):
            validate_trace_header({"schema": TRACE_SCHEMA, "dropped": -1})

    def test_jsonl_header_roundtrip(self, tmp_path):
        tracer = obs.Tracer(worker_id=5)
        with tracer.span("a"):
            pass
        path = tracer.write_jsonl(tmp_path / "t.jsonl")
        header = read_jsonl_header(path)
        assert header["worker_id"] == 5
        events = read_jsonl(path)  # header line skipped
        assert [e["name"] for e in events] == ["a"]

    def test_dropped_surfaces_everywhere(self, tmp_path, capsys):
        tracer = obs.Tracer(max_events=1)
        for _ in range(3):
            tracer.instant("e")
        assert tracer.dropped == 2
        path = tracer.write_jsonl(tmp_path / "d.jsonl")
        assert read_jsonl_header(path)["dropped"] == 2
        # final trace.dropped instant appended to the stream
        assert read_jsonl(path)[-1]["name"] == "trace.dropped"
        # chrome export carries it in otherData
        assert tracer.to_chrome_trace()["otherData"]["dropped"] == 2
        # the validator warns, and the CLI surfaces it on stderr
        assert "WARNING" in validate_file(path)
        from repro.obs.schema import main as schema_main
        assert schema_main([str(path)]) == 0
        assert "dropped events detected" in capsys.readouterr().err

    def test_drain_is_atomic_and_dropped_cumulative(self):
        tracer = obs.Tracer(max_events=2)
        for _ in range(3):
            tracer.instant("e")
        drained = tracer.drain()
        assert len(drained) == 2 and tracer.events == []
        assert tracer.dropped == 1
        for _ in range(3):
            tracer.instant("e")
        assert len(tracer.drain()) == 2
        assert tracer.dropped == 2  # cumulative across drains


# ----------------------------------------------------------------------
# spool files
# ----------------------------------------------------------------------

class TestSpool:
    def test_writer_reader_roundtrip(self, tmp_path):
        path = spool_path(tmp_path, 1, 4242)
        writer = SpoolWriter(path, pid=4242, worker_id=1,
                             trace_id="campaign-x")
        tracer = obs.Tracer(worker_id=1, task_id=0)
        with tracer.span("w.step", i=0):
            pass
        writer.write(tracer.drain(), tracer.epoch)
        writer.close()

        data = read_spool(path)
        assert data.worker_id == 1 and data.pid == 4242
        assert data.header["trace_id"] == "campaign-x"
        assert not data.truncated
        (event,) = data.events
        assert event["name"] == "w.step"
        # spool timestamps are absolute tracer-clock readings
        assert event["ts"] > 1.0

    def test_dropped_becomes_spool_instant(self, tmp_path):
        path = spool_path(tmp_path, 0, 1)
        writer = SpoolWriter(path, pid=1, worker_id=0)
        writer.write([], epoch=0.0, dropped=7)
        writer.close()
        data = read_spool(path)
        assert data.dropped == 7

    def test_torn_final_line_recovered(self, tmp_path):
        path = spool_path(tmp_path, 2, 99)
        writer = SpoolWriter(path, pid=99, worker_id=2)
        tracer = obs.Tracer(worker_id=2)
        tracer.instant("kept.one")
        tracer.instant("kept.two")
        writer.write(tracer.drain(), tracer.epoch)
        writer.close()
        # simulate a SIGKILL mid-flush: half an event line at the end
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"name": "torn.ev')
        data = read_spool(path)
        assert data.truncated
        assert [e["name"] for e in data.events] == ["kept.one",
                                                    "kept.two"]

    def test_find_spools_and_paths_embed_pid(self, tmp_path):
        SpoolWriter(spool_path(tmp_path, 0, 10), pid=10,
                    worker_id=0).close()
        SpoolWriter(spool_path(tmp_path, 0, 11), pid=11,
                    worker_id=0).close()  # resume: same id, new process
        assert len(find_spools(tmp_path)) == 2


class TestSpoolingSession:
    def test_session_installs_flushes_restores(self, tmp_path):
        session = SpoolingSession(tmp_path, worker_id=0,
                                  trace_id="campaign-y")
        session.begin_task(3)
        assert obs.tracing_enabled() and obs.metrics_enabled()
        with obs.span("w.step"):
            pass
        obs.inc("bd_steps_total")
        session.flush()
        session.end_task("done")
        assert not obs.tracing_enabled() and not obs.metrics_enabled()
        session.close()

        data = read_spool(spool_path(tmp_path, 0, os.getpid()))
        names = [e["name"] for e in data.events]
        assert names[0] == "worker.task_begin"
        assert "w.step" in names and names[-1] == "worker.task_end"
        assert all(e["task_id"] == 3 for e in data.events
                   if e["name"] == "w.step")
        snapshot = json.loads(metrics_snapshot_path(
            tmp_path, 0, os.getpid()).read_text())
        (counter,) = [f for f in snapshot["metrics"]
                      if f["name"] == "bd_steps_total"]
        assert counter["series"][0]["value"] == 1.0

    def test_registry_accumulates_across_tasks(self, tmp_path):
        session = SpoolingSession(tmp_path, worker_id=1)
        for task_id in (0, 1):
            session.begin_task(task_id)
            obs.inc("bd_steps_total", 5)
            session.end_task("done")
        session.close()
        snapshot = json.loads(metrics_snapshot_path(
            tmp_path, 1, os.getpid()).read_text())
        (counter,) = [f for f in snapshot["metrics"]
                      if f["name"] == "bd_steps_total"]
        assert counter["series"][0]["value"] == 10.0


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------

class TestMerge:
    def _events(self):
        events = []
        for worker_id, pid in ((0, 100), (1, 200), (2, 300)):
            for i in range(4):
                events.append(_event(
                    name=f"w{worker_id}.step", ts=10.0 + i + worker_id,
                    dur=0.5, tid=worker_id + 1, pid=pid,
                    worker_id=worker_id, task_id=worker_id, i=i))
        events.append(_event(name="supervisor.task", ts=9.5, dur=8.0,
                             tid=7, pid=50, task=1))
        return events

    def test_merge_is_byte_identical_across_groupings(self, tmp_path):
        events = self._events()
        sup = [e for e in events if e["pid"] == 50]
        by_pid = {pid: [e for e in events if e["pid"] == pid]
                  for pid in (100, 200, 300)}

        # grouping A: supervisor + one group per worker, in id order
        groups_a = [TrackGroup("supervisor", 50, [dict(e) for e in sup])]
        groups_a += [TrackGroup(f"worker-{w}", pid,
                                [dict(e) for e in by_pid[pid]],
                                worker_id=w)
                     for w, pid in ((0, 100), (1, 200), (2, 300))]
        # grouping B: arrival order scrambled, events reversed
        groups_b = [TrackGroup(f"worker-{w}", pid,
                               [dict(e) for e in reversed(by_pid[pid])],
                               worker_id=w)
                    for w, pid in ((2, 300), (0, 100), (1, 200))]
        groups_b.append(
            TrackGroup("supervisor", 50, [dict(e) for e in sup]))

        merged_a = merge_traces(groups_a, trace_id="campaign-z")
        merged_b = merge_traces(groups_b, trace_id="campaign-z")
        path_a = merged_a.write_jsonl(tmp_path / "a.jsonl")
        path_b = merged_b.write_jsonl(tmp_path / "b.jsonl")
        assert path_a.read_bytes() == path_b.read_bytes()
        # chrome form identical too (metadata ordering is canonical)
        assert json.dumps(merged_a.to_chrome_trace()["traceEvents"]) == \
            json.dumps(merged_b.to_chrome_trace()["traceEvents"])

    def test_timeline_normalised_and_ordered(self):
        merged = merge_traces([
            TrackGroup("worker-0", 100,
                       [_event(ts=20.0, pid=100, worker_id=0)],
                       worker_id=0),
            TrackGroup("supervisor", 50, [_event(ts=19.0, pid=50)]),
        ])
        assert merged.events[0]["ts"] == 0.0  # earliest event is zero
        ts = [e["ts"] for e in merged.events]
        assert ts == sorted(ts)

    def test_chrome_tracks_named_and_supervisor_first(self):
        merged = merge_traces([
            TrackGroup(f"worker-{w}", 100 + w,
                       [_event(ts=1.0, pid=100 + w, worker_id=w)],
                       worker_id=w)
            for w in (2, 0, 1)
        ] + [TrackGroup("supervisor", 50, [_event(ts=0.5, pid=50)])])
        doc = merged.to_chrome_trace()
        validate_chrome_trace(doc)
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert names == ["supervisor", "worker-0", "worker-1",
                         "worker-2"]
        assert doc["otherData"]["kind"] == "merged"
        assert doc["otherData"]["processes"] == 4

    def test_merged_jsonl_validates(self, tmp_path):
        merged = merge_traces([
            TrackGroup("worker-0", 100,
                       [_event(ts=3.0, pid=100, worker_id=0)],
                       worker_id=0)])
        path = merged.write_jsonl(tmp_path / "m.jsonl")
        assert "trace jsonl" in validate_file(path)

    def test_spans_for_task_correlates_both_sides(self):
        merged = merge_traces([
            TrackGroup("supervisor", 50,
                       [_event(name="supervisor.task", ts=0.0, dur=5.0,
                               pid=50, task=1, worker=0)]),
            TrackGroup("worker-0", 100,
                       [_event(name="w.step", ts=1.0, pid=100,
                               worker_id=0, task_id=1),
                        _event(name="w.step", ts=2.0, pid=100,
                               worker_id=0, task_id=2)],
                       worker_id=0),
        ])
        correlated = spans_for_task(merged.events, 1)
        assert {e["name"] for e in correlated} == \
            {"supervisor.task", "w.step"}
        assert len(correlated) == 2

    def test_truncated_workers_in_header(self):
        merged = merge_traces([
            TrackGroup("worker-1", 100, [_event(pid=100, worker_id=1)],
                       worker_id=1, truncated=True)])
        assert merged.header()["truncated_workers"] == [1]


# ----------------------------------------------------------------------
# metric aggregation
# ----------------------------------------------------------------------

def _registry_doc(steps, lag=None):
    registry = obs.MetricsRegistry()
    registry.counter("bd_steps_total").inc(steps)
    registry.histogram("step_seconds",
                       buckets=(0.1, 1.0)).observe(steps / 10.0)
    if lag is not None:
        registry.gauge("heartbeat_lag").set(lag)
    return registry.to_json()


class TestAggregateMetrics:
    def test_counters_sum_across_workers(self):
        merged = aggregate_metrics([
            (_registry_doc(10), {"worker": "0"}),
            (_registry_doc(20), {"worker": "1"}),
        ])
        assert merged.counter("bd_steps_total").value == 30.0

    def test_gauges_get_per_worker_labels(self):
        merged = aggregate_metrics([
            (_registry_doc(1, lag=0.5), {"worker": "0"}),
            (_registry_doc(1, lag=0.9), {"worker": "1"}),
        ])
        assert merged.gauge("heartbeat_lag", worker="0").value == 0.5
        assert merged.gauge("heartbeat_lag", worker="1").value == 0.9

    def test_histograms_merge_bucket_by_bucket(self):
        merged = aggregate_metrics([
            (_registry_doc(1), {}), (_registry_doc(20), {}),
        ])
        hist = merged.histogram("step_seconds", buckets=(0.1, 1.0))
        assert hist.count == 2
        assert hist.counts == [1, 1]  # 0.1 and 2.0 observations
        assert hist.min == pytest.approx(0.1)
        assert hist.max == pytest.approx(2.0)

    def test_mismatched_bucket_ladders_raise(self):
        doc_a = _registry_doc(1)
        registry = obs.MetricsRegistry()
        registry.histogram("step_seconds",
                           buckets=(0.5, 5.0)).observe(1.0)
        with pytest.raises(ValueError, match="mismatched buckets"):
            aggregate_metrics([(doc_a, {}), (registry.to_json(), {})])

    def test_duplicate_label_key_prefers_extra(self):
        registry = obs.MetricsRegistry()
        registry.gauge("g", worker="9").set(1.0)
        merged = aggregate_metrics([(registry.to_json(),
                                     {"worker": "0"})])
        assert merged.gauge("g", worker="0").value == 1.0


# ----------------------------------------------------------------------
# histogram quantiles
# ----------------------------------------------------------------------

class TestHistogramQuantiles:
    def test_quantiles_interpolate_and_clamp(self):
        hist = obs.MetricsRegistry().histogram("h", buckets=(1, 2, 5, 10))
        for value in (0.5, 1.5, 3.0, 4.0, 8.0, 20.0):
            hist.observe(value)
        assert hist.quantile(0.0) == pytest.approx(0.5)   # clamped to min
        assert hist.quantile(1.0) == pytest.approx(20.0)  # clamped to max
        p50 = hist.quantile(0.5)
        assert 2.0 <= p50 <= 5.0
        assert hist.quantile(0.9) >= p50

    def test_empty_histogram_returns_none(self):
        hist = obs.MetricsRegistry().histogram("h")
        assert hist.quantile(0.5) is None

    def test_invalid_quantile_raises(self):
        hist = obs.MetricsRegistry().histogram("h")
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_json_export_carries_quantiles_prom_does_not(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 3.0):
            hist.observe(value)
        (family,) = registry.to_json()["metrics"]
        series = family["series"][0]
        assert {"p50", "p90", "p99"} <= set(series)
        assert series["p50"] <= series["p90"] <= series["p99"]
        # the text exposition keeps the standard bucket form only
        text = registry.to_prometheus_text()
        assert "p50" not in text and "h_bucket" in text
