"""Tests for the execution-context layer (repro.exec + colored engine).

The headline invariant of the PR: for a fixed kernel configuration the
colored pipeline produces **bit-identical** results across the
``serial``, ``threads`` and ``processes`` backends — and agrees with
the legacy no-context pipeline to solver precision (<= 1e-13).
"""

import hashlib

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError
from repro.exec import ExecutionContext, default_context, reset_default_context
from repro.pme.operator import PMEOperator, PMEParams
from repro.sparse.kernels import kernel_available, reset_kernel_cache

BACKENDS = [("serial", 1), ("threads", 3), ("processes", 2)]


def digest(a: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()


@pytest.fixture
def system():
    box = Box(10.0)
    rng = np.random.default_rng(7)
    r = rng.uniform(0, box.length, size=(150, 3))
    params = PMEParams(xi=1.0, r_max=3.0, K=16, p=4)
    f = rng.standard_normal((3 * r.shape[0], 4))
    return box, r, params, f


@pytest.fixture(params=[False, True], ids=["ckernel", "fallback"])
def kernel_mode(request, monkeypatch):
    if request.param:
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    reset_kernel_cache()
    yield request.param
    reset_kernel_cache()


# ---------------------------------------------------------------------------
# ExecutionContext basics
# ---------------------------------------------------------------------------

def test_context_defaults_from_config(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "threads")
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
    ctx = ExecutionContext()
    assert ctx.backend == "threads" and ctx.workers == 3
    ctx.close()


def test_serial_context_single_worker():
    ctx = ExecutionContext(backend="serial", workers=8)
    assert ctx.workers == 1 and ctx.fft_workers == 1
    ctx.close()


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError, match="backend"):
        ExecutionContext(backend="gpu")


def test_close_is_idempotent_and_guards_use():
    ctx = ExecutionContext(backend="threads", workers=2)
    ctx.run_tasks([lambda: None])
    ctx.close()
    ctx.close()
    assert ctx.closed
    with pytest.raises(ConfigurationError, match="closed"):
        ctx.run_tasks([lambda: None])


def test_proc_pool_requires_processes_backend():
    with ExecutionContext(backend="threads", workers=2) as ctx:
        with pytest.raises(ConfigurationError, match="processes"):
            ctx.proc_pool()


def test_run_tasks_is_a_barrier():
    done = []
    with ExecutionContext(backend="threads", workers=4) as ctx:
        ctx.run_tasks([lambda i=i: done.append(i) for i in range(16)])
    assert sorted(done) == list(range(16))


def test_default_context_none_on_serial(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    reset_default_context()
    assert default_context() is None


def test_default_context_shared_and_rebuilt(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "threads")
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
    reset_default_context()
    try:
        ctx = default_context()
        assert ctx is not None and ctx.backend == "threads"
        assert default_context() is ctx
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
        rebuilt = default_context()
        assert rebuilt is not ctx and rebuilt.workers == 3
    finally:
        reset_default_context()


# ---------------------------------------------------------------------------
# the headline invariant: bit-identity across backends
# ---------------------------------------------------------------------------

def test_spread_interpolate_digest_bit_identity(system, kernel_mode):
    from repro.parallel.engine import ColoredPMEEngine
    from repro.pme.spread import InterpolationMatrix

    box, r, params, _ = system
    K, p = params.K, params.p
    interp = InterpolationMatrix(r, box, K, p)
    rng = np.random.default_rng(3)
    vals = rng.standard_normal((r.shape[0], 6))
    mesh_in = rng.standard_normal((6, K ** 3))

    spread_digests, interp_digests = set(), set()
    for backend, workers in BACKENDS:
        with ExecutionContext(backend=backend, workers=workers) as ctx:
            engine = ColoredPMEEngine(
                r, box, K, p, weights=interp.weights,
                columns=interp.columns, context=ctx)
            mesh_out = np.empty((6, K ** 3))
            engine.spread_batch(vals, out=mesh_out)
            spread_digests.add(digest(mesh_out))
            part_out = np.empty((6, r.shape[0]))
            engine.interpolate_batch(mesh_in, out=part_out)
            interp_digests.add(digest(part_out))
            # cross-check against the sparse-matrix reference
            np.testing.assert_allclose(
                mesh_out, interp.spread_batch(vals), atol=1e-12)
            np.testing.assert_allclose(
                part_out, interp.interpolate_batch(mesh_in), atol=1e-12)
    assert len(spread_digests) == 1
    assert len(interp_digests) == 1


def test_apply_block_bit_identity_and_legacy_agreement(system, kernel_mode):
    box, r, params, f = system
    legacy = PMEOperator(r, box, params).apply_block(f)
    digests = set()
    for backend, workers in BACKENDS:
        with ExecutionContext(backend=backend, workers=workers) as ctx:
            op = PMEOperator(r, box, params, context=ctx)
            u = op.apply_block(f)
            digests.add(digest(u))
            assert np.abs(u - legacy).max() <= 1e-13
    assert len(digests) == 1, "backends disagree bitwise"


def test_parallel_apply_repeatable(system):
    # repeated applications on the same threaded operator are bitwise
    # stable (no scheduling-order dependence)
    box, r, params, f = system
    with ExecutionContext(backend="threads", workers=4) as ctx:
        op = PMEOperator(r, box, params, context=ctx)
        first = op.apply_block(f)
        for _ in range(3):
            np.testing.assert_array_equal(op.apply_block(f), first)


def test_real_spmm_context_matches_serial(system):
    if not kernel_available():
        pytest.skip("parallel SpMM chunking needs the C kernel")
    box, r, params, f = system
    op = PMEOperator(r, box, params)
    serial = op.real.apply_block(f)
    with ExecutionContext(backend="threads", workers=3) as ctx:
        np.testing.assert_array_equal(op.real.apply_block(f, context=ctx),
                                      serial)
    with ExecutionContext(backend="processes", workers=2) as ctx:
        np.testing.assert_array_equal(op.real.apply_block(f, context=ctx),
                                      serial)


def test_exec_metrics_and_spans_recorded(system):
    from repro import obs

    box, r, params, f = system
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    prev_t = obs.set_tracer(tracer)
    prev_m = obs.set_metrics(registry)
    try:
        with ExecutionContext(backend="threads", workers=2) as ctx:
            op = PMEOperator(r, box, params, context=ctx)
            op.apply_block(f)
    finally:
        obs.set_tracer(prev_t)
        obs.set_metrics(prev_m)
    spread = [e for e in tracer.events
              if e.name == "pme.spread" and e.phase == "X"]
    assert spread and spread[0].args["backend"] == "threads"
    assert spread[0].args["workers"] == 2
    names = {fam["name"] for fam in registry.to_json()["metrics"]}
    assert "exec_tasks_total" in names
    assert "exec_queue_lag_seconds" in names


# ---------------------------------------------------------------------------
# integrator / ensemble integration
# ---------------------------------------------------------------------------

def test_simulation_accepts_context(system):
    from repro.core.simulation import Simulation
    from repro.systems.suspension import make_suspension

    susp = make_suspension(60, 0.1, seed=5)
    params = PMEParams(xi=0.9, r_max=3.0, K=16, p=4)
    with ExecutionContext(backend="threads", workers=2) as ctx:
        sim = Simulation(susp, dt=1e-3, lambda_rpy=4, seed=1,
                         pme_params=params, context=ctx)
        traj, stats = sim.run(4, record_interval=2)
        assert stats.n_steps == 4
        assert sim.integrator.operator.context is ctx


def test_ensemble_soak_1_vs_2_workers_threads(tmp_path, monkeypatch):
    """1-vs-N ensemble workers under the threads backend: same digests."""
    from repro.pme.operator import PMEParams
    from repro.runtime.supervisor import Supervisor
    from repro.runtime.tasks import TaskSpec

    monkeypatch.setenv("REPRO_BACKEND", "threads")
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
    pme = PMEParams(xi=0.9, r_max=3.0, K=16, p=4)
    specs = [TaskSpec(task_id=i, n=40, phi=0.1, n_steps=4, dt=1e-3,
                      lambda_rpy=2, seed=100 + i, system_seed=7, pme=pme)
             for i in range(3)]
    digests = []
    for n_workers in (1, 2):
        d = tmp_path / f"w{n_workers}"
        d.mkdir()
        sup = Supervisor(specs, str(d), n_workers=n_workers)
        result = sup.run()
        assert all(t.state.value == "done" for t in result.manifest.tasks)
        digests.append(result.digests)
    assert digests[0] == digests[1]
