"""Tests for the Brownian displacement generators.

The physics requirement (fluctuation-dissipation): the displacement
block must have covariance ``2 kT dt M``.  Verified statistically for
both the Cholesky and the Krylov generator on a real Ewald mobility.
"""

import numpy as np
import pytest

from repro import Box
from repro.core.brownian import (
    CholeskyBrownianGenerator,
    KrylovBrownianGenerator,
)
from repro.rpy.ewald import EwaldSummation


@pytest.fixture(scope="module")
def mobility():
    box = Box(15.0)
    rng = np.random.default_rng(6)
    r = rng.uniform(0, box.length, size=(8, 3))
    return EwaldSummation(box=box, tol=1e-10).matrix(r)


def _empirical_covariance(generate, d, n_samples, seed, batch=500):
    rng = np.random.default_rng(seed)
    acc = np.zeros((d, d))
    done = 0
    while done < n_samples:
        m = min(batch, n_samples - done)
        z = rng.standard_normal((d, m))
        g = generate(z)
        acc += g @ g.T
        done += m
    return acc / n_samples


def test_cholesky_covariance(mobility):
    kT, dt = 1.0, 1e-3
    gen = CholeskyBrownianGenerator(kT=kT, dt=dt)
    d = mobility.shape[0]
    cov = _empirical_covariance(lambda z: gen.generate(mobility, z), d,
                                30_000, seed=0)
    target = 2 * kT * dt * mobility
    assert np.abs(cov - target).max() < 0.05 * np.abs(target).max()


def test_krylov_covariance(mobility):
    kT, dt = 1.0, 1e-3
    gen = KrylovBrownianGenerator(kT=kT, dt=dt, tol=1e-6)
    d = mobility.shape[0]
    # block size must not exceed the dimension (24 here)
    cov = _empirical_covariance(
        lambda z: gen.generate(lambda v: mobility @ v, z), d,
        30_000, seed=1, batch=8)
    target = 2 * kT * dt * mobility
    assert np.abs(cov - target).max() < 0.05 * np.abs(target).max()


def test_generators_agree_on_sqrt_action(mobility):
    # both apply a square root of M; the principal sqrt (Krylov) and the
    # Cholesky factor differ by an orthogonal transform, so compare
    # through the quadratic form g^T M^{-1} g which is invariant
    kT, dt = 1.0, 2e-3
    z = np.random.default_rng(2).standard_normal((mobility.shape[0], 4))
    g_chol = CholeskyBrownianGenerator(kT=kT, dt=dt).generate(mobility, z)
    g_kry = KrylovBrownianGenerator(kT=kT, dt=dt, tol=1e-9).generate(
        lambda v: mobility @ v, z)
    minv = np.linalg.inv(mobility)
    q_chol = np.einsum("is,ij,js->s", g_chol, minv, g_chol)
    q_kry = np.einsum("is,ij,js->s", g_kry, minv, g_kry)
    np.testing.assert_allclose(q_kry, q_chol, rtol=1e-6)


def test_scale_factor(mobility):
    # displacements scale as sqrt(2 kT dt)
    z = np.random.default_rng(3).standard_normal((mobility.shape[0], 2))
    g1 = CholeskyBrownianGenerator(kT=1.0, dt=1e-3).generate(mobility, z)
    g4 = CholeskyBrownianGenerator(kT=4.0, dt=1e-3).generate(mobility, z)
    np.testing.assert_allclose(g4, 2.0 * g1, rtol=1e-12)


def test_krylov_reports_info(mobility):
    gen = KrylovBrownianGenerator(kT=1.0, dt=1e-3, tol=1e-4)
    z = np.random.default_rng(4).standard_normal((mobility.shape[0], 3))
    gen.generate(lambda v: mobility @ v, z)
    assert gen.last_info is not None
    assert gen.last_info.converged
    assert gen.last_info.iterations >= 1
