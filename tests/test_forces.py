"""Tests for the force models."""

import numpy as np
import pytest

from repro import Box
from repro.core.forces import (
    CompositeForce,
    ConstantForce,
    HarmonicBonds,
    RepulsiveHarmonic,
)
from repro.errors import ConfigurationError
from repro.systems import random_suspension


def _numerical_gradient(field, r, eps=1e-6):
    grad = np.zeros_like(r)
    for i in range(r.shape[0]):
        for d in range(3):
            rp = r.copy()
            rp[i, d] += eps
            rm = r.copy()
            rm[i, d] -= eps
            grad[i, d] = (field.energy(rp) - field.energy(rm)) / (2 * eps)
    return grad


class TestRepulsiveHarmonic:
    def test_zero_beyond_contact(self):
        box = Box(20.0)
        field = RepulsiveHarmonic(box)
        r = np.array([[5.0, 5.0, 5.0], [9.0, 5.0, 5.0]])  # dist 4 > 2a
        np.testing.assert_allclose(field.forces(r), 0.0)
        assert field.energy(r) == 0.0

    def test_overlapping_pair_repels(self):
        box = Box(20.0)
        field = RepulsiveHarmonic(box)
        r = np.array([[5.0, 5.0, 5.0], [6.5, 5.0, 5.0]])  # dist 1.5 < 2a
        f = field.forces(r)
        assert f[0, 0] < 0          # particle 0 pushed in -x
        assert f[1, 0] > 0          # particle 1 pushed in +x
        np.testing.assert_allclose(f[0], -f[1])   # Newton's third law

    def test_paper_force_magnitude(self):
        # |f| = 125 |r - 2a| at r = 1.5, a = 1 -> 62.5
        box = Box(20.0)
        field = RepulsiveHarmonic(box)
        r = np.array([[5.0, 5.0, 5.0], [6.5, 5.0, 5.0]])
        f = field.forces(r)
        assert np.linalg.norm(f[0]) == pytest.approx(125.0 * 0.5)

    def test_force_is_negative_energy_gradient(self):
        box = Box(12.0)
        field = RepulsiveHarmonic(box)
        rng = np.random.default_rng(3)
        r = rng.uniform(0, box.length, size=(8, 3))  # some overlaps likely
        # ensure at least one overlap
        r[1] = r[0] + np.array([1.4, 0.3, 0.0])
        forces = field.forces(r)
        grad = _numerical_gradient(field, r)
        np.testing.assert_allclose(forces, -grad, atol=1e-5)

    def test_total_force_zero(self):
        box = Box(10.0)
        field = RepulsiveHarmonic(box)
        rng = np.random.default_rng(4)
        r = rng.uniform(0, box.length, size=(20, 3))
        np.testing.assert_allclose(field.forces(r).sum(axis=0), 0.0,
                                   atol=1e-10)

    def test_periodic_contact(self):
        box = Box(10.0)
        field = RepulsiveHarmonic(box)
        r = np.array([[0.3, 5.0, 5.0], [9.8, 5.0, 5.0]])  # dist 0.5 via PBC
        f = field.forces(r)
        assert f[0, 0] > 0          # pushed away across the boundary
        assert f[1, 0] < 0

    def test_non_overlapping_suspension_force_free(self):
        susp = random_suspension(50, 0.2, seed=0)
        field = RepulsiveHarmonic(susp.box)
        np.testing.assert_allclose(field.forces(susp.positions), 0.0)

    def test_rejects_bad_stiffness(self):
        with pytest.raises(ConfigurationError):
            RepulsiveHarmonic(Box(10.0), stiffness=0.0)


class TestHarmonicBonds:
    def test_force_is_negative_energy_gradient(self):
        box = Box(20.0)
        bonds = np.array([[0, 1], [1, 2]])
        field = HarmonicBonds(box, bonds, stiffness=10.0, rest_length=2.5)
        r = np.array([[5.0, 5.0, 5.0], [7.8, 5.2, 5.0], [10.0, 5.5, 4.8]])
        np.testing.assert_allclose(field.forces(r),
                                   -_numerical_gradient(field, r), atol=1e-5)

    def test_rest_length_equilibrium(self):
        box = Box(20.0)
        field = HarmonicBonds(box, np.array([[0, 1]]), 10.0, 3.0)
        r = np.array([[5.0, 5.0, 5.0], [8.0, 5.0, 5.0]])
        np.testing.assert_allclose(field.forces(r), 0.0, atol=1e-12)
        assert field.energy(r) == pytest.approx(0.0)

    def test_stretched_bond_pulls_together(self):
        box = Box(20.0)
        field = HarmonicBonds(box, np.array([[0, 1]]), 10.0, 2.0)
        r = np.array([[5.0, 5.0, 5.0], [9.0, 5.0, 5.0]])  # stretched to 4
        f = field.forces(r)
        assert f[0, 0] > 0
        assert f[1, 0] < 0

    def test_bond_across_periodic_boundary(self):
        box = Box(10.0)
        field = HarmonicBonds(box, np.array([[0, 1]]), 10.0, 2.0)
        r = np.array([[0.5, 5.0, 5.0], [9.5, 5.0, 5.0]])  # dist 1 via PBC
        f = field.forces(r)
        # compressed bond pushes apart: particle 0 toward +x
        assert f[0, 0] > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HarmonicBonds(Box(5.0), np.array([[0, 1, 2]]), 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            HarmonicBonds(Box(5.0), np.array([[0, 1]]), -1.0, 1.0)


class TestConstantAndComposite:
    def test_constant_force(self):
        field = ConstantForce(np.array([0.0, 0.0, -2.0]))
        r = np.zeros((4, 3))
        f = field.forces(r)
        np.testing.assert_allclose(f, [[0, 0, -2.0]] * 4)

    def test_constant_force_shape_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantForce(np.zeros(2))

    def test_composite_sums(self):
        box = Box(20.0)
        g = ConstantForce(np.array([0.0, 0.0, -1.0]))
        rep = RepulsiveHarmonic(box)
        comp = CompositeForce(g, rep)
        r = np.array([[5.0, 5.0, 5.0], [6.5, 5.0, 5.0]])
        np.testing.assert_allclose(comp.forces(r),
                                   g.forces(r) + rep.forces(r))
        assert comp.energy(r) == pytest.approx(g.energy(r) + rep.energy(r))

    def test_composite_requires_fields(self):
        with pytest.raises(ConfigurationError):
            CompositeForce()
