"""Tests for the BCSR block-sparse matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sparse import BlockCSR


def _random_symmetric_bcsr(n, density, seed):
    rng = np.random.default_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    keep = rng.random(iu.size) < density
    i, j = iu[keep], ju[keep]
    blocks = rng.standard_normal((i.size, 3, 3))
    diag = rng.standard_normal((n, 3, 3))
    diag = 0.5 * (diag + diag.transpose(0, 2, 1))
    return BlockCSR.from_pairs(n, i, j, blocks, diag_blocks=diag), (i, j, blocks, diag)


def _dense_reference(n, i, j, blocks, diag):
    out = np.zeros((3 * n, 3 * n))
    for k in range(i.size):
        out[3 * i[k]:3 * i[k] + 3, 3 * j[k]:3 * j[k] + 3] += blocks[k]
        out[3 * j[k]:3 * j[k] + 3, 3 * i[k]:3 * i[k] + 3] += blocks[k].T
    for b in range(n):
        out[3 * b:3 * b + 3, 3 * b:3 * b + 3] += diag[b]
    return out


@pytest.mark.parametrize("n,density", [(5, 0.5), (12, 0.2), (20, 0.05)])
def test_to_dense_matches_reference(n, density):
    bcsr, (i, j, blocks, diag) = _random_symmetric_bcsr(n, density, seed=n)
    np.testing.assert_allclose(bcsr.to_dense(),
                               _dense_reference(n, i, j, blocks, diag))


@pytest.mark.parametrize("n,density", [(5, 0.5), (15, 0.2)])
def test_matvec_matches_dense(n, density):
    bcsr, refdata = _random_symmetric_bcsr(n, density, seed=n + 100)
    dense = _dense_reference(n, *refdata)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(3 * n)
    np.testing.assert_allclose(bcsr.matvec(x), dense @ x, rtol=1e-12)


def test_matvec_multivector_matches_column_loop():
    bcsr, _ = _random_symmetric_bcsr(10, 0.3, seed=42)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((30, 7))
    block = bcsr.matvec(x)
    for c in range(7):
        np.testing.assert_allclose(block[:, c], bcsr.matvec(x[:, c]),
                                   rtol=1e-12)


def test_matmul_operator():
    bcsr, refdata = _random_symmetric_bcsr(6, 0.4, seed=9)
    x = np.ones(18)
    np.testing.assert_allclose(bcsr @ x, bcsr.matvec(x))


def test_scipy_export_matches():
    bcsr, refdata = _random_symmetric_bcsr(14, 0.25, seed=5)
    dense = _dense_reference(14, *refdata)
    np.testing.assert_allclose(bcsr.to_scipy().toarray(), dense, rtol=1e-12)


def test_symmetry_of_from_pairs():
    bcsr, _ = _random_symmetric_bcsr(8, 0.4, seed=2)
    dense = bcsr.to_dense()
    np.testing.assert_allclose(dense, dense.T, rtol=1e-12)


def test_empty_rows_handled():
    # particle 2 interacts with nobody and has no diagonal
    i = np.array([0])
    j = np.array([1])
    blocks = np.ones((1, 3, 3))
    bcsr = BlockCSR.from_pairs(3, i, j, blocks)
    y = bcsr.matvec(np.ones(9))
    np.testing.assert_allclose(y[6:], 0.0)
    np.testing.assert_allclose(y[:3], 3.0)


def test_zero_matrix():
    bcsr = BlockCSR(4, np.zeros(5, dtype=int), np.empty(0, dtype=int),
                    np.empty((0, 3, 3)))
    np.testing.assert_allclose(bcsr.matvec(np.ones(12)), 0.0)


def test_rejects_diagonal_pairs():
    with pytest.raises(ConfigurationError):
        BlockCSR.from_pairs(3, np.array([1]), np.array([1]),
                            np.ones((1, 3, 3)))


def test_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        BlockCSR.from_pairs(3, np.array([0]), np.array([1]),
                            np.ones((2, 3, 3)))
    with pytest.raises(ConfigurationError):
        BlockCSR(2, np.array([0, 1, 1]), np.array([0]), np.ones((1, 2, 2)))
    with pytest.raises(ConfigurationError):
        BlockCSR(2, np.array([0, 1]), np.array([0]), np.ones((1, 3, 3)))


def test_rejects_wrong_operand_size():
    bcsr, _ = _random_symmetric_bcsr(4, 0.5, seed=3)
    with pytest.raises(ConfigurationError):
        bcsr.matvec(np.ones(13))


def test_memory_accounting_positive():
    bcsr, _ = _random_symmetric_bcsr(10, 0.3, seed=8)
    assert bcsr.memory_bytes > 0
    assert bcsr.nnz_blocks == bcsr.blocks.shape[0]


@given(st.integers(2, 12), st.floats(0.05, 0.9), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_matvec_linearity_property(n, density, seed):
    bcsr, _ = _random_symmetric_bcsr(n, density, seed)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(3 * n)
    y = rng.standard_normal(3 * n)
    a, b = 2.5, -1.25
    np.testing.assert_allclose(bcsr.matvec(a * x + b * y),
                               a * bcsr.matvec(x) + b * bcsr.matvec(y),
                               rtol=1e-10, atol=1e-10)


@pytest.mark.parametrize("s", [1, 2, 5, 8])
def test_matmat_matches_matvec_columns(s):
    bcsr, refdata = _random_symmetric_bcsr(12, 0.3, seed=21)
    dense = _dense_reference(12, *refdata)
    rng = np.random.default_rng(s)
    x = rng.standard_normal((36, s))
    y = bcsr.matmat(x)
    np.testing.assert_allclose(y, dense @ x, rtol=1e-12, atol=1e-12)
    for c in range(s):
        np.testing.assert_allclose(y[:, c], bcsr.matvec(x[:, c]),
                                   rtol=1e-12, atol=1e-12)


def test_matmat_scipy_fallback_matches(monkeypatch):
    import repro.sparse.bcsr as bcsr_mod
    monkeypatch.setattr(bcsr_mod, "spmm_kernel", lambda: None)
    bcsr, refdata = _random_symmetric_bcsr(10, 0.3, seed=22)
    dense = _dense_reference(10, *refdata)
    x = np.random.default_rng(2).standard_normal((30, 6))
    np.testing.assert_allclose(bcsr.matmat(x), dense @ x,
                               rtol=1e-12, atol=1e-12)


def test_matmul_dispatches_blocks_to_matmat():
    bcsr, _ = _random_symmetric_bcsr(8, 0.4, seed=23)
    x = np.random.default_rng(3).standard_normal((24, 5))
    np.testing.assert_allclose(bcsr @ x, bcsr.matmat(x))
    single = x[:, :1]
    np.testing.assert_allclose(bcsr @ single, bcsr.matvec(single))


def test_fortran_and_strided_operands_are_normalized_once():
    bcsr, refdata = _random_symmetric_bcsr(9, 0.4, seed=24)
    dense = _dense_reference(9, *refdata)
    rng = np.random.default_rng(4)
    xf = np.asfortranarray(rng.standard_normal((27, 4)))
    np.testing.assert_allclose(bcsr.matvec(xf), dense @ xf, rtol=1e-12)
    np.testing.assert_allclose(bcsr.matmat(xf), dense @ xf, rtol=1e-12)
    wide = rng.standard_normal((27, 8))
    strided = wide[:, ::2]          # non-contiguous column view
    np.testing.assert_allclose(bcsr.matmat(strided), dense @ strided,
                               rtol=1e-12)
    ints = np.ones((27, 3), dtype=np.int64)
    np.testing.assert_allclose(bcsr.matmat(ints), dense @ ints.astype(float),
                               rtol=1e-12)


def test_rejects_complex_operands():
    bcsr, _ = _random_symmetric_bcsr(5, 0.5, seed=25)
    with pytest.raises(ConfigurationError):
        bcsr.matvec(np.ones(15, dtype=np.complex128))
    with pytest.raises(ConfigurationError):
        bcsr.matmat(np.ones((15, 2), dtype=np.complex128))


def test_memory_accounting_includes_spmm_indices():
    bcsr, _ = _random_symmetric_bcsr(10, 0.3, seed=26)
    before = bcsr.memory_bytes
    assert before >= (bcsr.blocks.nbytes + bcsr.indices.nbytes
                      + bcsr.indptr.nbytes)
    bcsr.matmat(np.ones((30, 4)))   # materializes the SpMM index arrays
    after = bcsr.memory_bytes
    # on LP64 the int64 arrays alias intp (no growth); otherwise the
    # copies must be credited
    if bcsr._indptr64 is not None and bcsr._indptr64 is not bcsr.indptr \
            and bcsr._indptr64.base is not bcsr.indptr:
        assert after > before
    else:
        assert after == before


@given(st.integers(2, 10), st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_symmetric_bcsr_is_self_adjoint(n, seed):
    bcsr, _ = _random_symmetric_bcsr(n, 0.4, seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(3 * n)
    y = rng.standard_normal(3 * n)
    assert np.dot(y, bcsr.matvec(x)) == pytest.approx(
        np.dot(x, bcsr.matvec(y)), rel=1e-9, abs=1e-9)
