"""Seeded true-positive corpus for the whole-program dataflow rules.

Every file here is *linted*, never imported, by tests/test_lint_flow.py.
Each deliberate defect is labelled ``# seeded: RPRnnn`` on the line the
rule is expected to flag; the tests assert exactly those findings fire
(and nothing else), pinning both detection and false-positive behavior.
"""
