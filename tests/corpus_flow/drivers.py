"""Seeded defects: shape/dtype flow (RPR1xx) and determinism (RPR2xx).

Each ``# seeded: RPRnnn`` marks the line the rule must flag.
"""

import numpy as np

from .ops import (
    MobilityStub,
    brownian_displacement,
    correlated_noise,
    jitter,
)


def step_blocked(n, dt):
    positions = np.zeros((n, 3))
    return brownian_displacement(positions, dt)  # seeded: RPR101


def step_halved(n):
    op = MobilityStub()
    forces = np.zeros(n)
    return op.apply(forces)  # seeded: RPR101


def _workspace(n):
    # narrow allocation far from the sink; only the interprocedural
    # summary connects it to apply_block below
    return np.zeros((3 * n, 4), dtype=np.float32)  # seeded: RPR005


def batched_drift(n):
    op = MobilityStub()
    block = _workspace(n)
    return op.apply_block(block)  # seeded: RPR102


def single_drift(n, forces32):
    forces = np.asarray(forces32, dtype=np.float32)  # seeded: RPR005
    return brownian_displacement(forces)  # seeded: RPR102


def transposed_drift(n):
    op = MobilityStub()
    block = np.zeros((3 * n, 8))
    return op.apply_block(block.T)  # seeded: RPR101, RPR103


def strided_spectrum(signal):
    grid = np.asarray(signal, dtype=np.float64)
    return np.fft.rfft(grid[::2])  # seeded: RPR103


def noisy_step(n, seed):
    rng = np.random.default_rng(seed)
    drift = rng.standard_normal(3 * n)
    noise = correlated_noise(n)  # seeded: RPR201
    return drift + noise


def jittered_start(positions, seed):
    rng = np.random.default_rng(seed)
    scale = float(rng.uniform(0.0, 1.0))
    return jitter(positions, scale)  # seeded: RPR201


def interaction_energy(pair_ids, energies):
    unique = set(pair_ids)
    total = 0.0
    for pair in unique:  # seeded: RPR202
        total += energies[pair]
    return total


def total_charge(charges):
    distinct = set(charges)
    return sum(distinct)  # seeded: RPR202
