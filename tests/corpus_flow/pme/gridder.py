"""Seeded hot-path defects (RPR3xx): the ``pme`` package name plus the
``obs.span`` call put these functions in the derived hot registry."""

import numpy as np


def spread_charges(obs, positions, charges, mesh_shape):
    """Span-opening hot phase with per-iteration allocations."""
    with obs.span("pme.spread"):
        acc = np.zeros(mesh_shape)
        for q, pos in zip(charges, positions):
            stencil = np.zeros((4, 4, 4))  # seeded: RPR301
            stencil += q
            acc[:4, :4, :4] += stencil
        return acc


def interpolate_forces(obs, mesh, sites):
    with obs.span("pme.interpolate"):
        out = np.empty(len(sites))
        for k, site in enumerate(sites):
            local = np.empty((4, 4, 4))  # seeded: RPR301
            local[:] = mesh[:4, :4, :4]
            patch = np.ascontiguousarray(local.T)  # seeded: RPR302
            out[k] = float(patch.sum()) * float(site)
        return out


def fold_mesh(obs, mesh):
    """Helper called only from hot phases: hot by transitive closure."""
    total = np.zeros_like(mesh)
    for shift in (0, 1, 2):
        total += np.roll(mesh, shift, axis=0)
        scratch = mesh.copy()  # seeded: RPR302
        total += scratch
    return total


def accumulate_phases(obs, positions, charges, mesh_shape):
    with obs.span("pme.fold"):
        mesh = spread_charges(obs, positions, charges, mesh_shape)
        return fold_mesh(obs, mesh)
