"""Clean consumers: the contracts the drivers violate."""

import numpy as np

from repro.lint.contracts import force_block_arg, positions_arg


@positions_arg(name="positions")
def potential(positions):
    return float(np.sum(positions * positions))


@force_block_arg(name="forces")
def brownian_displacement(forces, dt=1.0):
    return dt * forces


class MobilityStub:
    """Duck-typed mobility operator (apply/apply_block protocol)."""

    def apply(self, forces):
        return 2.0 * forces

    def apply_block(self, block):
        return 2.0 * block


def correlated_noise(n, rng):
    """Stochastic helper that *accepts* the caller's Generator."""
    return rng.standard_normal(3 * n)


def jitter(positions, scale, rng=None):
    gen = rng if rng is not None else np.random.default_rng()
    return positions + scale * gen.standard_normal(positions.shape)
