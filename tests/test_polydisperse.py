"""Tests for the polydisperse (unequal-radii) RPY mobility."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rpy.polydisperse import (
    mobility_matrix_polydisperse,
    rpy_polydisperse_pair_tensors,
)
from repro.rpy.tensor import mobility_matrix_free
from repro.units import REDUCED


def test_reduces_to_monodisperse():
    rng = np.random.default_rng(0)
    r = rng.uniform(0, 30, size=(10, 3))
    mono = mobility_matrix_free(r, REDUCED)
    poly = mobility_matrix_polydisperse(r, np.ones(10), REDUCED.viscosity)
    np.testing.assert_allclose(poly, mono, rtol=1e-12)


def test_reduces_to_monodisperse_with_overlaps():
    rng = np.random.default_rng(1)
    r = rng.uniform(0, 5, size=(8, 3))       # guaranteed overlaps
    mono = mobility_matrix_free(r, REDUCED)
    poly = mobility_matrix_polydisperse(r, np.ones(8), REDUCED.viscosity)
    np.testing.assert_allclose(poly, mono, rtol=1e-12)


def test_self_mobility_scales_with_radius():
    r = np.array([[0.0, 0.0, 0.0], [50.0, 0.0, 0.0]])
    m = mobility_matrix_polydisperse(r, np.array([1.0, 2.5]),
                                     REDUCED.viscosity)
    assert m[0, 0] == pytest.approx(1.0)           # mu0(a=1) = 1 reduced
    assert m[3, 3] == pytest.approx(1.0 / 2.5)


def test_far_field_formula():
    # explicit check of the unequal-radii Rotne-Prager expression
    rij = np.array([[6.0, 0.0, 0.0]])
    ai, aj = np.array([1.0]), np.array([2.0])
    eta = REDUCED.viscosity
    t = rpy_polydisperse_pair_tensors(rij, ai, aj, eta)[0]
    r = 6.0
    a2 = 1.0 + 4.0
    pre = 1.0 / (8.0 * np.pi * eta * r)
    f = pre * (1.0 + a2 / (3 * r * r))
    g = pre * (1.0 - a2 / (r * r))
    np.testing.assert_allclose(np.diag(t), [f + g, f, f], rtol=1e-12)


def test_branch_continuity_at_touching():
    eta = REDUCED.viscosity
    ai, aj = np.array([1.0]), np.array([1.7])
    touch = 2.7
    eps = 1e-9
    t_out = rpy_polydisperse_pair_tensors(
        np.array([[touch + eps, 0, 0]]), ai, aj, eta)[0]
    t_in = rpy_polydisperse_pair_tensors(
        np.array([[touch - eps, 0, 0]]), ai, aj, eta)[0]
    np.testing.assert_allclose(t_in, t_out, atol=1e-6)


def test_branch_continuity_at_containment():
    eta = REDUCED.viscosity
    ai, aj = np.array([1.0]), np.array([3.0])
    boundary = 2.0            # |a_i - a_j|
    eps = 1e-9
    t_out = rpy_polydisperse_pair_tensors(
        np.array([[boundary + eps, 0, 0]]), ai, aj, eta)[0]
    t_in = rpy_polydisperse_pair_tensors(
        np.array([[boundary - eps, 0, 0]]), ai, aj, eta)[0]
    np.testing.assert_allclose(t_in, t_out, atol=1e-6)


def test_contained_sphere_moves_with_host():
    # a small sphere fully inside a large one shares its mobility
    eta = REDUCED.viscosity
    t = rpy_polydisperse_pair_tensors(
        np.array([[0.5, 0.0, 0.0]]), np.array([1.0]), np.array([4.0]), eta)[0]
    expected = np.eye(3) / (6 * np.pi * eta * 4.0)
    np.testing.assert_allclose(t, expected, rtol=1e-12)


def test_symmetry_under_radius_exchange():
    eta = REDUCED.viscosity
    rij = np.array([[3.0, 1.0, -0.5]])
    t_ab = rpy_polydisperse_pair_tensors(rij, np.array([1.0]),
                                         np.array([2.0]), eta)[0]
    t_ba = rpy_polydisperse_pair_tensors(-rij, np.array([2.0]),
                                         np.array([1.0]), eta)[0]
    np.testing.assert_allclose(t_ab, t_ba.T, rtol=1e-12)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_positive_definite_random_polydisperse(seed):
    rng = np.random.default_rng(seed)
    n = 12
    r = rng.uniform(0, 12, size=(n, 3))       # overlaps likely
    radii = rng.uniform(0.5, 2.5, size=n)
    m = mobility_matrix_polydisperse(r, radii, REDUCED.viscosity)
    np.testing.assert_allclose(m, m.T, rtol=1e-12)
    assert np.linalg.eigvalsh(m).min() > 0


def test_validation():
    r = np.zeros((2, 3))
    r[1, 0] = 5.0
    with pytest.raises(ConfigurationError):
        mobility_matrix_polydisperse(r, np.array([1.0]))
    with pytest.raises(ConfigurationError):
        mobility_matrix_polydisperse(r, np.array([1.0, -1.0]))
    with pytest.raises(ConfigurationError):
        rpy_polydisperse_pair_tensors(np.zeros((1, 3)), np.array([1.0]),
                                      np.array([1.0]))
