"""Tests for repro.units."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.units import FluidParams, REDUCED


def test_reduced_units_d0_is_one():
    assert REDUCED.D0 == pytest.approx(1.0)


def test_reduced_units_drag_is_one():
    assert REDUCED.drag == pytest.approx(1.0)


def test_mobility_is_inverse_drag():
    fp = FluidParams(radius=2.0, viscosity=0.5, kT=3.0)
    assert fp.mobility0 == pytest.approx(1.0 / (6 * math.pi * 0.5 * 2.0))


def test_stokes_einstein():
    fp = FluidParams(radius=2.0, viscosity=0.5, kT=3.0)
    assert fp.D0 == pytest.approx(fp.kT * fp.mobility0)


def test_with_replaces_fields():
    fp = REDUCED.with_(kT=2.0)
    assert fp.kT == 2.0
    assert fp.radius == REDUCED.radius


@pytest.mark.parametrize("kwargs", [
    {"radius": 0.0}, {"radius": -1.0},
    {"viscosity": 0.0}, {"viscosity": -0.1},
    {"kT": 0.0}, {"kT": -1.0},
])
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        FluidParams(**kwargs)


def test_frozen():
    with pytest.raises(Exception):
        REDUCED.kT = 5.0
