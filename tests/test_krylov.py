"""Tests for the Lanczos and block Lanczos square-root solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError, NotPositiveDefiniteError
from repro.krylov import (
    block_lanczos_sqrt,
    cholesky_displacements,
    dense_sqrt_apply,
    dense_sqrtm,
    lanczos_sqrt,
)


def _random_spd(d, seed, cond=100.0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((d, d)))
    eigs = np.geomspace(1.0, cond, d)
    return (q * eigs) @ q.T


class TestDenseReference:
    def test_sqrtm_squares_back(self):
        m = _random_spd(20, 0)
        s = dense_sqrtm(m)
        np.testing.assert_allclose(s @ s, m, rtol=1e-9)

    def test_sqrtm_symmetric(self):
        s = dense_sqrtm(_random_spd(15, 1))
        np.testing.assert_allclose(s, s.T, rtol=1e-12)

    def test_sqrtm_rejects_indefinite(self):
        m = np.diag([1.0, -1.0])
        with pytest.raises(NotPositiveDefiniteError):
            dense_sqrtm(m)

    def test_cholesky_covariance(self):
        m = _random_spd(6, 2)
        rng = np.random.default_rng(3)
        z = rng.standard_normal((6, 200_000))
        d = cholesky_displacements(m, z, scale=1.0)
        cov = d @ d.T / z.shape[1]
        np.testing.assert_allclose(cov, m, atol=0.15 * np.abs(m).max())

    def test_cholesky_rejects_indefinite(self):
        with pytest.raises(NotPositiveDefiniteError):
            cholesky_displacements(np.diag([1.0, -1.0]), np.ones(2))


class TestSingleVector:
    def test_converges_to_reference(self):
        m = _random_spd(60, 4)
        rng = np.random.default_rng(5)
        z = rng.standard_normal(60)
        ref = dense_sqrt_apply(m, z)
        y, info = lanczos_sqrt(lambda v: m @ v, z, tol=1e-8)
        assert info.converged
        np.testing.assert_allclose(y, ref, rtol=1e-6)

    def test_tolerance_controls_error(self):
        m = _random_spd(80, 6, cond=1000.0)
        rng = np.random.default_rng(7)
        z = rng.standard_normal(80)
        ref = dense_sqrt_apply(m, z)
        errs = []
        for tol in (1e-1, 1e-3, 1e-6):
            y, _ = lanczos_sqrt(lambda v: m @ v, z, tol=tol)
            errs.append(np.linalg.norm(y - ref) / np.linalg.norm(ref))
        assert errs[2] < errs[0]
        assert errs[2] < 1e-4

    def test_exact_on_identity(self):
        z = np.arange(1.0, 11.0)
        y, info = lanczos_sqrt(lambda v: v, z, tol=1e-10)
        np.testing.assert_allclose(y, z, rtol=1e-10)
        assert info.iterations <= 3

    def test_diagonal_matrix(self):
        d = np.array([1.0, 4.0, 9.0, 16.0])
        z = np.ones(4)
        y, _ = lanczos_sqrt(lambda v: d * v, z, tol=1e-12)
        np.testing.assert_allclose(y, np.sqrt(d), rtol=1e-8)

    def test_zero_vector(self):
        y, info = lanczos_sqrt(lambda v: v, np.zeros(5), tol=1e-6)
        np.testing.assert_allclose(y, 0.0)
        assert info.iterations == 0

    def test_raises_on_no_convergence(self):
        m = _random_spd(50, 8, cond=1e8)
        z = np.random.default_rng(9).standard_normal(50)
        with pytest.raises(ConvergenceError):
            lanczos_sqrt(lambda v: m @ v, z, tol=1e-14, max_iter=3)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            lanczos_sqrt(lambda v: v, np.ones((4, 2)))

    def test_matvec_count(self):
        m = _random_spd(30, 10)
        z = np.random.default_rng(11).standard_normal(30)
        _, info = lanczos_sqrt(lambda v: m @ v, z, tol=1e-6)
        assert info.n_matvecs == info.iterations


class TestBlock:
    def test_converges_to_reference(self):
        m = _random_spd(60, 12)
        rng = np.random.default_rng(13)
        z = rng.standard_normal((60, 6))
        ref = dense_sqrt_apply(m, z)
        y, info = block_lanczos_sqrt(lambda v: m @ v, z, tol=1e-8)
        assert info.converged
        np.testing.assert_allclose(y, ref, rtol=1e-5)

    def test_fewer_iterations_than_single(self):
        # the paper's motivation (a): block converges in fewer iterations
        m = _random_spd(120, 14, cond=5000.0)
        rng = np.random.default_rng(15)
        z = rng.standard_normal((120, 10))
        _, info_block = block_lanczos_sqrt(lambda v: m @ v, z, tol=1e-6)
        _, info_single = lanczos_sqrt(lambda v: m @ v, z[:, 0], tol=1e-6)
        assert info_block.iterations < info_single.iterations

    def test_block_size_one_matches_single(self):
        m = _random_spd(40, 16)
        z = np.random.default_rng(17).standard_normal(40)
        y1, _ = lanczos_sqrt(lambda v: m @ v, z, tol=1e-9)
        yb, _ = block_lanczos_sqrt(lambda v: m @ v.reshape(40, -1),
                                   z[:, None], tol=1e-9)
        np.testing.assert_allclose(yb[:, 0], y1, rtol=1e-6)

    def test_rank_deficient_start(self):
        # duplicated columns create an invariant subspace; solver must
        # terminate gracefully and still be correct
        m = _random_spd(30, 18)
        rng = np.random.default_rng(19)
        col = rng.standard_normal(30)
        z = np.stack([col, col, rng.standard_normal(30)], axis=1)
        y, info = block_lanczos_sqrt(lambda v: m @ v, z, tol=1e-7)
        ref = dense_sqrt_apply(m, z)
        np.testing.assert_allclose(y, ref, rtol=1e-4)
        np.testing.assert_allclose(y[:, 0], y[:, 1], rtol=1e-10)

    def test_zero_block(self):
        y, info = block_lanczos_sqrt(lambda v: v, np.zeros((10, 3)), tol=1e-6)
        np.testing.assert_allclose(y, 0.0)

    def test_rejects_flat_input(self):
        with pytest.raises(ValueError):
            block_lanczos_sqrt(lambda v: v, np.ones(5))

    def test_rejects_wide_block(self):
        with pytest.raises(ValueError):
            block_lanczos_sqrt(lambda v: v, np.ones((3, 5)))

    def test_matvec_count_is_per_column(self):
        m = _random_spd(40, 20)
        z = np.random.default_rng(21).standard_normal((40, 4))
        _, info = block_lanczos_sqrt(lambda v: m @ v, z, tol=1e-6)
        assert info.n_matvecs == 4 * info.iterations


@given(st.integers(5, 25), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_lanczos_property_accuracy(d, seed):
    m = _random_spd(d, seed, cond=50.0)
    z = np.random.default_rng(seed + 1).standard_normal(d)
    ref = dense_sqrt_apply(m, z)
    y, _ = lanczos_sqrt(lambda v: m @ v, z, tol=1e-9, max_iter=d)
    assert np.linalg.norm(y - ref) / np.linalg.norm(ref) < 1e-6
