"""Tests for work-partitioning helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel.partition import balance_by_cost, row_blocks


class TestRowBlocks:
    def test_covers_all_rows(self):
        ranges = row_blocks(100, 7)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(100))

    def test_balanced(self):
        ranges = row_blocks(100, 7)
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_rows(self):
        ranges = row_blocks(3, 5)
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == 3
        assert sizes.count(0) == 2

    def test_zero_rows(self):
        assert row_blocks(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            row_blocks(10, 0)
        with pytest.raises(ConfigurationError):
            row_blocks(-1, 2)


class TestBalanceByCost:
    def test_all_tasks_assigned_once(self):
        costs = [5.0, 3.0, 8.0, 1.0, 2.0]
        assignment = balance_by_cost(costs, 2)
        flat = sorted(t for worker in assignment for t in worker)
        assert flat == list(range(5))

    def test_near_optimal_balance(self):
        # LPT is a 4/3-approximation; on this instance (optimum 12, with
        # {6,6} vs {4,4,4}) it yields 14 = {6,4,4}, within the bound
        costs = np.array([4.0, 4.0, 4.0, 6.0, 6.0])
        assignment = balance_by_cost(costs, 2)
        loads = [sum(costs[t] for t in w) for w in assignment]
        assert max(loads) <= (4.0 / 3.0) * 12.0

    def test_single_worker(self):
        assignment = balance_by_cost([1.0, 2.0], 1)
        assert sorted(assignment[0]) == [0, 1]

    def test_uniform_tasks_spread_evenly(self):
        assignment = balance_by_cost([1.0] * 12, 4)
        assert all(len(w) == 3 for w in assignment)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            balance_by_cost([1.0], 0)
        with pytest.raises(ConfigurationError):
            balance_by_cost([-1.0], 2)
