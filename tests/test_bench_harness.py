"""Tests for the shared benchmark harness utilities."""

import json

import numpy as np
import pytest

from repro.bench import (
    TimingStats,
    bench_output_dir,
    bench_scale,
    cached_suspension,
    format_bytes,
    format_table,
    measure_seconds,
    record_benchmark,
)
from repro.bench.record import RECORD_SCHEMA


class TestScale:
    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "ci"

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "PAPER")
        assert bench_scale() == "paper"

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_scale()


class TestCachedSuspension:
    def test_returns_same_object(self):
        a = cached_suspension(30, 0.1, seed=0)
        b = cached_suspension(30, 0.1, seed=0)
        assert a is b

    def test_distinct_keys_distinct_systems(self):
        a = cached_suspension(30, 0.1, seed=0)
        b = cached_suspension(30, 0.15, seed=0)
        assert a is not b
        assert a.box.length != b.box.length


class TestMeasure:
    def test_returns_timing_stats(self):
        stats = measure_seconds(lambda: sum(range(1000)))
        assert isinstance(stats, TimingStats)
        assert stats.best > 0
        assert stats.repeats == 1
        assert stats.std == 0.0

    def test_best_of_repeats(self):
        calls = []
        stats = measure_seconds(lambda: calls.append(1), repeats=3,
                                warmup=2)
        assert len(calls) == 5
        assert stats.repeats == 3
        assert 0 <= stats.best <= stats.mean
        assert stats.std >= 0


class TestRecord:
    def test_output_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_OUTDIR", str(tmp_path))
        assert bench_output_dir() == tmp_path
        monkeypatch.delenv("REPRO_BENCH_OUTDIR")
        assert str(bench_output_dir()) == "."

    def test_record_roundtrip(self, tmp_path):
        stats = measure_seconds(lambda: None, repeats=2)
        path = record_benchmark(
            "unit", ["name", "t (s)"],
            [["a", 1.5], ["b", stats]],
            meta={"nested": [[1, 2], [3, 4]]}, out_dir=tmp_path)
        assert path == tmp_path / "BENCH_unit.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == RECORD_SCHEMA
        assert doc["name"] == "unit"
        assert doc["headers"] == ["name", "t (s)"]
        assert doc["rows"][0] == ["a", 1.5]
        # TimingStats serializes to its stat dict, not a string
        assert doc["rows"][1][1]["repeats"] == 2
        assert doc["meta"]["nested"] == [[1, 2], [3, 4]]

    def test_record_handles_numpy_scalars(self, tmp_path):
        path = record_benchmark("np", ["v"], [[np.float64(0.5)]],
                                out_dir=tmp_path)
        doc = json.loads(path.read_text())
        assert doc["rows"][0][0] == 0.5


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(10) == "10.0 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024 ** 3) == "3.0 GB"

    def test_format_table_alignment(self):
        out = format_table("T", ["aa", "b"], [[1, 2.5], [30, 0.125]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "aa" in lines[2]
        # all rows have the same rendered width
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_format_table_empty_rows(self):
        out = format_table("empty", ["x"], [])
        assert "x" in out

    def test_float_formatting(self):
        out = format_table("t", ["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_numpy_scalars(self):
        # np.float64 subclasses float, so it takes the float format path
        out = format_table("t", ["v"], [[np.float64(1.5)]])
        assert "1.5" in out
