"""Tests for PME parameter selection (the Table III procedure)."""

import numpy as np
import pytest

from repro import Box, PMEOperator, pme_relative_error, tune_parameters
from repro.errors import ConfigurationError
from repro.pme.tuning import (
    estimate_errors,
    fft_friendly_size,
    spline_error_estimate,
    spline_resolution_bound,
)


class TestFFTFriendly:
    def test_five_smooth(self):
        for m in (7, 13, 33, 100, 121):
            k = fft_friendly_size(m)
            assert k >= m
            assert k % 2 == 0
            reduced = k
            for f in (2, 3, 5):
                while reduced % f == 0:
                    reduced //= f
            assert reduced == 1

    def test_already_friendly(self):
        assert fft_friendly_size(64) == 64
        assert fft_friendly_size(90) == 90


class TestSplineCalibration:
    def test_monotone_in_resolution(self):
        errs = [spline_error_estimate(6, xih, 2.0)
                for xih in (0.1, 0.2, 0.4, 0.8)]
        assert errs == sorted(errs)

    def test_higher_order_more_accurate(self):
        assert spline_error_estimate(8, 0.3, 2.0) < \
            spline_error_estimate(6, 0.3, 2.0) < \
            spline_error_estimate(4, 0.3, 2.0)

    def test_xia_cubed_scaling(self):
        e1 = spline_error_estimate(6, 0.3, 1.0)
        e2 = spline_error_estimate(6, 0.3, 2.0)
        assert e2 / e1 == pytest.approx(8.0, rel=1e-9)

    def test_bound_inverts_estimate(self):
        for budget in (1e-2, 1e-4, 1e-6):
            xih = spline_resolution_bound(6, budget, 2.0)
            if 0.02 < xih < 1.0:
                assert spline_error_estimate(6, xih, 2.0) == pytest.approx(
                    budget, rel=1e-6)

    def test_uncalibrated_order_rejected(self):
        with pytest.raises(ConfigurationError):
            spline_resolution_bound(3, 1e-3, 2.0)


class TestTuner:
    @pytest.mark.parametrize("n,target", [(40, 1e-3), (80, 1e-2)])
    def test_meets_target(self, n, target):
        box = Box.for_volume_fraction(n, 0.2)
        params = tune_parameters(n, box, target_ep=target)
        rng = np.random.default_rng(n)
        r = rng.uniform(0, box.length, size=(n, 3))
        op = PMEOperator(r, box, params)
        assert pme_relative_error(op, n_probe=2) < target

    def test_tighter_target_bigger_mesh(self):
        box = Box.for_volume_fraction(100, 0.2)
        loose = tune_parameters(100, box, target_ep=1e-2)
        tight = tune_parameters(100, box, target_ep=1e-5)
        assert tight.K > loose.K

    def test_rmax_within_half_box(self):
        box = Box.for_volume_fraction(30, 0.3)
        params = tune_parameters(30, box)
        assert params.r_max <= box.length / 2

    def test_estimates_within_budget(self):
        box = Box.for_volume_fraction(200, 0.2)
        target = 1e-3
        params = tune_parameters(200, box, target_ep=target)
        est = estimate_errors(params, box, n=200)
        assert est["real"] <= target
        assert est["recip_truncation"] <= target
        assert est["spline"] <= target

    def test_invalid_target(self):
        box = Box(10.0)
        with pytest.raises(ConfigurationError):
            tune_parameters(10, box, target_ep=0.0)

    def test_spline_order_respected(self):
        box = Box.for_volume_fraction(100, 0.2)
        p4 = tune_parameters(100, box, p=4)
        p6 = tune_parameters(100, box, p=6)
        assert p4.p == 4 and p6.p == 6
        # lower order needs a finer mesh at the same target
        assert p4.K >= p6.K

    def test_mesh_scales_with_system(self):
        params_small = tune_parameters(100, Box.for_volume_fraction(100, 0.2))
        params_large = tune_parameters(800, Box.for_volume_fraction(800, 0.2))
        assert params_large.K > params_small.K

    def test_kernel_and_interpolation_forwarded(self):
        box = Box.for_volume_fraction(50, 0.2)
        params = tune_parameters(50, box, kernel="oseen",
                                 interpolation="lagrange")
        assert params.kernel == "oseen"
        assert params.interpolation == "lagrange"

    def test_tuned_oseen_meets_target(self):
        import numpy as np
        from repro import PMEOperator, pme_relative_error
        from repro.rpy.ewald import EwaldSummation
        n, target = 40, 1e-3
        box = Box.for_volume_fraction(n, 0.2)
        params = tune_parameters(n, box, target_ep=target, kernel="oseen")
        rng = np.random.default_rng(n)
        r = rng.uniform(0, box.length, size=(n, 3))
        op = PMEOperator(r, box, params)
        ref = EwaldSummation(box=box, tol=1e-12, kernel="oseen").matrix(r)
        assert pme_relative_error(op, n_probe=2,
                                  reference=lambda f: ref @ f) < target
