"""Tests for the dense Ewald-summed mobility matrix.

The headline validations of the whole hydrodynamic stack:

* the result is independent of the splitting parameter ``xi``,
* the periodic self-mobility reproduces the Hasimoto/cubic-lattice
  expansion ``1 - 2.837297 (a/L) + (4 pi/3)(a/L)^3`` to high accuracy,
* the matrix is symmetric positive definite.
"""

import numpy as np
import pytest

from repro import Box, FluidParams
from repro.analysis.diffusion import finite_size_correction
from repro.errors import ConfigurationError
from repro.rpy.ewald import EwaldSummation, ewald_mobility_matrix


@pytest.fixture(scope="module")
def configuration():
    box = Box(18.0)
    rng = np.random.default_rng(17)
    return box, rng.uniform(0, box.length, size=(6, 3))


def test_alpha_invariance(configuration):
    box, r = configuration
    mats = [EwaldSummation(box=box, xi=xi, tol=1e-10).matrix(r)
            for xi in (0.3, 0.5, 0.8)]
    scale = np.abs(mats[0]).max()
    for m in mats[1:]:
        np.testing.assert_allclose(m, mats[0], atol=5e-7 * scale)


def test_hasimoto_self_mobility():
    box = Box(25.0)
    m = EwaldSummation(box=box, tol=1e-12).matrix(np.array([[3.0, 7.0, 11.0]]))
    expected = finite_size_correction(1.0 / box.length)
    # the expansion itself is truncated at (a/L)^3; next term is O((a/L)^6)
    assert m[0, 0] == pytest.approx(expected, abs=5e-7)
    assert m[1, 1] == pytest.approx(m[0, 0], rel=1e-12)
    assert m[2, 2] == pytest.approx(m[0, 0], rel=1e-12)
    # isotropic: no off-diagonal coupling for a single particle
    np.testing.assert_allclose(m - np.diag(np.diag(m)), 0.0, atol=1e-12)


def test_self_mobility_translation_invariant():
    box = Box(20.0)
    ew = EwaldSummation(box=box, tol=1e-10)
    m1 = ew.matrix(np.array([[0.0, 0.0, 0.0]]))
    m2 = ew.matrix(np.array([[13.1, 4.4, 19.9]]))
    np.testing.assert_allclose(m1, m2, atol=1e-10)


def test_symmetric(configuration):
    box, r = configuration
    m = EwaldSummation(box=box, tol=1e-8).matrix(r)
    np.testing.assert_allclose(m, m.T, atol=1e-12)


def test_positive_definite(configuration):
    box, r = configuration
    m = EwaldSummation(box=box, tol=1e-8).matrix(r)
    assert np.linalg.eigvalsh(m).min() > 0


def test_positive_definite_dense_suspension():
    from repro.systems import lattice_suspension
    susp = lattice_suspension(32, 0.4, seed=1)
    m = EwaldSummation(box=susp.box, tol=1e-6).matrix(susp.positions)
    assert np.linalg.eigvalsh(m).min() > 0


def test_periodicity_translation_invariance(configuration):
    box, r = configuration
    ew = EwaldSummation(box=box, tol=1e-8)
    m1 = ew.matrix(r)
    m2 = ew.matrix(r + np.array([5.0, -3.0, 11.0]))   # rigid translation
    np.testing.assert_allclose(m2, m1, atol=1e-9)


def test_image_interaction_periodicity(configuration):
    box, r = configuration
    ew = EwaldSummation(box=box, tol=1e-8)
    m1 = ew.matrix(r)
    r_shifted = r.copy()
    r_shifted[0] += np.array([box.length, 0.0, 0.0])  # shift by one image
    m2 = ew.matrix(r_shifted)
    np.testing.assert_allclose(m2, m1, atol=1e-10)


def test_mobility_decreases_from_free_space():
    # periodic image drag lowers the self-mobility below mu0
    box = Box(15.0)
    m = EwaldSummation(box=box, tol=1e-10).matrix(np.array([[1.0, 1.0, 1.0]]))
    assert m[0, 0] < 1.0


def test_free_space_limit_large_box():
    # in a huge box, the pair mobility approaches the free-space RPY value
    from repro.rpy.tensor import rpy_pair_tensors
    box = Box(400.0)
    r = np.array([[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
    m = EwaldSummation(box=box, tol=1e-10).matrix(r)
    pair = rpy_pair_tensors(r[0:1] - r[1:2])[0]
    np.testing.assert_allclose(m[0:3, 3:6], pair, atol=2e-2)
    assert m[0, 0] == pytest.approx(1.0, abs=1e-2)


def test_physical_units_scaling(configuration):
    box, r = configuration
    fluid = FluidParams(radius=1.0, viscosity=2.0, kT=1.0)
    m_reduced = EwaldSummation(box=box, tol=1e-8).matrix(r)
    m_physical = EwaldSummation(box=box, fluid=fluid, tol=1e-8).matrix(r)
    # viscosity only enters through the global mu0 prefactor
    np.testing.assert_allclose(m_physical, m_reduced * fluid.mobility0,
                               rtol=1e-12)


def test_apply_matches_matrix(configuration):
    box, r = configuration
    ew = EwaldSummation(box=box, tol=1e-8)
    f = np.arange(3 * r.shape[0], dtype=float)
    np.testing.assert_allclose(ew.apply(r, f), ew.matrix(r) @ f, rtol=1e-12)


def test_convenience_wrapper(configuration):
    box, r = configuration
    np.testing.assert_allclose(
        ewald_mobility_matrix(r, box, tol=1e-8),
        EwaldSummation(box=box, tol=1e-8).matrix(r))


def test_invalid_parameters():
    box = Box(10.0)
    with pytest.raises(ConfigurationError):
        EwaldSummation(box=box, tol=0.0)
    with pytest.raises(ConfigurationError):
        EwaldSummation(box=box, xi=-1.0)


def test_overlapping_pair_stays_spd():
    box = Box(12.0)
    r = np.array([[1.0, 1.0, 1.0], [2.2, 1.0, 1.0]])  # r = 1.2 < 2a
    m = EwaldSummation(box=box, tol=1e-8).matrix(r)
    assert np.linalg.eigvalsh(m).min() > 0
