"""Tests of the whole-program dataflow layer: RPR1xx/2xx/3xx rules,
the seeded corpus, baselines, graph export, github output and the
multi-line noqa semantics."""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from textwrap import dedent

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    Baseline,
    apply_baseline,
    lint_paths,
    lint_source,
    resolve_selection,
)
from repro.lint.baseline import fingerprint
from repro.lint.cli import format_github, main as lint_main
from repro.lint.findings import Finding
from repro.lint.flow.domain import (
    AbstractValue,
    dims_definitely_differ,
    join_values,
)
from repro.lint.flow.graphexport import (
    build_analyzed_project,
    export_graph,
)

REPO = Path(__file__).resolve().parent.parent
SRC_DIR = REPO / "src"
CORPUS = REPO / "tests" / "corpus_flow"

_SEEDED_RE = re.compile(r"#\s*seeded:\s*([A-Z0-9, ]+)")


def seeded_expectations(prefixes: tuple[str, ...]) -> set[tuple]:
    """``(path, line, rule)`` triples declared by ``# seeded:`` comments."""
    expected = set()
    for path in sorted(CORPUS.rglob("*.py")):
        rel = str(path)
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            match = _SEEDED_RE.search(line)
            if not match:
                continue
            for rule in match.group(1).split(","):
                rule = rule.strip()
                if rule.startswith(prefixes):
                    expected.add((rel, lineno, rule))
    return expected


def flow_rule_ids(source: str) -> list[str]:
    """Dataflow rule ids reported for an in-memory snippet."""
    findings = lint_source(dedent(source), "<snippet>")
    return [f.rule for f in findings if f.rule >= "RPR100"]


# ----------------------------------------------------------------------
# the seeded corpus is the contract: exactly those findings, no more
# ----------------------------------------------------------------------

def corpus_findings(select: list[str]) -> set[tuple]:
    findings, _ = lint_paths([CORPUS], select=select)
    return {(f.path, f.line, f.rule) for f in findings}


def test_corpus_flow_findings_match_seeds_exactly():
    expected = seeded_expectations(("RPR1", "RPR2", "RPR3"))
    got = corpus_findings(["RPR1", "RPR2", "RPR3"])
    assert got == expected
    # >= 2 true positives per family
    for family in ("RPR1", "RPR2", "RPR3"):
        assert sum(1 for _, _, rule in expected
                   if rule.startswith(family)) >= 2


def test_corpus_file_rules_still_fire():
    expected = seeded_expectations(("RPR005",))
    assert corpus_findings(["RPR005"]) == expected
    assert len(expected) >= 1


def test_corpus_findings_are_deterministic():
    first, _ = lint_paths([CORPUS])
    second, _ = lint_paths([CORPUS])
    assert first == second


# ----------------------------------------------------------------------
# interprocedural behavior on snippets
# ----------------------------------------------------------------------

def test_rpr101_cross_function_shape_mismatch():
    assert "RPR101" in flow_rule_ids("""
        import numpy as np

        class Op:
            def apply(self, forces):
                return forces

        def drive(n):
            return Op().apply(np.zeros((n, 3)))
    """)


def test_rpr101_silent_on_compatible_shapes():
    assert flow_rule_ids("""
        import numpy as np

        class Op:
            def apply_block(self, block):
                return block

        def drive(n, s):
            return Op().apply_block(np.zeros((3 * n, s)))
    """) == []


def test_rpr102_dtype_drift_through_helper_return():
    ids = flow_rule_ids("""
        import numpy as np

        class Op:
            def apply_block(self, block):
                return block

        def _workspace(n):
            return np.zeros((3 * n, 2), dtype=np.float32)

        def drive(n):
            return Op().apply_block(_workspace(n))
    """)
    assert "RPR102" in ids


def test_rpr103_requires_definite_noncontiguity():
    assert flow_rule_ids("""
        import numpy as np

        def spectrum(grid):
            return np.fft.rfftn(grid)
    """) == []


def test_rpr201_not_raised_when_rng_threaded():
    assert flow_rule_ids("""
        import numpy as np

        def noise(n, rng):
            return rng.standard_normal(n)

        def drive(n, seed):
            rng = np.random.default_rng(seed)
            return noise(n, rng)
    """) == []


def test_rpr201_accepts_conditional_rng_coercion():
    # `seed if isinstance(...) else default_rng(seed)` must count as
    # threading the Generator (rng ⊔ unknown = rng in the join)
    assert flow_rule_ids("""
        import numpy as np

        def noise(n, rng):
            return rng.standard_normal(n)

        def drive(n, seed):
            rng = (seed if isinstance(seed, np.random.Generator)
                   else np.random.default_rng(seed))
            return noise(n, rng)
    """) == []


def test_rpr202_exempts_plain_dict_iteration():
    assert flow_rule_ids("""
        def total(table):
            acc = 0.0
            for key in {"a": 1.0, "b": 2.0}:
                acc += 1.0
            return acc
    """) == []


def test_rpr202_flags_set_derived_dict():
    assert "RPR202" in flow_rule_ids("""
        def total(items):
            index = dict.fromkeys(set(items))
            acc = 0.0
            for key in index:
                acc += 1.0
            return acc
    """)


def test_rpr301_ignores_entry_allocations_and_cold_functions():
    # allocation outside a loop, and any allocation in a module outside
    # pme/krylov/sparse, must stay silent
    assert flow_rule_ids("""
        import numpy as np

        def phase(obs, xs):
            with obs.span("pme.spread"):
                acc = np.zeros(3)
                for x in xs:
                    acc += x
                return acc
    """) == []


def test_join_preserves_rng_over_unknown():
    rng = AbstractValue(kind="rng")
    unknown = AbstractValue(kind="unknown")
    assert join_values(rng, unknown).kind == "rng"
    assert join_values(unknown, rng).kind == "rng"


def test_dims_definitely_differ_heuristic():
    assert dims_definitely_differ((1, "n"), (3, "n"))
    assert not dims_definitely_differ((1, "n"), (1, "m"))
    assert not dims_definitely_differ(None, (3, "n"))
    assert dims_definitely_differ((4, None), (5, None))


# ----------------------------------------------------------------------
# multi-line noqa (any physical line of the statement suppresses)
# ----------------------------------------------------------------------

_WRAPPED = """
    import numpy as np

    class Op:
        def apply_block(self, block):
            return block

    def drive(n):
        data = np.zeros((n, 7))
        return Op().apply_block(
            data,
        ){noqa}
"""


def test_noqa_on_closing_paren_line_suppresses():
    clean = dedent(_WRAPPED.format(noqa="  # noqa: RPR101"))
    assert [f.rule for f in lint_source(clean, "<s>")
            if f.rule == "RPR101"] == []


def test_noqa_for_other_rule_does_not_suppress():
    other = dedent(_WRAPPED.format(noqa="  # noqa: RPR103"))
    assert "RPR101" in [f.rule for f in lint_source(other, "<s>")]


def test_blanket_noqa_mid_statement_suppresses():
    source = dedent("""
        import numpy as np

        class Op:
            def apply_block(self, block):
                return block

        def drive(n):
            return Op().apply_block(
                np.zeros((n, 7)),  # noqa
            )
    """)
    assert [f.rule for f in lint_source(source, "<s>")] == []


def test_noqa_in_function_body_does_not_cover_def_line():
    # compound statements contribute only their header extent
    source = dedent("""
        def displace(positions, dt):
            scale = 1.0  # noqa
            return positions * dt * scale
    """)
    assert "RPR001" in [f.rule for f in lint_source(source, "<s>")]


# ----------------------------------------------------------------------
# selection / RPR000 edge cases
# ----------------------------------------------------------------------

def test_selection_overlapping_select_and_ignore():
    assert resolve_selection(["RPR1"], ["RPR102"]) == {"RPR101", "RPR103"}
    assert resolve_selection(["RPR10"], ["RPR10"]) == set()


def test_selection_unknown_prefix_message_names_it():
    with pytest.raises(ConfigurationError, match=r"RPR9.*matches no"):
        resolve_selection(["RPR9"], None)
    with pytest.raises(ConfigurationError, match="--ignore"):
        resolve_selection(None, ["ZZZ"])


def test_rpr000_participates_in_selection(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    findings, checked = lint_paths([bad])
    assert checked == 1
    assert [f.rule for f in findings] == ["RPR000"]

    only, _ = lint_paths([bad], select=["RPR000"])
    assert [f.rule for f in only] == ["RPR000"]

    none, _ = lint_paths([bad], ignore=["RPR000"])
    assert none == []


def test_rpr000_excluded_by_narrow_select(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    findings, _ = lint_paths([bad], select=["RPR001"])
    assert findings == []


# ----------------------------------------------------------------------
# baseline workflow
# ----------------------------------------------------------------------

def _finding(path="a.py", line=3, rule="RPR101", message="m"):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


def test_baseline_roundtrip_and_check(tmp_path):
    baseline_file = tmp_path / "lint-baseline.json"
    known = [_finding(line=3), _finding(line=9)]  # same fingerprint x2
    Baseline.from_findings(known).write(baseline_file)

    loaded = Baseline.load(baseline_file)
    assert loaded.entries == {fingerprint(known[0]): 2}

    new, suppressed, stale = apply_baseline(
        known + [_finding(line=30, rule="RPR202")], loaded)
    assert suppressed == 2
    assert [f.rule for f in new] == ["RPR202"]
    assert stale == []


def test_baseline_excess_occurrences_surface(tmp_path):
    baseline = Baseline.from_findings([_finding(line=3)])
    new, suppressed, _ = apply_baseline(
        [_finding(line=3), _finding(line=7)], baseline)
    assert suppressed == 1
    assert len(new) == 1


def test_baseline_stale_entries_reported():
    baseline = Baseline.from_findings([_finding()])
    new, suppressed, stale = apply_baseline([], baseline)
    assert new == [] and suppressed == 0
    assert stale == [fingerprint(_finding())]


def test_baseline_missing_file_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").entries == {}


def test_baseline_rejects_foreign_json(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text('{"some": "other file"}')
    with pytest.raises(ConfigurationError, match="entries"):
        Baseline.load(bad)
    bad.write_text('{"version": 99, "entries": {}}')
    with pytest.raises(ConfigurationError, match="version"):
        Baseline.load(bad)


def test_cli_baseline_write_then_check(tmp_path, capsys):
    target = tmp_path / "code.py"
    target.write_text("import numpy as np\n"
                      "x = np.zeros(3, dtype=np.float32)\n")
    baseline_file = tmp_path / "bl.json"

    assert lint_main([str(target), "--baseline", "write",
                      "--baseline-file", str(baseline_file)]) == 0
    assert lint_main([str(target), "--baseline", "check",
                      "--baseline-file", str(baseline_file)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out

    # a new finding is NOT covered
    target.write_text(target.read_text() +
                      "y = np.zeros(4, dtype=np.float32)\n")
    assert lint_main([str(target), "--baseline", "check",
                      "--baseline-file", str(baseline_file)]) == 1


# ----------------------------------------------------------------------
# github output format
# ----------------------------------------------------------------------

def test_format_github_shape_and_escaping():
    finding = Finding(path="src/a.py", line=4, col=2, rule="RPR101",
                      message="bad: a,b\nnext", hint="fix it")
    line = format_github(finding)
    assert line.startswith("::warning file=src/a.py,line=4,col=3,")
    assert "title=RPR101 shape-incompatible-call" in line
    assert "%0A" in line and "\n" not in line
    assert line.endswith("::bad: a,b%0Anext (fix it)")


def test_cli_github_format(tmp_path, capsys):
    target = tmp_path / "code.py"
    target.write_text("import numpy as np\n"
                      "x = np.zeros(3, dtype=np.float32)\n")
    assert lint_main([str(target), "--output-format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::warning file=" in out and "RPR005" in out


# ----------------------------------------------------------------------
# graph export
# ----------------------------------------------------------------------

def test_graph_export_structure(tmp_path):
    out = tmp_path / "graph.json"
    payload = export_graph([CORPUS], out)
    assert json.loads(out.read_text()) == payload

    hot = payload["hot"]
    assert any(q.endswith("gridder.spread_charges") for q in hot)
    # transitive closure: fold_mesh never opens a span itself
    assert any(q.endswith("gridder.fold_mesh") for q in hot)

    summaries = payload["summaries"]
    noise = next(v for k, v in summaries.items()
                 if k.endswith("ops.correlated_noise"))
    assert noise["stochastic"] is True
    assert noise["rng_param"] == "rng"

    graph = payload["call_graph"]
    caller = next(k for k in graph if k.endswith("drivers.noisy_step"))
    assert any(c.endswith("ops.correlated_noise") for c in graph[caller])


def test_hot_registry_spans_cover_known_phases():
    project = build_analyzed_project([SRC_DIR])
    spans = set(project.hot.values())
    assert any(s.startswith("pme.") for s in spans)
    assert any(s.startswith("krylov.") for s in spans)


# ----------------------------------------------------------------------
# acceptance: src/ is clean and the analysis is fast
# ----------------------------------------------------------------------

def test_repo_src_clean_under_flow_rules_and_fast():
    start = time.monotonic()
    findings, checked = lint_paths([SRC_DIR])
    elapsed = time.monotonic() - start
    assert findings == []
    assert checked > 90
    assert elapsed < 10.0
