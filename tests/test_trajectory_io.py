"""Tests for trajectory save/load."""

import numpy as np
import pytest

from repro import FluidParams, Trajectory
from repro.core.trajectory_io import load_trajectory, save_trajectory
from repro.errors import ConfigurationError


def _sample_trajectory():
    rng = np.random.default_rng(0)
    return Trajectory(
        times=np.linspace(0, 1, 5),
        positions=rng.standard_normal((5, 7, 3)),
        box_length=12.5,
        fluid=FluidParams(radius=2.0, viscosity=0.7, kT=1.3),
    )


def test_roundtrip(tmp_path):
    traj = _sample_trajectory()
    path = tmp_path / "traj.npz"
    save_trajectory(path, traj)
    loaded = load_trajectory(path)
    np.testing.assert_array_equal(loaded.times, traj.times)
    np.testing.assert_array_equal(loaded.positions, traj.positions)
    assert loaded.box_length == traj.box_length
    assert loaded.fluid == traj.fluid


def test_roundtrip_preserves_analysis(tmp_path):
    from repro.analysis import mean_squared_displacement
    traj = _sample_trajectory()
    path = tmp_path / "t.npz"
    save_trajectory(path, traj)
    loaded = load_trajectory(path)
    np.testing.assert_allclose(
        mean_squared_displacement(loaded.positions),
        mean_squared_displacement(traj.positions))


def test_rejects_foreign_file(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, stuff=np.ones(3))
    with pytest.raises(ConfigurationError):
        load_trajectory(path)


def test_end_to_end_with_simulation(tmp_path):
    from repro import Simulation
    from repro.systems import random_suspension
    susp = random_suspension(15, 0.1, seed=0)
    sim = Simulation(susp, dt=1e-3, seed=0, target_ep=1e-2)
    traj, _ = sim.run(n_steps=4, record_interval=2)
    path = tmp_path / "run.npz"
    save_trajectory(path, traj)
    loaded = load_trajectory(path)
    assert loaded.n_frames == traj.n_frames
    np.testing.assert_allclose(loaded.positions, traj.positions)
