"""Tests for Lagrangian-interpolation (original) PME."""

import numpy as np
import pytest

from repro import Box, PMEOperator, PMEParams
from repro.errors import ConfigurationError
from repro.pme.lagrange import lagrange_weights, lagrange_window_offsets
from repro.pme.spread import InterpolationMatrix
from repro.rpy.ewald import EwaldSummation


class TestWeights:
    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_partition_of_unity(self, p):
        w = lagrange_weights(np.linspace(0, 1, 17, endpoint=False), p)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-12)

    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_exact_at_nodes(self, p):
        # at frac = 0 the weight is 1 on the node at offset 0
        w = lagrange_weights(np.array([0.0]), p)[0]
        offsets = lagrange_window_offsets(p)
        np.testing.assert_allclose(w[offsets == 0], 1.0, atol=1e-12)
        np.testing.assert_allclose(w[offsets != 0], 0.0, atol=1e-12)

    def test_reproduces_polynomials(self):
        # order-p Lagrange interpolation is exact for degree < p
        p = 4
        offsets = lagrange_window_offsets(p).astype(float)
        frac = np.array([0.3, 0.77])
        w = lagrange_weights(frac, p)
        for degree in range(p):
            exact = frac ** degree
            interp = (w * offsets[None, :] ** degree).sum(axis=1)
            np.testing.assert_allclose(interp, exact, atol=1e-10)

    def test_window_centered(self):
        np.testing.assert_array_equal(lagrange_window_offsets(4),
                                      [-1, 0, 1, 2])
        np.testing.assert_array_equal(lagrange_window_offsets(6),
                                      [-2, -1, 0, 1, 2, 3])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lagrange_weights(np.array([0.5]), 1)
        with pytest.raises(ConfigurationError):
            lagrange_weights(np.ones((2, 2)), 4)


class TestLagrangePME:
    @pytest.fixture(scope="class")
    def system(self):
        box = Box.for_volume_fraction(40, 0.2)
        rng = np.random.default_rng(11)
        r = rng.uniform(0, box.length, size=(40, 3))
        ref = EwaldSummation(box=box, tol=1e-12).matrix(r)
        return box, r, ref

    def test_interpolation_matrix_kind(self, system):
        box, r, _ = system
        interp = InterpolationMatrix(r, box, K=32, p=4, kind="lagrange")
        assert interp.kind == "lagrange"
        row_sums = np.asarray(interp.matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 1.0, atol=1e-12)

    def test_operator_accuracy(self, system):
        box, r, ref = system
        params = PMEParams(xi=1.0, r_max=4.0, K=48, p=6,
                           interpolation="lagrange")
        op = PMEOperator(r, box, params)
        f = np.random.default_rng(0).standard_normal(3 * r.shape[0])
        u = op.apply(f)
        err = np.linalg.norm(u - ref @ f) / np.linalg.norm(ref @ f)
        assert err < 2e-2    # works, but coarser than SPME

    def test_spme_more_accurate_than_lagrange(self, system):
        # the paper's explicit claim (Section III.A)
        box, r, ref = system
        f = np.random.default_rng(1).standard_normal(3 * r.shape[0])
        errs = {}
        for kind in ("bspline", "lagrange"):
            op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=48, p=6,
                                               interpolation=kind))
            u = op.apply(f)
            errs[kind] = np.linalg.norm(u - ref @ f) / np.linalg.norm(ref @ f)
        assert errs["bspline"] < 0.2 * errs["lagrange"]

    def test_operator_symmetric(self, system):
        box, r, _ = system
        op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=32, p=4,
                                           interpolation="lagrange"))
        rng = np.random.default_rng(2)
        x = rng.standard_normal(3 * r.shape[0])
        y = rng.standard_normal(3 * r.shape[0])
        assert np.dot(y, op.apply(x)) == pytest.approx(
            np.dot(x, op.apply(y)), rel=1e-8)

    def test_on_the_fly_matches_stored(self, system):
        box, r, _ = system
        params = PMEParams(xi=1.0, r_max=4.0, K=32, p=4,
                           interpolation="lagrange")
        f = np.random.default_rng(3).standard_normal(3 * r.shape[0])
        u_stored = PMEOperator(r, box, params, store_p=True).apply(f)
        u_fly = PMEOperator(r, box, params, store_p=False).apply(f)
        np.testing.assert_allclose(u_fly, u_stored, rtol=1e-10, atol=1e-13)

    def test_unknown_kind_rejected(self, system):
        box, r, _ = system
        with pytest.raises(ConfigurationError):
            PMEParams(xi=1.0, r_max=4.0, K=32, p=4, interpolation="sinc")
        with pytest.raises(ConfigurationError):
            InterpolationMatrix(r, box, K=32, p=4, kind="sinc")
