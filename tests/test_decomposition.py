"""Tests for the slab domain decomposition."""

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError
from repro.parallel.decomposition import (
    SlabDecomposition,
    distributed_real_space_matrix,
    merge_pair_blocks,
)
from repro.pme.realspace import RealSpaceOperator
from repro.systems import random_suspension


@pytest.fixture(scope="module")
def system():
    susp = random_suspension(120, 0.2, seed=21)
    return susp.positions, susp.box


XI, R_MAX = 0.9, 3.5


@pytest.mark.parametrize("n_domains", [1, 2, 3])
def test_matches_global_build(system, n_domains):
    r, box = system
    distributed = distributed_real_space_matrix(r, box, XI, R_MAX,
                                                n_domains)
    global_op = RealSpaceOperator(r, box, XI, R_MAX, engine="bcsr")
    f = np.random.default_rng(0).standard_normal(3 * r.shape[0])
    np.testing.assert_allclose(distributed.matvec(f),
                               global_op.apply(f), rtol=1e-12)


def test_owned_partition_is_complete(system):
    r, box = system
    decomp = SlabDecomposition(box, 3, R_MAX)
    all_owned = np.sort(np.concatenate(
        [decomp.owned_indices(r, d) for d in range(3)]))
    np.testing.assert_array_equal(all_owned, np.arange(r.shape[0]))


def test_halo_excludes_owned(system):
    r, box = system
    decomp = SlabDecomposition(box, 3, R_MAX)
    for d in range(3):
        owned = set(decomp.owned_indices(r, d).tolist())
        halo = set(decomp.halo_indices(r, d).tolist())
        assert not owned & halo


def test_halo_wraps_periodically(system):
    # domain 0's halo must include particles near x = L (wrap-around)
    r, box = system
    decomp = SlabDecomposition(box, 3, R_MAX)
    halo0 = decomp.halo_indices(r, 0)
    x = box.wrap(r)[:, 0]
    near_top = np.flatnonzero(x > box.length - R_MAX / 2)
    if near_top.size:     # suspension is dense; this always holds
        assert np.intersect1d(halo0, near_top).size > 0


def test_each_pair_kept_exactly_once(system):
    r, box = system
    decomp = SlabDecomposition(box, 3, R_MAX)
    seen = set()
    for d in range(3):
        i, j, _ = decomp.local_pair_blocks(r, d, XI)
        for a, b in zip(i, j):
            assert (a, b) not in seen
            seen.add((int(a), int(b)))
    # compare against the global pair count
    from repro.neighbor.pairs import brute_force_pairs
    gi, gj = brute_force_pairs(r, box, R_MAX)
    assert len(seen) == gi.size


def test_too_many_domains_rejected(system):
    _, box = system
    with pytest.raises(ConfigurationError):
        SlabDecomposition(box, int(box.length / R_MAX) + 2, R_MAX)


def test_validation(system):
    _, box = system
    with pytest.raises(ConfigurationError):
        SlabDecomposition(box, 0, R_MAX)
    with pytest.raises(ConfigurationError):
        SlabDecomposition(box, 2, -1.0)


def test_merge_empty_parts():
    box = Box(10.0)
    bcsr = merge_pair_blocks([], 3, xi=1.0)
    # diagonal-only matrix
    assert bcsr.nnz_blocks == 3
