"""Tests for the Section IV.D performance model and Table I machines."""

import math

import pytest

from repro.perfmodel import (
    HOST,
    PMECostModel,
    WESTMERE_EP,
    XEON_PHI_KNC,
    fft_flops,
    influence_bytes,
    interpolation_bytes,
    pme_memory_bytes,
    spreading_bytes,
)


class TestEquations:
    def test_spreading_bytes_formula(self):
        # 3*8*K^3 + 12 p^3 n + 3*8 p^3 n (paper IV.D(a))
        n, K, p = 1000, 64, 6
        assert spreading_bytes(n, K, p) == (
            24 * 64 ** 3 + 12 * 216 * 1000 + 24 * 216 * 1000)

    def test_interpolation_bytes_formula(self):
        n, K, p = 500, 32, 4
        assert interpolation_bytes(n, K, p) == 36 * 64 * 500

    def test_influence_bytes_formula(self):
        # 8 K^3/2 (scalar) + 48 K^3 (complex C and D) = 52 K^3
        K = 32
        assert influence_bytes(K) == 52 * K ** 3

    def test_fft_flops_radix2(self):
        K = 64
        assert fft_flops(K) == 3 * 2.5 * K ** 3 * math.log2(K ** 3)

    def test_eq10_total_reciprocal(self):
        # T = fft + ifft + (72 p^3 n + 76 K^3) / B  (paper Eq. 10)
        model = PMECostModel(WESTMERE_EP)
        n, K, p = 2000, 64, 6
        total = model.t_reciprocal(n, K, p)
        bandwidth_part = (72 * p ** 3 * n + 76 * K ** 3) / \
            WESTMERE_EP.bandwidth_bytes
        fft_part = (fft_flops(K) / (WESTMERE_EP.fft_rate(K) * 1e9)
                    + fft_flops(K) / (WESTMERE_EP.ifft_rate(K) * 1e9))
        assert total == pytest.approx(fft_part + bandwidth_part, rel=1e-12)

    def test_eq11_memory(self):
        # M = 24 K^3 + 12 p^3 n + 4 K^3 (paper Eq. 11)
        n, K, p = 1000, 128, 6
        assert pme_memory_bytes(n, K, p) == 28 * K ** 3 + 12 * p ** 3 * n

    def test_breakdown_sums_to_total(self):
        model = PMECostModel(XEON_PHI_KNC)
        n, K, p = 5000, 128, 6
        breakdown = model.breakdown(n, K, p)
        assert sum(breakdown.values()) == pytest.approx(
            model.t_reciprocal(n, K, p), rel=1e-12)


class TestMachines:
    def test_table1_parameters(self):
        assert WESTMERE_EP.cores == 12
        assert WESTMERE_EP.threads == 24
        assert WESTMERE_EP.peak_gflops_dp == 160.0
        assert WESTMERE_EP.memory_gb == 24.0
        assert XEON_PHI_KNC.cores == 61
        assert XEON_PHI_KNC.threads == 244
        assert XEON_PHI_KNC.memory_gb == 8.0

    def test_fft_rate_interpolation_monotone_ends(self):
        # clamped outside the table
        assert XEON_PHI_KNC.fft_rate(8) == XEON_PHI_KNC.fft_rate(16)
        assert XEON_PHI_KNC.fft_rate(1024) == XEON_PHI_KNC.fft_rate(512)

    def test_knc_slower_fft_small_meshes(self):
        # the paper's observation: KNC FFT inefficient for small K
        assert XEON_PHI_KNC.fft_rate(32) < WESTMERE_EP.fft_rate(32)

    def test_knc_faster_overall_large_meshes(self):
        # ... but the higher bandwidth + FFT rate win for large K
        cpu = PMECostModel(WESTMERE_EP)
        knc = PMECostModel(XEON_PHI_KNC)
        n, p = 100_000, 6
        assert knc.t_reciprocal(n, 256, p) < cpu.t_reciprocal(n, 256, p)

    def test_knc_ifft_slower_than_fft(self):
        # "particularly for the 3D inverse FFT"
        for K in (32, 64, 128):
            assert XEON_PHI_KNC.ifft_rate(K) < XEON_PHI_KNC.fft_rate(K)

    def test_memory_capacity_check(self):
        model = PMECostModel(XEON_PHI_KNC)
        assert model.fits_in_memory(10_000, 64, 6)
        assert not model.fits_in_memory(10_000_000, 1024, 6)

    def test_host_machine_defined(self):
        assert HOST.cores >= 1
        assert HOST.fft_rate(64) > 0


class TestRealSpaceModel:
    def test_scales_with_density_and_vectors(self):
        model = PMECostModel(WESTMERE_EP)
        t1 = model.t_real(1000, 10.0)
        t2 = model.t_real(1000, 20.0)
        assert t2 > t1
        # multi-RHS amortizes the matrix traffic: cost per vector drops
        t_block = model.t_real(1000, 10.0, n_vectors=16)
        assert t_block < 16 * t1
