"""Tests for the thread-pool colored spreading executor."""

import numpy as np
import pytest

from repro import Box
from repro.parallel.threads import ThreadedSpreader
from repro.pme.spread import InterpolationMatrix


@pytest.fixture
def system():
    box = Box(16.0)
    rng = np.random.default_rng(33)
    r = rng.uniform(0, box.length, size=(200, 3))
    return box, r


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_threaded_matches_matrix(system, n_workers):
    box, r = system
    K, p = 32, 4
    spreader = ThreadedSpreader(r, box, K, p, n_workers=n_workers)
    interp = InterpolationMatrix(r, box, K, p)
    f = np.random.default_rng(0).standard_normal(r.shape[0])
    np.testing.assert_allclose(spreader.spread(f), interp.spread(f),
                               atol=1e-13)


def test_threaded_multivector(system):
    box, r = system
    spreader = ThreadedSpreader(r, box, 32, 4, n_workers=3)
    interp = InterpolationMatrix(r, box, 32, 4)
    f = np.random.default_rng(1).standard_normal((r.shape[0], 4))
    np.testing.assert_allclose(spreader.spread(f), interp.spread(f),
                               atol=1e-13)


def test_threaded_deterministic(system):
    # thread scheduling must not change the result (disjoint writes)
    box, r = system
    spreader = ThreadedSpreader(r, box, 32, 4, n_workers=4)
    f = np.random.default_rng(2).standard_normal(r.shape[0])
    results = [spreader.spread(f) for _ in range(5)]
    for res in results[1:]:
        np.testing.assert_array_equal(res, results[0])


def test_block_groups_partition_colors(system):
    box, r = system
    spreader = ThreadedSpreader(r, box, 32, 4)
    for group, blocks in zip(spreader._groups, spreader._block_groups):
        if group.size:
            joined = np.sort(np.concatenate(blocks))
            np.testing.assert_array_equal(joined, np.sort(group))


def test_spreader_owns_persistent_pool(system):
    # the pool is created once on the context, not per spread() call
    box, r = system
    with ThreadedSpreader(r, box, 32, 4, n_workers=2) as spreader:
        assert spreader._owns_context
        f = np.random.default_rng(3).standard_normal(r.shape[0])
        spreader.spread(f)
        pool = spreader.context.thread_pool()
        spreader.spread(f)
        assert spreader.context.thread_pool() is pool
    assert spreader.context.closed


def test_spreader_close_is_idempotent(system):
    box, r = system
    spreader = ThreadedSpreader(r, box, 32, 4, n_workers=2)
    spreader.close()
    spreader.close()
    with pytest.raises(RuntimeError, match="closed"):
        spreader.spread(np.zeros(r.shape[0]))


def test_spreader_borrowed_context_left_open(system):
    from repro.exec import ExecutionContext

    box, r = system
    with ExecutionContext(backend="threads", workers=2) as ctx:
        spreader = ThreadedSpreader(r, box, 32, 4, context=ctx)
        f = np.random.default_rng(4).standard_normal(r.shape[0])
        spreader.spread(f)
        spreader.close()
        assert not ctx.closed  # borrowed: owner closes it
