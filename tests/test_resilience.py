"""Fault-injection tests for the recovery runtime (repro.resilience).

Every recovery path is exercised with deterministic injected faults:
the Lanczos retry -> Chebyshev -> dense-reference ladder, NaN-force
dt backoff, NaN-displacement block rollback, and checkpoint corruption
fallback.  The soak test at the bottom is the acceptance run: >= 1,000
steps under injected Lanczos non-convergence, NaN forces and one
mid-write checkpoint kill, completing with every injected fault
accounted for in the RecoveryLog.
"""

import numpy as np
import pytest

from repro.core.brownian import CholeskyBrownianGenerator, KrylovBrownianGenerator
from repro.core.checkpoint import load_checkpoint, resume
from repro.core.integrators import MatrixFreeBD
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError, ConvergenceError
from repro.krylov.block_lanczos import block_lanczos_sqrt
from repro.krylov.chebyshev import chebyshev_sqrt
from repro.krylov.lanczos import lanczos_sqrt
from repro.krylov.reference import cholesky_displacements, dense_sqrt_apply
from repro.pme.operator import PMEParams
from repro.resilience import (
    FailureKind,
    RecoveryLog,
    RecoveryPolicy,
    StepFailure,
    cholesky_displacements_resilient,
    krylov_displacements_resilient,
)
from repro.resilience.faults import (
    FaultSchedule,
    FaultyForceField,
    faulty_checkpoint_callback,
    install_faults,
)
from repro.systems import make_suspension, random_suspension

pytestmark = pytest.mark.faults

PARAMS = PMEParams(xi=0.9, r_max=3.0, K=16, p=4)


def _spd_problem(d=30, s=2, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((d, d))
    m = a @ a.T + 0.5 * np.eye(d)
    z = rng.standard_normal((d, s))
    return m, (lambda v: m @ v), z


# ---------------------------------------------------------------------------
# solver diagnostics attached to ConvergenceError (satellite)
# ---------------------------------------------------------------------------

def test_block_lanczos_error_carries_partial_iterate():
    m, matvec, z = _spd_problem()
    with pytest.raises(ConvergenceError) as exc_info:
        block_lanczos_sqrt(matvec, z, tol=1e-10, max_iter=2)
    err = exc_info.value
    assert err.best_iterate is not None and err.best_iterate.shape == z.shape
    assert err.iterations == 2
    assert err.n_matvecs == 2 * z.shape[1]
    assert err.rel_change == err.residual


def test_lanczos_error_carries_partial_iterate():
    m, matvec, z = _spd_problem(s=1)
    with pytest.raises(ConvergenceError) as exc_info:
        lanczos_sqrt(matvec, z[:, 0], tol=1e-14, max_iter=3)
    err = exc_info.value
    assert err.best_iterate is not None
    assert err.best_iterate.shape == (z.shape[0],)
    assert err.n_matvecs == 3


def test_chebyshev_error_carries_best_evaluation():
    m, matvec, z = _spd_problem()
    # condition number too large for a degree-8 cap at tight tolerance
    with pytest.raises(ConvergenceError) as exc_info:
        chebyshev_sqrt(matvec, z, 1e-9, 1e3, tol=1e-12, max_degree=8)
    err = exc_info.value
    assert err.best_iterate is not None and err.best_iterate.shape == z.shape
    assert np.all(np.isfinite(err.best_iterate))
    assert err.n_matvecs > 0


# ---------------------------------------------------------------------------
# the degradation ladder (unit level)
# ---------------------------------------------------------------------------

def test_ladder_retry_with_grown_budget():
    m, matvec, z = _spd_problem()
    gen = KrylovBrownianGenerator(kT=0.5, dt=1.0, tol=1e-6, max_iter=2)
    log = RecoveryLog()
    y, info = krylov_displacements_resilient(gen, matvec, z,
                                             RecoveryPolicy(), log, step=0)
    ref = dense_sqrt_apply(m, z)
    np.testing.assert_allclose(y, ref, rtol=1e-5)
    assert log.count(action="retry-lanczos") == 1
    assert log.count(action="detect",
                     kind=FailureKind.LANCZOS_NONCONVERGENCE) >= 1
    # the retry loosens then the next tightens back to the original tol
    retries = [e for e in log if e.action == "detect" and e.attempt > 0]
    assert retries[0].detail["tol"] == pytest.approx(1e-6 * 10.0)


def test_ladder_chebyshev_fallback():
    m, matvec, z = _spd_problem()
    gen = KrylovBrownianGenerator(kT=0.5, dt=1.0, tol=1e-6, max_iter=2)
    log = RecoveryLog()
    policy = RecoveryPolicy(lanczos_retries=0)
    y, info = krylov_displacements_resilient(gen, matvec, z, policy, log, 0)
    np.testing.assert_allclose(y, dense_sqrt_apply(m, z), rtol=1e-4)
    assert [e.action for e in log] == ["detect", "fallback-chebyshev"]


def test_ladder_dense_fallback():
    m, matvec, z = _spd_problem()
    gen = KrylovBrownianGenerator(kT=0.5, dt=1.0, tol=1e-6, max_iter=2)
    log = RecoveryLog()
    policy = RecoveryPolicy(lanczos_retries=0, chebyshev_fallback=False)
    y, info = krylov_displacements_resilient(gen, matvec, z, policy, log, 0)
    # the dense rung samples via the Cholesky factor: a valid Brownian
    # sample with the exact covariance, reproducible from (m, z)
    np.testing.assert_allclose(
        y, cholesky_displacements(0.5 * (m + m.T), z), rtol=1e-10)
    assert log.count(action="fallback-cholesky") == 1


def test_ladder_dense_fallback_respects_dim_cap():
    m, matvec, z = _spd_problem()
    gen = KrylovBrownianGenerator(kT=0.5, dt=1.0, tol=1e-6, max_iter=2)
    policy = RecoveryPolicy(lanczos_retries=0, chebyshev_fallback=False,
                            dense_fallback_max_dim=10)
    with pytest.raises(StepFailure):
        krylov_displacements_resilient(gen, matvec, z, policy,
                                       RecoveryLog(), 0)


def test_ladder_accept_partial_iterate():
    m, matvec, z = _spd_problem()
    # enough iterations to get close (rel_change ~1e-3) but an
    # unreachable tolerance; accept the partial iterate instead
    gen = KrylovBrownianGenerator(kT=0.5, dt=1.0, tol=1e-14, max_iter=8)
    log = RecoveryLog()
    policy = RecoveryPolicy(lanczos_retries=0, chebyshev_fallback=False,
                            cholesky_fallback=False,
                            accept_partial_rel_change=1.0)
    y, info = krylov_displacements_resilient(gen, matvec, z, policy, log, 0)
    assert log.count(action="accept-partial") == 1
    assert info is not None and not info.converged
    ref = dense_sqrt_apply(m, z)
    assert np.linalg.norm(y - ref) / np.linalg.norm(ref) < 0.02


def test_ladder_escalates_when_exhausted():
    m, matvec, z = _spd_problem()
    gen = KrylovBrownianGenerator(kT=0.5, dt=1.0, tol=1e-10, max_iter=2)
    policy = RecoveryPolicy(lanczos_retries=0, chebyshev_fallback=False,
                            cholesky_fallback=False)
    with pytest.raises(StepFailure) as exc_info:
        krylov_displacements_resilient(gen, matvec, z, policy,
                                       RecoveryLog(), 0)
    assert exc_info.value.kind is FailureKind.LANCZOS_NONCONVERGENCE


def test_ewald_cholesky_breakdown_falls_back_to_eigh():
    # exactly singular PSD matrix: Cholesky fails, eigh-with-clipping works
    rng = np.random.default_rng(1)
    q, _ = np.linalg.qr(rng.standard_normal((12, 12)))
    w = np.linspace(0.0, 2.0, 12)          # one exactly-zero eigenvalue
    m = (q * w) @ q.T
    m = 0.5 * (m + m.T)
    z = rng.standard_normal((12, 3))
    gen = CholeskyBrownianGenerator(kT=0.5, dt=1.0)
    log = RecoveryLog()
    y = cholesky_displacements_resilient(gen, m, z, RecoveryPolicy(), log, 0)
    assert np.all(np.isfinite(y))
    assert log.count(action="fallback-eigh") == 1
    assert log.count(kind=FailureKind.CHOLESKY_BREAKDOWN) == 2


# ---------------------------------------------------------------------------
# fault schedule determinism
# ---------------------------------------------------------------------------

def test_fault_schedule_is_deterministic():
    def fire_pattern():
        s = FaultSchedule(seed=42, nan_force_rate=0.3)
        return [s.fire("force", "nan") for _ in range(50)]

    first, second = fire_pattern(), fire_pattern()
    assert first == second
    assert any(first)


def test_fault_schedule_explicit_calls_and_counts():
    s = FaultSchedule(force_calls=(1, 3))
    hits = [s.fire("force", "nan") for _ in range(5)]
    assert hits == [False, True, False, True, False]
    assert s.count("force") == 2
    assert [f.call_index for f in s.injected] == [1, 3]


def test_fault_schedule_from_spec():
    s = FaultSchedule.from_spec("seed=7,lanczos=0.25,nan-force=0.5,ckpt=kill@3")
    assert s.seed == 7
    assert s.lanczos_failure_rate == 0.25
    assert s.nan_force_rate == 0.5
    assert s.checkpoint_events == {3: "kill"}
    with pytest.raises(ConfigurationError):
        FaultSchedule.from_spec("bogus=1")
    with pytest.raises(ConfigurationError):
        FaultSchedule.from_spec("ckpt=explode@1")


# ---------------------------------------------------------------------------
# integrator-level recovery paths
# ---------------------------------------------------------------------------

def _mf_integrator(susp, schedule=None, policy=None, seed=5, **kwargs):
    bd = MatrixFreeBD(box=susp.box, force_field=kwargs.pop("force_field", None),
                      dt=1e-3, lambda_rpy=4, seed=seed, pme_params=PARAMS,
                      recovery=policy, **kwargs)
    if schedule is not None:
        install_faults(bd, schedule)
    return bd


def test_injected_lanczos_failure_recovers_by_retry():
    susp = random_suspension(16, 0.1, seed=1)
    schedule = FaultSchedule(brownian_calls=(1,))
    bd = _mf_integrator(susp, schedule, RecoveryPolicy())
    final, stats = bd.run(susp.positions, 12)
    assert np.all(np.isfinite(final))
    assert schedule.count("brownian") == 1
    assert stats.recovery.count(
        action="detect", kind=FailureKind.LANCZOS_NONCONVERGENCE) == 1
    assert stats.recovery.count(action="retry-lanczos") == 1


def test_nan_force_triggers_dt_backoff_and_restore():
    susp = random_suspension(16, 0.15, seed=2)
    from repro.core.forces import RepulsiveHarmonic

    schedule = FaultSchedule(force_calls=(3,))
    policy = RecoveryPolicy(dt_recovery_steps=2)
    bd = _mf_integrator(susp, schedule, policy,
                        force_field=RepulsiveHarmonic(susp.box, susp.fluid))
    final, stats = bd.run(susp.positions, 12)
    assert np.all(np.isfinite(final))
    assert stats.recovery.count(kind=FailureKind.NONFINITE_FORCES,
                                action="detect") == 1
    assert stats.recovery.count(action="dt-backoff") == 1
    assert stats.recovery.count(action="restore-dt") >= 1
    assert bd._dt_scale == 1.0  # fully restored by the end


def test_nan_displacement_block_rolls_back():
    susp = random_suspension(16, 0.1, seed=3)
    schedule = FaultSchedule(brownian_nan_calls=(0,))
    policy = RecoveryPolicy(max_step_attempts=2)
    bd = _mf_integrator(susp, schedule, policy)
    final, stats = bd.run(susp.positions, 8)
    assert np.all(np.isfinite(final))
    assert stats.recovery.count(action="rollback") == 1
    assert stats.recovery.count(kind=FailureKind.NONFINITE_STATE,
                                action="detect") >= 1
    assert stats.n_steps == 8


def test_rollback_budget_exhaustion_raises():
    susp = random_suspension(12, 0.1, seed=4)
    # poison every displacement block: rollback can never succeed
    schedule = FaultSchedule(brownian_nan_calls=tuple(range(50)))
    policy = RecoveryPolicy(max_step_attempts=2, max_rollbacks=2)
    bd = _mf_integrator(susp, schedule, policy)
    with pytest.raises(StepFailure):
        bd.run(susp.positions, 8)


def test_recovered_run_matches_fault_free_run_statistically():
    """A recovered trajectory stays physical: finite, inside the box scale."""
    susp = random_suspension(16, 0.1, seed=6)
    schedule = FaultSchedule(brownian_calls=(0,), force_calls=(5,))
    from repro.core.forces import RepulsiveHarmonic

    bd = _mf_integrator(susp, schedule, RecoveryPolicy(),
                        force_field=RepulsiveHarmonic(susp.box, susp.fluid))
    final, stats = bd.run(susp.positions, 16)
    # displacements stay O(sqrt(2 D dt)) — nothing exploded
    assert np.max(np.abs(final - susp.positions)) < susp.box.length


# ---------------------------------------------------------------------------
# bit-identity guarantees
# ---------------------------------------------------------------------------

def test_zero_fault_recovery_run_is_bit_identical():
    def trajectory(policy):
        susp = make_suspension(16, 0.1, seed=1)
        sim = Simulation(susp, dt=1e-3, lambda_rpy=4, seed=3,
                         recovery=policy, pme_params=PARAMS)
        traj, stats = sim.run(16, record_interval=4)
        return traj, stats

    plain, _ = trajectory(None)
    guarded, stats = trajectory(RecoveryPolicy())
    np.testing.assert_array_equal(plain.positions, guarded.positions)
    np.testing.assert_array_equal(plain.times, guarded.times)
    assert len(stats.recovery) == 0


def test_interrupted_resumed_run_with_recovery_is_bit_identical(tmp_path):
    """Interrupt + resume with a recovery policy == without one, bit-exact.

    (Resume-vs-uninterrupted bit-identity itself is covered in
    ``test_checkpoint.py``; here we pin that enabling recovery changes
    nothing about the resumed arithmetic when no fault fires.)
    """
    from repro.core.checkpoint import checkpoint_callback

    susp = random_suspension(16, 0.1, seed=7)

    def interrupted_run(policy):
        bd_part = _mf_integrator(susp, policy=policy)
        path = tmp_path / f"ckpt-{policy is not None}.npz"
        bd_part.run(susp.positions, 8,
                    callback=checkpoint_callback(path, bd_part, 8))
        bd_resumed = _mf_integrator(susp, policy=policy, seed=999)
        final, stats = resume(path, bd_resumed, 4)
        return final, stats

    plain, _ = interrupted_run(None)
    guarded, stats = interrupted_run(RecoveryPolicy())
    np.testing.assert_array_equal(guarded, plain)
    assert len(stats.recovery) == 0

    # and both agree with the uninterrupted run to rounding
    bd_full = _mf_integrator(susp, policy=RecoveryPolicy())
    full, _ = bd_full.run(susp.positions, 12)
    np.testing.assert_allclose(guarded, full, rtol=0, atol=1e-12)


# ---------------------------------------------------------------------------
# checkpoint fault injection
# ---------------------------------------------------------------------------

def test_checkpoint_kill_preserves_previous_checkpoint(tmp_path):
    susp = random_suspension(12, 0.1, seed=8)
    path = tmp_path / "run.ckpt.npz"
    schedule = FaultSchedule(checkpoint_events={1: "kill"})
    log = RecoveryLog()
    bd = _mf_integrator(susp, policy=RecoveryPolicy())
    cb = faulty_checkpoint_callback(path, bd, 4, schedule, log=log)
    # writes at steps 4 (ok), 8 (killed mid-write), 12 (ok)
    bd.run(susp.positions, 12, callback=cb)
    assert log.count(action="inject-checkpoint-kill") == 1
    assert schedule.count("checkpoint") == 1
    # the atomic writer never tore a file: what survives is valid
    wrapped, unwrapped, step, rng = load_checkpoint(path)
    assert step == 12


def test_checkpoint_truncate_falls_back_to_previous(tmp_path):
    susp = random_suspension(12, 0.1, seed=9)
    path = tmp_path / "run.ckpt.npz"
    schedule = FaultSchedule(checkpoint_events={2: "truncate"})
    log = RecoveryLog()
    bd = _mf_integrator(susp, policy=RecoveryPolicy())
    cb = faulty_checkpoint_callback(path, bd, 4, schedule, log=log)
    bd.run(susp.positions, 12)
    bd2 = _mf_integrator(susp, policy=RecoveryPolicy())
    bd2.run(susp.positions, 12, callback=cb)  # write 2 (step 12) truncated

    from repro.errors import CheckpointCorruptionError

    with pytest.raises(CheckpointCorruptionError):
        load_checkpoint(path)
    # the rotated previous checkpoint (step 8) still resumes the run
    bd3 = _mf_integrator(susp, policy=RecoveryPolicy(), seed=999)
    resumed, _ = resume(path, bd3, 4)
    assert np.all(np.isfinite(resumed))


# ---------------------------------------------------------------------------
# acceptance soak: >= 1,000 steps under combined injected faults
# ---------------------------------------------------------------------------

def test_soak_1000_steps_with_injected_faults(tmp_path):
    from repro.core.forces import RepulsiveHarmonic
    from repro.core.integrators import BDStepStats

    susp = make_suspension(12, 0.1, seed=11)
    policy = RecoveryPolicy(dt_recovery_steps=5)
    sim = Simulation(susp, dt=1e-3, lambda_rpy=10, seed=13,
                     recovery=policy, pme_params=PARAMS)
    schedule = FaultSchedule(seed=17, lanczos_failure_rate=0.05,
                             nan_force_rate=0.003,
                             checkpoint_events={5: "kill"})
    install_faults(sim.integrator, schedule)
    stats = BDStepStats()
    ckpt = tmp_path / "soak.ckpt.npz"
    cb = faulty_checkpoint_callback(ckpt, sim.integrator, 100, schedule,
                                    log=stats.recovery)
    traj, stats = sim.run(1000, record_interval=100, extra_callback=cb,
                          stats=stats)

    # completed without aborting
    assert stats.n_steps == 1000
    assert np.all(np.isfinite(traj.positions))

    # every injected fault is accounted for in the recovery log
    assert schedule.count("brownian") > 0, "soak injected no Lanczos faults"
    assert schedule.count("force") > 0, "soak injected no NaN forces"
    assert stats.recovery.count(
        action="detect", kind=FailureKind.LANCZOS_NONCONVERGENCE
    ) == schedule.count("brownian")
    assert stats.recovery.count(
        action="detect", kind=FailureKind.NONFINITE_FORCES
    ) == schedule.count("force")
    assert stats.recovery.count(
        action="inject-checkpoint-kill") == schedule.count("checkpoint") == 1

    # every detected failure was answered by a recovery action
    lanczos_recoveries = (stats.recovery.count(action="retry-lanczos")
                          + stats.recovery.count(action="fallback-chebyshev")
                          + stats.recovery.count(action="fallback-cholesky"))
    assert lanczos_recoveries >= 1
    assert stats.recovery.count(action="dt-backoff") >= 1

    # the surviving checkpoint is loadable despite the mid-write kill
    wrapped, unwrapped, step, rng = load_checkpoint(ckpt)
    assert step % 100 == 0 and step > 0
