"""Tests for timers and validation helpers."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.timing import PhaseTimer, Timer
from repro.utils.validation import (
    as_force_block,
    as_positions,
    check_square_box,
    require,
)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.02
        assert t.count == 2
        assert t.mean == pytest.approx(t.elapsed / 2)

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.count == 0

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_start_while_running_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()
        # the in-flight interval survives the failed start
        assert t.stop() >= 0.0
        assert t.count == 1


class TestPhaseTimer:
    def test_phases_accumulate_independently(self):
        pt = PhaseTimer()
        with pt.phase("a"):
            time.sleep(0.005)
        with pt.phase("b"):
            time.sleep(0.001)
        with pt.phase("a"):
            time.sleep(0.005)
        assert pt.elapsed("a") > pt.elapsed("b")
        assert pt.total == pytest.approx(pt.elapsed("a") + pt.elapsed("b"))

    def test_unknown_phase_zero(self):
        assert PhaseTimer().elapsed("nope") == 0.0

    def test_breakdown_and_reset(self):
        pt = PhaseTimer()
        with pt.phase("x"):
            pass
        assert "x" in pt.breakdown()
        pt.reset()
        assert pt.total == 0.0

    def test_reentrant_phase(self):
        # recursive entry into the same phase must not double-count:
        # only the outermost occurrence accumulates
        pt = PhaseTimer()
        with pt.phase("x"):
            with pt.phase("x"):
                time.sleep(0.002)
        assert pt.phases["x"].count == 1
        assert pt.elapsed("x") >= 0.002

    def test_distinct_phases_nest(self):
        pt = PhaseTimer()
        with pt.phase("outer"):
            with pt.phase("inner"):
                time.sleep(0.001)
        assert pt.elapsed("outer") >= pt.elapsed("inner") > 0.0


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError):
            require(False, "nope")

    def test_as_positions_happy(self):
        r = as_positions([[1, 2, 3], [4, 5, 6]])
        assert r.dtype == np.float64
        assert r.flags["C_CONTIGUOUS"]

    def test_as_positions_shape(self):
        with pytest.raises(ConfigurationError):
            as_positions(np.zeros((3, 2)))
        with pytest.raises(ConfigurationError):
            as_positions(np.zeros(3))

    def test_as_positions_count(self):
        with pytest.raises(ConfigurationError):
            as_positions(np.zeros((3, 3)), n=4)

    def test_as_positions_finite(self):
        with pytest.raises(ConfigurationError):
            as_positions(np.array([[np.nan, 0, 0]]))

    def test_as_force_block_flat(self):
        f, flat = as_force_block(np.ones(6), n=2)
        assert flat
        assert f.shape == (6, 1)

    def test_as_force_block_matrix(self):
        f, flat = as_force_block(np.ones((6, 4)), n=2)
        assert not flat
        assert f.shape == (6, 4)

    def test_as_force_block_wrong_rows(self):
        with pytest.raises(ConfigurationError):
            as_force_block(np.ones(5), n=2)

    def test_check_square_box(self):
        assert check_square_box(2.5) == 2.5
        with pytest.raises(ConfigurationError):
            check_square_box(-1.0)
        with pytest.raises(ConfigurationError):
            check_square_box(float("inf"))
