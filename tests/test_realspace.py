"""Tests for the real-space BCSR Ewald operator."""

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError
from repro.neighbor.pairs import brute_force_pairs
from repro.pme.realspace import RealSpaceOperator
from repro.rpy import beenakker


@pytest.fixture
def setup():
    box = Box(14.0)
    rng = np.random.default_rng(9)
    r = rng.uniform(0, box.length, size=(30, 3))
    return box, r


def _dense_reference(r, box, xi, r_max):
    """Direct dense construction of the real-space operator."""
    n = r.shape[0]
    out = np.zeros((3 * n, 3 * n))
    i, j = brute_force_pairs(r, box, r_max)
    if i.size:
        rij, dist = box.distances(r, i, j)
        tensors = beenakker.real_space_tensors(rij, xi)
        for k in range(i.size):
            out[3 * i[k]:3 * i[k] + 3, 3 * j[k]:3 * j[k] + 3] = tensors[k]
            out[3 * j[k]:3 * j[k] + 3, 3 * i[k]:3 * i[k] + 3] = tensors[k].T
    diag = beenakker.self_mobility_scalar(xi)
    out[np.arange(3 * n), np.arange(3 * n)] += diag
    return out


def test_matches_dense_reference(setup):
    box, r = setup
    op = RealSpaceOperator(r, box, xi=0.8, r_max=5.0)
    dense = _dense_reference(r, box, 0.8, 5.0)
    f = np.random.default_rng(0).standard_normal(3 * r.shape[0])
    np.testing.assert_allclose(op.apply(f), dense @ f, rtol=1e-10)


def test_engines_agree(setup):
    box, r = setup
    f = np.random.default_rng(1).standard_normal((3 * r.shape[0], 4))
    u_scipy = RealSpaceOperator(r, box, xi=0.8, r_max=4.0,
                                engine="scipy").apply(f)
    u_bcsr = RealSpaceOperator(r, box, xi=0.8, r_max=4.0,
                               engine="bcsr").apply(f)
    np.testing.assert_allclose(u_bcsr, u_scipy, rtol=1e-12)


def test_neighbor_backends_agree(setup):
    box, r = setup
    f = np.random.default_rng(2).standard_normal(3 * r.shape[0])
    results = [RealSpaceOperator(r, box, xi=0.8, r_max=4.0,
                                 neighbor_backend=b).apply(f)
               for b in ("cells", "kdtree", "brute")]
    np.testing.assert_allclose(results[1], results[0], rtol=1e-12)
    np.testing.assert_allclose(results[2], results[0], rtol=1e-12)


def test_block_application_matches_columns(setup):
    box, r = setup
    op = RealSpaceOperator(r, box, xi=0.8, r_max=4.0)
    f = np.random.default_rng(3).standard_normal((3 * r.shape[0], 6))
    block = op.apply(f)
    for c in range(6):
        np.testing.assert_allclose(block[:, c], op.apply(f[:, c]),
                                   rtol=1e-12)


def test_self_term_only_for_isolated_particle():
    box = Box(20.0)
    r = np.array([[10.0, 10.0, 10.0]])
    op = RealSpaceOperator(r, box, xi=0.7, r_max=5.0)
    f = np.array([1.0, 0.0, 0.0])
    expect = beenakker.self_mobility_scalar(0.7)
    np.testing.assert_allclose(op.apply(f), [expect, 0.0, 0.0], rtol=1e-12)


def test_cutoff_validation():
    box = Box(10.0)
    r = np.zeros((2, 3))
    with pytest.raises(ConfigurationError):
        RealSpaceOperator(r, box, xi=1.0, r_max=6.0)   # > L/2
    with pytest.raises(ConfigurationError):
        RealSpaceOperator(r, box, xi=1.0, r_max=0.0)
    with pytest.raises(ConfigurationError):
        RealSpaceOperator(r, box, xi=1.0, r_max=4.0, engine="cuda")


def test_pair_count_and_memory(setup):
    box, r = setup
    op = RealSpaceOperator(r, box, xi=0.8, r_max=4.0)
    i, _ = brute_force_pairs(r, box, 4.0)
    assert op.n_pairs == i.size
    assert op.nnz_blocks == 2 * i.size + r.shape[0]
    assert op.memory_bytes > 0


def test_overlap_correction_toggles(setup):
    box = Box(10.0)
    r = np.array([[1.0, 1.0, 1.0], [2.5, 1.0, 1.0]])  # dist 1.5 < 2a
    f = np.array([1.0, 0, 0, 0, 0, 0])
    with_corr = RealSpaceOperator(r, box, xi=1.0, r_max=4.0,
                                  overlap_corrected=True).apply(f)
    without = RealSpaceOperator(r, box, xi=1.0, r_max=4.0,
                                overlap_corrected=False).apply(f)
    assert not np.allclose(with_corr, without)
