"""Tests for the composed PME mobility operator — accuracy vs dense Ewald."""

import numpy as np
import pytest

from repro import Box, FluidParams, PMEOperator, PMEParams
from repro.errors import ConfigurationError
from repro.rpy.ewald import EwaldSummation


@pytest.fixture(scope="module")
def system():
    box = Box.for_volume_fraction(45, 0.2)
    rng = np.random.default_rng(12)
    r = rng.uniform(0, box.length, size=(45, 3))
    reference = EwaldSummation(box=box, tol=1e-12).matrix(r)
    return box, r, reference


PARAMS = PMEParams(xi=1.0, r_max=4.0, K=48, p=6)


def test_accuracy_against_dense_ewald(system):
    box, r, ref = system
    op = PMEOperator(r, box, PARAMS)
    rng = np.random.default_rng(0)
    f = rng.standard_normal(3 * r.shape[0])
    u = op.apply(f)
    err = np.linalg.norm(u - ref @ f) / np.linalg.norm(ref @ f)
    assert err < 2e-3


def test_higher_resolution_is_more_accurate(system):
    box, r, ref = system
    rng = np.random.default_rng(1)
    f = rng.standard_normal(3 * r.shape[0])
    errs = []
    for K, p in ((32, 4), (48, 6), (64, 8)):
        op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=K, p=p))
        u = op.apply(f)
        errs.append(np.linalg.norm(u - ref @ f) / np.linalg.norm(ref @ f))
    assert errs[2] < errs[1] < errs[0]


def test_operator_is_symmetric(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    rng = np.random.default_rng(2)
    x = rng.standard_normal(3 * r.shape[0])
    y = rng.standard_normal(3 * r.shape[0])
    assert np.dot(y, op.apply(x)) == pytest.approx(np.dot(x, op.apply(y)),
                                                   rel=1e-8)


def test_block_matches_column_loop(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    rng = np.random.default_rng(3)
    f = rng.standard_normal((3 * r.shape[0], 5))
    block = op.apply(f)
    for c in range(5):
        np.testing.assert_allclose(block[:, c], op.apply(f[:, c]),
                                   rtol=1e-10, atol=1e-12)


def test_store_p_false_matches(system):
    box, r, _ = system
    rng = np.random.default_rng(4)
    f = rng.standard_normal(3 * r.shape[0])
    u_stored = PMEOperator(r, box, PARAMS, store_p=True).apply(f)
    u_fly = PMEOperator(r, box, PARAMS, store_p=False).apply(f)
    np.testing.assert_allclose(u_fly, u_stored, rtol=1e-10, atol=1e-13)


def test_linearity(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    rng = np.random.default_rng(5)
    x = rng.standard_normal(3 * r.shape[0])
    y = rng.standard_normal(3 * r.shape[0])
    np.testing.assert_allclose(op.apply(2.0 * x - 0.5 * y),
                               2.0 * op.apply(x) - 0.5 * op.apply(y),
                               rtol=1e-10, atol=1e-12)


def test_real_plus_reciprocal_composition(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    rng = np.random.default_rng(6)
    f = rng.standard_normal(3 * r.shape[0])
    total = op.apply(f)
    parts = (op.apply_real(f) + op.apply_reciprocal(f)) * op.fluid.mobility0
    np.testing.assert_allclose(total, parts, rtol=1e-12)


def test_linear_operator_adapter(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    lo = op.as_linear_operator()
    rng = np.random.default_rng(7)
    f = rng.standard_normal(3 * r.shape[0])
    np.testing.assert_allclose(lo @ f, op.apply(f), rtol=1e-12)


def test_physical_units(system):
    box, r, ref = system
    fluid = FluidParams(viscosity=3.0)
    op = PMEOperator(r, box, PARAMS, fluid=fluid)
    rng = np.random.default_rng(8)
    f = rng.standard_normal(3 * r.shape[0])
    np.testing.assert_allclose(op.apply(f),
                               PMEOperator(r, box, PARAMS).apply(f)
                               * fluid.mobility0, rtol=1e-12)


def test_phase_timers_populated(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    op.apply(np.ones(3 * r.shape[0]))
    breakdown = op.phase_breakdown()
    for phase in ("spread", "fft", "influence", "ifft", "interpolate", "real"):
        assert breakdown.get(phase, 0.0) > 0.0


def test_application_counter(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    op.apply(np.ones(3 * r.shape[0]))
    op.apply(np.ones((3 * r.shape[0], 4)))
    assert op.n_applications == 5


def test_memory_report(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    report = op.memory_report()
    assert report["total"] == sum(v for k, v in report.items()
                                  if k != "total")
    assert report["influence_function"] == op.influence.memory_bytes
    # O(n) + O(K^3) scaling: far below the dense 9 n^2 * 8 bytes already
    # for this small system? not necessarily — just check positivity
    assert report["total"] > 0


def test_wrong_force_shape_rejected(system):
    box, r, _ = system
    op = PMEOperator(r, box, PARAMS)
    with pytest.raises(ConfigurationError):
        op.apply(np.ones(7))


def test_params_validation():
    with pytest.raises(ConfigurationError):
        PMEParams(xi=0.0, r_max=4.0, K=32)
    with pytest.raises(ConfigurationError):
        PMEParams(xi=1.0, r_max=-1.0, K=32)
    with pytest.raises(ConfigurationError):
        PMEParams(xi=1.0, r_max=4.0, K=4, p=6)


def test_single_particle_self_mobility():
    # PME of an isolated particle reproduces the periodic self-mobility
    box = Box(20.0)
    r = np.array([[10.0, 10.0, 10.0]])
    op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=5.0, K=64, p=6))
    u = op.apply(np.array([1.0, 0.0, 0.0]))
    ref = EwaldSummation(box=box, tol=1e-12).matrix(r)
    assert u[0] == pytest.approx(ref[0, 0], rel=1e-4)
    assert abs(u[1]) < 1e-6
    assert abs(u[2]) < 1e-6
