"""Tests for the analysis subpackage (MSD, diffusion, statistics, g(r))."""

import numpy as np
import pytest

from repro import Box, REDUCED, Trajectory
from repro.analysis import (
    block_average,
    diffusion_coefficient,
    finite_size_correction,
    mean_squared_displacement,
    radial_distribution,
    short_time_self_diffusion,
)
from repro.errors import ConfigurationError


class TestMSD:
    def test_linear_motion(self):
        # r(t) = v t -> MSD(lag) = |v|^2 lag^2
        t = np.arange(10)
        v = np.array([1.0, 2.0, 2.0])   # |v|^2 = 9
        pos = t[:, None, None] * v[None, None, :]
        msd = mean_squared_displacement(pos)
        np.testing.assert_allclose(msd, 9.0 * np.arange(10) ** 2)

    def test_static_configuration(self):
        pos = np.ones((5, 3, 3))
        np.testing.assert_allclose(mean_squared_displacement(pos), 0.0)

    def test_max_lag_truncation(self):
        pos = np.random.default_rng(0).standard_normal((20, 4, 3))
        msd = mean_squared_displacement(pos, max_lag=5)
        assert msd.shape == (6,)

    def test_brownian_scaling_statistical(self):
        # pure random walk: MSD(lag) ~ 3 sigma^2 lag
        rng = np.random.default_rng(1)
        sigma = 0.1
        steps = rng.normal(0, sigma, size=(2000, 50, 3))
        pos = np.cumsum(steps, axis=0)
        msd = mean_squared_displacement(pos, max_lag=5)
        for lag in (1, 3, 5):
            assert msd[lag] == pytest.approx(3 * sigma ** 2 * lag, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_squared_displacement(np.zeros((1, 3, 3)))
        with pytest.raises(ConfigurationError):
            mean_squared_displacement(np.zeros((5, 3, 2)))


class TestDiffusionCoefficient:
    def _make_trajectory(self, D, n_frames=400, n_particles=200, dt=0.01,
                         seed=0):
        rng = np.random.default_rng(seed)
        steps = rng.normal(0, np.sqrt(2 * D * dt),
                           size=(n_frames, n_particles, 3))
        pos = np.cumsum(steps, axis=0)
        times = np.arange(n_frames) * dt
        return Trajectory(times, pos, box_length=100.0, fluid=REDUCED)

    def test_recovers_known_diffusion(self):
        traj = self._make_trajectory(D=0.7)
        d_est = diffusion_coefficient(traj, lag_frames=1)
        assert d_est == pytest.approx(0.7, rel=0.05)

    def test_lag_choice_consistent(self):
        traj = self._make_trajectory(D=0.5, seed=1)
        d1 = diffusion_coefficient(traj, lag_frames=1)
        d5 = diffusion_coefficient(traj, lag_frames=5)
        assert d5 == pytest.approx(d1, rel=0.1)

    def test_validation(self):
        traj = self._make_trajectory(D=1.0, n_frames=3)
        with pytest.raises(ConfigurationError):
            diffusion_coefficient(traj, lag_frames=0)
        with pytest.raises(ConfigurationError):
            diffusion_coefficient(traj, lag_frames=10)


class TestTheory:
    def test_short_time_dilute_limit(self):
        assert short_time_self_diffusion(0.0) == 1.0

    def test_monotone_decrease(self):
        phis = np.linspace(0, 0.45, 10)
        values = [short_time_self_diffusion(p) for p in phis]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_batchelor_slope(self):
        eps = 1e-6
        slope = (short_time_self_diffusion(eps) - 1.0) / eps
        assert slope == pytest.approx(-1.8315, rel=1e-6)

    def test_finite_size_limits(self):
        assert finite_size_correction(0.0) == 1.0
        assert finite_size_correction(0.1) < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            short_time_self_diffusion(-0.1)
        with pytest.raises(ConfigurationError):
            finite_size_correction(0.6)


class TestBlockAverage:
    def test_constant_series(self):
        mean, err = block_average(np.full(100, 3.0))
        assert mean == pytest.approx(3.0)
        assert err == pytest.approx(0.0, abs=1e-12)

    def test_iid_series_error_scale(self):
        rng = np.random.default_rng(2)
        x = rng.normal(5.0, 1.0, size=10_000)
        mean, err = block_average(x, n_blocks=10)
        assert mean == pytest.approx(5.0, abs=5 * err + 0.05)
        assert err == pytest.approx(1.0 / np.sqrt(10_000), rel=0.8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            block_average(np.ones(5), n_blocks=1)
        with pytest.raises(ConfigurationError):
            block_average(np.ones(3), n_blocks=10)


class TestRDF:
    def test_ideal_gas_flat(self):
        rng = np.random.default_rng(3)
        box = Box(20.0)
        r = rng.uniform(0, box.length, size=(3000, 3))
        centers, g = radial_distribution(r, box, r_max=8.0, n_bins=20)
        # skip the innermost (poorly sampled) bins
        np.testing.assert_allclose(g[3:], 1.0, atol=0.15)

    def test_hard_sphere_exclusion(self):
        from repro.systems import random_suspension
        susp = random_suspension(300, 0.2, seed=0)
        centers, g = radial_distribution(susp.positions, susp.box,
                                         r_max=min(5.0, susp.box.length / 2),
                                         n_bins=25)
        # no pairs below contact distance 2a
        assert np.all(g[centers < 2.0] == 0.0)
        # contact peak present at/just above 2a
        assert g[(centers >= 2.0) & (centers < 3.0)].max() > 1.0

    def test_validation(self):
        box = Box(10.0)
        with pytest.raises(ConfigurationError):
            radial_distribution(np.zeros((1, 3)), box, 3.0)
        with pytest.raises(ConfigurationError):
            radial_distribution(np.zeros((5, 3)), box, 6.0)
