"""Tests for the PME influence function."""

import numpy as np
import pytest

from repro import Box
from repro.errors import ConfigurationError
from repro.pme.influence import InfluenceFunction
from repro.pme.mesh import Mesh


@pytest.fixture
def influence():
    mesh = Mesh(Box(10.0), 16)
    return InfluenceFunction(mesh, xi=1.0, p=6)


def _random_spectrum(mesh, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((3,) + mesh.rshape)
            + 1j * rng.standard_normal((3,) + mesh.rshape))


def test_zero_mode_removed(influence):
    c = _random_spectrum(influence.mesh)
    d = influence.apply(c)
    np.testing.assert_allclose(d[:, 0, 0, 0], 0.0)


def test_transversality(influence):
    # output spectrum is perpendicular to k at every mode
    mesh = influence.mesh
    c = _random_spectrum(mesh)
    d = influence.apply(c)
    gx, gy, gz = mesh.k_grids()
    dot = d[0] * gx + d[1] * gy + d[2] * gz
    assert np.abs(dot).max() < 1e-10 * max(np.abs(d).max(), 1.0)


def test_projector_idempotent_up_to_scalar(influence):
    # applying twice equals applying once with the scalar squared
    # (the projector part is idempotent)
    c = _random_spectrum(influence.mesh, seed=1)
    once = influence.apply(c.copy())
    twice = influence.apply(once.copy())
    scalar = influence.scalar
    safe = np.where(scalar == 0.0, 1.0, scalar)
    np.testing.assert_allclose(twice / safe, once,
                               atol=1e-10 * np.abs(once).max())


def test_in_place_application(influence):
    c = _random_spectrum(influence.mesh, seed=2)
    expected = influence.apply(c.copy())
    out = influence.apply(c, out=c)
    assert out is c
    np.testing.assert_allclose(c, expected)


def test_memory_factor_six(influence):
    # storing the scalar instead of the 3x3 tensor saves exactly 6x
    assert influence.tensor_memory_bytes == 6 * influence.memory_bytes


def test_scalar_includes_volume_normalization():
    # doubling the box at fixed K scales the stored scalar by K^3/V and
    # the physical kernel change; just verify the 1/V factor directly
    mesh1 = Mesh(Box(10.0), 16)
    inf1 = InfluenceFunction(mesh1, xi=1.0, p=6)
    mesh2 = Mesh(Box(20.0), 32)  # same spacing, 8x volume
    inf2 = InfluenceFunction(mesh2, xi=1.0, p=6)
    # identical k modes exist in both; compare k = (2pi/10, 0, 0) which is
    # mode (1,0,0) in box 10 and (2,0,0) in box 20
    ratio = inf2.scalar[2, 0, 0] / inf1.scalar[1, 0, 0]
    # scalar includes K^3/V: (32^3/20^3) / (16^3/10^3) = 1
    assert ratio == pytest.approx(1.0, rel=1e-9)


def test_shape_validation(influence):
    with pytest.raises(ConfigurationError):
        influence.apply(np.zeros((3, 4, 4, 3), dtype=complex))


def test_rejects_bad_xi():
    with pytest.raises(ConfigurationError):
        InfluenceFunction(Mesh(Box(5.0), 8), xi=0.0, p=4)
