"""Tests for the Oseen (Stokeslet) kernel variant.

The related-work kernel the paper contrasts with its RPY-PME
(Section I: Stokesian PME codes "use the PME summation of the Stokeslet
or Oseen tensor, rather than the Rotne-Prager-Yamakawa tensor").
"""

import numpy as np
import pytest

from repro import Box, PMEOperator, PMEParams
from repro.errors import ConfigurationError
from repro.rpy import beenakker
from repro.rpy.ewald import EwaldSummation


@pytest.fixture(scope="module")
def system():
    box = Box(18.0)
    rng = np.random.default_rng(44)
    return box, rng.uniform(0, box.length, size=(6, 3))


def test_alpha_invariance_oseen(system):
    box, r = system
    mats = [EwaldSummation(box=box, xi=xi, tol=1e-10, kernel="oseen").matrix(r)
            for xi in (0.3, 0.5, 0.8)]
    scale = np.abs(mats[0]).max()
    for m in mats[1:]:
        np.testing.assert_allclose(m, mats[0], atol=5e-7 * scale)


def test_oseen_differs_from_rpy(system):
    box, r = system
    m_rpy = EwaldSummation(box=box, tol=1e-8).matrix(r)
    m_oseen = EwaldSummation(box=box, tol=1e-8, kernel="oseen").matrix(r)
    assert np.abs(m_rpy - m_oseen).max() > 1e-5


def test_kernels_agree_far_field():
    # the a^3 terms decay as 1/r^3 vs the Stokeslet's 1/r: at large
    # separation in a large box the two kernels coincide
    box = Box(300.0)
    r = np.array([[0.0, 0.0, 0.0], [60.0, 0.0, 0.0]])
    pair_rpy = EwaldSummation(box=box, tol=1e-10).matrix(r)[0:3, 3:6]
    pair_oseen = EwaldSummation(box=box, tol=1e-10,
                                kernel="oseen").matrix(r)[0:3, 3:6]
    np.testing.assert_allclose(pair_oseen, pair_rpy, atol=1e-5)


def test_oseen_self_mobility_differs():
    # same leading Hasimoto correction, no (xi a)^3 self term
    assert beenakker.self_mobility_scalar(0.5, kernel="oseen") == \
        pytest.approx(1.0 - 6 * 0.5 / np.sqrt(np.pi))


def test_oseen_real_space_is_a3_free():
    # the Oseen real-space function is the a^3 -> 0 limit of Beenakker's
    r = np.array([3.0, 5.0])
    f_o, g_o = beenakker.real_space_coefficients(r, 0.7, kernel="oseen")
    f_r, g_r = beenakker.real_space_coefficients(r, 0.7, kernel="rpy")
    assert np.all(f_o != f_r)
    # reconstruct: rpy = oseen + (a^3 terms); verify via the known
    # closed forms at one point
    import math
    from scipy.special import erfc
    xi, rr = 0.7, 3.0
    gauss = math.exp(-(xi * rr) ** 2) / math.sqrt(math.pi)
    expected_f_oseen = (erfc(xi * rr) * 0.75 / rr
                        + gauss * (3 * xi ** 3 * rr ** 2 - 4.5 * xi))
    assert f_o[0] == pytest.approx(expected_f_oseen, rel=1e-12)


def test_oseen_not_positive_definite_at_close_range():
    # the classical failure RPY fixes: the Oseen mobility loses positive
    # definiteness for close particles, RPY never does
    box = Box(20.0)
    r = np.array([[5.0, 5.0, 5.0], [6.2, 5.0, 5.0]])   # r = 1.2 < 2a
    m_oseen = EwaldSummation(box=box, tol=1e-8, kernel="oseen").matrix(r)
    m_rpy = EwaldSummation(box=box, tol=1e-8).matrix(r)
    assert np.linalg.eigvalsh(m_oseen).min() < 0
    assert np.linalg.eigvalsh(m_rpy).min() > 0


def test_oseen_matrix_exempt_from_strict_spd_gate(monkeypatch):
    # the strict-mode SPD return contract must not reject the Oseen
    # kernel: its indefiniteness at close range is correct physics,
    # not a bug the contract should catch
    monkeypatch.setenv("REPRO_CHECKS", "strict")
    box = Box(20.0)
    r = np.array([[5.0, 5.0, 5.0], [6.2, 5.0, 5.0]])
    m_oseen = EwaldSummation(box=box, tol=1e-8, kernel="oseen").matrix(r)
    assert np.linalg.eigvalsh(m_oseen).min() < 0
    with pytest.raises(ConfigurationError, match="positive definite"):
        # the RPY kernel keeps the gate: force a non-SPD return by
        # checking the close-range *Oseen* matrix through it
        from repro.lint.contracts import _check_spd
        _check_spd(m_oseen, "gate check")


def test_oseen_pme_matches_dense():
    rng = np.random.default_rng(9)
    n = 40
    box = Box.for_volume_fraction(n, 0.2)
    r = rng.uniform(0, box.length, size=(n, 3))
    ref = EwaldSummation(box=box, tol=1e-12, kernel="oseen").matrix(r)
    op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=48, p=6,
                                       kernel="oseen"))
    f = rng.standard_normal(3 * n)
    u = op.apply(f)
    err = np.linalg.norm(u - ref @ f) / np.linalg.norm(ref @ f)
    assert err < 1e-3


def test_oseen_pme_operator_symmetric():
    rng = np.random.default_rng(10)
    n = 30
    box = Box.for_volume_fraction(n, 0.2)
    r = rng.uniform(0, box.length, size=(n, 3))
    op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=32, p=4,
                                       kernel="oseen"))
    x = rng.standard_normal(3 * n)
    y = rng.standard_normal(3 * n)
    assert np.dot(y, op.apply(x)) == pytest.approx(np.dot(x, op.apply(y)),
                                                   rel=1e-8)


def test_unknown_kernel_rejected(system):
    box, _ = system
    with pytest.raises(ConfigurationError):
        EwaldSummation(box=box, kernel="stokeslet-doublet")
    with pytest.raises(ConfigurationError):
        PMEParams(xi=1.0, r_max=4.0, K=32, kernel="magic")
    with pytest.raises(ValueError):
        beenakker.reciprocal_scalar(np.array([1.0]), 1.0, kernel="magic")
