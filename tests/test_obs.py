"""Tests for repro.obs: tracer, metrics, exports, pipeline wiring."""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.schema import (
    SchemaError,
    validate_chrome_trace,
    validate_metrics_json,
    validate_prometheus_text,
    validate_trace_events,
)
from repro.obs.trace import NULL_SPAN, read_jsonl


@pytest.fixture(autouse=True)
def _clean_obs_globals():
    """Every test starts and ends with observability disabled."""
    previous_tracer = obs.set_tracer(None)
    previous_registry = obs.set_metrics(None)
    yield
    obs.set_tracer(previous_tracer)
    obs.set_metrics(previous_registry)


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------

class TestTracer:
    def test_span_records_event(self):
        tracer = obs.Tracer()
        with tracer.span("pme.fft", K=32):
            pass
        (event,) = tracer.events
        assert event.name == "pme.fft"
        assert event.phase == "X"
        assert event.dur >= 0
        assert event.args == {"K": 32}
        assert event.depth == 0

    def test_nesting_depths(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # inner exits (and records) first
        inner, outer = tracer.events
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert outer.dur >= inner.dur
        assert outer.ts <= inner.ts

    def test_instant_event(self):
        tracer = obs.Tracer()
        tracer.instant("recovery.retry", kind="nan")
        (event,) = tracer.events
        assert event.phase == "i"
        assert event.dur == 0.0
        assert event.args == {"kind": "nan"}

    def test_totals_and_counts_with_prefix(self):
        tracer = obs.Tracer()
        for _ in range(3):
            with tracer.span("pme.spread"):
                pass
        with tracer.span("bd.mobility"):
            pass
        tracer.instant("recovery.retry")
        assert tracer.counts("pme.") == {"pme.spread": 3}
        assert set(tracer.totals()) == {"pme.spread", "bd.mobility"}
        assert tracer.totals("pme.")["pme.spread"] >= 0

    def test_max_events_drops_not_grows(self):
        tracer = obs.Tracer(max_events=2)
        for _ in range(5):
            with tracer.span("x"):
                pass
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_thread_safety(self):
        tracer = obs.Tracer()
        n_threads, spans_each = 8, 25
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for i in range(spans_each):
                with tracer.span("outer", i=i):
                    with tracer.span("inner"):
                        pass

        threads = [threading.Thread(target=work)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.events) == n_threads * spans_each * 2
        assert tracer.counts() == {"outer": n_threads * spans_each,
                                   "inner": n_threads * spans_each}
        # depth is tracked per thread: every inner is depth 1
        for event in tracer.events:
            assert event.depth == (1 if event.name == "inner" else 0)
        assert len({e.tid for e in tracer.events}) == n_threads


# ----------------------------------------------------------------------
# disabled fast path
# ----------------------------------------------------------------------

class TestDisabled:
    def test_span_returns_shared_null_singleton(self):
        assert not obs.tracing_enabled()
        assert obs.span("pme.fft", K=32) is NULL_SPAN
        assert obs.span("other") is NULL_SPAN

    def test_facades_are_noops(self):
        obs.instant("recovery.retry")
        obs.inc("c_total")
        obs.observe("h", 3)
        obs.set_gauge("g", 1.0)
        obs.record_solver("lanczos", 5, True, 1e-3, 5)
        assert obs.get_tracer() is None
        assert obs.get_metrics() is None

    def test_enable_disable_roundtrip(self):
        tracer, registry = obs.enable()
        assert obs.get_tracer() is tracer
        assert obs.get_metrics() is registry
        with obs.span("x"):
            pass
        obs.inc("n_total")
        assert len(tracer.events) == 1
        assert registry.counter("n_total").value == 1
        obs.disable()
        assert not obs.tracing_enabled()
        assert not obs.metrics_enabled()


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------

class TestExports:
    def _populated(self):
        tracer = obs.Tracer()
        with tracer.span("pme.spread", n=10):
            with tracer.span("pme.fft"):
                pass
        tracer.instant("recovery.retry", kind="nan")
        return tracer

    def test_jsonl_roundtrip_and_schema(self, tmp_path):
        tracer = self._populated()
        path = tracer.write_jsonl(tmp_path / "t.jsonl")
        events = read_jsonl(path)
        validate_trace_events(events)
        assert [e["name"] for e in events] == ["pme.fft", "pme.spread",
                                               "recovery.retry"]
        assert events[1]["args"] == {"n": 10}

    def test_chrome_trace_schema(self):
        doc = self._populated().to_chrome_trace()
        validate_chrome_trace(doc)
        assert doc["displayTimeUnit"] == "ms"
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        # microsecond timestamps, category = dotted root
        assert by_name["pme.spread"]["cat"] == "pme"
        assert by_name["pme.spread"]["dur"] >= by_name["pme.fft"]["dur"]
        assert by_name["recovery.retry"]["ph"] == "i"
        assert by_name["recovery.retry"]["s"] == "t"

    def test_zero_event_exports_are_valid(self, tmp_path):
        tracer = obs.Tracer()
        path = tracer.write_jsonl(tmp_path / "empty.jsonl")
        assert read_jsonl(path) == []
        validate_trace_events(read_jsonl(path))
        doc = tracer.to_chrome_trace()
        validate_chrome_trace(doc)
        assert doc["traceEvents"] == []

    def test_schema_rejects_malformed_event(self):
        with pytest.raises(SchemaError):
            validate_trace_events([{"name": "x", "ph": "X"}])
        with pytest.raises(SchemaError):
            validate_trace_events([{"name": "x", "ph": "i", "ts": 0,
                                    "dur": 0.5, "tid": 1, "depth": 0}])


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_monotone(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("bd_steps_total")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_kind_conflict_raises(self):
        registry = obs.MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total")

    def test_labels_create_distinct_series(self):
        registry = obs.MetricsRegistry()
        registry.counter("solves_total", method="lanczos").inc()
        registry.counter("solves_total", method="chebyshev").inc(5)
        assert registry.counter("solves_total",
                                method="lanczos").value == 1
        assert registry.counter("solves_total",
                                method="chebyshev").value == 5

    def test_histogram_stats(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("iters", buckets=(1, 10, 100))
        for v in (3, 7, 40):
            hist.observe(v)
        assert hist.count == 3
        assert hist.mean == pytest.approx(50 / 3)
        assert hist.min == 3 and hist.max == 40
        assert hist.counts == [0, 2, 3]

    def test_prometheus_text_validates(self):
        registry = obs.MetricsRegistry()
        registry.counter("a_total", help="things done").inc()
        registry.gauge("g", scope="run").set(0.5)
        registry.histogram("h").observe(2)
        text = registry.to_prometheus_text()
        validate_prometheus_text(text)
        assert "# TYPE a_total counter" in text
        assert 'g{scope="run"} 0.5' in text
        assert "h_bucket" in text and "h_count 1" in text

    def test_json_export_validates(self):
        registry = obs.MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("h").observe(2)
        doc = registry.to_json()
        validate_metrics_json(doc)
        assert json.loads(json.dumps(doc)) == doc

    def test_record_solver_populates_families(self):
        registry = obs.MetricsRegistry()
        obs.set_metrics(registry)
        obs.record_solver("lanczos", iterations=7, converged=True,
                          rel_change=1e-3, n_matvecs=9)
        assert registry.counter("krylov_solves_total", method="lanczos",
                                converged="true").value == 1
        assert registry.counter("krylov_matvecs_total",
                                method="lanczos").value == 9
        assert registry.histogram("krylov_iterations",
                                  method="lanczos").count == 1


# ----------------------------------------------------------------------
# pipeline wiring: spans + metrics from a real simulation
# ----------------------------------------------------------------------

def _run_sim(n_steps=3, with_obs=False):
    from repro.core.simulation import Simulation
    from repro.systems.suspension import make_suspension

    susp = make_suspension(24, 0.1, seed=3)
    sim = Simulation(susp, algorithm="matrix-free", dt=1e-3,
                     lambda_rpy=2, seed=4, e_k=1e-2, target_ep=1e-2)
    if with_obs:
        tracer, registry = obs.enable()
    else:
        tracer = registry = None
    try:
        traj, stats = sim.run(n_steps=n_steps, record_interval=1)
    finally:
        if with_obs:
            obs.disable()
    return traj, stats, tracer, registry


class TestPipelineWiring:
    def test_traced_run_is_bit_identical_to_untraced(self):
        traj_plain, _, _, _ = _run_sim()
        traj_traced, _, _, _ = _run_sim(with_obs=True)
        np.testing.assert_array_equal(traj_plain.positions,
                                      traj_traced.positions)

    def test_span_taxonomy_and_timer_reconciliation(self):
        _, stats, tracer, registry = _run_sim(n_steps=3, with_obs=True)
        counts = tracer.counts()
        assert counts["sim.run"] == 1
        # 3 steps with lambda_rpy=2 -> 2 mobility blocks
        assert counts["bd.block"] == 2
        expected = {"mobility": 2, "brownian": 2,
                    "forces": 3, "propagate": 3}
        for phase, n_expected in expected.items():
            name = f"bd.{phase}"
            assert counts[name] == n_expected
            # the span encloses the timer's start/stop pair
            span_total = tracer.totals()[name]
            timer_total = stats.timers.elapsed(phase)
            assert span_total >= timer_total
            assert span_total <= timer_total + 0.25
        assert counts["pme.fft"] >= 1
        assert any(name.startswith("krylov.") for name in counts)
        # solver + step metrics landed in the registry
        assert registry.counter("bd_steps_total").value == 3
        assert registry.counter("pme_applications_total").value > 0
        # one Krylov solve per mobility block
        assert registry.histogram("bd_krylov_iterations").count == 2
        validate_prometheus_text(registry.to_prometheus_text())
        validate_metrics_json(registry.to_json())

    def test_recovery_events_traced(self):
        from repro.core.simulation import Simulation
        from repro.resilience import RecoveryPolicy
        from repro.resilience.faults import FaultSchedule, install_faults
        from repro.systems.suspension import make_suspension

        susp = make_suspension(24, 0.1, seed=3)
        sim = Simulation(susp, algorithm="matrix-free", dt=1e-3,
                         lambda_rpy=2, seed=4, e_k=1e-2, target_ep=1e-2,
                         recovery=RecoveryPolicy())
        # deterministic fault on the first Brownian solve (call index
        # 0), recovered by retry
        schedule = FaultSchedule(brownian_calls=(0,))
        install_faults(sim.integrator, schedule)
        tracer, registry = obs.enable()
        try:
            sim.run(n_steps=2, record_interval=1)
        finally:
            obs.disable()
        instants = [e for e in tracer.events if e.phase == "i"]
        assert any(e.name.startswith("recovery.") for e in instants)
        families = registry.to_json()["metrics"]
        assert any(f["name"] == "recovery_events_total"
                   for f in families)


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------

class TestCliRoundTrip:
    def test_simulate_trace_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.json"
        metrics = tmp_path / "run.prom"
        rc = main(["simulate", "-n", "24", "--phi", "0.1", "--steps", "3",
                   "--e-p", "1e-2", "--record-interval", "1",
                   "-o", str(tmp_path / "t.npz"),
                   "--trace", str(trace), "--chrome-trace", str(chrome),
                   "--metrics", str(metrics)])
        assert rc == 0
        # the run left the globals clean
        assert not obs.tracing_enabled()

        events = read_jsonl(trace)
        validate_trace_events(events)
        validate_chrome_trace(json.loads(chrome.read_text()))
        validate_prometheus_text(metrics.read_text())

        # reconcile the replayed trace with itself: per-step phases sum
        # to (at most) the enclosing sim.run span
        durs: dict[str, float] = {}
        for e in events:
            if e["ph"] == "X":
                durs[e["name"]] = durs.get(e["name"], 0.0) + e["dur"]
        assert durs["bd.block"] <= durs["sim.run"]
        phase_sum = sum(durs.get(f"bd.{p}", 0.0) for p in
                        ("mobility", "brownian", "forces", "propagate"))
        assert phase_sum <= durs["bd.block"]
        # 3 steps fit in one lambda_rpy=16 block at the CLI defaults
        n_blocks = sum(1 for e in events if e["name"] == "bd.block")
        assert n_blocks == 1
        n_steps = sum(1 for e in events if e["name"] == "bd.propagate")
        assert n_steps == 3


class TestHistogramQuantileEdges:
    def test_empty_histogram_returns_none(self):
        hist = obs.MetricsRegistry().histogram("h", buckets=(1, 10))
        assert hist.quantile(0.5) is None
        assert hist.quantile(0.0) is None

    def test_quantile_out_of_range_raises(self):
        hist = obs.MetricsRegistry().histogram("h", buckets=(1, 10))
        hist.observe(2)
        with pytest.raises(ConfigurationError):
            hist.quantile(-0.1)
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_single_observation_clamps_to_the_value(self):
        hist = obs.MetricsRegistry().histogram("h", buckets=(1, 10, 100))
        hist.observe(7.0)
        # every quantile of one observation is that observation,
        # regardless of which bucket it interpolates inside
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 7.0

    def test_all_mass_in_one_bucket_stays_within_min_max(self):
        hist = obs.MetricsRegistry().histogram("h", buckets=(1, 10, 100))
        for v in (3.0, 4.0, 5.0):
            hist.observe(v)
        for q in (0.1, 0.5, 0.9):
            assert 3.0 <= hist.quantile(q) <= 5.0

    def test_mass_beyond_last_finite_bucket_returns_max(self):
        hist = obs.MetricsRegistry().histogram("h", buckets=(1, 10))
        for v in (50.0, 70.0, 90.0):
            hist.observe(v)          # all land in the +Inf bucket
        assert hist.quantile(0.5) == 90.0
        assert hist.quantile(0.99) == 90.0
