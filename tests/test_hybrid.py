"""Tests for the hybrid CPU + coprocessor scheduler (Section IV.E)."""

import numpy as np
import pytest

from repro import Box, PMEOperator, PMEParams
from repro.errors import ConfigurationError
from repro.parallel.hybrid import HybridPlan, HybridScheduler, OffloadModel
from repro.perfmodel import WESTMERE_EP, XEON_PHI_KNC


@pytest.fixture(scope="module")
def operator():
    box = Box.for_volume_fraction(40, 0.2)
    rng = np.random.default_rng(30)
    r = rng.uniform(0, box.length, size=(40, 3))
    return PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=32, p=4))


@pytest.fixture
def scheduler():
    return HybridScheduler()


class TestExecution:
    def test_single_vector_matches_apply(self, operator, scheduler):
        f = np.random.default_rng(0).standard_normal(3 * operator.n)
        u_hybrid, plan = scheduler.execute(operator, f)
        np.testing.assert_allclose(u_hybrid, operator.apply(f), rtol=1e-12)
        assert isinstance(plan, HybridPlan)

    def test_block_matches_apply(self, operator, scheduler):
        f = np.random.default_rng(1).standard_normal((3 * operator.n, 8))
        u_hybrid, plan = scheduler.execute(operator, f)
        np.testing.assert_allclose(u_hybrid, operator.apply(f), rtol=1e-12)
        assert sum(plan.assignments) == 8


class TestPlanning:
    def test_single_vector_offloads_reciprocal(self, scheduler):
        plan = scheduler.plan_single(n=50_000, K=128, p=6, pair_density=20.0)
        # CPU does real space, first accelerator the reciprocal part
        assert plan.assignments[0] == 0
        assert plan.assignments[1] == 1

    def test_block_plan_assigns_all_vectors(self, scheduler):
        plan = scheduler.plan_block(n=50_000, K=128, p=6, pair_density=20.0,
                                    n_vectors=16)
        assert sum(plan.assignments) == 16
        assert len(plan.assignments) == 3     # CPU + 2 KNC

    def test_block_plan_uses_accelerators_for_large_systems(self, scheduler):
        plan = scheduler.plan_block(n=100_000, K=256, p=6, pair_density=20.0,
                                    n_vectors=16)
        assert plan.assignments[1] + plan.assignments[2] > 0

    def test_speedup_grows_with_system_size(self, scheduler):
        # the Fig. 9 shape: hybrid speedup increases with workload
        small = scheduler.plan_block(n=1000, K=32, p=6, pair_density=10.0,
                                     n_vectors=16)
        large = scheduler.plan_block(n=200_000, K=256, p=6,
                                     pair_density=20.0, n_vectors=16)
        assert large.speedup > small.speedup
        assert large.speedup > 1.5

    def test_hybrid_never_slower_in_plan(self, scheduler):
        for n, K in ((1000, 32), (10_000, 64), (100_000, 128)):
            plan = scheduler.plan_block(n=n, K=K, p=6, pair_density=15.0,
                                        n_vectors=16)
            # greedy assignment may only beat or match CPU-only
            assert plan.hybrid_time <= plan.cpu_only_time * 1.0 + 1e-12

    def test_no_accelerators_degenerates(self):
        sched = HybridScheduler(accelerators=())
        plan = sched.plan_single(n=1000, K=64, p=6, pair_density=10.0)
        assert plan.speedup == pytest.approx(1.0)

    def test_balance_alpha_cutoff(self, scheduler):
        box_volume = 50.0 ** 3
        r = scheduler.balance_alpha_cutoff(
            n=50_000, box_volume=box_volume, K=128, p=6,
            r_max_grid=np.linspace(2.5, 8.0, 12))
        assert 2.5 <= r <= 8.0

    def test_balance_alpha_requires_accelerator(self):
        sched = HybridScheduler(accelerators=())
        with pytest.raises(ConfigurationError):
            sched.balance_alpha_cutoff(1000, 1000.0, 64, 6, [3.0])

    def test_plan_block_validation(self, scheduler):
        with pytest.raises(ConfigurationError):
            scheduler.plan_block(1000, 64, 6, 10.0, n_vectors=0)


class TestOffloadModel:
    def test_transfer_time_includes_latency(self):
        model = OffloadModel(bandwidth_gbs=6.0, latency_s=1e-4)
        assert model.transfer_time(0) == pytest.approx(1e-4)
        assert model.transfer_time(6e9) == pytest.approx(1.0 + 1e-4)

    def test_per_vector_scales_with_n(self):
        model = OffloadModel()
        assert model.per_vector_time(100_000) > model.per_vector_time(1000)

    def test_small_systems_gain_little(self):
        # offload overhead kills the benefit for tiny systems — the
        # paper's observation about small configurations
        sched = HybridScheduler(
            offload=OffloadModel(bandwidth_gbs=6.0, latency_s=1e-3))
        plan = sched.plan_block(n=500, K=16, p=4, pair_density=5.0,
                                n_vectors=16)
        assert plan.speedup < 2.0
