"""Tests for the neighbor-search backends (cell list, KD-tree, Verlet)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Box
from repro.neighbor import CellList, VerletList, brute_force_pairs, kdtree_pairs
from repro.neighbor.pairs import canonicalize_pairs, find_pairs
from repro.errors import ConfigurationError


def _random_positions(n, box, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, box.length, size=(n, 3))


@pytest.mark.parametrize("backend", ["cells", "kdtree"])
@pytest.mark.parametrize("n,L,cutoff", [
    (50, 10.0, 2.5),
    (100, 10.0, 3.0),
    (30, 6.0, 2.9),     # only 2 cells per dim -> brute-force fallback
    (200, 15.0, 1.0),
    (10, 20.0, 9.9),
])
def test_backends_match_brute_force(backend, n, L, cutoff):
    box = Box(L)
    r = _random_positions(n, box, seed=n + int(L))
    i_ref, j_ref = canonicalize_pairs(*brute_force_pairs(r, box, cutoff))
    i, j = canonicalize_pairs(*find_pairs(r, box, cutoff, backend=backend))
    np.testing.assert_array_equal(i, i_ref)
    np.testing.assert_array_equal(j, j_ref)


@given(st.integers(2, 60), st.floats(0.5, 4.5), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_cell_list_property_matches_brute(n, cutoff, seed):
    box = Box(9.0)
    r = _random_positions(n, box, seed)
    i_ref, j_ref = canonicalize_pairs(*brute_force_pairs(r, box, cutoff))
    i, j = canonicalize_pairs(*CellList(box, cutoff).pairs(r))
    np.testing.assert_array_equal(i, i_ref)
    np.testing.assert_array_equal(j, j_ref)


def test_cell_list_pairs_across_periodic_boundary():
    box = Box(10.0)
    r = np.array([[0.1, 5.0, 5.0], [9.9, 5.0, 5.0]])
    i, j = CellList(box, 1.0).pairs(r)
    assert list(zip(i, j)) == [(0, 1)]


def test_cell_list_no_self_pairs():
    box = Box(10.0)
    r = _random_positions(50, box, 0)
    i, j = CellList(box, 3.0).pairs(r)
    assert np.all(i < j)


def test_cell_list_empty_and_single():
    box = Box(10.0)
    i, j = CellList(box, 2.0).pairs(np.empty((0, 3)))
    assert i.size == 0
    i, j = CellList(box, 2.0).pairs(np.array([[1.0, 1.0, 1.0]]))
    assert i.size == 0


def test_cell_list_rejects_bad_cutoff():
    with pytest.raises(ConfigurationError):
        CellList(Box(10.0), 0.0)


def test_cell_edge_at_least_cutoff():
    cl = CellList(Box(10.0), 2.7)
    assert cl.cell_edge >= cl.cutoff


def test_kdtree_strict_inequality_convention():
    box = Box(10.0)
    r = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
    i, _ = kdtree_pairs(r, box, 2.0)     # distance == cutoff excluded
    assert i.size == 0
    i, _ = kdtree_pairs(r, box, 2.0 + 1e-9)
    assert i.size == 1


def test_find_pairs_unknown_backend():
    with pytest.raises(ValueError):
        find_pairs(np.zeros((2, 3)), Box(5.0), 1.0, backend="quantum")


class TestVerletList:
    def test_matches_direct_search(self):
        box = Box(10.0)
        r = _random_positions(80, box, 1)
        vl = VerletList(box, 2.5, skin=0.5)
        i_ref, j_ref = canonicalize_pairs(*brute_force_pairs(r, box, 2.5))
        i, j = canonicalize_pairs(*vl.pairs(r))
        np.testing.assert_array_equal(i, i_ref)
        np.testing.assert_array_equal(j, j_ref)

    def test_no_rebuild_for_small_moves(self):
        box = Box(10.0)
        r = _random_positions(60, box, 2)
        vl = VerletList(box, 2.0, skin=1.0)
        vl.pairs(r)
        assert vl.n_rebuilds == 1
        r2 = r + 0.05  # well within skin/2
        i, j = canonicalize_pairs(*vl.pairs(r2))
        assert vl.n_rebuilds == 1
        i_ref, j_ref = canonicalize_pairs(*brute_force_pairs(r2, box, 2.0))
        np.testing.assert_array_equal(i, i_ref)
        np.testing.assert_array_equal(j, j_ref)

    def test_rebuild_triggered_by_large_move(self):
        box = Box(10.0)
        r = _random_positions(60, box, 3)
        vl = VerletList(box, 2.0, skin=0.4)
        vl.pairs(r)
        r2 = r.copy()
        r2[0] += 1.0  # exceeds skin/2
        i, j = canonicalize_pairs(*vl.pairs(r2))
        assert vl.n_rebuilds == 2
        i_ref, j_ref = canonicalize_pairs(*brute_force_pairs(r2, box, 2.0))
        np.testing.assert_array_equal(i, i_ref)
        np.testing.assert_array_equal(j, j_ref)

    def test_correct_even_without_rebuild_sequence(self):
        # drift a configuration gradually; result must always equal brute
        box = Box(8.0)
        r = _random_positions(40, box, 4)
        vl = VerletList(box, 2.2, skin=0.6)
        rng = np.random.default_rng(0)
        for _ in range(10):
            r = box.wrap(r + 0.05 * rng.standard_normal(r.shape))
            i, j = canonicalize_pairs(*vl.pairs(r))
            i_ref, j_ref = canonicalize_pairs(
                *brute_force_pairs(r, box, 2.2))
            np.testing.assert_array_equal(i, i_ref)
            np.testing.assert_array_equal(j, j_ref)

    def test_invalidate_forces_rebuild(self):
        box = Box(10.0)
        r = _random_positions(20, box, 5)
        vl = VerletList(box, 2.0)
        vl.pairs(r)
        vl.invalidate()
        vl.pairs(r)
        assert vl.n_rebuilds == 2
