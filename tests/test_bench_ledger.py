"""Tests for repro.bench.ledger: history, noise-aware comparison, CLI."""

import copy
import json

import pytest

from repro.bench.ledger import (
    DEFAULT_REL_TOL,
    HISTORY_SCHEMA,
    Timing,
    append_history,
    compare_records,
    extract_timings,
    load_history,
    machine_key,
)
from repro.cli import main as cli_main


def _record(name="blocked_pme", t_seq=4.0, t_block=1.0, std=0.01,
            machine="x86_64", scale="ci"):
    """A minimal repro-bench-record/1 document with TimingStats cells."""
    return {
        "schema": "repro-bench-record/1",
        "name": name,
        "machine": machine,
        "python": "3.11.7",
        "scale": scale,
        "unix_time": 1_700_000_000,
        "headers": ["s", "t seq (s)", "t block (s)", "speedup"],
        "rows": [
            [4, {"best": t_seq, "mean": t_seq * 1.05, "std": std,
                 "repeats": 3},
             {"best": t_block, "mean": t_block * 1.05, "std": std,
              "repeats": 3},
             t_seq / t_block],
            [8, t_seq * 2, t_block * 2, t_seq / t_block],
        ],
    }


class TestExtraction:
    def test_timing_stats_cells_and_bare_floats(self):
        timings = extract_timings(_record())
        # TimingStats dict keeps its spread; bare float under a "(s)"
        # header degrades to std=0; the speedup column is skipped
        assert timings["4/t seq (s)"] == Timing(best=4.0, std=0.01,
                                                repeats=3)
        assert timings["8/t seq (s)"] == Timing(best=8.0)
        assert not any("speedup" in key for key in timings)
        assert len(timings) == 4

    def test_bools_are_not_timings(self):
        record = {"schema": "repro-bench-record/1", "name": "x",
                  "headers": ["case", "ok (s)"], "rows": [["a", True]]}
        assert extract_timings(record) == {}

    def test_profile_document(self):
        doc = {"schema": "repro-profile/1",
               "rows": [{"phase": "fft", "measured": 0.25,
                         "predicted": 0.3},
                        {"phase": "real", "measured": 1.5,
                         "predicted": None}]}
        timings = extract_timings(doc)
        assert timings["fft/measured (s)"] == Timing(best=0.25)
        assert timings["real/measured (s)"] == Timing(best=1.5)

    def test_machine_key_axes(self):
        assert machine_key(_record()) == "x86_64-py3.11.7-ci"
        assert machine_key(_record(scale="paper")).endswith("-paper")
        assert machine_key({}) == "unknown-pyunknown-ci"


class TestHistory:
    def test_append_and_filtered_load(self, tmp_path):
        path = tmp_path / "ledger" / "history.jsonl"  # parent created
        append_history(_record(), path)
        append_history(_record(name="ewald"), path)
        append_history(_record(machine="arm64"), path)

        entries = load_history(path)
        assert len(entries) == 3
        assert all(e["schema"] == HISTORY_SCHEMA for e in entries)
        shard = load_history(path, machine="x86_64-py3.11.7-ci",
                             name="blocked_pme")
        assert len(shard) == 1
        assert shard[0]["timings"]["4/t seq (s)"]["best"] == 4.0

    def test_history_lines_are_stable_json(self, tmp_path):
        path = tmp_path / "h.jsonl"
        entry = append_history(_record(), path)
        line = path.read_text().splitlines()[0]
        assert line == json.dumps(entry, sort_keys=True)


class TestCompare:
    def test_unchanged_rerun_is_ok(self):
        comparison = compare_records(_record(), _record())
        assert comparison.ok
        assert len(comparison.deltas) == 4
        assert not comparison.regressions and not comparison.missing

    def test_two_x_slowdown_regresses(self):
        comparison = compare_records(
            _record(t_seq=8.0, t_block=2.0), _record())
        assert not comparison.ok
        assert len(comparison.regressions) == 4
        delta = comparison.regressions[0]
        assert delta.ratio == pytest.approx(2.0)
        assert "REGRESSED" in comparison.format_table()

    def test_noise_widens_threshold(self):
        # 1.6x slowdown exceeds the +50% budget alone, but a noisy
        # baseline (std comparable to the mean) absorbs it
        quiet = compare_records(_record(t_seq=6.4, t_block=1.6),
                                _record(std=0.0))
        noisy = compare_records(_record(t_seq=6.4, t_block=1.6),
                                _record(std=1.0))
        assert {d.key for d in quiet.regressions} == \
            {"4/t seq (s)", "4/t block (s)",
             "8/t seq (s)", "8/t block (s)"}
        # rows with TimingStats spread now pass; the bare-float row 8
        # has no recorded std, so it stays regressed
        assert {d.key for d in noisy.regressions} == \
            {"8/t seq (s)", "8/t block (s)"}

    def test_missing_baseline_key_fails(self):
        current = _record()
        current["rows"] = current["rows"][:1]  # row 8 dropped
        comparison = compare_records(current, _record())
        assert not comparison.ok and not comparison.regressions
        assert set(comparison.missing) == {"8/t seq (s)",
                                           "8/t block (s)"}
        assert "MISSING" in comparison.format_table()

    def test_new_keys_are_informational(self):
        baseline = _record()
        baseline["rows"] = baseline["rows"][:1]
        comparison = compare_records(_record(), baseline)
        assert comparison.ok
        assert set(comparison.new) == {"8/t seq (s)", "8/t block (s)"}

    def test_cross_machine_flagged(self):
        comparison = compare_records(_record(machine="arm64"), _record())
        assert comparison.cross_machine
        assert "cross-machine" in comparison.format_table()

    def test_explicit_tolerances(self):
        slow = _record(t_seq=4.0 * (1 + DEFAULT_REL_TOL) * 1.1,
                       t_block=1.0, std=0.0)
        strict = compare_records(slow, _record(std=0.0), sigma=0.0)
        assert not strict.ok
        lax = compare_records(slow, _record(std=0.0), rel_tol=2.0)
        assert lax.ok

    def test_zero_baseline_ratio(self):
        base = _record(t_seq=0.0, std=0.0)
        comparison = compare_records(_record(std=0.0), base)
        (delta,) = [d for d in comparison.deltas
                    if d.key == "4/t seq (s)"]
        assert delta.ratio == float("inf")


class TestCLI:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc) + "\n", encoding="utf-8")
        return str(path)

    def test_record_appends_history(self, tmp_path, capsys):
        record = self._write(tmp_path, "BENCH_blocked_pme.json",
                             _record())
        history = tmp_path / "history.jsonl"
        code = cli_main(["bench", "record", record,
                         "--history", str(history)])
        assert code == 0
        assert "blocked_pme [x86_64-py3.11.7-ci] 4 timings" in \
            capsys.readouterr().out
        assert len(load_history(history)) == 1

    def test_compare_unchanged_exits_zero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", _record())
        current = self._write(tmp_path, "current.json",
                              copy.deepcopy(_record()))
        code = cli_main(["bench", "compare", current,
                         "--baseline", baseline])
        assert code == 0
        assert "ok: 4 timings within threshold" in \
            capsys.readouterr().out

    def test_compare_slowdown_exits_nonzero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", _record())
        current = self._write(tmp_path, "current.json",
                              _record(t_seq=8.0, t_block=2.0))
        code = cli_main(["bench", "compare", current,
                         "--baseline", baseline])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION: 4 of 4" in out

    def test_compare_missing_exits_nonzero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", _record())
        shrunk = _record()
        shrunk["rows"] = shrunk["rows"][:1]
        current = self._write(tmp_path, "current.json", shrunk)
        code = cli_main(["bench", "compare", current,
                         "--baseline", baseline])
        assert code == 1
        assert "MISSING: 2 baseline timings" in capsys.readouterr().out

    def test_committed_baseline_parses(self):
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[1] / \
            "benchmarks" / "baselines" / "BENCH_blocked_pme.json"
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        timings = extract_timings(baseline)
        assert timings, "committed baseline must yield ledger timings"
        # a self-compare of the committed baseline is always ok
        assert compare_records(baseline, baseline).ok
