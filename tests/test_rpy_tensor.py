"""Tests for the free-space RPY tensor."""

import numpy as np
import pytest

from repro import FluidParams, REDUCED
from repro.rpy.tensor import (
    mobility_matrix_free,
    rpy_pair_tensors,
    rpy_scalar_coefficients,
    rpy_self_tensor,
)


def test_self_tensor_is_mu0_identity():
    np.testing.assert_allclose(rpy_self_tensor(REDUCED), np.eye(3))


def test_far_field_formula():
    # explicit check of M = mu0 [3a/4r (I + rr) + a^3/2r^3 (I - 3 rr)]
    rij = np.array([[4.0, 0.0, 0.0]])
    t = rpy_pair_tensors(rij, REDUCED)[0]
    r = 4.0
    expect = np.diag([
        0.75 / r * 2 + 0.5 / r ** 3 * (1 - 3),
        0.75 / r + 0.5 / r ** 3,
        0.75 / r + 0.5 / r ** 3,
    ])
    np.testing.assert_allclose(t, expect, rtol=1e-12)


def test_tensor_symmetric():
    rng = np.random.default_rng(0)
    rij = rng.standard_normal((20, 3)) * 3 + 4
    t = rpy_pair_tensors(rij)
    np.testing.assert_allclose(t, t.transpose(0, 2, 1), rtol=1e-12)


def test_tensor_rotation_equivariance():
    # M(R r) = R M(r) R^T for any rotation R
    rng = np.random.default_rng(1)
    rij = np.array([[3.0, 1.0, -2.0]])
    q, _ = np.linalg.qr(rng.standard_normal((3, 3)))
    t1 = rpy_pair_tensors(rij @ q.T)[0]
    t0 = rpy_pair_tensors(rij)[0]
    np.testing.assert_allclose(t1, q @ t0 @ q.T, rtol=1e-10, atol=1e-12)


def test_continuity_at_contact():
    f_in, g_in = rpy_scalar_coefficients(np.array([2.0 - 1e-12]), 1.0)
    f_out, g_out = rpy_scalar_coefficients(np.array([2.0 + 1e-12]), 1.0)
    assert f_in[0] == pytest.approx(f_out[0], abs=1e-9)
    assert g_in[0] == pytest.approx(g_out[0], abs=1e-9)


def test_overlap_limit_r_to_zero():
    # regularized branch: f -> 1, g -> 0 as r -> 0 (self mobility)
    f, g = rpy_scalar_coefficients(np.array([1e-12]), 1.0)
    assert f[0] == pytest.approx(1.0)
    assert g[0] == pytest.approx(0.0, abs=1e-12)


def test_decay_at_large_distance():
    f, g = rpy_scalar_coefficients(np.array([1e6]), 1.0)
    assert abs(f[0]) < 1e-5
    assert abs(g[0]) < 1e-5


def test_requires_nonzero_separation():
    with pytest.raises(ValueError):
        rpy_pair_tensors(np.zeros((1, 3)))


def test_radius_scaling():
    # with lengths scaled by s and radius scaled by s, mu scales by 1/s
    rij = np.array([[5.0, 0.0, 0.0]])
    t1 = rpy_pair_tensors(rij, FluidParams(radius=1.0))
    t2 = rpy_pair_tensors(2.0 * rij, FluidParams(radius=2.0))
    np.testing.assert_allclose(t2, t1 / 2.0, rtol=1e-12)


class TestDenseFreeMatrix:
    def test_diagonal_blocks(self):
        rng = np.random.default_rng(2)
        r = rng.uniform(0, 30, size=(5, 3))
        m = mobility_matrix_free(r)
        for i in range(5):
            np.testing.assert_allclose(m[3 * i:3 * i + 3, 3 * i:3 * i + 3],
                                       np.eye(3))

    def test_symmetric(self):
        rng = np.random.default_rng(3)
        r = rng.uniform(0, 30, size=(12, 3))
        m = mobility_matrix_free(r)
        np.testing.assert_allclose(m, m.T, rtol=1e-12)

    def test_positive_definite_nonoverlapping(self):
        rng = np.random.default_rng(4)
        # well-separated particles
        r = rng.uniform(0, 50, size=(15, 3))
        m = mobility_matrix_free(r)
        assert np.linalg.eigvalsh(m).min() > 0

    def test_positive_definite_with_overlaps(self):
        # the regularized tensor stays SPD even for overlapping particles
        rng = np.random.default_rng(5)
        r = rng.uniform(0, 4.0, size=(10, 3))  # heavy overlap
        m = mobility_matrix_free(r)
        assert np.linalg.eigvalsh(m).min() > 0

    def test_single_particle(self):
        m = mobility_matrix_free(np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(m, np.eye(3))

    def test_pair_block_matches_pair_tensor(self):
        r = np.array([[0.0, 0.0, 0.0], [3.0, 1.0, 2.0]])
        m = mobility_matrix_free(r)
        t = rpy_pair_tensors(r[0:1] - r[1:2])[0]
        np.testing.assert_allclose(m[0:3, 3:6], t, rtol=1e-12)
