"""Tests for cardinal B-splines and Euler spline coefficients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.pme.bspline import (
    bspline_value,
    bspline_weights,
    euler_spline_coefficients,
    euler_spline_modulus,
)


@pytest.mark.parametrize("p", [2, 3, 4, 5, 6, 8])
def test_partition_of_unity(p):
    w = np.linspace(0, 1, 33, endpoint=False)
    weights = bspline_weights(w, p)
    np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-12)


@pytest.mark.parametrize("p", [2, 4, 6])
def test_weights_nonnegative(p):
    rng = np.random.default_rng(0)
    weights = bspline_weights(rng.random(100), p)
    assert np.all(weights >= -1e-14)


@pytest.mark.parametrize("p", [2, 3, 4, 6])
def test_weights_match_direct_evaluation(p):
    w = np.array([0.0, 0.17, 0.5, 0.83, 0.999])
    weights = bspline_weights(w, p)
    for j in range(p):
        np.testing.assert_allclose(weights[:, j], bspline_value(w + j, p),
                                   atol=1e-12)


def test_bspline_value_support():
    x = np.array([-0.5, 0.0, 4.0, 4.5])
    np.testing.assert_allclose(bspline_value(x, 4), 0.0)


def test_bspline_value_symmetry():
    # M_p(x) = M_p(p - x)
    x = np.linspace(0.1, 3.9, 20)
    np.testing.assert_allclose(bspline_value(x, 4), bspline_value(4 - x, 4),
                               atol=1e-12)


def test_bspline_value_normalization():
    # integral of M_p over its support is 1
    x = np.linspace(0, 6, 60001)
    integral = np.trapezoid(bspline_value(x, 6), x)
    assert integral == pytest.approx(1.0, abs=1e-6)


def test_bspline_m2_triangle():
    np.testing.assert_allclose(bspline_value(np.array([0.5, 1.0, 1.5]), 2),
                               [0.5, 1.0, 0.5])


def test_order_validation():
    with pytest.raises(ConfigurationError):
        bspline_weights(np.array([0.5]), 1)
    with pytest.raises(ConfigurationError):
        bspline_value(np.array([0.5]), 0)


@given(st.integers(2, 8), st.floats(0.0, 0.999999))
@settings(max_examples=60, deadline=None)
def test_partition_of_unity_property(p, w):
    weights = bspline_weights(np.array([w]), p)
    assert weights.sum() == pytest.approx(1.0, abs=1e-10)


class TestEulerSpline:
    @pytest.mark.parametrize("K,p", [(16, 4), (32, 6), (64, 8)])
    def test_interpolation_identity(self, K, p):
        # b(k) sum_m M_p(u - m) exp(2 pi i k m / K) ~ exp(2 pi i k u / K)
        # The spline interpolation of a complex exponential is accurate
        # to O((2k/K)^p) between mesh points (measured bound: the error
        # stays under 2 (2k/K)^p across orders 4-8).
        b = euler_spline_coefficients(K, p)
        rng = np.random.default_rng(0)
        for u in rng.uniform(0, K, size=4):
            base = int(np.floor(u))
            mesh_pts = (base - np.arange(p)) % K
            weights = bspline_weights(np.array([u - base]), p)[0]
            for k in (1, K // 8, K // 4):
                approx = b[k] * np.sum(
                    weights * np.exp(2j * np.pi * k * mesh_pts / K))
                exact = np.exp(2j * np.pi * k * u / K)
                assert abs(approx - exact) < 2.0 * (2.0 * k / K) ** p

    def test_b_at_zero_mode_is_one(self):
        b = euler_spline_coefficients(32, 6)
        assert b[0] == pytest.approx(1.0)

    def test_modulus_positive_even_order(self):
        bsq = euler_spline_modulus(32, 6)
        assert np.all(bsq > 0)

    def test_odd_order_nyquist_dropped(self):
        b = euler_spline_coefficients(16, 5)
        assert b[8] == 0.0

    def test_modulus_is_squared_magnitude(self):
        b = euler_spline_coefficients(24, 4)
        np.testing.assert_allclose(euler_spline_modulus(24, 4),
                                   np.abs(b) ** 2, atol=1e-12)

    def test_k_must_hold_spline(self):
        with pytest.raises(ConfigurationError):
            euler_spline_coefficients(4, 6)
