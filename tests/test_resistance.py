"""Tests for the matrix-free resistance solve."""

import numpy as np
import pytest

from repro import Box, PMEOperator, PMEParams
from repro.errors import ConvergenceError
from repro.krylov.resistance import solve_resistance
from repro.rpy.ewald import EwaldSummation


@pytest.fixture(scope="module")
def system():
    box = Box.for_volume_fraction(35, 0.2)
    rng = np.random.default_rng(7)
    r = rng.uniform(0, box.length, size=(35, 3))
    return box, r


def test_inverts_dense_mobility(system):
    box, r = system
    m = EwaldSummation(box=box, tol=1e-10).matrix(r)
    u = np.random.default_rng(0).standard_normal(3 * r.shape[0])
    f, info = solve_resistance(lambda v: m @ v, u, tol=1e-10)
    np.testing.assert_allclose(m @ f, u, atol=1e-8)
    assert info.converged


def test_matrix_free_roundtrip(system):
    # apply then invert through the PME operator
    box, r = system
    op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=48, p=6))
    f_true = np.random.default_rng(1).standard_normal(3 * r.shape[0])
    u = op.apply(f_true)
    f_rec, info = solve_resistance(op.apply, u, tol=1e-10)
    np.testing.assert_allclose(f_rec, f_true, rtol=1e-6, atol=1e-8)
    assert info.n_matvecs == info.iterations  # single column


def test_block_solve(system):
    box, r = system
    m = EwaldSummation(box=box, tol=1e-8).matrix(r)
    u = np.random.default_rng(2).standard_normal((3 * r.shape[0], 3))
    f, info = solve_resistance(lambda v: m @ v, u, tol=1e-9)
    np.testing.assert_allclose(m @ f, u, atol=1e-7)
    assert f.shape == u.shape


def test_drag_exceeds_isolated_stokes(system):
    # holding one particle at unit velocity inside a suspension needs
    # more force than in isolation (its neighbours' backflow resists)
    box, r = system
    m = EwaldSummation(box=box, tol=1e-8).matrix(r)
    u = np.zeros(3 * r.shape[0])
    u[0] = 1.0   # particle 0 moves at unit x-velocity, others held still
    f, _ = solve_resistance(lambda v: m @ v, u, tol=1e-9)
    # reduced units: isolated Stokes drag for unit velocity is 1/mu0 = 1
    assert f[0] > 1.0


def test_raises_on_iteration_cap(system):
    box, r = system
    m = EwaldSummation(box=box, tol=1e-8).matrix(r)
    u = np.random.default_rng(3).standard_normal(3 * r.shape[0])
    with pytest.raises(ConvergenceError):
        solve_resistance(lambda v: m @ v, u, tol=1e-14, max_iter=2)
