"""Tests for the static structure factor."""

import numpy as np
import pytest

from repro import Box
from repro.analysis.structure import static_structure_factor
from repro.errors import ConfigurationError
from repro.systems import random_suspension, simple_cubic_positions


def test_ideal_gas_flat():
    rng = np.random.default_rng(0)
    box = Box(20.0)
    r = rng.uniform(0, box.length, size=(4000, 3))
    k, s = static_structure_factor(r, box, K=48)
    # ideal gas: S(k) = 1 for k != 0 (within sqrt(modes) statistics)
    assert np.abs(s[2:] - 1.0).mean() < 0.25


def test_crystal_bragg_peaks():
    # a simple cubic crystal has S ~ n at the reciprocal lattice vectors
    box = Box(16.0)
    r = simple_cubic_positions(512, box.length)   # 8x8x8, spacing 2
    k, s = static_structure_factor(r, box, K=64, n_bins=60)
    k_bragg = 2 * np.pi / 2.0    # first reciprocal lattice vector
    near = np.abs(k - k_bragg) < 0.3
    away = (k > 0.5) & (np.abs(k - k_bragg) > 0.8) & (k < 1.2 * k_bragg)
    assert s[near].max() > 50 * max(s[away].max(), 1e-10)


def test_suspension_structure_suppressed_at_small_k():
    # hard-sphere-like suspensions are nearly incompressible:
    # S(k->0) well below 1
    susp = random_suspension(600, 0.3, seed=1)
    k, s = static_structure_factor(susp.positions, susp.box, K=48)
    assert s[0] < 0.7
    assert s[0] < s[-1] + 0.5


def test_mesh_resolution_consistency():
    # two mesh resolutions agree on the resolved shells
    susp = random_suspension(300, 0.2, seed=2)
    k1, s1 = static_structure_factor(susp.positions, susp.box, K=32,
                                     n_bins=12)
    k2, s2 = static_structure_factor(susp.positions, susp.box, K=64,
                                     n_bins=24)
    # compare on the coarse grid's shells via interpolation
    s2_on_1 = np.interp(k1, k2, s2)
    np.testing.assert_allclose(s1, s2_on_1, rtol=0.25, atol=0.05)


def test_validation():
    box = Box(10.0)
    with pytest.raises(ConfigurationError):
        static_structure_factor(np.zeros((1, 3)), box)
