"""Ablation — spreading strategies: sparse P^T vs 8-color schedule.

Section IV.B.2's independent-set schedule exists to make spreading
parallel-safe; this ablation checks its overheads and invariants on
the host:

* all three strategies (sparse ``P^T f``, colored scatter, colored
  scatter with a thread pool) produce bit-identical meshes,
* the per-color write footprints are disjoint (the race-freedom
  invariant, re-verified here at benchmark scale),
* relative costs on this interpreter are reported (on real multicore
  hardware the colored schedule is what *enables* the parallel speedup;
  under the GIL it is a correctness demonstration).

Run ``python benchmarks/bench_ablation_coloring.py`` for the table.
"""

import numpy as np

from repro.bench import (
    bench_scale,
    cached_suspension,
    measure_seconds,
    print_table,
    record_benchmark,
)
from repro.parallel.coloring import ColoredSpreader
from repro.parallel.threads import ThreadedSpreader
from repro.pme.spread import InterpolationMatrix
from repro.pme.tuning import tune_parameters


def _setup(n):
    susp = cached_suspension(n)
    params = tune_parameters(n, susp.box, target_ep=1e-3)
    return susp, params


def experiment_rows(n=None):
    n = n or (20000 if bench_scale() == "paper" else 3000)
    susp, params = _setup(n)
    K, p = params.K, params.p
    f = np.random.default_rng(0).standard_normal(n)

    interp = InterpolationMatrix(susp.positions, susp.box, K, p)
    colored = ColoredSpreader(susp.positions, susp.box, K, p)
    threaded = ThreadedSpreader(susp.positions, susp.box, K, p, n_workers=4)

    reference = interp.spread(f)
    rows = []
    for name, fn, result in (
            ("sparse P^T f", lambda: interp.spread(f), reference),
            ("8-color scatter", lambda: colored.spread(f),
             colored.spread(f)),
            ("8-color + threads", lambda: threaded.spread(f),
             threaded.spread(f))):
        t = measure_seconds(fn, repeats=3, warmup=1).best
        max_dev = float(np.abs(result - reference).max())
        rows.append([name, t, f"{max_dev:.1e}"])
    return rows, colored


def main():
    rows, colored = experiment_rows()
    headers = ["strategy", "t (s)", "max deviation"]
    print_table("Ablation: spreading strategies (identical results "
                "required)",
                headers, rows)
    disjoint = all(
        not np.intersect1d(a, b).size
        for c in range(colored.n_colors)
        for idx, a in enumerate(colored.block_footprints(c))
        for b in colored.block_footprints(c)[idx + 1:])
    print(f"per-color block write footprints disjoint: {disjoint} "
          "(the schedule's race-freedom invariant)")
    record_benchmark("ablation_coloring", headers, rows,
                     meta={"footprints_disjoint": bool(disjoint)})


def test_sparse_spreading(benchmark):
    susp, params = _setup(2000)
    interp = InterpolationMatrix(susp.positions, susp.box, params.K,
                                 params.p)
    f = np.random.default_rng(0).standard_normal(2000)
    benchmark(interp.spread, f)


def test_colored_spreading(benchmark):
    susp, params = _setup(2000)
    colored = ColoredSpreader(susp.positions, susp.box, params.K, params.p)
    f = np.random.default_rng(0).standard_normal(2000)
    benchmark(colored.spread, f)


def test_strategies_identical(benchmark):
    rows, _ = benchmark.pedantic(experiment_rows, kwargs=dict(n=1500),
                                 rounds=1, iterations=1)
    for row in rows:
        assert float(row[2]) < 1e-12


if __name__ == "__main__":
    main()
