"""Ablation — distributed (slab) construction of the real-space operator.

The MPI-shaped counterpart of the paper's shared-memory build: the box
is cut into slabs, each worker builds its share of the pair blocks
from owned + halo particles only, and the merged matrix must equal the
global build exactly.  Reported per domain count:

* halo fraction (replication overhead a distributed run would pay),
* per-domain work balance (pairs per domain),
* end-to-end equivalence with the global construction.

Run ``python benchmarks/bench_ablation_decomposition.py`` for the table.
"""

import numpy as np

from repro.bench import (
    bench_scale,
    cached_suspension,
    measure_seconds,
    print_table,
    record_benchmark,
)
from repro.parallel.decomposition import SlabDecomposition, distributed_real_space_matrix
from repro.pme.realspace import RealSpaceOperator

XI, R_MAX = 0.9, 3.5


def experiment_rows(n=None):
    n = n or (20000 if bench_scale() == "paper" else 2000)
    susp = cached_suspension(n)
    r, box = susp.positions, susp.box
    max_domains = max(1, int(box.length / R_MAX))
    rows = []
    for d in sorted({1, 2, max_domains // 2, max_domains} - {0}):
        decomp = SlabDecomposition(box, d, R_MAX)
        halo = sum(decomp.halo_indices(r, k).size for k in range(d))
        pair_counts = [decomp.local_pair_blocks(r, k, XI)[0].size
                       for k in range(d)]
        t = measure_seconds(
            lambda: distributed_real_space_matrix(r, box, XI, R_MAX, d),
            repeats=2).best
        balance = (max(pair_counts) / (sum(pair_counts) / d)
                   if sum(pair_counts) else 1.0)
        rows.append([d, t, halo / n, round(balance, 2)])
    return rows


def main():
    rows = experiment_rows()
    headers = ["domains", "t build (s)", "halo fraction", "load imbalance"]
    print_table(
        "Ablation: slab-decomposed real-space build "
        f"(r_max={R_MAX}, serial execution of the distributed schedule)",
        headers, rows)
    print("halo fraction = replicated particles per owned particle; "
          "imbalance = max/mean pairs.")
    record_benchmark("ablation_decomposition", headers, rows,
                     meta={"xi": XI, "r_max": R_MAX})


def test_distributed_build(benchmark):
    susp = cached_suspension(2000)
    benchmark.pedantic(
        distributed_real_space_matrix,
        args=(susp.positions, susp.box, XI, R_MAX, 3),
        rounds=2, iterations=1)


def test_distributed_equals_global(benchmark):
    susp = cached_suspension(1000)
    r, box = susp.positions, susp.box

    def run():
        dist = distributed_real_space_matrix(r, box, XI, R_MAX, 3)
        ref = RealSpaceOperator(r, box, XI, R_MAX, engine="bcsr")
        return dist, ref

    dist, ref = benchmark.pedantic(run, rounds=1, iterations=1)
    f = np.random.default_rng(0).standard_normal(3 * r.shape[0])
    np.testing.assert_allclose(dist.matvec(f), ref.apply(f), rtol=1e-12)


if __name__ == "__main__":
    main()
