"""Fig. 4 — precomputing the interpolation matrix P vs on-the-fly.

The paper's optimization: because the matrix-free BD algorithm applies
the same PME operator to many vectors (19-25 Krylov iterations times
``lambda_RPY = 16`` vectors), precomputing ``P`` once and reusing it
beats recomputing the spline weights on every application — on average
1.5x in the paper, largest where ``p^3 n / K^3`` is large.

This benchmark times the reciprocal-space application both ways across
configurations and reports the speedup; the paper's shape claim
(speedup > 1, growing with ``p^3 n / K^3``) is asserted.

Run ``python benchmarks/bench_fig4_precompute_p.py`` for the table.
"""

import numpy as np

from repro import PMEOperator, tune_parameters
from repro.bench import (
    bench_scale,
    cached_suspension,
    measure_seconds,
    print_table,
    record_benchmark,
)

CI_COUNTS = [500, 1000, 2000, 4000]
PAPER_COUNTS = [1000, 5000, 10000, 50000, 80000, 200000, 500000]


def _operators(n):
    susp = cached_suspension(n)
    params = tune_parameters(n, susp.box, target_ep=1e-3)
    stored = PMEOperator(susp.positions, susp.box, params, store_p=True)
    fly = PMEOperator(susp.positions, susp.box, params, store_p=False)
    return susp, params, stored, fly


def experiment_rows(counts=None):
    """(n, K, p, t_stored, t_fly, speedup) per configuration."""
    counts = counts or (PAPER_COUNTS if bench_scale() == "paper"
                        else CI_COUNTS)
    rows = []
    for n in counts:
        susp, params, stored, fly = _operators(n)
        f = np.random.default_rng(0).standard_normal(3 * n)
        t_stored = measure_seconds(lambda: stored.apply_reciprocal(f),
                                   repeats=3, warmup=1).best
        t_fly = measure_seconds(lambda: fly.apply_reciprocal(f),
                                repeats=3, warmup=1).best
        ratio = params.p ** 3 * n / params.K ** 3
        rows.append([n, params.K, params.p, round(ratio, 2),
                     t_stored, t_fly, t_fly / t_stored])
    return rows


def main():
    rows = experiment_rows()
    headers = ["n", "K", "p", "p^3 n/K^3", "t stored (s)",
               "t on-the-fly (s)", "speedup"]
    print_table(
        "Fig. 4: reciprocal-space PME, precomputed P vs on-the-fly",
        headers, rows)
    speedups = [r[-1] for r in rows]
    print(f"mean speedup from precomputing P: {np.mean(speedups):.2f}x")
    record_benchmark("fig4_precompute_p", headers, rows,
                     meta={"mean_speedup": float(np.mean(speedups))})


def test_precomputed_p_application(benchmark):
    """Reciprocal application with stored P (the optimized path)."""
    n = 1000
    _, _, stored, _ = _operators(n)
    f = np.random.default_rng(0).standard_normal(3 * n)
    benchmark(stored.apply_reciprocal, f)


def test_on_the_fly_application(benchmark):
    """Reciprocal application recomputing spline weights every call."""
    n = 1000
    _, _, _, fly = _operators(n)
    f = np.random.default_rng(0).standard_normal(3 * n)
    benchmark(fly.apply_reciprocal, f)


def test_precompute_speedup_shape(benchmark):
    """The paper's claim: storing P is faster, increasingly so at large
    p^3 n / K^3."""
    rows = benchmark.pedantic(experiment_rows, args=([500, 2000],),
                              rounds=1, iterations=1)
    speedups = [r[-1] for r in rows]
    assert all(s > 1.0 for s in speedups)


if __name__ == "__main__":
    main()
