"""Fig. 7 — conventional Ewald BD vs matrix-free BD: memory and time.

The paper's headline comparison: at n = 10,000 (the 32 GB limit of the
conventional algorithm) the matrix-free algorithm is 35x faster, and
its O(n) memory replaces the O(n^2) dense matrix.  The crossover in
*time* already happens near n ~ 1000 ("faster ... on as few as 1000
particles").

Both algorithms run a full BD step cycle (mobility update + lambda_RPY
Brownian vectors + propagation) at matched accuracy; memory is the
resident mobility representation (dense matrix + factor vs PME
operator).

Run ``python benchmarks/bench_fig7_ewald_vs_matrixfree.py`` for the table.
"""

import numpy as np

from repro.bench import (
    bench_scale,
    cached_suspension,
    measure_seconds,
    print_table,
    record_benchmark,
)
from repro.core.integrators import EwaldBD, MatrixFreeBD

CI_COUNTS = [100, 200, 400, 800, 1600]
PAPER_COUNTS = [500, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 10000]
LAMBDA_RPY = 10
N_STEPS = LAMBDA_RPY          # one full mobility-update cycle


def _integrators(n):
    susp = cached_suspension(n)
    common = dict(box=susp.box, fluid=susp.fluid, force_field=None,
                  dt=1e-3, lambda_rpy=LAMBDA_RPY, seed=0)
    ewald = EwaldBD(**common, ewald_tol=1e-4)
    mfree = MatrixFreeBD(**common, target_ep=1e-3, e_k=1e-2)
    return susp, ewald, mfree


def experiment_rows(counts=None):
    """(n, ewald s/step, matrix-free s/step, speedup, memories)."""
    counts = counts or (PAPER_COUNTS if bench_scale() == "paper"
                        else CI_COUNTS)
    rows = []
    for n in counts:
        susp, ewald, mfree = _integrators(n)
        t_ewald = measure_seconds(
            lambda: ewald.run(susp.positions, N_STEPS)).best / N_STEPS
        t_mfree = measure_seconds(
            lambda: mfree.run(susp.positions, N_STEPS)).best / N_STEPS
        rows.append([n, t_ewald, t_mfree, t_ewald / t_mfree,
                     ewald.mobility_memory_bytes() / 1e6,
                     mfree.mobility_memory_bytes() / 1e6])
    return rows


def main():
    rows = experiment_rows()
    headers = ["n", "Ewald s/step", "mat-free s/step", "speedup",
               "Ewald MB", "mat-free MB"]
    print_table(
        "Fig. 7: Ewald BD (Algorithm 1) vs matrix-free BD (Algorithm 2)",
        headers, rows)
    record_benchmark("fig7_ewald_vs_matrixfree", headers, rows,
                     meta={"lambda_rpy": LAMBDA_RPY, "n_steps": N_STEPS})
    # the paper's memory statement: dense is O(n^2), matrix-free O(n)
    n_big = rows[-1][0]
    print(f"dense mobility at n={n_big}: {rows[-1][4]:.1f} MB "
          f"(O(n^2)); matrix-free: {rows[-1][5]:.1f} MB (O(n))")


def test_ewald_bd_step(benchmark):
    """One conventional Ewald BD cycle (the baseline cost)."""
    susp, ewald, _ = _integrators(200)
    benchmark.pedantic(ewald.run, args=(susp.positions, N_STEPS),
                       rounds=2, iterations=1)


def test_matrix_free_bd_step(benchmark):
    """One matrix-free BD cycle (the paper's algorithm)."""
    susp, _, mfree = _integrators(200)
    benchmark.pedantic(mfree.run, args=(susp.positions, N_STEPS),
                       rounds=2, iterations=1)


def test_fig7_shape(benchmark):
    """Shape claims: the matrix-free advantage grows with n and crosses
    1x near n ~ 1000 (the paper: "faster ... on as few as 1000
    particles"); memory scales O(n^2) vs ~O(n)."""
    rows = benchmark.pedantic(experiment_rows, args=([200, 800, 1600],),
                              rounds=1, iterations=1)
    speedups = [r[3] for r in rows]
    assert speedups == sorted(speedups)   # gap widens monotonically
    assert speedups[-1] > 1.0             # crossover passed by n=1600
    # dense memory grows as n^2 (64x for 8x particles); matrix-free
    # grows far slower
    assert rows[-1][4] / rows[0][4] == 64.0
    assert rows[-1][5] / rows[0][5] < 32.0


if __name__ == "__main__":
    main()
