"""Fig. 3 — diffusion coefficients vs volume fraction vs theory.

The paper's physics validation: matrix-free BD of 5,000 particles
(lambda_RPY = 16, e_k = 1e-2, e_p <= 1e-3) at volume fractions up to
0.45 yields diffusion coefficients "in good agreement with theoretical
values", decreasing for more crowded systems.

Two theory anchors are reported:

* **zero-lag limit** — for the RPY tensor the *instantaneous* self-
  mobility is configuration independent (the free-space RPY diagonal
  is exactly ``mu0 I`` and the periodic Ewald diagonal depends only on
  the box), so ``D(tau -> 0) = D_0 (1 - 2.837297 a/L + ...)`` for
  every volume fraction.  The measured lag-1 coefficient must hit this
  value to a few percent — a sharp quantitative check of the whole
  stack (mobility + Krylov sampling + propagation).
* **finite-lag crowding** — at finite lag, collisions and hydrodynamic
  correlations suppress D with increasing Phi (the paper's Fig. 3
  trend); the virial series ``D_s/D_0 = 1 - 1.8315 Phi + 0.88 Phi^2``
  (times the finite-size factor) is shown for reference, as in the
  paper.

Run ``python benchmarks/bench_fig3_diffusion.py`` for the table.
"""

from repro import Simulation, diffusion_coefficient
from repro.analysis import finite_size_correction, short_time_self_diffusion
from repro.bench import bench_scale, print_table, record_benchmark
from repro.systems import make_suspension

LAMBDA_RPY = 16
E_K = 1e-2
TARGET_EP = 1e-3
DT = 1e-3


def experiment_rows(phis=None, n=None, n_steps=None, lag=None, seed=3):
    """Per volume fraction: measured D at zero lag and finite lag vs theory."""
    paper = bench_scale() == "paper"
    phis = phis or [0.05, 0.1, 0.2, 0.3, 0.4]
    n = n or (5000 if paper else 150)
    n_steps = n_steps or (5000 if paper else 150)
    lag = lag or (200 if paper else 40)
    rows = []
    for phi in phis:
        susp = make_suspension(n, phi, seed=2)
        sim = Simulation(susp, algorithm="matrix-free", dt=DT,
                         lambda_rpy=LAMBDA_RPY, seed=seed, e_k=E_K,
                         target_ep=TARGET_EP)
        traj, _ = sim.run(n_steps=n_steps, record_interval=1)
        d0_measured = diffusion_coefficient(traj, lag_frames=1)
        d_lag = diffusion_coefficient(traj, lag_frames=lag)
        fs = finite_size_correction(1.0 / susp.box.length)
        rows.append([phi, d0_measured, fs, d_lag,
                     short_time_self_diffusion(phi) * fs])
    return rows


def main():
    rows = experiment_rows()
    lag = 200 if bench_scale() == "paper" else 40
    headers = ["Phi", "D(tau->0) meas", "RPY zero-lag theory",
               f"D(tau={lag * DT:g}) meas", "virial x FS reference"]
    print_table(
        "Fig. 3: diffusion coefficients vs volume fraction "
        f"(matrix-free BD, e_k={E_K}, e_p<={TARGET_EP})",
        headers, rows)
    record_benchmark("fig3_diffusion", headers, rows,
                     meta={"e_k": E_K, "target_ep": TARGET_EP, "dt": DT,
                           "lambda_rpy": LAMBDA_RPY, "lag_frames": lag})
    print("zero-lag column must match its theory (config-independent RPY "
          "diagonal);\nfinite-lag column decreases with Phi (the paper's "
          "Fig. 3 trend).")


def test_bd_step_fig3_settings(benchmark):
    """One BD step cycle at the Fig. 3 production settings."""
    susp = make_suspension(200, 0.2, seed=2)
    sim = Simulation(susp, dt=DT, lambda_rpy=LAMBDA_RPY, seed=0,
                     e_k=E_K, target_ep=TARGET_EP)
    benchmark.pedantic(sim.run, kwargs=dict(n_steps=LAMBDA_RPY), rounds=2,
                       iterations=1)


def test_fig3_shape(benchmark):
    """Zero-lag D matches the RPY theory at every Phi; finite-lag D
    decreases with crowding."""
    rows = benchmark.pedantic(
        experiment_rows,
        kwargs=dict(phis=[0.1, 0.4], n=150, n_steps=150),
        rounds=1, iterations=1)
    for row in rows:
        assert abs(row[1] - row[2]) / row[2] < 0.10   # zero-lag anchor
    assert rows[1][3] < rows[0][3]                    # crowding slows D


if __name__ == "__main__":
    main()
