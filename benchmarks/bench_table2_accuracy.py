"""Table II — diffusion-coefficient error and cost vs (e_k, e_p).

The paper's accuracy/cost trade-off study: matrix-free BD simulations
of 1,000-particle suspensions at volume fractions 0.1-0.4, run with
four (Krylov tolerance, PME accuracy) combinations.  Loose tolerances
(e_k = 1e-2, e_p ~ 1e-3) keep the diffusion-coefficient error below a
few percent while running ~8x faster than tight ones.

Here the reference diffusion coefficient for each volume fraction
comes from the tightest setting (the paper's "known, separately
validated simulation"), and errors of the looser settings are measured
against it with a shared Brownian-noise seed so the comparison isolates
algorithmic error from statistics.

Run ``python benchmarks/bench_table2_accuracy.py`` for the table.
"""

import numpy as np

from repro import Simulation, diffusion_coefficient
from repro.bench import bench_scale, print_table, record_benchmark
from repro.systems import make_suspension

SETTINGS = [  # (e_k, target e_p) — Table II columns
    (1e-6, 1e-6),
    (1e-2, 1e-6),
    (1e-6, 1e-3),
    (1e-2, 1e-3),
]


def _run(susp, e_k, e_p, n_steps, lambda_rpy, seed=11):
    sim = Simulation(susp, algorithm="matrix-free", dt=1e-3,
                     lambda_rpy=lambda_rpy, seed=seed, e_k=e_k,
                     target_ep=e_p)
    traj, stats = sim.run(n_steps=n_steps, record_interval=1)
    d = diffusion_coefficient(traj, lag_frames=1)
    return d, stats.seconds_per_step


def experiment_rows(phis=None, n=None, n_steps=None):
    """One row per volume fraction: error (%) and s/step per setting."""
    paper = bench_scale() == "paper"
    phis = phis or [0.1, 0.2, 0.3, 0.4]
    n = n or (1000 if paper else 150)
    n_steps = n_steps or (200 if paper else 40)
    lambda_rpy = 10
    rows = []
    for phi in phis:
        susp = make_suspension(n, phi, seed=1)
        d_ref, t_ref = _run(susp, *SETTINGS[0], n_steps, lambda_rpy)
        row = [phi, 0.0, t_ref]
        for e_k, e_p in SETTINGS[1:]:
            d, t = _run(susp, e_k, e_p, n_steps, lambda_rpy)
            row += [abs(d - d_ref) / d_ref * 100.0, t]
        rows.append(row)
    return rows


def main():
    rows = experiment_rows()
    headers = ["Phi"]
    for e_k, e_p in SETTINGS:
        headers += [f"err% (ek={e_k:.0e},ep={e_p:.0e})", "s/step"]
    print_table("Table II: diffusion-coefficient error and time per step "
                "vs (e_k, e_p)", headers, rows)
    loose_over_tight = np.mean([r[2] / r[-1] for r in rows])
    print(f"tight/loose cost ratio: {loose_over_tight:.1f}x "
          "(paper: > 8x on 24 threads)")
    record_benchmark("table2_accuracy", headers, rows,
                     meta={"settings": SETTINGS,
                           "tight_loose_ratio": float(loose_over_tight)})


def test_loose_tolerance_step(benchmark):
    """BD step at the production setting (e_k=1e-2, e_p~1e-3)."""
    susp = make_suspension(150, 0.2, seed=1)
    sim = Simulation(susp, dt=1e-3, lambda_rpy=10, seed=0, e_k=1e-2,
                     target_ep=1e-3)
    benchmark.pedantic(sim.run, kwargs=dict(n_steps=10), rounds=2,
                       iterations=1)


def test_tight_tolerance_step(benchmark):
    """BD step at the accuracy-study setting (e_k=1e-6, e_p~1e-6)."""
    susp = make_suspension(150, 0.2, seed=1)
    sim = Simulation(susp, dt=1e-3, lambda_rpy=10, seed=0, e_k=1e-6,
                     target_ep=1e-6)
    benchmark.pedantic(sim.run, kwargs=dict(n_steps=10), rounds=2,
                       iterations=1)


def test_table2_shape(benchmark):
    """Loose tolerances stay accurate (<5% here; paper <3%) and are
    substantially cheaper than tight ones."""
    rows = benchmark.pedantic(experiment_rows,
                              kwargs=dict(phis=[0.2], n=120, n_steps=30),
                              rounds=1, iterations=1)
    row = rows[0]
    errors = row[3::2]
    t_tight, t_loose = row[2], row[-1]
    assert all(e < 5.0 for e in errors)
    assert t_loose < t_tight


if __name__ == "__main__":
    main()
