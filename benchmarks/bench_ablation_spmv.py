"""Ablation — real-space SpMV: engines, multiple right-hand sides, backends.

Three implementation choices the paper motivates for the real-space
operator (Section IV.C, reference [24]):

1. **blocked storage + multi-RHS SpMV** — applying the BCSR matrix to a
   block of vectors amortizes the matrix traffic; the per-vector cost
   must drop substantially versus one-vector-at-a-time,
2. **engine** — the from-scratch BCSR product vs the compiled
   ``scipy.sparse`` CSR product (both bit-identical; the paper's point
   is that the kernel choice is an implementation detail behind the
   operator interface),
3. **neighbor backend** — cell list (the paper's Verlet cells) vs
   KD-tree for constructing the matrix.

Run ``python benchmarks/bench_ablation_spmv.py`` for the tables.
"""

import numpy as np

from repro.bench import (
    bench_scale,
    cached_suspension,
    measure_seconds,
    print_table,
    record_benchmark,
)
from repro.pme.realspace import RealSpaceOperator

R_MAX = 4.0
XI = 1.0


def _operator(n, engine="scipy", backend="cells"):
    susp = cached_suspension(n)
    return susp, RealSpaceOperator(susp.positions, susp.box, XI,
                                   min(R_MAX, susp.box.length / 2),
                                   engine=engine, neighbor_backend=backend)


def multi_rhs_rows(n=None):
    """Per-vector SpMV cost vs block width, both engines."""
    n = n or (20000 if bench_scale() == "paper" else 3000)
    rows = []
    for engine in ("scipy", "bcsr"):
        _, op = _operator(n, engine=engine)
        for s in (1, 4, 16):
            f = np.random.default_rng(0).standard_normal((3 * n, s))
            t = measure_seconds(lambda: op.apply(f), repeats=3,
                                warmup=1).best
            rows.append([engine, s, t, t / s])
    return rows


def construction_rows(n=None):
    """Operator construction cost per neighbor backend."""
    n = n or (20000 if bench_scale() == "paper" else 3000)
    rows = []
    for backend in ("cells", "kdtree"):
        susp = cached_suspension(n)
        t = measure_seconds(
            lambda: RealSpaceOperator(susp.positions, susp.box, XI,
                                      min(R_MAX, susp.box.length / 2),
                                      neighbor_backend=backend),
            repeats=2).best
        rows.append([backend, n, t])
    return rows


def main():
    rhs_rows = multi_rhs_rows()
    build_rows = construction_rows()
    print_table("Ablation: real-space SpMV, per-vector cost vs block width",
                ["engine", "block width s", "t block (s)",
                 "t per vector (s)"],
                rhs_rows)
    print_table("Ablation: real-space operator construction by neighbor "
                "backend",
                ["backend", "n", "t build (s)"],
                build_rows)
    record_benchmark("ablation_spmv",
                     ["engine", "block width s", "t block (s)",
                      "t per vector (s)"],
                     rhs_rows,
                     meta={"construction_rows": build_rows})


def test_scipy_engine_block_spmv(benchmark):
    n = 3000
    _, op = _operator(n, engine="scipy")
    f = np.random.default_rng(0).standard_normal((3 * n, 16))
    benchmark(op.apply, f)


def test_bcsr_engine_block_spmv(benchmark):
    n = 3000
    _, op = _operator(n, engine="bcsr")
    f = np.random.default_rng(0).standard_normal((3 * n, 16))
    benchmark(op.apply, f)


def test_multi_rhs_amortization(benchmark):
    """The reference-[24] claim: per-vector cost drops with block width."""
    rows = benchmark.pedantic(multi_rhs_rows, kwargs=dict(n=2000),
                              rounds=1, iterations=1)
    for engine in ("scipy", "bcsr"):
        per_vector = [r[3] for r in rows if r[0] == engine]
        assert per_vector[-1] < per_vector[0]  # s=16 cheaper than s=1


if __name__ == "__main__":
    main()
