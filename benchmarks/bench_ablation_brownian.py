"""Ablation — Brownian displacement methods: Cholesky vs Krylov vs Chebyshev.

The paper chooses the block Krylov method (Section III.B); the
alternatives are the dense Cholesky factorization (Algorithm 1) and
Fixman's Chebyshev polynomials (reference [25], which "require
eigenvalue estimates of M").  This ablation quantifies the trade on a
real Ewald mobility:

* operator applications (the dominant cost in the matrix-free setting),
* wall-clock,
* accuracy against the dense principal square root.

Run ``python benchmarks/bench_ablation_brownian.py`` for the table.
"""

import numpy as np

from repro.bench import (
    bench_scale,
    cached_suspension,
    measure_seconds,
    print_table,
    record_benchmark,
)
from repro.core.brownian import (
    ChebyshevBrownianGenerator,
    CholeskyBrownianGenerator,
    KrylovBrownianGenerator,
)
from repro.krylov import dense_sqrt_apply
from repro.rpy.ewald import EwaldSummation

TOL = 1e-4
N_VECTORS = 10


def experiment_rows(n=None):
    """One row per method: matvecs, wall-clock, relative error."""
    n = n or (400 if bench_scale() == "paper" else 120)
    susp = cached_suspension(n)
    mobility = EwaldSummation(box=susp.box, tol=1e-8).matrix(susp.positions)
    z = np.random.default_rng(0).standard_normal((3 * n, N_VECTORS))
    ref = dense_sqrt_apply(mobility, z)
    kT, dt = 1.0, 1e-3
    scale = np.sqrt(2 * kT * dt)

    rows = []

    t = measure_seconds(
        lambda: CholeskyBrownianGenerator(kT=kT, dt=dt).generate(mobility, z)).best
    # Cholesky samples a different (equally valid) square root; its
    # "error" column is not comparable and is reported as n/a
    rows.append(["Cholesky (dense)", "n/a (needs matrix)", t, "n/a"])

    kry = KrylovBrownianGenerator(kT=kT, dt=dt, tol=TOL)
    t = measure_seconds(
        lambda: kry.generate(lambda v: mobility @ v, z)).best
    y = kry.generate(lambda v: mobility @ v, z)
    err = np.linalg.norm(y / scale - ref) / np.linalg.norm(ref)
    rows.append(["block Krylov (paper)", kry.last_info.n_matvecs, t,
                 f"{err:.1e}"])

    cheb = ChebyshevBrownianGenerator(kT=kT, dt=dt, tol=TOL)
    t = measure_seconds(
        lambda: cheb.generate(lambda v: mobility @ v, z)).best
    y = cheb.generate(lambda v: mobility @ v, z)
    err = np.linalg.norm(y / scale - ref) / np.linalg.norm(ref)
    rows.append(["Chebyshev (Fixman)", cheb.last_info.n_matvecs, t,
                 f"{err:.1e}"])
    return rows


def main():
    rows = experiment_rows()
    headers = ["method", "operator applications", "wall (s)", "rel error"]
    print_table(
        f"Ablation: Brownian displacement methods ({N_VECTORS} vectors, "
        f"tol={TOL})",
        headers, rows)
    record_benchmark("ablation_brownian", headers, rows,
                     meta={"tol": TOL, "n_vectors": N_VECTORS})


def test_krylov_generator(benchmark):
    n = 120
    susp = cached_suspension(n)
    mobility = EwaldSummation(box=susp.box, tol=1e-8).matrix(susp.positions)
    z = np.random.default_rng(0).standard_normal((3 * n, N_VECTORS))
    gen = KrylovBrownianGenerator(kT=1.0, dt=1e-3, tol=TOL)
    benchmark(gen.generate, lambda v: mobility @ v, z)


def test_chebyshev_generator(benchmark):
    n = 120
    susp = cached_suspension(n)
    mobility = EwaldSummation(box=susp.box, tol=1e-8).matrix(susp.positions)
    z = np.random.default_rng(0).standard_normal((3 * n, N_VECTORS))
    gen = ChebyshevBrownianGenerator(kT=1.0, dt=1e-3, tol=TOL)
    benchmark(gen.generate, lambda v: mobility @ v, z)


def test_both_matrix_free_methods_accurate(benchmark):
    rows = benchmark.pedantic(experiment_rows, kwargs=dict(n=90),
                              rounds=1, iterations=1)
    for row in rows[1:]:
        assert float(row[3]) < 10 * TOL


if __name__ == "__main__":
    main()
