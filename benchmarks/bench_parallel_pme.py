"""Blocked-PME apply under execution contexts: serial vs threads.

The ExecutionContext layer dispatches the per-color spread/interpolate
blocks to a thread pool (GIL-releasing C kernels), runs the stacked
FFTs with ``workers=`` parallelism and chunks the real-space BCSR SpMM
across workers (paper Sections IV.B.2, IV.C, IV.E).  This benchmark
times the same ``(3n, s)`` blocked apply through

* the legacy no-context pipeline (the committed-baseline reference),
* a ``serial`` context (colored engine, one worker), and
* ``threads`` contexts at increasing worker counts,

and asserts the headline invariant along the way: every context
produces **bit-identical** velocities, and all agree with the legacy
pipeline to solver precision.

The speedup column is honest about the machine it ran on: on a
single-CPU host the thread rows measure dispatch overhead, not
parallel gain, and the recorded ``cpus`` field lets the CI comparison
interpret the numbers.  Run ``python benchmarks/bench_parallel_pme.py``
for the table; ``BENCH_parallel_pme.json`` is written via
``repro.bench.record``.
"""

import hashlib
import os
import time

import numpy as np

from repro.bench import (
    bench_scale,
    cached_suspension,
    print_table,
    record_benchmark,
)
from repro.exec import ExecutionContext
from repro.pme.operator import PMEOperator, PMEParams
from repro.sparse import kernel_available

N = 1000
PHI = 0.2
S = 8

#: Real-space-heavy split (most of the pipeline parallelizes): matched
#: truncation accuracy with the committed blocked-PME points.
XI, R_MAX, K, P = 0.30, 13.0, 24, 6

#: Worker counts measured under the threads backend.
THREAD_WORKERS = (1, 2, 4)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(fn, repeats):
    fn()                                  # warmup (plans, workspaces)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _digest(a):
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()


def parallel_rows(n=N, s=S, repeats=None):
    repeats = repeats or (7 if bench_scale() == "paper" else 3)
    susp = cached_suspension(n, volume_fraction=PHI)
    params = PMEParams(xi=XI, r_max=min(R_MAX, susp.box.length / 2),
                       K=K, p=P)
    f = np.random.default_rng(0).standard_normal((3 * n, s))

    legacy_op = PMEOperator(susp.positions, susp.box, params)
    u_legacy = legacy_op.apply_block(f)
    t_legacy = _best_of(lambda: legacy_op.apply_block(f), repeats)
    rows = [["legacy", "-", t_legacy, 1.0]]

    configs = [("serial", 1)] + [("threads", w) for w in THREAD_WORKERS]
    digests = set()
    for backend, workers in configs:
        with ExecutionContext(backend=backend, workers=workers) as ctx:
            op = PMEOperator(susp.positions, susp.box, params, context=ctx)
            u = op.apply_block(f)
            digests.add(_digest(u))
            err = (np.linalg.norm(u - u_legacy)
                   / np.linalg.norm(u_legacy))
            assert err < 1e-13, \
                f"{backend}/{workers} diverged from legacy: {err:.2e}"
            t = _best_of(lambda: op.apply_block(f), repeats)
            rows.append([backend, workers, t, t_legacy / t])
    assert len(digests) == 1, "contexts disagree bitwise"
    return rows


def main():
    rows = parallel_rows()
    headers = ["backend", "workers", "t block (s)", "speedup vs legacy"]
    print_table(f"Blocked-PME apply under execution contexts "
                f"(n={N}, s={S}, cpus={_cpus()}, "
                f"native kernel: {kernel_available()})",
                headers, rows)
    threads = {r[1]: r[-1] for r in rows if r[0] == "threads"}
    best_threads = max(threads.values())
    record_benchmark("parallel_pme", headers, rows,
                     meta={"n": N, "s": S, "phi": PHI,
                           "xi": XI, "r_max": R_MAX, "K": K, "p": P,
                           "cpus": _cpus(),
                           "kernel_available": kernel_available(),
                           "threads_speedups": threads,
                           "best_threads_speedup": best_threads,
                           "bit_identical": True})
    print(f"\nbest threads speedup vs legacy: {best_threads:.2f}x "
          f"on {_cpus()} cpu(s)")


if __name__ == "__main__":
    main()
