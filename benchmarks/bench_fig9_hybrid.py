"""Fig. 9 — hybrid (CPU + 2 Xeon Phi) vs CPU-only BD step.

The paper's hybrid implementation averages 2.5x over CPU-only and
exceeds 3.5x for the largest configurations, with only marginal gains
for small ones (offload overhead plus inefficient small-mesh FFTs on
KNC).

The schedule (Section IV.E static partitioning balanced by the
Section IV.D model) is executed for real on the host — its numerical
output is verified identical to the plain operator — while the
per-device durations come from the Table I machine models (DESIGN.md,
"Substitutions").

Run ``python benchmarks/bench_fig9_hybrid.py`` for the table.
"""

import numpy as np

from repro import Box, PMEOperator, tune_parameters
from repro.bench import bench_scale, cached_suspension, print_table, record_benchmark
from repro.parallel.hybrid import HybridScheduler

CI_COUNTS = [1000, 5000, 20000, 100000, 500000]
PAPER_COUNTS = [1000, 5000, 10000, 50000, 100000, 200000, 500000]
LAMBDA_RPY = 16


def experiment_rows(counts=None):
    """(n, K, vectors per device, cpu-only s, hybrid s, speedup)."""
    counts = counts or (PAPER_COUNTS if bench_scale() == "paper"
                        else CI_COUNTS)
    scheduler = HybridScheduler()
    rows = []
    for n in counts:
        box = Box.for_volume_fraction(n, 0.2)
        params = tune_parameters(n, box, target_ep=1e-3)
        density = n * (4.0 / 3.0) * np.pi * params.r_max ** 3 / box.volume
        plan = scheduler.plan_block(n, params.K, params.p, density,
                                    LAMBDA_RPY)
        rows.append([n, params.K,
                     "/".join(str(c) for c in plan.assignments),
                     plan.cpu_only_time, plan.hybrid_time, plan.speedup])
    return rows


def main():
    rows = experiment_rows()
    headers = ["n", "K", "vectors cpu/knc0/knc1", "cpu-only (s)",
               "hybrid (s)", "speedup"]
    print_table(
        f"Fig. 9: hybrid CPU+2xKNC vs CPU-only, block of {LAMBDA_RPY} PME "
        "vectors (modeled schedule)",
        headers, rows)
    speedups = [r[-1] for r in rows]
    print(f"mean speedup {np.mean(speedups):.2f}x, "
          f"max {max(speedups):.2f}x")
    record_benchmark("fig9_hybrid", headers, rows,
                     meta={"lambda_rpy": LAMBDA_RPY,
                           "mean_speedup": float(np.mean(speedups))})


def test_hybrid_execution_correct_and_timed(benchmark):
    """Host execution of the hybrid schedule equals the plain operator."""
    n = 1000
    susp = cached_suspension(n)
    params = tune_parameters(n, susp.box, target_ep=1e-2)
    op = PMEOperator(susp.positions, susp.box, params)
    scheduler = HybridScheduler()
    f = np.random.default_rng(0).standard_normal((3 * n, 8))
    u, plan = benchmark.pedantic(scheduler.execute, args=(op, f),
                                 rounds=2, iterations=1)
    np.testing.assert_allclose(u, op.apply(f), rtol=1e-12)
    assert plan.speedup > 0


def test_fig9_speedup_shape(benchmark):
    """The paper's shape: marginal gains small, >3x for the largest."""
    rows = benchmark.pedantic(experiment_rows,
                              args=([1000, 100000, 500000],),
                              rounds=1, iterations=1)
    assert rows[0][-1] < rows[-1][-1]
    assert rows[-1][-1] > 2.5


if __name__ == "__main__":
    main()
