"""Fig. 6 — reciprocal-space PME: Westmere-EP vs Xeon Phi (KNC).

The paper compares its PME implementation on the dual-socket CPU and
on one KNC card in native mode: "for small numbers of particles, KNC
is only slightly faster than or even slower than Westmere-EP ... for
large numbers of particles, KNC is as much as 1.6x faster."

Physical KNC hardware is unavailable here, so this figure is
regenerated with the paper's own Section IV.D performance model
parameterized by the Table I machines (DESIGN.md, "Substitutions"); the
model itself is validated against host measurements in Fig. 5.  The
benchmark grounds the comparison with one real host measurement per
configuration so the model inputs stay honest.

Run ``python benchmarks/bench_fig6_architectures.py`` for the table.
"""

import numpy as np

from repro import Box, tune_parameters
from repro.bench import bench_scale, print_table, record_benchmark
from repro.perfmodel import PMECostModel, WESTMERE_EP, XEON_PHI_KNC

CI_COUNTS = [500, 1000, 5000, 20000, 100000, 500000]
PAPER_COUNTS = [1000, 5000, 10000, 50000, 100000, 200000, 500000]


def experiment_rows(counts=None):
    """(n, K, t_westmere, t_knc, knc speedup) per configuration."""
    counts = counts or (PAPER_COUNTS if bench_scale() == "paper"
                        else CI_COUNTS)
    cpu = PMECostModel(WESTMERE_EP)
    knc = PMECostModel(XEON_PHI_KNC)
    rows = []
    for n in counts:
        box = Box.for_volume_fraction(n, 0.2)
        params = tune_parameters(n, box, target_ep=1e-3)
        t_cpu = cpu.t_reciprocal(n, params.K, params.p)
        t_knc = knc.t_reciprocal(n, params.K, params.p)
        rows.append([n, params.K, t_cpu, t_knc, t_cpu / t_knc])
    return rows


def main():
    rows = experiment_rows()
    headers = ["n", "K", "t Westmere (s)", "t KNC (s)", "KNC speedup"]
    print_table(
        "Fig. 6: reciprocal PME, Westmere-EP vs KNC (modeled, Eq. 10 + "
        "Table I)",
        headers, rows)
    record_benchmark("fig6_architectures", headers, rows)


def test_model_comparison_shape(benchmark):
    """The paper's shape: KNC near-parity (or slower) for small systems,
    up to ~1.6x faster for large ones."""
    rows = benchmark.pedantic(experiment_rows,
                              args=([500, 1000, 100000, 500000],),
                              rounds=1, iterations=1)
    small_speedup = rows[0][-1]
    large_speedup = rows[-1][-1]
    assert small_speedup < 1.2      # parity-or-slower regime
    assert large_speedup > 1.3      # approaching the paper's 1.6x
    assert large_speedup > small_speedup


def test_model_evaluation_cost(benchmark):
    """Model evaluation stays trivially cheap across a full sweep."""
    cpu = PMECostModel(WESTMERE_EP)

    def sweep():
        return sum(cpu.t_reciprocal(n, 128, 6)
                   for n in np.arange(1000, 100000, 5000))

    total = benchmark(sweep)
    assert total > 0


if __name__ == "__main__":
    main()
