"""Batched multi-RHS PME pipeline vs sequential per-vector application.

The block Krylov method of Algorithm 2 applies the PME operator to
``s`` right-hand sides per iteration.  The batched
:meth:`~repro.pme.operator.PMEOperator.apply_block` pipeline amortizes
the spread product, stacks all ``3s`` FFTs, slab-fuses the influence
function and streams the real-space BCSR blocks once against all
lanes; this benchmark measures that against ``s`` sequential
:meth:`~repro.pme.operator.PMEOperator.apply` calls.

The FFTs themselves gain nothing from batching (each lane is a full
``K^3`` transform either way — the observation behind the paper's
Section IV.E hybrid partitioning), so the achievable block speedup
depends on the Ewald split: pushing work from the mesh into the
real-space sum (smaller ``xi`` -> larger ``r_max``, smaller ``K`` at
matched accuracy) raises the fraction of the pipeline that *does*
batch.  Three parameter points along that trade-off are measured, all
tuned to hold the truncation errors fixed (``xi r_max ~ 3.95``,
``k_max / 2 xi ~ 4.68``).

A block-Lanczos end-to-end comparison (one batched operator per
iteration vs the legacy per-column callable) closes the loop at the
solver level.

Run ``python benchmarks/bench_blocked_pme.py`` for the table;
``BENCH_blocked_pme.json`` is written via ``repro.bench.record``.
"""

import time

import numpy as np

from repro.bench import (
    bench_scale,
    cached_suspension,
    print_table,
    record_benchmark,
)
from repro.krylov.block_lanczos import block_lanczos_sqrt
from repro.pme.operator import PMEOperator, PMEParams
from repro.sparse import kernel_available

N = 1000
PHI = 0.2
S = 8

#: (label, xi, r_max, K): matched-accuracy points along the Ewald
#: split, from mesh-heavy (tuned for single-vector apply) to
#: real-space-heavy (tuned for blocked apply).
POINTS = [
    ("tuned", 0.658, 6.0, 54),
    ("shift", 0.50, 7.9, 42),
    ("block", 0.30, 13.0, 24),
]


def _interleaved_best(fn_a, fn_b, repeats):
    """Best-of-``repeats`` for two thunks, interleaved (fair vs drift)."""
    fn_a()
    fn_b()                       # warmup both (allocations, FFT plans)
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def pipeline_rows(n=N, s=S, repeats=None):
    """Sequential-vs-blocked wall clock for each parameter point."""
    repeats = repeats or (7 if bench_scale() == "paper" else 3)
    susp = cached_suspension(n, volume_fraction=PHI)
    f = np.random.default_rng(0).standard_normal((3 * n, s))
    rows = []
    for label, xi, r_max, K in POINTS:
        r_max = min(r_max, susp.box.length / 2)
        op = PMEOperator(susp.positions, susp.box,
                         PMEParams(xi=xi, r_max=r_max, K=K, p=6))

        def sequential():
            return np.column_stack([op.apply(f[:, c])
                                    for c in range(s)])

        def blocked():
            return op.apply_block(f)

        # equivalence guard: the fast path must be the same operator
        err = (np.linalg.norm(blocked() - sequential())
               / np.linalg.norm(sequential()))
        assert err < 1e-12, f"block path diverged at {label}: {err:.2e}"

        t_seq, t_blk = _interleaved_best(sequential, blocked, repeats)
        rows.append([label, xi, r_max, K, op.real.n_pairs,
                     t_seq, t_blk, t_seq / t_blk])
    return rows


def lanczos_rows(n=N, s=S, tol=1e-2):
    """Block-Lanczos step: batched operator vs legacy callable."""
    susp = cached_suspension(n, volume_fraction=PHI)
    label, xi, r_max, K = POINTS[-1]
    op = PMEOperator(susp.positions, susp.box,
                     PMEParams(xi=xi, r_max=min(r_max, susp.box.length / 2),
                               K=K, p=6))
    z = np.random.default_rng(1).standard_normal((3 * n, s))
    repeats = 3 if bench_scale() == "paper" else 2

    def batched():
        return block_lanczos_sqrt(op, z, tol=tol)

    def legacy():
        return block_lanczos_sqrt(op.apply, z, tol=tol)

    t_batched, t_legacy = _interleaved_best(batched, legacy, repeats)
    _, info = batched()
    return [[label, s, info.iterations, t_legacy, t_batched,
             t_legacy / t_batched]]


def main():
    rows = pipeline_rows()
    lrows = lanczos_rows()
    headers = ["point", "xi", "r_max", "K", "pairs",
               "t seq x8 (s)", "t block (s)", "speedup"]
    print_table(f"Batched multi-RHS PME apply (n={N}, s={S}, "
                f"native SpMM kernel: {kernel_available()})",
                headers, rows)
    lheaders = ["point", "s", "iterations", "t legacy (s)",
                "t batched (s)", "speedup"]
    print_table("Block-Lanczos step: batched operator vs legacy callable",
                lheaders, lrows)
    best = max(r[-1] for r in rows)
    record_benchmark("blocked_pme", headers, rows,
                     meta={"n": N, "s": S, "phi": PHI,
                           "kernel_available": kernel_available(),
                           "speedup_s8": best,
                           "lanczos_rows": lrows,
                           "lanczos_speedup": lrows[0][-1]})
    print(f"\nbest apply_block speedup at s={S}: {best:.2f}x "
          f"(block-Lanczos step: {lrows[0][-1]:.2f}x)")


if __name__ == "__main__":
    main()
