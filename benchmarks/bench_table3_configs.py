"""Table III — simulation configurations (n, K, p, r_max, alpha, e_p).

Regenerates the paper's Table III with our tuner: for each particle
count at volume fraction 0.2, the PME parameters that minimize the
predicted execution time subject to ``e_p < 1e-3``.  For sizes small
enough to densify, the measured ``e_p`` (against the dense Ewald
reference) is reported alongside and must be below the target.

Run ``python benchmarks/bench_table3_configs.py`` for the table.
"""

import numpy as np

from repro import Box, PMEOperator, pme_relative_error, tune_parameters
from repro.bench import bench_scale, print_table, record_benchmark

TARGET_EP = 1e-3
PHI = 0.2

CI_COUNTS = [125, 250, 500, 1000, 2000, 4000, 8000, 16000]
PAPER_COUNTS = [125, 250, 500, 1000, 2000, 3000, 4000, 5000, 6000, 7000,
                8000, 10000, 20000, 50000, 100000, 200000, 300000, 500000]
MEASURE_LIMIT = 500  # densifiable sizes get a measured e_p column


def table_rows(counts=None):
    """Rows of the Table III analog: one tuned configuration per n."""
    counts = counts or (PAPER_COUNTS if bench_scale() == "paper"
                        else CI_COUNTS)
    rows = []
    for n in counts:
        box = Box.for_volume_fraction(n, PHI)
        params = tune_parameters(n, box, target_ep=TARGET_EP)
        measured = ""
        if n <= MEASURE_LIMIT:
            rng = np.random.default_rng(n)
            r = rng.uniform(0, box.length, size=(n, 3))
            op = PMEOperator(r, box, params)
            measured = f"{pme_relative_error(op, n_probe=2):.1e}"
        rows.append([n, params.K, params.p, round(params.r_max, 2),
                     round(params.xi, 3), measured])
    return rows


def main():
    headers = ["n", "K", "p", "r_max", "alpha", "measured e_p"]
    rows = table_rows()
    print_table(
        f"Table III: tuned PME configurations (Phi={PHI}, e_p<{TARGET_EP})",
        headers, rows)
    record_benchmark("table3_configs", headers, rows,
                     meta={"phi": PHI, "target_ep": TARGET_EP})


def test_tuning_speed(benchmark):
    """Parameter selection itself (runs once per simulation) is fast."""
    box = Box.for_volume_fraction(10000, PHI)
    params = benchmark(tune_parameters, 10000, box, TARGET_EP)
    assert params.K >= params.p


def test_tuned_accuracy_meets_target(benchmark):
    """Tuned parameters achieve e_p below the Table III target."""
    n = 300
    box = Box.for_volume_fraction(n, PHI)
    params = tune_parameters(n, box, target_ep=TARGET_EP)
    rng = np.random.default_rng(1)
    r = rng.uniform(0, box.length, size=(n, 3))
    op = PMEOperator(r, box, params)
    f = rng.standard_normal(3 * n)
    benchmark(op.apply, f)
    assert pme_relative_error(op, n_probe=2) < TARGET_EP


if __name__ == "__main__":
    main()
