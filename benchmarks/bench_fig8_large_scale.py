"""Fig. 8 — matrix-free BD wall-clock per step up to very large n.

The paper demonstrates the matrix-free algorithm on systems the
conventional algorithm cannot touch, up to 500,000 particles, with the
expected O(n log n) growth of the time per step.

At the default CI scale this sweep stops at a few thousand particles;
``REPRO_BENCH_SCALE=paper`` runs the full range (hours on one core, as
it is a single-core NumPy substrate — the *scaling shape*, which is
the figure's content, is identical).

Run ``python benchmarks/bench_fig8_large_scale.py`` for the table.
"""

import math

import numpy as np

from repro.bench import (
    bench_scale,
    cached_suspension,
    measure_seconds,
    print_table,
    record_benchmark,
)
from repro.core.integrators import MatrixFreeBD

CI_COUNTS = [500, 1000, 2000, 5000]
PAPER_COUNTS = [10000, 20000, 50000, 100000, 200000, 300000, 500000]
LAMBDA_RPY = 16


def experiment_rows(counts=None):
    """(n, K, s/step, s/step / (n log n) x 1e6) per size."""
    counts = counts or (PAPER_COUNTS if bench_scale() == "paper"
                        else CI_COUNTS)
    rows = []
    for n in counts:
        susp = cached_suspension(n)
        bd = MatrixFreeBD(box=susp.box, fluid=susp.fluid, force_field=None,
                          dt=1e-3, lambda_rpy=LAMBDA_RPY, seed=0,
                          target_ep=1e-3, e_k=1e-2)
        t = measure_seconds(
            lambda: bd.run(susp.positions, LAMBDA_RPY)).best / LAMBDA_RPY
        normalized = t / (n * math.log(n)) * 1e6
        rows.append([n, bd.operator.params.K, t, normalized])
    return rows


def main():
    rows = experiment_rows()
    headers = ["n", "K", "s/step", "s/step/(n ln n) x1e6"]
    print_table(
        "Fig. 8: matrix-free BD seconds per step vs n (lambda_RPY="
        f"{LAMBDA_RPY})",
        headers, rows)
    record_benchmark("fig8_large_scale", headers, rows,
                     meta={"lambda_rpy": LAMBDA_RPY})
    norms = [r[3] for r in rows]
    print("near-constant normalized column confirms O(n log n): "
          f"spread {max(norms) / min(norms):.2f}x across "
          f"{rows[-1][0] / rows[0][0]:.0f}x particle range")


def test_large_system_pme_apply(benchmark):
    """One PME mobility product at the largest CI size."""
    n = 5000
    susp = cached_suspension(n)
    bd = MatrixFreeBD(box=susp.box, force_field=None, dt=1e-3,
                      lambda_rpy=LAMBDA_RPY, seed=0, target_ep=1e-3)
    bd.run(susp.positions, 1)       # builds the operator
    op = bd.operator
    f = np.random.default_rng(0).standard_normal(3 * n)
    benchmark.pedantic(op.apply, args=(f,), rounds=2, iterations=1)


def test_scaling_shape(benchmark):
    """s/step grows sub-quadratically (the figure's content)."""
    rows = benchmark.pedantic(experiment_rows, args=([500, 2000],),
                              rounds=1, iterations=1)
    t_ratio = rows[1][2] / rows[0][2]
    n_ratio = rows[1][0] / rows[0][0]
    assert t_ratio < n_ratio ** 1.7    # far below the dense O(n^2)


if __name__ == "__main__":
    main()
