"""Serve-layer throughput: cross-request batching vs serial applies.

Eight closed-loop clients hammer one :class:`repro.serve`
:class:`~repro.serve.service.SimulationService` with single-vector
``mobility.apply`` requests.  The **batched** arm lets the
:class:`~repro.serve.batching.MobilityBatcher` coalesce up to 8
concurrent requests into one
:meth:`~repro.pme.operator.PMEOperator.apply_block` call (the paper's
Section IV.E block-of-vectors economics applied to *traffic*); the
**serial** arm pins ``max_batch=1`` so every request pays a full
single-vector pipeline.  Both arms run on **one** compute thread, so
the measured speedup is pure batching amortization — spread product,
stacked FFTs, fused influence function and one BCSR stream shared
across requests — not parallelism.

Forces are unique per request (the result cache never hits) and every
response is checked against a directly built reference operator, so
the speedup is measured on bit-identical answers.

A client-disconnect smoke closes the loop on robustness: a client that
fires a request and vanishes mid-flight must not take the server (or
the next client) down.

Run ``python benchmarks/bench_serve_throughput.py``;
``BENCH_serve_throughput.json`` is written via ``repro.bench.record``.
"""

import asyncio
import os
import socket
import tempfile
import threading
import time

import numpy as np

from repro.bench import bench_scale, print_table, record_benchmark
from repro.serve import ServeClient, ServeSettings, SimulationService, SystemSpec
from repro.serve.batching import build_operator
from repro.serve.protocol import encode_message

N = 100
PHI = 0.2
#: Looser mesh tolerance -> a real-space-heavy Ewald split, the regime
#: where block applies amortize best (paper Section IV.E: the FFTs are
#: the one stage that gains nothing from batching).
E_P = 1e-2
CLIENTS = 8


class _Server:
    """A service on a Unix socket, driven by a background thread."""

    def __init__(self, settings: ServeSettings):
        self.service = SimulationService(settings)
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self.service.serve_until_stopped())

    def __enter__(self) -> "_Server":
        self._thread.start()
        path = self.service.settings.socket_path
        deadline = time.perf_counter() + 30.0
        while time.perf_counter() < deadline:
            if os.path.exists(path):
                try:
                    probe = socket.socket(socket.AF_UNIX,
                                          socket.SOCK_STREAM)
                    probe.connect(path)
                    probe.close()
                    return self
                except OSError:
                    pass
            time.sleep(0.01)
        raise RuntimeError("serve socket never came up")

    def __exit__(self, *exc) -> None:
        self.service.request_stop()
        self._thread.join(timeout=30.0)


def _settings(work_dir: str, max_batch: int, max_wait: float
              ) -> ServeSettings:
    return ServeSettings(
        socket_path=os.path.join(work_dir, f"bench-{max_batch}.sock"),
        work_dir=os.path.join(work_dir, "jobs"),
        compute_threads=1,          # both arms: batching, not threads
        max_batch=max_batch, max_wait=max_wait,
        max_queue_columns=4 * CLIENTS, max_inflight=4)


def _run_arm(label: str, work_dir: str, max_batch: int, max_wait: float,
             requests_per_client: int, reference) -> dict:
    """One closed-loop load: every client sends, waits, sends again."""
    spec = SystemSpec(n=N, phi=PHI, e_p=E_P)
    latencies: list[float] = []
    answers: list[tuple[np.ndarray, np.ndarray]] = []
    lock = threading.Lock()
    start_barrier = threading.Barrier(CLIENTS + 1)
    errors: list[BaseException] = []

    def client_loop(client_index: int) -> None:
        rng = np.random.default_rng(1000 + client_index)
        try:
            with ServeClient(socket_path=settings.socket_path,
                             max_retries=50) as client:
                start_barrier.wait()
                for _ in range(requests_per_client):
                    forces = rng.standard_normal(3 * N)
                    t0 = time.perf_counter()
                    velocities = client.mobility_apply(spec, forces)
                    dt = time.perf_counter() - t0
                    with lock:
                        latencies.append(dt)
                        answers.append((forces, velocities))
        except BaseException as exc:
            errors.append(exc)
            raise

    settings = _settings(work_dir, max_batch, max_wait)
    with _Server(settings) as server:
        # warm the operator pool so both arms measure steady state
        with ServeClient(socket_path=settings.socket_path,
                         max_retries=50) as warm:
            warm.mobility_apply(spec, np.zeros(3 * N))
        threads = [threading.Thread(target=client_loop, args=(i,))
                   for i in range(CLIENTS)]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        t0 = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        stats = server.service.stats()
    if errors:
        raise errors[0]
    # bit-identity check, outside the timed region (concurrent applies
    # on one reference operator would race on its MobilityCache
    # workspaces anyway — the same reason the batcher serializes)
    for forces, velocities in answers:
        want = reference.apply_block(forces.reshape(-1, 1))[:, 0]
        assert velocities.tobytes() == want.tobytes(), \
            f"{label}: served bytes diverged from direct apply"
    total = CLIENTS * requests_per_client
    lat = np.sort(np.asarray(latencies))
    return {
        "label": label,
        "elapsed": elapsed,
        "req_s": total / elapsed,
        "p50": float(np.percentile(lat, 50)),
        "p90": float(np.percentile(lat, 90)),
        "p99": float(np.percentile(lat, 99)),
        "batches": stats["batcher"]["batches_flushed"],
        "requests": stats["batcher"]["requests_batched"],
        "shed": stats["admission"]["shed_total"],
    }


def disconnect_smoke(work_dir: str) -> None:
    """Clients vanishing mid-flight must not hurt the next client."""
    spec = SystemSpec(n=N, phi=PHI, e_p=E_P)
    settings = _settings(work_dir, max_batch=8, max_wait=2e-3)
    rng = np.random.default_rng(0)
    with _Server(settings) as server:
        for _ in range(5):
            rude = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            rude.connect(settings.socket_path)
            rude.sendall(encode_message({
                "op": "mobility.apply", "id": 1, "system": spec.to_json(),
                "forces": rng.standard_normal(3 * N).tolist()}))
            rude.close()            # gone before the answer exists
        with ServeClient(socket_path=settings.socket_path,
                         max_retries=50) as client:
            velocities = client.mobility_apply(
                spec, rng.standard_normal(3 * N))
            assert velocities.shape == (3 * N,)
        served = server.service.requests_total
    print(f"disconnect smoke: 5 abandoned requests absorbed, "
          f"{served} requests served, follow-up client unaffected")


def main() -> None:
    requests_per_client = 96 if bench_scale() == "paper" else 24
    reference, _cache = build_operator(SystemSpec(n=N, phi=PHI, e_p=E_P))
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        for label, max_batch, max_wait in (
                ("serial", 1, 0.0),
                ("batched", 8, 2e-3)):
            arm = _run_arm(label, tmp, max_batch, max_wait,
                           requests_per_client, reference)
            rows.append([arm["label"], CLIENTS,
                         CLIENTS * requests_per_client, arm["batches"],
                         arm["elapsed"], arm["req_s"], arm["p50"],
                         arm["p90"], arm["p99"]])
        disconnect_smoke(tmp)

    headers = ["arm", "clients", "requests", "batches", "wall (s)",
               "req/s", "p50 (s)", "p90 (s)", "p99 (s)"]
    print_table(f"Serve throughput: batched vs serial mobility applies "
                f"(n={N}, {CLIENTS} closed-loop clients, 1 compute "
                f"thread)", headers, rows)
    serial_rps, batched_rps = rows[0][5], rows[1][5]
    speedup = batched_rps / serial_rps
    record_benchmark("serve_throughput", headers, rows,
                     meta={"n": N, "phi": PHI, "clients": CLIENTS,
                           "e_p": E_P,
                           "requests_per_client": requests_per_client,
                           "serial_req_s": serial_rps,
                           "batched_req_s": batched_rps,
                           "batching_speedup": speedup})
    print(f"\ncross-request batching speedup: {speedup:.2f}x "
          f"({serial_rps:.1f} -> {batched_rps:.1f} req/s)")


if __name__ == "__main__":
    main()
