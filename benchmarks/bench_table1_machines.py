"""Table I — architectural parameters of the modeled machines.

The paper's Table I lists the testbed hardware.  Here the table is the
*input* of the performance-model substitution (DESIGN.md): this
benchmark prints the machine descriptions used by Figs. 5, 6 and 9 and
times the cost-model evaluation itself (it sits inside the hybrid
scheduler's inner loop, so it must be cheap).

Run ``python benchmarks/bench_table1_machines.py`` for the table.
"""

from repro.bench import print_table, record_benchmark
from repro.perfmodel import PMECostModel, WESTMERE_EP, XEON_PHI_KNC


def table_rows():
    """Rows of the Table I analog."""
    rows = []
    for label, m in (("2x Intel X5680", WESTMERE_EP),
                     ("Intel Xeon Phi", XEON_PHI_KNC)):
        rows.append([label, m.frequency_ghz,
                     f"{m.cores}/{m.threads}",
                     m.peak_gflops_dp, m.stream_bandwidth_gbs, m.memory_gb])
    return rows


def main():
    headers = ["machine", "GHz", "cores/threads", "DP GF/s",
               "STREAM GB/s", "GB"]
    rows = table_rows()
    print_table("Table I: architectural parameters (model inputs)",
                headers, rows)
    record_benchmark("table1_machines", headers, rows)


def test_cost_model_evaluation_speed(benchmark):
    """The Eq. 10 evaluation must be microseconds-cheap (scheduler inner loop)."""
    model = PMECostModel(XEON_PHI_KNC)
    result = benchmark(model.t_reciprocal, 100_000, 256, 6)
    assert result > 0
    # Table I invariants the model relies on
    assert XEON_PHI_KNC.stream_bandwidth_gbs > WESTMERE_EP.stream_bandwidth_gbs
    assert XEON_PHI_KNC.memory_gb < WESTMERE_EP.memory_gb


if __name__ == "__main__":
    main()
