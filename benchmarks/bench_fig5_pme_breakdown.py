"""Fig. 5 — reciprocal-space PME time breakdown, measured vs modeled.

The paper's Fig. 5 shows per-phase timings of the reciprocal pipeline
(a) as a function of the number of particles at fixed mesh and (b) as a
function of the mesh dimension at fixed particle count, overlaid with
the Section IV.D performance model.  This benchmark reproduces both
sweeps on the host and reports the measured phase breakdown alongside
the model evaluated with the host machine description.

The paper's shape claims checked here:

* the FFTs dominate for small particle counts,
* spreading + interpolation grow with ``n`` and eventually rival the
  FFT cost,
* applying the influence function grows with ``K^3``.

Run ``python benchmarks/bench_fig5_pme_breakdown.py`` for the tables.
"""

import numpy as np

from repro import PMEOperator, PMEParams
from repro.bench import bench_scale, cached_suspension, print_table, record_benchmark
from repro.perfmodel import HOST, PMECostModel

PHASES = ["spread", "fft", "influence", "ifft", "interpolate"]


def _measure_breakdown(n, K, p, r_max=4.0, xi=1.0, repeats=3):
    susp = cached_suspension(n)
    params = PMEParams(xi=xi, r_max=min(r_max, susp.box.length / 2), K=K, p=p)
    op = PMEOperator(susp.positions, susp.box, params)
    f = np.random.default_rng(0).standard_normal(3 * n)
    op.apply_reciprocal(f)          # warm up
    op.timers.reset()
    for _ in range(repeats):
        op.apply_reciprocal(f)
    return {ph: op.timers.elapsed(ph) / repeats for ph in PHASES}


def sweep_particles(K=None, p=6, counts=None):
    """Fig. 5a analog: fixed mesh, varying particle count."""
    paper = bench_scale() == "paper"
    K = K or (256 if paper else 64)
    counts = counts or ([5000, 20000, 80000, 200000, 500000] if paper
                        else [500, 2000, 8000])
    rows = []
    for n in counts:
        b = _measure_breakdown(n, K, p)
        rows.append([n] + [b[ph] for ph in PHASES] + [sum(b.values())])
    return K, rows


def sweep_mesh(n=None, p=6, dims=None):
    """Fig. 5b analog: fixed particle count, varying mesh dimension."""
    paper = bench_scale() == "paper"
    n = n or 5000
    dims = dims or ([64, 96, 128, 192, 256] if paper else [32, 48, 64, 96])
    rows = []
    for K in dims:
        b = _measure_breakdown(n, K, p)
        rows.append([K] + [b[ph] for ph in PHASES] + [sum(b.values())])
    return n, rows


def model_rows(n_list, K_list, p=6):
    """Eq. 10 per-phase predictions with the host machine description."""
    model = PMECostModel(HOST)
    rows = []
    for n, K in zip(n_list, K_list):
        b = model.breakdown(n, K, p)
        rows.append([n, K] + [b[ph] for ph in PHASES] + [sum(b.values())])
    return rows


def main():
    K, rows_a = sweep_particles()
    print_table(f"Fig. 5a: reciprocal PME breakdown vs n (K={K}, p=6), "
                "measured seconds",
                ["n"] + PHASES + ["total"], rows_a)
    n, rows_b = sweep_mesh()
    print_table(f"Fig. 5b: reciprocal PME breakdown vs K (n={n}, p=6), "
                "measured seconds",
                ["K"] + PHASES + ["total"], rows_b)
    ns = [r[0] for r in rows_a]
    overlay = model_rows(ns, [K] * len(ns))
    print_table("Fig. 5 overlay: Section IV.D model with the host "
                "machine description (seconds)",
                ["n", "K"] + PHASES + ["total"], overlay)
    record_benchmark("fig5_pme_breakdown",
                     ["sweep", "n_or_K"] + PHASES + ["total"],
                     [["particles"] + r for r in rows_a]
                     + [["mesh"] + r for r in rows_b],
                     meta={"K_fixed": K, "n_fixed": n, "p": 6,
                           "model_overlay_rows": overlay})


def test_reciprocal_application(benchmark):
    """One reciprocal-space PME application (the Fig. 5 unit of work)."""
    n = 2000
    susp = cached_suspension(n)
    params = PMEParams(xi=1.0, r_max=4.0, K=64, p=6)
    op = PMEOperator(susp.positions, susp.box, params)
    f = np.random.default_rng(0).standard_normal(3 * n)
    benchmark(op.apply_reciprocal, f)


def test_breakdown_shapes(benchmark):
    """Paper shape claims: FFT-dominated at small n; spreading and
    interpolation grow with n; influence grows with K^3."""
    def run():
        small = _measure_breakdown(500, 64, 6, repeats=2)
        large = _measure_breakdown(8000, 64, 6, repeats=2)
        coarse = _measure_breakdown(1000, 32, 6, repeats=2)
        fine = _measure_breakdown(1000, 96, 6, repeats=2)
        return small, large, coarse, fine

    small, large, coarse, fine = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    assert small["fft"] + small["ifft"] > small["spread"] + small["interpolate"]
    assert large["spread"] + large["interpolate"] > \
        small["spread"] + small["interpolate"]
    assert fine["influence"] > coarse["influence"]


if __name__ == "__main__":
    main()
