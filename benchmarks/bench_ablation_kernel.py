"""Ablation — hydrodynamic kernel: RPY (the paper) vs Oseen/Stokeslet.

The related-work Stokesian PME codes ([15]-[17]) sum the Stokeslet
(Oseen) tensor; the paper's contribution is PME for the *RPY* tensor,
"the positive-definite regularization ... widely used in BD".  This
ablation quantifies why the distinction matters for Brownian dynamics:

* both kernels cost the same through the PME machinery (the influence
  scalar changes, nothing else),
* they agree in the far field but diverge at close range,
* the Oseen mobility loses positive definiteness for near-contact
  pairs — at which point Brownian displacements (a matrix square root)
  are no longer defined, while RPY stays SPD for every configuration.

Run ``python benchmarks/bench_ablation_kernel.py`` for the table.
"""

import numpy as np

from repro import Box, PMEOperator, PMEParams
from repro.bench import measure_seconds, print_table, record_benchmark
from repro.rpy.ewald import EwaldSummation
from repro.systems import make_suspension


def timing_rows(n=400):
    """PME application cost per kernel (should be ~identical)."""
    susp = make_suspension(n, 0.2, seed=0)
    rows = []
    f = np.random.default_rng(0).standard_normal(3 * n)
    for kernel in ("rpy", "oseen"):
        op = PMEOperator(susp.positions, susp.box,
                         PMEParams(xi=1.0, r_max=4.0, K=48, p=6,
                                   kernel=kernel))
        t = measure_seconds(lambda: op.apply(f), repeats=3, warmup=1).best
        rows.append([kernel, t])
    return rows


def definiteness_rows():
    """Minimum mobility eigenvalue vs pair separation, both kernels."""
    box = Box(20.0)
    rows = []
    for gap in (3.0, 2.0, 1.5, 1.0, 0.5):
        r = np.array([[5.0, 5.0, 5.0], [5.0 + gap, 5.0, 5.0]])
        row = [gap]
        for kernel in ("rpy", "oseen"):
            m = EwaldSummation(box, tol=1e-8, kernel=kernel).matrix(r)
            row.append(float(np.linalg.eigvalsh(m).min()))
        rows.append(row)
    return rows


def main():
    t_rows = timing_rows()
    d_rows = definiteness_rows()
    print_table("Ablation: PME application cost per kernel (n=400, K=48, "
                "p=6)",
                ["kernel", "t apply (s)"], t_rows)
    print_table("Ablation: minimum mobility eigenvalue vs pair separation",
                ["separation (a)", "min eig RPY", "min eig Oseen"],
                d_rows)
    record_benchmark("ablation_kernel", ["kernel", "t apply (s)"], t_rows,
                     meta={"definiteness_rows": d_rows})
    print("RPY stays positive definite at any separation (Brownian "
          "displacements always\ndefined); the Oseen kernel goes "
          "indefinite near contact — the reason the paper\nbuilds PME "
          "for the RPY tensor.")


def test_rpy_kernel_apply(benchmark):
    susp = make_suspension(400, 0.2, seed=0)
    op = PMEOperator(susp.positions, susp.box,
                     PMEParams(xi=1.0, r_max=4.0, K=48, p=6))
    f = np.random.default_rng(0).standard_normal(3 * 400)
    benchmark(op.apply, f)


def test_oseen_kernel_apply(benchmark):
    susp = make_suspension(400, 0.2, seed=0)
    op = PMEOperator(susp.positions, susp.box,
                     PMEParams(xi=1.0, r_max=4.0, K=48, p=6,
                               kernel="oseen"))
    f = np.random.default_rng(0).standard_normal(3 * 400)
    benchmark(op.apply, f)


def test_kernel_ablation_shapes(benchmark):
    """Equal cost; RPY SPD everywhere, Oseen indefinite near contact."""
    t_rows, d_rows = benchmark.pedantic(
        lambda: (timing_rows(n=200), definiteness_rows()),
        rounds=1, iterations=1)
    t_rpy, t_oseen = t_rows[0][1], t_rows[1][1]
    assert 0.5 < t_rpy / t_oseen < 2.0
    assert all(row[1] > 0 for row in d_rows)            # RPY SPD
    assert min(row[2] for row in d_rows) < 0            # Oseen fails


if __name__ == "__main__":
    main()
