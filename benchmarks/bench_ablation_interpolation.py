"""Ablation — smooth PME (B-splines) vs original PME (Lagrange).

Reproduces the paper's design-choice statement (Section III.A): "We
found the SPME approach to be more accurate than the original PME
approach [6] with Lagrangian interpolation, while negligibly
increasing computational cost."

At matched ``(xi, r_max, K, p)`` the two schemes are timed and their
``e_p`` against the dense Ewald reference measured.

Run ``python benchmarks/bench_ablation_interpolation.py`` for the table.
"""

import numpy as np

from repro import Box, PMEOperator, PMEParams
from repro.bench import measure_seconds, print_table, record_benchmark
from repro.rpy.ewald import EwaldSummation

CONFIGS = [(32, 4), (48, 6), (64, 6), (64, 8)]


def experiment_rows(n=45):
    box = Box.for_volume_fraction(n, 0.2)
    rng = np.random.default_rng(12)
    r = rng.uniform(0, box.length, size=(n, 3))
    ref = EwaldSummation(box, tol=1e-12).matrix(r)
    f = rng.standard_normal(3 * n)
    u_ref = ref @ f

    rows = []
    for K, p in CONFIGS:
        row = [K, p]
        for kind in ("bspline", "lagrange"):
            op = PMEOperator(r, box, PMEParams(
                xi=1.0, r_max=min(4.0, box.length / 2), K=K, p=p,
                interpolation=kind))
            u = op.apply(f)
            err = np.linalg.norm(u - u_ref) / np.linalg.norm(u_ref)
            t = measure_seconds(lambda: op.apply(f), repeats=3,
                                warmup=1).best
            row += [f"{err:.1e}", t]
        rows.append(row)
    return rows


def main():
    rows = experiment_rows()
    headers = ["K", "p", "e_p SPME", "t SPME (s)", "e_p Lagrange",
               "t Lagrange (s)"]
    print_table(
        "Ablation: SPME (B-spline) vs original PME (Lagrange) at matched "
        "parameters",
        headers, rows)
    record_benchmark("ablation_interpolation", headers, rows,
                     meta={"configs": CONFIGS})
    print("SPME is consistently one-to-two orders more accurate at "
          "essentially equal cost\n(the paper's Section III.A finding).")


def test_spme_apply(benchmark):
    n = 45
    box = Box.for_volume_fraction(n, 0.2)
    r = np.random.default_rng(12).uniform(0, box.length, size=(n, 3))
    op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=48, p=6))
    f = np.random.default_rng(0).standard_normal(3 * n)
    benchmark(op.apply, f)


def test_lagrange_apply(benchmark):
    n = 45
    box = Box.for_volume_fraction(n, 0.2)
    r = np.random.default_rng(12).uniform(0, box.length, size=(n, 3))
    op = PMEOperator(r, box, PMEParams(xi=1.0, r_max=4.0, K=48, p=6,
                                       interpolation="lagrange"))
    f = np.random.default_rng(0).standard_normal(3 * n)
    benchmark(op.apply, f)


def test_spme_wins_at_matched_cost(benchmark):
    rows = benchmark.pedantic(experiment_rows, kwargs=dict(n=40),
                              rounds=1, iterations=1)
    for row in rows:
        e_spme, t_spme = float(row[2]), row[3]
        e_lag, t_lag = float(row[4]), row[5]
        assert e_spme < e_lag
        assert t_spme < 2.0 * t_lag     # "negligibly increasing cost"


if __name__ == "__main__":
    main()
