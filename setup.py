"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` also works on minimal environments that lack the
``wheel`` package (pip falls back to the legacy ``setup.py develop``
path, which needs no wheel building).
"""

from setuptools import setup

setup()
