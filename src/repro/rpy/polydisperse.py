"""Polydisperse (unequal-radii) Rotne-Prager-Yamakawa mobility.

The paper's BD formulation allows "spherical particles of possibly
varying radii" (Section II.A) even though its PME evaluation assumes a
uniform radius (the reciprocal kernel of Eq. 5 is derived "assuming
uniform particle radii").  This module supplies the polydisperse
free-boundary mobility for the dense code path:

for spheres of radii ``a_i``, ``a_j`` at separation ``r``
(Rotne & Prager 1969; Zuk, Wajnryb, Mizerski & Szymczak,
J. Fluid Mech. 741 (2014) for the overlapping regularization):

* ``r > a_i + a_j``::

      M_ij = 1/(8 pi eta r) [ (1 + (a_i^2 + a_j^2)/(3 r^2)) I
                            + (1 - (a_i^2 + a_j^2)/r^2) rhat rhat^T ]

* ``max|a_i - a_j| < r <= a_i + a_j`` (partial overlap): the Zuk et al.
  positive-definite form,
* ``r <= |a_i - a_j|`` (one sphere inside the other): the mobility of
  the larger sphere.

The matrix is symmetric positive definite for every configuration and
reduces exactly to the monodisperse module when all radii are equal.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..lint.contracts import positions_arg, radii_arg, returns_spd
from ..units import FluidParams, REDUCED
from ..utils.validation import as_positions, as_radii

__all__ = ["rpy_polydisperse_pair_tensors", "mobility_matrix_polydisperse"]


def _pair_scalars(dist: np.ndarray, ai: np.ndarray, aj: np.ndarray,
                  viscosity: float) -> tuple[np.ndarray, np.ndarray]:
    """Scalar functions ``(f, g)`` with ``M_ij = f I + g rhat rhat^T``.

    Physical units (the ``1/(8 pi eta ...)`` prefactors included).
    """
    f = np.empty_like(dist)
    g = np.empty_like(dist)
    pre = 1.0 / (8.0 * math.pi * viscosity)
    a2 = ai * ai + aj * aj

    far = dist > ai + aj
    rf = dist[far]
    f[far] = pre / rf * (1.0 + a2[far] / (3.0 * rf * rf))
    g[far] = pre / rf * (1.0 - a2[far] / (rf * rf))

    contained = dist <= np.abs(ai - aj)
    if np.any(contained):
        big = np.maximum(ai, aj)[contained]
        f[contained] = 1.0 / (6.0 * math.pi * viscosity * big)
        g[contained] = 0.0

    partial = ~far & ~contained
    if np.any(partial):
        r = dist[partial]
        a_i = ai[partial]
        a_j = aj[partial]
        diff = a_i - a_j
        # Zuk et al. (2014), Eq. (A1)-(A2) specialized to translation
        num_f = (16.0 * r ** 3 * (a_i + a_j)
                 - ((diff) ** 2 + 3.0 * r ** 2) ** 2)
        f[partial] = num_f / (32.0 * r ** 3) / (
            6.0 * math.pi * viscosity * a_i * a_j)
        num_g = 3.0 * ((diff) ** 2 - r ** 2) ** 2
        g[partial] = num_g / (32.0 * r ** 3) / (
            6.0 * math.pi * viscosity * a_i * a_j)
    return f, g


def rpy_polydisperse_pair_tensors(rij: np.ndarray, radii_i: np.ndarray,
                                  radii_j: np.ndarray,
                                  viscosity: float = REDUCED.viscosity
                                  ) -> np.ndarray:
    """Pair mobility tensors for unequal spheres.

    Parameters
    ----------
    rij:
        Separation vectors ``r_i - r_j``, shape ``(m, 3)``, nonzero.
    radii_i, radii_j:
        Radii of the two members of each pair, shape ``(m,)``.
    viscosity:
        Solvent viscosity ``eta``.

    Returns
    -------
    numpy.ndarray of shape ``(m, 3, 3)`` (physical units).
    """
    rij = np.asarray(rij, dtype=np.float64)
    ai = np.asarray(radii_i, dtype=np.float64)
    aj = np.asarray(radii_j, dtype=np.float64)
    if rij.ndim != 2 or rij.shape[1] != 3:
        raise ConfigurationError(f"rij must have shape (m, 3), got {rij.shape}")
    if ai.shape != (rij.shape[0],) or aj.shape != (rij.shape[0],):
        raise ConfigurationError("radii arrays must match the pair count")
    if np.any(ai <= 0) or np.any(aj <= 0):
        raise ConfigurationError("radii must be positive")
    dist = np.linalg.norm(rij, axis=1)
    if np.any(dist == 0.0):
        raise ConfigurationError("pair separations must be nonzero")
    f, g = _pair_scalars(dist, ai, aj, viscosity)
    rhat = rij / dist[:, None]
    return (f[:, None, None] * np.eye(3)
            + g[:, None, None] * (rhat[:, :, None] * rhat[:, None, :]))


@positions_arg()
@radii_arg()
@returns_spd("polydisperse RPY mobility matrix")
def mobility_matrix_polydisperse(positions, radii,
                                 viscosity: float = REDUCED.viscosity
                                 ) -> np.ndarray:
    """Dense free-boundary RPY mobility for spheres of unequal radii.

    Parameters
    ----------
    positions:
        Particle centers, shape ``(n, 3)``.
    radii:
        Per-particle radii, shape ``(n,)``.
    viscosity:
        Solvent viscosity ``eta``.

    Returns
    -------
    Symmetric positive definite ``(3n, 3n)`` matrix; diagonal blocks are
    ``I / (6 pi eta a_i)``.
    """
    r = as_positions(positions)
    n = r.shape[0]
    radii = as_radii(radii, n)
    m = np.zeros((3 * n, 3 * n))
    for i in range(n):
        m[3 * i:3 * i + 3, 3 * i:3 * i + 3] = (
            np.eye(3) / (6.0 * math.pi * viscosity * radii[i]))
    if n > 1:
        iu, ju = np.triu_indices(n, k=1)
        tensors = rpy_polydisperse_pair_tensors(
            r[iu] - r[ju], radii[iu], radii[ju], viscosity)
        for u in range(3):
            for v in range(3):
                m[3 * iu + u, 3 * ju + v] = tensors[:, u, v]
                m[3 * ju + v, 3 * iu + u] = tensors[:, u, v]
    return m
