"""Beenakker's Ewald decomposition of the Rotne-Prager-Yamakawa tensor.

Beenakker (J. Chem. Phys. 85, 1581 (1986); paper reference [22]) split
the infinite periodic sum of RPY tensors into a rapidly converging
real-space sum, a rapidly converging reciprocal-space sum, and a self
term (paper Eq. 2):

    M = M_real + M_recip + M_self

The splitting function is
``chi_alpha(k) = (1 + k^2/(4 alpha^2) + k^4/(8 alpha^4)) exp(-k^2/(4 alpha^2))``;
its polynomial prefactor is what makes the real-space functions decay as
Gaussians rather than as complementary error functions alone.

All functions in this module return mobilities in units of
``mu0 = 1/(6 pi eta a)``; callers multiply by ``fluid.mobility0``.

Real-space tensor (paper's ``M^(1)_alpha``), for separation ``r`` and
Ewald parameter ``xi`` (the paper's ``alpha``)::

    M1(r) = f(r) I + g(r) rhat rhat^T

    f(r) = erfc(xi r) (3a/4r + a^3/2r^3)
         + exp(-xi^2 r^2)/sqrt(pi) * ( 4 xi^7 a^3 r^4 + 3 xi^3 a r^2
           - 20 xi^5 a^3 r^2 - 4.5 xi a + 14 xi^3 a^3 + xi a^3 / r^2 )

    g(r) = erfc(xi r) (3a/4r - 3a^3/2r^3)
         + exp(-xi^2 r^2)/sqrt(pi) * ( -4 xi^7 a^3 r^4 - 3 xi^3 a r^2
           + 16 xi^5 a^3 r^2 + 1.5 xi a - 2 xi^3 a^3 - 3 xi a^3 / r^2 )

Reciprocal-space scalar (paper Eq. 5)::

    m_alpha(k) = (a - a^3 k^2 / 3) (1 + k^2/4xi^2 + k^4/8xi^4)
                 * (6 pi / k^2) * exp(-k^2 / 4 xi^2)

applied as ``M_recip_ij = (1/V) sum_k (I - khat khat^T) m_alpha(k)
cos(k . r_ij)``.

Self term (paper's ``M^(0)_alpha``)::

    M_self = (1 - 6 xi a / sqrt(pi) + 40 xi^3 a^3 / (3 sqrt(pi))) I

Two nontrivial consistency properties validate the transcription: the
full sum is independent of ``xi`` (tested numerically), and each of
``f, g`` satisfies the divergence-free relation
``f' + g' + 2g/r = 0`` (verified analytically; the incompressible
projector ``I - khat khat^T`` guarantees it).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc

__all__ = [
    "real_space_coefficients",
    "real_space_tensors",
    "reciprocal_scalar",
    "self_mobility_scalar",
    "real_space_cutoff",
    "reciprocal_cutoff",
    "overlap_correction_coefficients",
]

_SQRT_PI = math.sqrt(math.pi)


def _check_kernel(kernel: str) -> None:
    if kernel not in ("rpy", "oseen"):
        raise ValueError(f"kernel must be 'rpy' or 'oseen', got {kernel!r}")


def real_space_coefficients(dist: np.ndarray, xi: float, radius: float = 1.0,
                            kernel: str = "rpy"
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Scalar functions ``(f, g)`` of Beenakker's real-space tensor.

    ``M^(1)(r) / mu0 = f(r) I + g(r) rhat rhat^T`` for non-overlapping
    separations ``r >= 2a``.  (Use
    :func:`overlap_correction_coefficients` to correct pairs with
    ``r < 2a``.)

    Parameters
    ----------
    dist:
        Pair distances (any shape, strictly positive).
    xi:
        Ewald splitting parameter (the paper's ``alpha``), units 1/length.
    radius:
        Particle radius ``a``.
    kernel:
        ``"rpy"`` (default) or ``"oseen"`` — the Stokeslet kernel of the
        related-work codes the paper contrasts with (its Ewald split is
        the exact ``a^3 -> 0`` limit of Beenakker's, because the
        splitting is linear in the kernel).
    """
    _check_kernel(kernel)
    r = np.asarray(dist, dtype=np.float64)
    if np.any(r <= 0):
        raise ValueError("real_space_coefficients requires positive distances")
    a = float(radius)
    if xi <= 0:
        raise ValueError(f"xi must be positive, got {xi}")

    a3 = a ** 3 if kernel == "rpy" else 0.0
    r2 = r * r
    erfc_term = erfc(xi * r)
    gauss = np.exp(-(xi * r) ** 2) / _SQRT_PI

    f = (erfc_term * (0.75 * a / r + 0.5 * a3 / (r2 * r))
         + gauss * (4.0 * xi ** 7 * a3 * r2 * r2
                    + 3.0 * xi ** 3 * a * r2
                    - 20.0 * xi ** 5 * a3 * r2
                    - 4.5 * xi * a
                    + 14.0 * xi ** 3 * a3
                    + xi * a3 / r2))
    g = (erfc_term * (0.75 * a / r - 1.5 * a3 / (r2 * r))
         + gauss * (-4.0 * xi ** 7 * a3 * r2 * r2
                    - 3.0 * xi ** 3 * a * r2
                    + 16.0 * xi ** 5 * a3 * r2
                    + 1.5 * xi * a
                    - 2.0 * xi ** 3 * a3
                    - 3.0 * xi * a3 / r2))
    return f, g


def overlap_correction_coefficients(dist: np.ndarray, radius: float = 1.0
                                    ) -> tuple[np.ndarray, np.ndarray]:
    """Correction ``(df, dg)`` replacing the far-field RPY form with the
    overlap-regularized form for ``r < 2a``.

    The Ewald decomposition is derived for the non-overlapping RPY
    tensor.  When two particles overlap, the physically correct
    (positive-definite) mobility differs from the far-field expression
    by a short-range term that is *not* split by Ewald — it is simply
    added to the real-space sum for the overlapping pair (same device as
    Fiore et al., the "positively split Ewald" construction)::

        M_overlap - M_far = df I + dg rhat rhat^T

    Entries where ``dist >= 2a`` are zero, so this can be applied
    unconditionally to all close pairs.
    """
    r = np.asarray(dist, dtype=np.float64)
    a = float(radius)
    df = np.zeros_like(r)
    dg = np.zeros_like(r)
    near = r < 2.0 * a
    if np.any(near):
        rn = r[near]
        a3 = a ** 3
        rn3 = rn ** 3
        # regularized - far
        df[near] = (1.0 - 9.0 * rn / (32.0 * a)) - (0.75 * a / rn + 0.5 * a3 / rn3)
        dg[near] = (3.0 * rn / (32.0 * a)) - (0.75 * a / rn - 1.5 * a3 / rn3)
    return df, dg


def real_space_tensors(rij: np.ndarray, xi: float, radius: float = 1.0,
                       overlap_corrected: bool = True,
                       kernel: str = "rpy") -> np.ndarray:
    """Real-space Ewald tensors ``M^(1)(r_ij) / mu0`` for separation vectors.

    Parameters
    ----------
    rij:
        Separation vectors, shape ``(m, 3)``, each nonzero.
    xi:
        Ewald splitting parameter.
    radius:
        Particle radius ``a``.
    overlap_corrected:
        If true (default), pairs closer than ``2a`` get the
        positive-definite overlap regularization added.

    Returns
    -------
    numpy.ndarray of shape ``(m, 3, 3)``.
    """
    rij = np.asarray(rij, dtype=np.float64)
    dist = np.linalg.norm(rij, axis=1)
    f, g = real_space_coefficients(dist, xi, radius, kernel=kernel)
    if overlap_corrected and kernel == "rpy":
        df, dg = overlap_correction_coefficients(dist, radius)
        f = f + df
        g = g + dg
    rhat = rij / dist[:, None]
    return (f[:, None, None] * np.eye(3)
            + g[:, None, None] * (rhat[:, :, None] * rhat[:, None, :]))


def reciprocal_scalar(k2: np.ndarray, xi: float, radius: float = 1.0,
                      kernel: str = "rpy") -> np.ndarray:
    """Beenakker's reciprocal-space scalar ``m_alpha(k)`` (paper Eq. 5).

    Parameters
    ----------
    k2:
        Squared wavevector magnitudes ``|k|^2`` (any shape).  Entries
        equal to zero yield 0 (the ``k = 0`` mode is excluded from the
        Ewald sum; momentum conservation in a periodic box).
    xi:
        Ewald splitting parameter.
    radius:
        Particle radius ``a``.

    Returns
    -------
    numpy.ndarray
        ``m_alpha`` evaluated at each ``k``; multiply by the projector
        ``(I - khat khat^T)`` and the prefactor ``mu0 / V`` to obtain the
        reciprocal-space mobility contribution.
    """
    _check_kernel(kernel)
    k2 = np.asarray(k2, dtype=np.float64)
    a = float(radius)
    a3 = a ** 3 if kernel == "rpy" else 0.0
    inv_4xi2 = 1.0 / (4.0 * xi * xi)
    with np.errstate(divide="ignore", invalid="ignore"):
        val = ((a - a3 * k2 / 3.0)
               * (1.0 + k2 * inv_4xi2 + (k2 * inv_4xi2) ** 2 * 2.0)
               * (6.0 * math.pi / k2)
               * np.exp(-k2 * inv_4xi2))
    # (k^2/(4 xi^2))^2 * 2 == k^4 / (8 xi^4): the quartic term of chi.
    return np.where(k2 == 0.0, 0.0, val)


def self_mobility_scalar(xi: float, radius: float = 1.0,
                         kernel: str = "rpy") -> float:
    """Self term ``M^(0)_alpha / mu0`` of the Ewald sum.

    ``1 - 6 xi a / sqrt(pi) + 40 (xi a)^3 / (3 sqrt(pi))`` for the RPY
    kernel; the ``(xi a)^3`` term drops for the Oseen kernel.
    """
    _check_kernel(kernel)
    xa = xi * radius
    cubic = 40.0 * xa ** 3 / (3.0 * _SQRT_PI) if kernel == "rpy" else 0.0
    return 1.0 - 6.0 * xa / _SQRT_PI + cubic


def real_space_cutoff(xi: float, tol: float = 1e-8) -> float:
    """Distance beyond which the real-space functions are below ``tol``.

    The real-space tensor decays like ``exp(-(xi r)^2)``; a cutoff of
    ``sqrt(-log tol)/xi`` bounds the truncation error of the real-space
    sum by roughly ``tol`` relative to the leading term.
    """
    if not (0 < tol < 1):
        raise ValueError(f"tol must be in (0, 1), got {tol}")
    return math.sqrt(-math.log(tol)) / xi


def reciprocal_cutoff(xi: float, tol: float = 1e-8) -> float:
    """Wavenumber beyond which ``m_alpha(k)`` is below ``tol``.

    ``m_alpha`` decays like ``exp(-k^2/(4 xi^2))`` (times a polynomial),
    so ``k_max = 2 xi sqrt(-log tol)`` bounds the tail by roughly
    ``tol``.
    """
    if not (0 < tol < 1):
        raise ValueError(f"tol must be in (0, 1), got {tol}")
    return 2.0 * xi * math.sqrt(-math.log(tol))
