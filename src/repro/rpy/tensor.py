"""The free-space Rotne-Prager-Yamakawa (RPY) tensor.

The RPY tensor is the positive-definite regularization of the Oseen
tensor used throughout Brownian dynamics (paper Section II.A).  For two
equal spheres of radius ``a`` separated by ``r = |r_ij| >= 2a``::

    M_ij = mu0 * [ (3a/4r) (I + rhat rhat^T) + (a^3/2r^3) (I - 3 rhat rhat^T) ]

with ``mu0 = 1/(6 pi eta a)`` and ``M_ii = mu0 I``.  For overlapping
spheres (``r < 2a``) the standard Rotne-Prager regularization keeps the
matrix positive definite::

    M_ij = mu0 * [ (1 - 9r/32a) I + (3r/32a) rhat rhat^T ]

The paper prevents overlaps with a repulsive potential, but transient
overlaps can still occur during a finite time step, so the regularized
branch is always applied (it agrees with the far branch at r = 2a).
"""

from __future__ import annotations

import numpy as np

from ..lint.contracts import positions_arg, returns_spd
from ..units import FluidParams, REDUCED
from ..utils.validation import as_positions

__all__ = ["rpy_pair_tensors", "rpy_self_tensor", "mobility_matrix_free",
           "rpy_scalar_coefficients"]


def rpy_scalar_coefficients(dist: np.ndarray, radius: float
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Scalar functions ``(f, g)`` of the free-space RPY tensor.

    The pair tensor is ``M_ij / mu0 = f(r) I + g(r) rhat rhat^T``.  The
    overlap-regularized branch is used for ``r < 2a``; both branches are
    continuous at ``r = 2a``.

    Parameters
    ----------
    dist:
        Pair distances, any shape, strictly positive.
    radius:
        Particle radius ``a``.

    Returns
    -------
    (f, g):
        Arrays with the same shape as ``dist``.
    """
    dist = np.asarray(dist, dtype=np.float64)
    a = float(radius)
    f = np.empty_like(dist)
    g = np.empty_like(dist)

    far = dist >= 2.0 * a
    rf = dist[far]
    inv_r = a / rf
    inv_r3 = inv_r ** 3
    f[far] = 0.75 * inv_r + 0.5 * inv_r3
    g[far] = 0.75 * inv_r - 1.5 * inv_r3

    near = ~far
    rn = dist[near]
    f[near] = 1.0 - (9.0 / 32.0) * rn / a
    g[near] = (3.0 / 32.0) * rn / a
    return f, g


def rpy_pair_tensors(rij: np.ndarray, fluid: FluidParams = REDUCED
                     ) -> np.ndarray:
    """RPY pair mobility tensors for an array of separation vectors.

    Parameters
    ----------
    rij:
        Separation vectors, shape ``(m, 3)``; each row is ``r_i - r_j``
        and must be nonzero.
    fluid:
        Fluid parameters supplying ``a`` and ``eta``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(m, 3, 3)``: ``out[k]`` is the 3x3 mobility
        tensor coupling the pair ``k`` (in physical units, including the
        ``mu0`` prefactor).
    """
    rij = np.asarray(rij, dtype=np.float64)
    if rij.ndim != 2 or rij.shape[1] != 3:
        raise ValueError(f"rij must have shape (m, 3), got {rij.shape}")
    dist = np.linalg.norm(rij, axis=1)
    if np.any(dist == 0.0):
        raise ValueError("rpy_pair_tensors requires nonzero separations")
    f, g = rpy_scalar_coefficients(dist, fluid.radius)
    rhat = rij / dist[:, None]
    eye = np.eye(3)
    out = f[:, None, None] * eye + g[:, None, None] * (
        rhat[:, :, None] * rhat[:, None, :])
    out *= fluid.mobility0
    return out


def rpy_self_tensor(fluid: FluidParams = REDUCED) -> np.ndarray:
    """Self-mobility tensor ``mu0 I`` of an isolated particle."""
    return fluid.mobility0 * np.eye(3)


@positions_arg()
@returns_spd("free-space RPY mobility matrix")
def mobility_matrix_free(positions, fluid: FluidParams = REDUCED
                         ) -> np.ndarray:
    """Dense free-boundary RPY mobility matrix ``M`` (shape ``(3n, 3n)``).

    This is the non-periodic mobility of Section II.A, used as a
    reference and for small free-space problems.  It is symmetric
    positive definite for every particle configuration.

    Parameters
    ----------
    positions:
        Particle positions, shape ``(n, 3)``.
    fluid:
        Fluid parameters.
    """
    r = as_positions(positions)
    n = r.shape[0]
    m = np.zeros((3 * n, 3 * n))
    idx = np.arange(3 * n)
    m[idx, idx] = fluid.mobility0

    if n > 1:
        iu, ju = np.triu_indices(n, k=1)
        tensors = rpy_pair_tensors(r[iu] - r[ju], fluid)
        # Scatter the 3x3 blocks into both triangles (M is symmetric and
        # the RPY pair tensor itself is symmetric).
        bi = 3 * iu
        bj = 3 * ju
        for u in range(3):
            for v in range(3):
                m[bi + u, bj + v] = tensors[:, u, v]
                m[bj + v, bi + u] = tensors[:, u, v]
    return m
