"""Conventional (dense) Ewald summation of the RPY mobility matrix.

This is the substrate of the paper's baseline Algorithm 1 ("Ewald BD"):
the full ``3n x 3n`` mobility matrix of a periodic suspension is built
explicitly by summing Beenakker's real-space and reciprocal-space
series (paper Section II.B, Eq. 2), then used with Cholesky
factorization to generate Brownian displacements.

The reciprocal-space sum over lattice vectors is evaluated with a
rank-2-per-wavevector identity so the whole sum becomes six dense
matrix-matrix products (BLAS) instead of an ``O(n^2 n_k)`` Python loop::

    cos(k . (r_i - r_j)) = cos(k.r_i) cos(k.r_j) + sin(k.r_i) sin(k.r_j)

The result is exact (to the series truncation ``tol``) and independent
of the splitting parameter ``xi`` — the property the test suite uses to
validate the whole decomposition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box
from ..lint.contracts import force_block_arg, positions_arg, returns_spd
from ..units import FluidParams, REDUCED
from ..utils.params import keyword_only
from ..utils.validation import as_positions
from . import beenakker

__all__ = ["EwaldSummation", "ewald_mobility_matrix"]


def _default_xi(box: Box, tol: float) -> float:
    """Splitting parameter placing the real-space cutoff at ``L/2``.

    With ``r_cut = L/2`` the real-space sum needs only minimum-image
    pairs (no explicit replica shells), which keeps the dense
    construction simple; the corresponding reciprocal cutoff is
    ``O(log(1/tol)/L)``, independent of ``n``.
    """
    return 2.0 * math.sqrt(-math.log(tol)) / box.length


def _k_lattice_half(box: Box, k_max: float) -> np.ndarray:
    """Integer triples ``m`` (half space, excluding 0) with ``|2 pi m / L| <= k_max``.

    Returns an ``(n_k, 3)`` integer array containing one representative
    of each ``{m, -m}`` pair; callers double the contribution of every
    row.  The half space is ``m_z > 0``, or ``m_z = 0, m_y > 0``, or
    ``m_z = m_y = 0, m_x > 0``.
    """
    m_max = int(math.floor(k_max * box.length / (2.0 * math.pi)))
    if m_max < 1:
        raise ConfigurationError(
            "reciprocal cutoff admits no lattice vectors; decrease tol or xi")
    rng = np.arange(-m_max, m_max + 1)
    mx, my, mz = np.meshgrid(rng, rng, rng, indexing="ij")
    m = np.stack([mx.ravel(), my.ravel(), mz.ravel()], axis=1)
    k2 = (m * m).sum(axis=1) * (2.0 * math.pi / box.length) ** 2
    inside = (k2 > 0) & (k2 <= k_max * k_max)
    half = (m[:, 2] > 0) | ((m[:, 2] == 0) & (m[:, 1] > 0)) | (
        (m[:, 2] == 0) & (m[:, 1] == 0) & (m[:, 0] > 0))
    return m[inside & half]


@keyword_only
@dataclass(frozen=True)
class EwaldSummation:
    """Dense Ewald-summed RPY mobility for a cubic periodic box.

    Construct with keyword arguments (positional construction warns
    once; ``replace(**changes)`` returns a reconfigured copy).

    Parameters
    ----------
    box:
        The periodic simulation box.
    fluid:
        Fluid parameters (radius, viscosity, kT).
    xi:
        Ewald splitting parameter; ``None`` selects a value placing the
        real-space cutoff at ``L/2`` (see :func:`_default_xi`).  The
        computed mobility is independent of ``xi`` up to ``tol``.
    tol:
        Truncation tolerance of both series.
    overlap_corrected:
        Apply the positive-definite RPY overlap regularization to pairs
        closer than ``2a`` (default true; RPY kernel only).
    kernel:
        ``"rpy"`` (default) or ``"oseen"`` (the Stokeslet kernel used
        by the related-work Stokesian PME codes the paper contrasts
        against; see :mod:`repro.rpy.beenakker`).
    """

    box: Box
    fluid: FluidParams = REDUCED
    xi: float | None = None
    tol: float = 1e-8
    overlap_corrected: bool = True
    kernel: str = "rpy"

    def __post_init__(self) -> None:
        if not (0 < self.tol < 1):
            raise ConfigurationError(f"tol must be in (0, 1), got {self.tol}")
        if self.xi is not None and self.xi <= 0:
            raise ConfigurationError(f"xi must be positive, got {self.xi}")
        if self.kernel not in ("rpy", "oseen"):
            raise ConfigurationError(f"unknown kernel {self.kernel!r}")

    @property
    def xi_value(self) -> float:
        """The splitting parameter actually used."""
        return self.xi if self.xi is not None else _default_xi(self.box, self.tol)

    @property
    def r_cutoff(self) -> float:
        """Real-space truncation radius for this ``(xi, tol)``."""
        return beenakker.real_space_cutoff(self.xi_value, self.tol)

    @property
    def k_cutoff(self) -> float:
        """Reciprocal-space truncation wavenumber for this ``(xi, tol)``."""
        return beenakker.reciprocal_cutoff(self.xi_value, self.tol)

    # ------------------------------------------------------------------
    # dense matrix construction
    # ------------------------------------------------------------------

    @positions_arg()
    @returns_spd("Ewald-summed periodic RPY mobility matrix",
                 unless=lambda self: self.kernel != "rpy")
    def matrix(self, positions) -> np.ndarray:
        """Build the dense ``3n x 3n`` periodic RPY mobility matrix.

        This is line 4 of the paper's Algorithm 1.  Memory and time are
        ``O(n^2)`` (plus the BLAS reciprocal products); it is the
        conventional method the matrix-free algorithm replaces.
        """
        r = as_positions(positions)
        n = r.shape[0]
        r = self.box.wrap(r)
        m = self._reciprocal_matrix(r)
        self._add_real_space(m, r)
        diag = beenakker.self_mobility_scalar(self.xi_value, self.fluid.radius,
                                             kernel=self.kernel)
        idx = np.arange(3 * n)
        m[idx, idx] += diag
        m *= self.fluid.mobility0
        return m

    @positions_arg()
    @force_block_arg()
    def apply(self, positions, forces) -> np.ndarray:
        """Reference ``u = M f`` via the dense matrix (small systems only)."""
        mat = self.matrix(positions)
        return mat @ np.asarray(forces, dtype=np.float64)

    @positions_arg()
    def as_operator(self, positions):
        """The mobility at ``positions`` as a
        :class:`~repro.core.mobility.MobilityOperator`.

        Builds the dense matrix once and wraps it in a
        :class:`~repro.core.mobility.DenseMobilityMatrix`, so the
        baseline algorithm plugs into the same ``apply`` /
        ``apply_block`` interface as the matrix-free PME operator.
        """
        from ..core.mobility import DenseMobilityMatrix  # deferred: cycle
        return DenseMobilityMatrix(self.matrix(positions))

    # -- reciprocal space ------------------------------------------------

    def _reciprocal_matrix(self, r: np.ndarray) -> np.ndarray:
        """Reciprocal-space sum for *all* pairs, including the diagonal.

        Returns mobilities in units of ``mu0`` (caller scales).
        """
        n = r.shape[0]
        xi = self.xi_value
        m_int = _k_lattice_half(self.box, self.k_cutoff)
        k = m_int * (2.0 * math.pi / self.box.length)
        k2 = (k * k).sum(axis=1)
        scal = beenakker.reciprocal_scalar(k2, xi, self.fluid.radius,
                                           kernel=self.kernel)
        scal *= 2.0 / self.box.volume  # factor 2: half k-space
        khat = k / np.sqrt(k2)[:, None]

        phase = r @ k.T            # (n, n_k)
        cos_p = np.cos(phase)
        sin_p = np.sin(phase)

        out = np.zeros((3 * n, 3 * n))
        for u in range(3):
            for v in range(u, 3):
                w = scal * ((1.0 if u == v else 0.0) - khat[:, u] * khat[:, v])
                block = (cos_p * w) @ cos_p.T + (sin_p * w) @ sin_p.T
                out[u::3, v::3] = block
                if u != v:
                    out[v::3, u::3] = block.T
        return out

    # -- real space -------------------------------------------------------

    def _image_offsets(self) -> np.ndarray:
        """Integer box offsets whose images can fall inside ``r_cutoff``.

        Raw wrapped differences lie in ``(-L, L)`` per component, so an
        image at offset ``l`` can be within ``r_cut`` only if
        ``(|l| - 1) L < r_cut``.
        """
        s = int(math.floor(self.r_cutoff / self.box.length)) + 1
        rng = np.arange(-s, s + 1)
        lx, ly, lz = np.meshgrid(rng, rng, rng, indexing="ij")
        return np.stack([lx.ravel(), ly.ravel(), lz.ravel()], axis=1)

    def _add_real_space(self, m: np.ndarray, r: np.ndarray) -> None:
        """Accumulate the real-space sum (units of ``mu0``) into ``m``."""
        n = r.shape[0]
        xi = self.xi_value
        a = self.fluid.radius
        r_cut = self.r_cutoff
        offsets = self._image_offsets() * self.box.length

        if n > 1:
            iu, ju = np.triu_indices(n, k=1)
            rij0 = r[iu] - r[ju]
            bi, bj = 3 * iu, 3 * ju
            for off in offsets:
                d = rij0 + off
                dist = np.linalg.norm(d, axis=1)
                sel = dist < r_cut
                if not np.any(sel):
                    continue
                ds = d[sel]
                dists = dist[sel]
                f, g = beenakker.real_space_coefficients(dists, xi, a,
                                                         kernel=self.kernel)
                if self.overlap_corrected and self.kernel == "rpy":
                    df, dg = beenakker.overlap_correction_coefficients(dists, a)
                    f = f + df
                    g = g + dg
                rhat = ds / dists[:, None]
                bis, bjs = bi[sel], bj[sel]
                for u in range(3):
                    for v in range(3):
                        t = g * rhat[:, u] * rhat[:, v]
                        if u == v:
                            t = t + f
                        # += (not =): several images can hit the same pair
                        np.add.at(m, (bis + u, bjs + v), t)
                        np.add.at(m, (bjs + v, bis + u), t)

        # self-images: i interacting with its own periodic copies
        self_offsets = offsets[np.any(offsets != 0.0, axis=1)]
        dist0 = np.linalg.norm(self_offsets, axis=1)
        sel = dist0 < r_cut
        if np.any(sel):
            tensors = beenakker.real_space_tensors(
                self_offsets[sel], xi, a, overlap_corrected=False,
                kernel=self.kernel)
            total = tensors.sum(axis=0)
            for i in range(n):
                m[3 * i:3 * i + 3, 3 * i:3 * i + 3] += total


@positions_arg()
def ewald_mobility_matrix(positions, box: Box, fluid: FluidParams = REDUCED,
                          xi: float | None = None, tol: float = 1e-8
                          ) -> np.ndarray:
    """Convenience wrapper: dense periodic RPY mobility matrix.

    Equivalent to
    ``EwaldSummation(box=box, fluid=fluid, xi=xi, tol=tol).matrix(positions)``.
    """
    return EwaldSummation(box=box, fluid=fluid, xi=xi,
                          tol=tol).matrix(positions)
