"""Rotne-Prager-Yamakawa (RPY) hydrodynamics.

This subpackage implements the hydrodynamic mobility model used by the
paper (Section II):

* :mod:`repro.rpy.tensor` -- the free-space RPY pair tensor and the dense
  free-boundary mobility matrix,
* :mod:`repro.rpy.beenakker` -- Beenakker's Ewald decomposition of the
  RPY tensor for periodic boundary conditions (real-space, reciprocal-
  space, and self scalar functions),
* :mod:`repro.rpy.ewald` -- the conventional dense Ewald-summed mobility
  matrix (the substrate of Algorithm 1, the baseline "Ewald BD").
"""

from .tensor import (
    rpy_pair_tensors,
    rpy_self_tensor,
    mobility_matrix_free,
)
from .beenakker import (
    real_space_coefficients,
    reciprocal_scalar,
    self_mobility_scalar,
    real_space_cutoff,
    reciprocal_cutoff,
)
from .ewald import EwaldSummation, ewald_mobility_matrix
from .polydisperse import (
    rpy_polydisperse_pair_tensors,
    mobility_matrix_polydisperse,
)

__all__ = [
    "rpy_polydisperse_pair_tensors",
    "mobility_matrix_polydisperse",
    "rpy_pair_tensors",
    "rpy_self_tensor",
    "mobility_matrix_free",
    "real_space_coefficients",
    "reciprocal_scalar",
    "self_mobility_scalar",
    "real_space_cutoff",
    "reciprocal_cutoff",
    "EwaldSummation",
    "ewald_mobility_matrix",
]
