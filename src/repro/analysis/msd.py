"""Mean squared displacement of recorded trajectories."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..lint.contracts import trajectory_arg

__all__ = ["mean_squared_displacement"]


@trajectory_arg()
def mean_squared_displacement(positions: np.ndarray,
                              max_lag: int | None = None) -> np.ndarray:
    """Time- and particle-averaged MSD for all lags up to ``max_lag``.

    Implements the average in the paper's Eq. 12:
    ``MSD(tau) = <(r(t + tau) - r(t))^2>`` with the angle brackets an
    average over time origins ``t`` and over particles.

    Parameters
    ----------
    positions:
        *Unwrapped* positions, shape ``(T, n, 3)``.
    max_lag:
        Largest lag (in frames) to evaluate; default ``T - 1``.

    Returns
    -------
    numpy.ndarray
        ``msd[k]`` for lags ``k = 0 .. max_lag`` (``msd[0] = 0``).
    """
    r = np.asarray(positions, dtype=np.float64)
    if r.ndim != 3 or r.shape[2] != 3:
        raise ConfigurationError(
            f"positions must have shape (T, n, 3), got {r.shape}")
    t = r.shape[0]
    if t < 2:
        raise ConfigurationError("need at least 2 frames for an MSD")
    if max_lag is None:
        max_lag = t - 1
    max_lag = min(max_lag, t - 1)
    out = np.zeros(max_lag + 1)
    for lag in range(1, max_lag + 1):
        diff = r[lag:] - r[:-lag]
        out[lag] = float(np.mean((diff * diff).sum(axis=2)))
    return out
