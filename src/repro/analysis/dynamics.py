"""Time-dependent diffusion analysis.

``D(tau)`` (paper Eq. 12) evaluated across a range of lags at once —
the full curve distinguishes the crowding-independent short-time RPY
limit from the suppressed long-time behaviour (see the Fig. 3
benchmark discussion in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..core.simulation import Trajectory
from .msd import mean_squared_displacement

__all__ = ["diffusion_vs_lag"]


def diffusion_vs_lag(trajectory: Trajectory, max_lag: int | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """``D(tau)`` for all lags up to ``max_lag`` frame intervals.

    Parameters
    ----------
    trajectory:
        A recorded trajectory (uniform frame spacing).
    max_lag:
        Largest lag in frames (default: half the trajectory, where
        time-origin averaging still has decent statistics).

    Returns
    -------
    (tau, D):
        Lag times and the corresponding ``MSD(tau) / (6 tau)``; both
        arrays start at lag 1.
    """
    t = trajectory.n_frames
    if t < 2:
        raise ConfigurationError("need at least 2 frames")
    if max_lag is None:
        max_lag = max(1, (t - 1) // 2)
    max_lag = min(max_lag, t - 1)
    msd = mean_squared_displacement(trajectory.positions, max_lag=max_lag)
    lags = np.arange(1, max_lag + 1)
    tau = lags * trajectory.dt_frame
    return tau, msd[1:] / (6.0 * tau)
