"""Static structure factor ``S(k)`` of periodic configurations.

``S(k) = |sum_i exp(-i k . r_i)|^2 / n`` shell-averaged over the
wavevectors of the periodic box — the reciprocal-space complement of
``g(r)`` and a natural consumer of the PME mesh machinery: the
structure factor is evaluated by *spreading unit charges* with the
same B-spline machinery and FFT used by the mobility operator, with
the ``b(k)`` deconvolution giving mesh-accuracy spectra at
``O(n p^3 + K^3 log K)`` cost.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box
from ..pme.bspline import euler_spline_coefficients
from ..pme.mesh import Mesh
from ..pme.spread import InterpolationMatrix
from ..utils.validation import as_positions

__all__ = ["static_structure_factor"]


def static_structure_factor(positions, box: Box, K: int = 64, p: int = 6,
                            n_bins: int = 40
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Shell-averaged ``S(k)`` via mesh spreading and one FFT.

    Parameters
    ----------
    positions:
        Particle positions ``(n, 3)``.
    box:
        Periodic box.
    K:
        Mesh dimension (resolves wavenumbers up to ``pi K / L``; modes
        beyond ~half the Nyquist are discarded as interpolation-noisy).
    p:
        B-spline order for the charge spreading.
    n_bins:
        Number of ``|k|`` shells.

    Returns
    -------
    (k, S):
        Shell-center wavenumbers and the structure factor
        (``S -> 1`` for an ideal gas at large ``k``).
    """
    r = as_positions(positions)
    n = r.shape[0]
    if n < 2:
        raise ConfigurationError("S(k) needs at least 2 particles")
    mesh = Mesh(box, K)
    interp = InterpolationMatrix(r, box, K, p)
    density = interp.spread(np.ones(n)).reshape(mesh.shape)
    spec = np.fft.rfftn(density)

    # deconvolve the B-spline smoothing: the SPME identity gives
    # sum_i exp(-i k.r_i) ~ conj(b1 b2 b3)(k) * DFT[spread charges](k),
    # and |b| > 1 undoes the spline attenuation
    b = euler_spline_coefficients(K, p)
    bz = b[: K // 2 + 1]
    correction = (b[:, None, None] * b[None, :, None] * bz[None, None, :])
    amp2 = np.abs(spec * correction) ** 2

    k2 = mesh.k2_grid()
    weight = mesh.hermitian_weight()
    k_mag = np.sqrt(k2).ravel()
    s_vals = (amp2 / n).ravel()
    w = weight.ravel()

    # keep resolved, nonzero modes (interpolation noise grows near Nyquist)
    k_max = 0.5 * mesh.nyquist
    keep = (k_mag > 0) & (k_mag <= k_max)
    k_mag, s_vals, w = k_mag[keep], s_vals[keep], w[keep]

    edges = np.linspace(0.0, k_max, n_bins + 1)
    idx = np.clip(np.digitize(k_mag, edges) - 1, 0, n_bins - 1)
    sums = np.bincount(idx, weights=w * s_vals, minlength=n_bins)
    counts = np.bincount(idx, weights=w, minlength=n_bins)
    valid = counts > 0
    centers = 0.5 * (edges[1:] + edges[:-1])
    return centers[valid], sums[valid] / counts[valid]
