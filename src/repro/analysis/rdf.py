"""Radial distribution function of periodic configurations."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box
from ..lint.contracts import positions_arg
from ..neighbor.celllist import CellList

__all__ = ["radial_distribution"]


@positions_arg()
def radial_distribution(positions: np.ndarray, box: Box, r_max: float,
                        n_bins: int = 100) -> tuple[np.ndarray, np.ndarray]:
    """Pair correlation ``g(r)`` of one configuration.

    Parameters
    ----------
    positions:
        Particle positions ``(n, 3)``.
    box:
        Periodic box; ``r_max`` must not exceed ``L/2``.
    r_max:
        Largest separation binned.
    n_bins:
        Number of equal-width bins in ``(0, r_max]``.

    Returns
    -------
    (r, g):
        Bin centers and the normalized pair correlation (``g -> 1`` for
        an ideal gas).
    """
    r = np.asarray(positions, dtype=np.float64)
    n = r.shape[0]
    if n < 2:
        raise ConfigurationError("g(r) needs at least 2 particles")
    if r_max > box.length / 2:
        raise ConfigurationError(
            f"r_max={r_max} exceeds half the box length {box.length / 2}")
    i, j = CellList(box, r_max).pairs(r)
    _, dist = box.distances(r, i, j)
    counts, edges = np.histogram(dist, bins=n_bins, range=(0.0, r_max))
    centers = 0.5 * (edges[1:] + edges[:-1])
    shell_volumes = (4.0 / 3.0) * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / box.volume
    # each unordered pair counted once -> factor 2/n for the per-particle
    # average
    g = 2.0 * counts / (n * density * shell_volumes)
    return centers, g
