"""Statistical utilities for trajectory observables."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["block_average"]


def block_average(samples: np.ndarray, n_blocks: int = 10
                  ) -> tuple[float, float]:
    """Block-averaged mean and standard error of a correlated series.

    Splits the series into ``n_blocks`` contiguous blocks, averages each
    and reports the mean of block means with its standard error — the
    standard estimator for time-correlated BD observables.

    Returns
    -------
    (mean, stderr)
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    if n_blocks < 2:
        raise ConfigurationError(f"n_blocks must be >= 2, got {n_blocks}")
    if x.size < n_blocks:
        raise ConfigurationError(
            f"need at least {n_blocks} samples, got {x.size}")
    usable = (x.size // n_blocks) * n_blocks
    blocks = x[:usable].reshape(n_blocks, -1).mean(axis=1)
    mean = float(blocks.mean())
    stderr = float(blocks.std(ddof=1) / np.sqrt(n_blocks))
    return mean, stderr
