"""Translational diffusion coefficients (paper Eq. 12) and theory.

``D(tau) = MSD(tau) / (6 tau)`` estimated from trajectories, plus the
reference values the paper's Table II and Fig. 3 compare against: the
short-time self-diffusion virial series of a hard-sphere suspension
with RPY-level hydrodynamics and the periodic finite-size correction.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..core.simulation import Trajectory
from .msd import mean_squared_displacement

__all__ = ["diffusion_coefficient", "short_time_self_diffusion",
           "finite_size_correction"]


def diffusion_coefficient(trajectory: Trajectory, lag_frames: int = 1,
                          ) -> float:
    """Estimate ``D(tau)`` from a trajectory at lag ``tau = lag_frames``
    frame intervals (paper Eq. 12).

    Short lags measure the *short-time* diffusion coefficient the
    hydrodynamic theory predicts; the paper's Table II uses exactly this
    observable to quantify algorithmic error.
    """
    if lag_frames < 1:
        raise ConfigurationError(f"lag_frames must be >= 1, got {lag_frames}")
    if trajectory.n_frames <= lag_frames:
        raise ConfigurationError(
            f"trajectory has {trajectory.n_frames} frames, need more than "
            f"lag_frames={lag_frames}")
    msd = mean_squared_displacement(trajectory.positions, max_lag=lag_frames)
    tau = lag_frames * trajectory.dt_frame
    return float(msd[lag_frames] / (6.0 * tau))


def short_time_self_diffusion(volume_fraction: float) -> float:
    """Theoretical ``D_s / D_0`` of a hard-sphere suspension.

    The virial expansion of the short-time self-diffusion coefficient
    with far-field (RPY-level) hydrodynamics::

        D_s / D_0 = 1 - 1.8315 Phi + 0.88 Phi^2

    (Batchelor's two-body coefficient -1.8315; the positive quadratic
    term from three-body terms, cf. Beenakker & Mazur).  Accurate to a
    few percent up to ``Phi ~ 0.4`` — the regime of the paper's Fig. 3,
    whose qualitative statement ("diffusion coefficients are smaller
    for systems with higher volume fractions") this reproduces.
    """
    if not (0 <= volume_fraction < 0.74):
        raise ConfigurationError(
            f"volume_fraction must be in [0, 0.74), got {volume_fraction}")
    phi = volume_fraction
    return 1.0 - 1.8315 * phi + 0.88 * phi * phi


def finite_size_correction(radius_over_box: float) -> float:
    """Periodic-box correction factor for the self-diffusion coefficient.

    A particle diffusing in a periodic box interacts hydrodynamically
    with its own images; for a cubic lattice of images::

        D_PBC / D_0 = 1 - 2.837297 (a/L) + (4 pi / 3) (a/L)^3 + O((a/L)^6)

    (Hasimoto constant 2.837297).  The test suite validates the Ewald
    implementation against this expansion to eight digits.
    """
    x = float(radius_over_box)
    if not (0 <= x < 0.5):
        raise ConfigurationError(f"radius/box must be in [0, 0.5), got {x}")
    return 1.0 - 2.837297 * x + (4.0 * math.pi / 3.0) * x ** 3
