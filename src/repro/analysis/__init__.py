"""Trajectory analysis: diffusion coefficients, MSD, structure.

The paper validates accuracy through translational diffusion
coefficients (Eq. 12, Table II, Fig. 3); this subpackage computes them
from recorded trajectories and provides the theoretical values they
are compared with.
"""

from .msd import mean_squared_displacement
from .diffusion import (
    diffusion_coefficient,
    short_time_self_diffusion,
    finite_size_correction,
)
from .dynamics import diffusion_vs_lag
from .statistics import block_average
from .rdf import radial_distribution
from .structure import static_structure_factor

__all__ = [
    "mean_squared_displacement",
    "diffusion_coefficient",
    "diffusion_vs_lag",
    "short_time_self_diffusion",
    "finite_size_correction",
    "block_average",
    "radial_distribution",
    "static_structure_factor",
]
