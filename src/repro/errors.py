"""Exception types used across the :mod:`repro` package.

A small, flat hierarchy: every error raised by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still distinguishing configuration problems from
numerical failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """A simulation or operator was configured with invalid parameters.

    Examples: non-positive box length, B-spline order larger than the
    mesh, a cutoff radius exceeding half the box, or a volume fraction
    that cannot be packed.  Also subclasses :class:`ValueError` so
    callers (and the runtime contracts of :mod:`repro.lint.contracts`)
    can treat malformed argument values with the standard idiom.
    """


class ConvergenceError(ReproError):
    """An iterative method failed to reach its tolerance.

    Raised by the (block) Lanczos solvers when the maximum number of
    iterations is exhausted before the relative-error stopping criterion
    ``e_k`` is met, and by the PME parameter tuner when no parameter set
    achieves the requested accuracy within the allowed mesh sizes.

    The solvers attach their best partial iterate and full diagnostics
    so recovery policies (:mod:`repro.resilience`) can degrade
    gracefully — accept a slightly-off iterate or hand it to a fallback
    method — instead of discarding the work already done.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None,
                 best_iterate=None, n_matvecs: int | None = None):
        super().__init__(message)
        #: Number of iterations performed before giving up (if known).
        self.iterations = iterations
        #: Last observed relative residual/error estimate (if known).
        self.residual = residual
        #: Best (last evaluated) partial iterate, unscaled (if any).
        self.best_iterate = best_iterate
        #: Operator applications spent before giving up (if known).
        self.n_matvecs = n_matvecs

    @property
    def rel_change(self) -> float | None:
        """Alias of :attr:`residual` (the relative-update criterion)."""
        return self.residual


class NotPositiveDefiniteError(ReproError):
    """A matrix expected to be symmetric positive definite was not.

    The RPY mobility matrix is SPD for every particle configuration, so
    this error indicates either catastrophic particle overlap with
    regularization disabled or an internal inconsistency.
    """


class OverlapError(ReproError):
    """Particles overlap in a context where overlap is not allowed."""


class CheckpointCorruptionError(ReproError):
    """A checkpoint file failed its integrity check.

    Raised by :func:`repro.core.checkpoint.load_checkpoint` when the
    file is truncated, bit-flipped (embedded checksum mismatch) or not
    a readable archive at all.  Distinct from
    :class:`ConfigurationError` (a structurally valid file that is not
    a repro checkpoint) so recovery code can fall back to a previous
    checkpoint on corruption while still failing loudly on user error.
    """
