"""Exception types used across the :mod:`repro` package.

A small, flat hierarchy: every error raised by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still distinguishing configuration problems from
numerical failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """A simulation or operator was configured with invalid parameters.

    Examples: non-positive box length, B-spline order larger than the
    mesh, a cutoff radius exceeding half the box, or a volume fraction
    that cannot be packed.  Also subclasses :class:`ValueError` so
    callers (and the runtime contracts of :mod:`repro.lint.contracts`)
    can treat malformed argument values with the standard idiom.
    """


class ConvergenceError(ReproError):
    """An iterative method failed to reach its tolerance.

    Raised by the (block) Lanczos solvers when the maximum number of
    iterations is exhausted before the relative-error stopping criterion
    ``e_k`` is met, and by the PME parameter tuner when no parameter set
    achieves the requested accuracy within the allowed mesh sizes.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        #: Number of iterations performed before giving up (if known).
        self.iterations = iterations
        #: Last observed relative residual/error estimate (if known).
        self.residual = residual


class NotPositiveDefiniteError(ReproError):
    """A matrix expected to be symmetric positive definite was not.

    The RPY mobility matrix is SPD for every particle configuration, so
    this error indicates either catastrophic particle overlap with
    regularization disabled or an internal inconsistency.
    """


class OverlapError(ReproError):
    """Particles overlap in a context where overlap is not allowed."""
