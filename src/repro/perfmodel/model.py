"""The PME phase cost model (paper Section IV.D, Eqs. 10 and 11).

Memory-traffic expressions (bytes) and flop counts follow the paper
exactly:

* spreading moves ``3*8*K^3`` (zero-initialize the mesh) +
  ``12 p^3 n`` (the nonzeros and column indices of ``P``) +
  ``3*8*p^3 n`` (scatter of ``P^T f``);
* each PME application performs three forward and three inverse 3-D
  FFTs at ``2.5 K^3 log2(K^3)`` flops apiece (radix-2 count);
* the influence function touches the ``8 K^3/2``-byte scalar plus the
  ``2 * 3 * 16 * K^3/2`` bytes of the complex spectra ``C`` and ``D``
  (together the ``76 K^3 / B`` term of Eq. 10);
* interpolation moves ``12 p^3 n + 24 p^3 n`` bytes;
* the persistent reciprocal-space memory is
  ``M_PME = 24 K^3 + 12 p^3 n + 4 K^3`` bytes (Eq. 11).

The real-space SpMV is modeled as bandwidth bound over the BCSR bytes,
which Section IV.E uses to balance the hybrid split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .machines import Machine

__all__ = [
    "spreading_bytes",
    "interpolation_bytes",
    "influence_bytes",
    "fft_flops",
    "pme_memory_bytes",
    "real_space_bytes",
    "PMECostModel",
]


def spreading_bytes(n: int, K: int, p: int) -> float:
    """Memory traffic of the spreading step (paper Eq. in IV.D(a))."""
    return 3 * 8 * K ** 3 + 12 * p ** 3 * n + 3 * 8 * p ** 3 * n


def interpolation_bytes(n: int, K: int, p: int) -> float:
    """Memory traffic of the interpolation step (paper Eq. in IV.D(d))."""
    return 12 * p ** 3 * n + 3 * 8 * p ** 3 * n


def influence_bytes(K: int) -> float:
    """Memory traffic of applying the influence function (IV.D(c)).

    One word per mode for the scalar (``8 K^3 / 2``) plus reading the
    three complex half-spectra ``C`` and writing ``D``
    (``2 * 3 * 16 * K^3 / 2``).
    """
    return 8 * K ** 3 / 2 + 2 * 3 * 16 * K ** 3 / 2


def fft_flops(K: int) -> float:
    """Flops of the three 3-D (i)FFTs of one PME application (IV.D(b))."""
    return 3 * 2.5 * K ** 3 * math.log2(K ** 3)


def pme_memory_bytes(n: int, K: int, p: int) -> float:
    """Persistent reciprocal-space memory, paper Eq. 11."""
    return 3 * 8 * K ** 3 + 12 * p ** 3 * n + 8 * K ** 3 / 2


def real_space_bytes(n: int, pair_density: float, n_vectors: int = 1) -> float:
    """Approximate memory traffic of the real-space BCSR SpMV.

    ``pair_density`` is the average number of neighbors per particle
    within ``r_max``.  Each stored block moves 72 bytes of payload plus
    8 bytes of index; source/destination vectors are amortized over the
    row (and over ``n_vectors`` right-hand sides, the multiple-RHS
    advantage of reference [24]).
    """
    nnzb = n * (pair_density + 1.0)
    payload = nnzb * (72.0 + 8.0)
    vectors = 2 * 3 * 8 * n * n_vectors
    return payload + vectors


@dataclass(frozen=True)
class PMECostModel:
    """Eq. 10 evaluated on a :class:`~repro.perfmodel.machines.Machine`.

    Parameters
    ----------
    machine:
        Hardware description supplying ``B``, ``P_FFT`` and ``P_IFFT``.
    """

    machine: Machine

    def t_spreading(self, n: int, K: int, p: int) -> float:
        """Predicted spreading time (seconds)."""
        return spreading_bytes(n, K, p) / self.machine.bandwidth_bytes

    def t_fft(self, K: int) -> float:
        """Predicted time of the three forward FFTs."""
        return fft_flops(K) / (self.machine.fft_rate(K) * 1e9)

    def t_ifft(self, K: int) -> float:
        """Predicted time of the three inverse FFTs."""
        return fft_flops(K) / (self.machine.ifft_rate(K) * 1e9)

    def t_influence(self, K: int) -> float:
        """Predicted influence-function time."""
        return influence_bytes(K) / self.machine.bandwidth_bytes

    def t_interpolation(self, n: int, K: int, p: int) -> float:
        """Predicted interpolation time."""
        return interpolation_bytes(n, K, p) / self.machine.bandwidth_bytes

    def t_reciprocal(self, n: int, K: int, p: int) -> float:
        """Total reciprocal-space time per application — paper Eq. 10."""
        return (self.t_spreading(n, K, p) + self.t_fft(K) + self.t_ifft(K)
                + self.t_influence(K) + self.t_interpolation(n, K, p))

    def t_real(self, n: int, pair_density: float, n_vectors: int = 1) -> float:
        """Real-space SpMV time per application (per block of vectors)."""
        return (real_space_bytes(n, pair_density, n_vectors)
                / self.machine.bandwidth_bytes)

    def breakdown(self, n: int, K: int, p: int) -> dict[str, float]:
        """Per-phase predicted times, keyed like Fig. 5."""
        return {
            "spread": self.t_spreading(n, K, p),
            "fft": self.t_fft(K),
            "influence": self.t_influence(K),
            "ifft": self.t_ifft(K),
            "interpolate": self.t_interpolation(n, K, p),
        }

    def fits_in_memory(self, n: int, K: int, p: int) -> bool:
        """Whether Eq. 11's footprint fits the device memory."""
        return pme_memory_bytes(n, K, p) <= self.machine.memory_bytes
