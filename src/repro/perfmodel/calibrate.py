"""Self-calibration of the host machine description.

The Fig. 5 experiment overlays the Section IV.D model on real
measurements.  Rather than hand-tuning the host's FFT rates and
effective bandwidth, :func:`calibrate_host` measures them directly:

* 3-D r2c/c2r FFT rates at a few mesh sizes (GF/s using the model's
  own ``2.5 K^3 log2 K^3`` flop convention, so model and measurement
  cancel consistently),
* sustainable bandwidth from a large out-of-place array copy
  (read + write), which matches how the model charges traffic.
"""

from __future__ import annotations

import numpy as np

from ..utils.timing import Timer
from .machines import Machine

__all__ = ["calibrate_host"]


def _time_best(fn, repeats: int = 3) -> float:
    timer = Timer()
    best = float("inf")
    for _ in range(repeats):
        timer.start()
        fn()
        best = min(best, timer.stop())
    return best


def _fft_rate(K: int, inverse: bool) -> float:
    """Measured 3-D (i)FFT rate in GF/s at mesh dimension ``K``."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((K, K, K))
    spec = np.fft.rfftn(x)
    flops = 2.5 * K ** 3 * np.log2(K ** 3)
    if inverse:
        t = _time_best(lambda: np.fft.irfftn(spec, s=(K, K, K),
                                             axes=(0, 1, 2)))
    else:
        t = _time_best(lambda: np.fft.rfftn(x))
    return flops / t / 1e9


def _bandwidth_gbs(nbytes: int = 2 ** 26) -> float:
    """Measured copy bandwidth (read + write) in GB/s."""
    src = np.ones(nbytes // 8)
    dst = np.empty_like(src)
    t = _time_best(lambda: np.copyto(dst, src))
    return 2 * src.nbytes / t / 1e9


def calibrate_host(mesh_dims: tuple[int, ...] = (32, 64, 128),
                   name: str = "host (calibrated)") -> Machine:
    """Measure this machine and return a :class:`Machine` description.

    Takes a few seconds; the result is suitable for the Fig. 5
    model-overlay and for ranking PME parameter choices on the host.
    """
    fft = tuple((K, round(_fft_rate(K, inverse=False), 2))
                for K in mesh_dims)
    ifft = tuple((K, round(_fft_rate(K, inverse=True), 2))
                 for K in mesh_dims)
    bw = _bandwidth_gbs()
    import os
    cores = os.cpu_count() or 1
    return Machine(
        name=name, cores=cores, threads=cores, frequency_ghz=0.0,
        peak_gflops_dp=max(v for _, v in fft) * 4,
        # the model's byte counts assume fused single-pass kernels; the
        # NumPy implementation makes ~2 passes per logical pass, so the
        # effective bandwidth is half the copy bandwidth
        stream_bandwidth_gbs=bw / 2,
        memory_gb=8.0,
        fft_rate_table=fft,
        ifft_rate_table=ifft,
    )
