"""Analytic performance model of PME (paper Section IV.D).

The paper models each reciprocal-space phase separately: spreading,
interpolation and the influence function are memory-bandwidth bound
(time = bytes moved / STREAM bandwidth), while the FFTs are compute
bound (time = flops / achievable FFT rate).  The model, Eq. 10, is
validated against measurements in Fig. 5 and then *used* to balance
the hybrid CPU + Xeon Phi execution (Section IV.E).

This subpackage implements the model verbatim and ships the paper's
Table I machine descriptions, which is how the hardware-dependent
results (Figs. 6 and 9) are reproduced on hardware we do not have —
see DESIGN.md, "Substitutions".
"""

from .machines import Machine, WESTMERE_EP, XEON_PHI_KNC, HOST
from .calibrate import calibrate_host
from .model import (
    PMECostModel,
    spreading_bytes,
    interpolation_bytes,
    influence_bytes,
    fft_flops,
    pme_memory_bytes,
)

__all__ = [
    "Machine",
    "WESTMERE_EP",
    "XEON_PHI_KNC",
    "HOST",
    "calibrate_host",
    "PMECostModel",
    "spreading_bytes",
    "interpolation_bytes",
    "influence_bytes",
    "fft_flops",
    "pme_memory_bytes",
]
