"""Machine descriptions for the performance model (paper Table I).

Two machines are parameterized from the paper's Table I: the dual-socket
Intel Xeon X5680 ("Westmere-EP") host and the Intel Xeon Phi (KNC)
coprocessor.  Quantities the OCR of Table I garbled (STREAM bandwidth)
are filled with the well-documented values for these parts (dual X5680
~40 GB/s; KNC ~150 GB/s) — the *ratio*, which drives every conclusion,
is uncontroversial.

Achievable 3-D FFT rates are not constants: the paper observes that
MKL's FFT on KNC was inefficient for small transforms ("particularly
the 3D inverse FFT") but up to 1.6x faster than the CPU for large ones
(Fig. 6).  Each machine therefore carries monotone interpolation tables
``(K, GF/s)`` for forward and inverse transforms encoding that
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Machine", "WESTMERE_EP", "XEON_PHI_KNC", "HOST"]


@dataclass(frozen=True)
class Machine:
    """Hardware parameters consumed by :class:`~repro.perfmodel.model.PMECostModel`.

    Parameters
    ----------
    name:
        Display name.
    cores, threads:
        Core/thread counts (informational; the model works with
        aggregate rates).
    frequency_ghz:
        Nominal clock (informational).
    peak_gflops_dp:
        Peak double-precision GF/s (Table I).
    stream_bandwidth_gbs:
        Sustainable memory bandwidth ``B`` in GB/s.
    memory_gb:
        Device memory capacity (bounds problem sizes; Table I).
    fft_rate_table / ifft_rate_table:
        ``(K, GF/s)`` samples of the achievable forward/inverse 3-D FFT
        rate ``P_FFT(K)``; log-K interpolated, clamped at the ends.
    """

    name: str
    cores: int
    threads: int
    frequency_ghz: float
    peak_gflops_dp: float
    stream_bandwidth_gbs: float
    memory_gb: float
    fft_rate_table: tuple[tuple[int, float], ...] = field(default=())
    ifft_rate_table: tuple[tuple[int, float], ...] = field(default=())

    def _interp(self, table: tuple[tuple[int, float], ...], K: int) -> float:
        ks = np.array([t[0] for t in table], dtype=np.float64)
        vs = np.array([t[1] for t in table], dtype=np.float64)
        return float(np.interp(np.log2(K), np.log2(ks), vs))

    def fft_rate(self, K: int) -> float:
        """Achievable forward 3-D FFT rate ``P_FFT(K)`` in GF/s."""
        return self._interp(self.fft_rate_table, K)

    def ifft_rate(self, K: int) -> float:
        """Achievable inverse 3-D FFT rate ``P_IFFT(K)`` in GF/s."""
        return self._interp(self.ifft_rate_table, K)

    @property
    def bandwidth_bytes(self) -> float:
        """STREAM bandwidth in bytes/second."""
        return self.stream_bandwidth_gbs * 1e9

    @property
    def memory_bytes(self) -> float:
        """Device memory capacity in bytes."""
        return self.memory_gb * 2 ** 30


#: Dual-socket Intel Xeon X5680 host (paper Table I, left column).
WESTMERE_EP = Machine(
    name="2x Intel X5680 (Westmere-EP)",
    cores=12, threads=24, frequency_ghz=3.33,
    peak_gflops_dp=160.0, stream_bandwidth_gbs=40.0, memory_gb=24.0,
    # MKL multithreaded 3-D FFTs sustain a roughly flat ~12-15% of peak
    # on this part across the mesh sizes of Table III.
    fft_rate_table=((16, 14.0), (32, 18.0), (64, 22.0), (128, 24.0),
                    (256, 22.0), (512, 20.0)),
    ifft_rate_table=((16, 13.0), (32, 17.0), (64, 21.0), (128, 23.0),
                     (256, 21.0), (512, 19.0)),
)

#: Intel Xeon Phi (Knights Corner) coprocessor (paper Table I, right column).
XEON_PHI_KNC = Machine(
    name="Intel Xeon Phi (KNC)",
    cores=61, threads=244, frequency_ghz=1.09,
    # KNC's STREAM rating is ~150 GB/s, but the scattered access
    # patterns of spreading/interpolation sustain well below that on
    # this architecture; the model uses the effective figure that
    # makes Eq. 10 reproduce the paper's Fig. 6 window.
    peak_gflops_dp=1074.0, stream_bandwidth_gbs=100.0, memory_gb=8.0,
    # The paper: "for small numbers of particles, KNC is only slightly
    # faster than or even slower than Westmere-EP ... mainly due to
    # inefficient FFT implementations in MKL on KNC, particularly for
    # the 3D inverse FFT"; for large meshes KNC reaches ~1.6x overall
    # (Fig. 6).  The rate tables are calibrated so the Eq. 10 comparison
    # reproduces exactly that window: below parity at K <~ 50, saturating
    # near 1.6x at the largest Table III meshes.
    fft_rate_table=((16, 4.0), (32, 8.0), (64, 16.0), (128, 28.0),
                    (256, 34.0), (512, 36.0)),
    ifft_rate_table=((16, 3.0), (32, 6.0), (64, 13.0), (128, 24.0),
                     (256, 30.0), (512, 32.0)),
)


def _measure_host() -> Machine:
    """A rough description of the machine running this process.

    Only used when the cost model is asked to *predict* wall-clock on
    the host (Fig. 5 model-vs-measured); calibrated lazily by the
    benchmark harness, these defaults are a single-core NumPy stack.
    """
    import os
    cores = os.cpu_count() or 1
    return Machine(
        name=f"host ({cores} core NumPy)",
        cores=cores, threads=cores, frequency_ghz=2.5,
        peak_gflops_dp=8.0 * cores,
        # effective bandwidth of the unfused NumPy kernels (several
        # array passes per logical pass), calibrated against the Fig. 5
        # host measurements
        stream_bandwidth_gbs=4.0 * cores,
        memory_gb=8.0,
        fft_rate_table=((16, 2.0), (32, 3.5), (64, 4.8), (128, 5.2),
                        (256, 5.4), (512, 5.4)),
        ifft_rate_table=((16, 1.8), (32, 3.2), (64, 4.4), (128, 4.8),
                         (256, 5.0), (512, 5.0)),
    )


#: Description of the machine running this process (used for Fig. 5).
HOST = _measure_host()
