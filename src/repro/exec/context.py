"""Execution contexts: who owns the workers, and which backend runs them.

:class:`ExecutionContext` is the one object in the package that owns
worker resources — a ``ThreadPoolExecutor`` for the ``threads``
backend, a :class:`~repro.exec.procpool.ProcPool` (worker processes +
shared memory) for ``processes`` — and the only place such pools are
constructed (lint rule RPR011 enforces this).  Everything in the hot
path that can run in parallel takes a context:

* the per-color spread/interpolate stages of the PME pipeline
  (Section IV.B.2: within a color, block writes are disjoint, so the
  workers scatter with plain stores),
* the stacked r2c/c2r FFTs (``workers=`` of :mod:`scipy.fft`),
* the chunked BCSR SpMM of the real-space term (Section IV.C),
* the per-device shares of the hybrid scheduler (Section IV.E).

The headline invariant: for a fixed kernel configuration, the
``serial``, ``threads`` and ``processes`` backends produce
**bit-identical** results — every partition the context hands out
(color blocks, row ranges) writes disjoint outputs and preserves the
per-element accumulation order, so parallelism never perturbs the
floating-point sums.

Pools are created lazily on first dispatch and owned until
:meth:`ExecutionContext.close` (idempotent; the context is also a
context manager).  Dispatches are observable: each one increments the
``exec_tasks_total`` counter and records the pool queue lag (submit →
first task start) in the ``exec_queue_lag_seconds`` gauge.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from .. import obs
from ..config import BACKENDS, get_config
from ..errors import ConfigurationError
from ..utils.timing import now

__all__ = ["ExecutionContext", "default_context", "reset_default_context"]


class ExecutionContext:
    """Owns backend selection and worker resources for parallel stages.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"threads"`` or ``"processes"``; default from
        :func:`repro.config.get_config`.
    workers:
        Worker count; default is the config's resolved count (one per
        available CPU when the ``exec_workers`` knob is 0).  The
        ``serial`` backend always reports one worker.
    """

    def __init__(self, backend: str | None = None,
                 workers: int | None = None):
        config = get_config()
        backend = (config.backend if backend is None
                   else str(backend).lower())
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {'|'.join(BACKENDS)}, "
                f"got {backend!r}")
        if workers is None:
            workers = (1 if backend == "serial"
                       else config.resolved_workers())
        workers = max(1, int(workers))
        self._backend = backend
        self._workers = 1 if backend == "serial" else workers
        self._thread_pool: ThreadPoolExecutor | None = None
        self._proc_pool: Any = None
        self._closed = False
        self._lock = threading.Lock()

    # -- introspection --------------------------------------------------

    @property
    def backend(self) -> str:
        """The selected backend name."""
        return self._backend

    @property
    def workers(self) -> int:
        """Worker count (1 for the serial backend)."""
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def fft_workers(self) -> int:
        """``workers=`` value for :mod:`scipy.fft` calls.

        The FFT threads live inside pocketfft regardless of backend
        (the ``processes`` backend does not ship spectra across
        processes — there is no FFT on blocks of vectors to partition,
        the Section IV.E observation), so any parallel backend uses
        the context's worker count here.
        """
        return self._workers

    def span_args(self) -> dict[str, Any]:
        """Span/phase annotations identifying this context."""
        return {"backend": self._backend, "workers": self._workers}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (f"ExecutionContext(backend={self._backend!r}, "
                f"workers={self._workers}, {state})")

    # -- pools ----------------------------------------------------------

    def thread_pool(self) -> ThreadPoolExecutor:
        """The lazily created thread pool (threads backend)."""
        self._check_open()
        if self._thread_pool is None:
            with self._lock:
                if self._thread_pool is None:
                    self._thread_pool = ThreadPoolExecutor(
                        max_workers=self._workers,
                        thread_name_prefix="repro-exec")
        return self._thread_pool

    def proc_pool(self) -> Any:
        """The lazily created process pool (processes backend)."""
        self._check_open()
        if self._backend != "processes":
            raise ConfigurationError(
                f"proc_pool() requires the processes backend, "
                f"this context uses {self._backend!r}")
        if self._proc_pool is None:
            with self._lock:
                if self._proc_pool is None:
                    from .procpool import ProcPool
                    self._proc_pool = ProcPool(self._workers)
        return self._proc_pool

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "ExecutionContext is closed; create a new one")

    # -- dispatch -------------------------------------------------------

    def run_tasks(self, tasks: Sequence[Callable[[], Any]],
                  stage: str = "exec") -> list[Any]:
        """Run independent thunks; barrier; returns results in order.

        ``threads`` dispatches to the owned pool (the compiled kernels
        release the GIL inside ``ctypes`` calls, so this is genuine
        parallelism); ``serial`` runs inline.  The ``processes``
        backend also runs inline — generic Python callables do not
        cross the process boundary; the structured PME stages use
        :meth:`proc_pool` directly instead.
        """
        self._check_open()
        if not tasks:
            return []
        submit_t = now()
        if (self._backend == "threads" and self._workers > 1
                and len(tasks) > 1):
            first_start = [None]

            def timed(task: Callable[[], Any]) -> Any:
                if first_start[0] is None:
                    first_start[0] = now()
                return task()

            pool = self.thread_pool()
            futures = [pool.submit(timed, task) for task in tasks]
            results = [future.result() for future in futures]
            lag = ((first_start[0] or submit_t) - submit_t)
            self.record_dispatch(len(tasks), max(0.0, lag), stage)
            return results
        results = [task() for task in tasks]
        self.record_dispatch(len(tasks), 0.0, stage)
        return results

    def record_dispatch(self, n_tasks: int, queue_lag: float,
                        stage: str = "exec") -> None:
        """Publish dispatch metrics (also used by the processes path)."""
        obs.inc("exec_tasks_total", n_tasks)
        registry = obs.get_metrics()
        if registry is not None:
            registry.gauge("exec_queue_lag_seconds",
                           help="pool queue lag of the last dispatch "
                                "(submit to first task start)",
                           backend=self._backend,
                           stage=stage).set(queue_lag)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release owned pools; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._proc_pool is not None:
            self._proc_pool.close()
            self._proc_pool = None

    def __enter__(self) -> "ExecutionContext":
        self._check_open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# process-default context (config-driven)
# ----------------------------------------------------------------------

_default: ExecutionContext | None = None
_default_key: tuple[str, int] | None = None
_atexit_registered = False


def _register_atexit() -> None:
    global _atexit_registered
    import atexit

    atexit.register(reset_default_context)
    _atexit_registered = True


def default_context() -> ExecutionContext | None:
    """The config-selected shared context, or ``None`` for serial.

    When the resolved :class:`~repro.config.RuntimeConfig` selects a
    parallel backend (``REPRO_BACKEND`` / ``--backend``), operators
    built without an explicit ``context=`` share this one; with the
    default ``serial`` backend they keep the legacy single-threaded
    code path, so existing digests are unchanged unless a parallel
    backend is asked for.
    """
    config = get_config()
    if config.backend == "serial":
        return None
    key = (config.backend, config.resolved_workers())
    global _default, _default_key
    if _default is not None and _default_key == key and not _default.closed:
        return _default
    if _default is not None:
        _default.close()        # stale config: release the old pool
    _default = ExecutionContext(config.backend, config.resolved_workers())
    _default_key = key
    if not _atexit_registered:
        # the shared context outlives any one operator, so interpreter
        # shutdown is the only reliable point to join worker processes
        # and unlink their shared-memory segments
        _register_atexit()
    return _default


def reset_default_context() -> None:
    """Close and forget the shared default context (test/CLI helper)."""
    global _default, _default_key
    if _default is not None:
        _default.close()
    _default = None
    _default_key = None
