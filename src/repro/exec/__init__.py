"""repro.exec — execution contexts and worker-resource ownership.

The package's answer to "who runs the parallel parts": an
:class:`ExecutionContext` selects a backend (``serial`` | ``threads``
| ``processes``), owns the corresponding pool, and is threaded through
the PME hot path so spreading, interpolation, the stacked FFTs and the
real-space SpMM actually execute on multiple cores (paper Sections
IV.B.2, IV.C, IV.E).  See :mod:`repro.exec.context` for the backend
semantics and the bit-identity invariant, and
:mod:`repro.exec.procpool` for the shared-memory process pool.
"""

from .context import ExecutionContext, default_context, reset_default_context

__all__ = ["ExecutionContext", "default_context", "reset_default_context"]
