"""Persistent process pool with shared-memory operands.

The ``processes`` backend of :class:`repro.exec.context.ExecutionContext`
cannot ship NumPy operands through pickles on every stage — the PME
apply would spend more time serializing than computing.  Instead the
pool mirrors the paper's static-partition design (Section IV.E): the
large arrays (interpolation weights/columns, particle operands, the
``(lanes, K^3)`` mesh, the BCSR payload) live in
``multiprocessing.shared_memory`` segments registered once under
stable string keys, and per-stage messages carry only segment *tokens*
plus index ranges.  Workers attach lazily and cache their attachments,
so steady-state traffic is a few hundred bytes per stage.

Three structured jobs are served (mirroring the compiled entry points
of :mod:`repro.sparse.kernels`, with NumPy fallbacks preserving the
exact accumulation order):

* ``spread`` — scatter-add of per-block particle ranges of one color
  onto the shared mesh (disjoint writes by the coloring invariant, so
  concurrent workers use plain stores);
* ``interp`` — gather of a particle row range from the shared mesh;
* ``spmm``   — BCSR SpMM over a block-row range.

Workers are started with the ``fork`` method when available (inherits
the compiled-kernel memo and environment); ``spawn`` works too because
the worker target and job table are module-level.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from ..sparse import kernels

__all__ = ["ProcPool", "ShmToken"]

#: Picklable handle to a shared segment: (shm name, shape, dtype str).
ShmToken = tuple[str, tuple[int, ...], str]


def _attach(token: ShmToken,
            cache: dict[str, shared_memory.SharedMemory]) -> np.ndarray:
    """Worker-side view of a shared segment (attachments cached)."""
    name, shape, dtype = token
    shm = cache.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        try:
            # the parent owns the segment's lifetime; unregister the
            # attachment so the child's resource tracker does not warn
            # about (or worse, unlink) a segment it does not own
            from multiprocessing import resource_tracker
            resource_tracker.unregister(shm._name,  # type: ignore[attr-defined]
                                        "shared_memory")
        except (AttributeError, KeyError, ValueError, OSError):
            pass  # tracker API is CPython-internal; a failed unregister
            #     # only risks a spurious warning at interpreter exit
        cache[name] = shm
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


# ----------------------------------------------------------------------
# worker-side jobs
# ----------------------------------------------------------------------

def _job_spread(args: dict[str, Any], attach: Callable[..., np.ndarray]
                ) -> None:
    data = attach(args["data"])
    cols = attach(args["cols"])
    idx = attach(args["idx"])
    vals = attach(args["vals"])
    out = attach(args["out"])
    pcube = data.shape[1]
    lanes = vals.shape[1]
    k3 = out.shape[1]
    kern = kernels.spread_kernel()
    for lo, hi in args["ranges"]:
        if hi <= lo:
            continue
        if kern is not None:
            kern(hi - lo, idx[lo:hi], data, cols, pcube, vals, lanes,
                 out, k3)
        else:
            sub = idx[lo:hi]
            contrib = data[sub][:, :, None] * vals[sub][:, None, :]
            np.add.at(out.T, cols[sub].ravel(),
                      contrib.reshape(-1, lanes))


def _job_interp(args: dict[str, Any], attach: Callable[..., np.ndarray]
                ) -> None:
    data = attach(args["data"])
    cols = attach(args["cols"])
    mesh = attach(args["mesh"])
    out = attach(args["out"])
    pcube = data.shape[1]
    lanes, k3 = mesh.shape
    n = out.shape[1]
    kern = kernels.interp_kernel()
    for lo, hi in args["ranges"]:
        if hi <= lo:
            continue
        if kern is not None:
            kern(lo, hi, data, cols, pcube, mesh, k3, lanes, n, out)
        else:
            out[:, lo:hi] = np.einsum("ie,bie->bi", data[lo:hi],
                                      mesh[:, cols[lo:hi]])


def _job_spmm(args: dict[str, Any], attach: Callable[..., np.ndarray]
              ) -> None:
    indptr = attach(args["indptr"])
    indices = attach(args["indices"])
    blocks = attach(args["blocks"])
    x = attach(args["x"])
    y = attach(args["y"])
    s = x.shape[2]
    kern = kernels.spmm_range_kernel()
    if kern is None:
        raise RuntimeError(
            "spmm job dispatched to a worker without the native kernel")
    for lo, hi in args["ranges"]:
        if hi > lo:
            kern(lo, hi, indptr, indices, blocks, x, y, s)


_JOBS: dict[str, Callable[[dict[str, Any], Callable[..., np.ndarray]],
                          None]] = {
    "spread": _job_spread,
    "interp": _job_interp,
    "spmm": _job_spmm,
}


def _proc_worker_main(conn: Any) -> None:
    """Worker loop: attach segments lazily, serve jobs until shutdown."""
    cache: dict[str, shared_memory.SharedMemory] = {}

    def attach(token: ShmToken) -> np.ndarray:
        return _attach(token, cache)

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message.get("cmd") == "shutdown":
                return
            try:
                _JOBS[message["job"]](message, attach)
                conn.send({"ok": True})
            except Exception as exc:  # noqa: RPR006 - process boundary:
                # the failure crosses back to the parent as a classified
                # report (same contract as the ensemble workers)
                from ..resilience.failures import StepFailure
                failure = StepFailure.from_exception(exc, attempt=0)
                try:
                    conn.send({"ok": False,
                               "error": f"{failure.kind.value}: {exc}"})
                except (OSError, BrokenPipeError):
                    return
    finally:
        for shm in cache.values():
            shm.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

class ProcPool:
    """Parent-side handle to the persistent worker processes.

    Parameters
    ----------
    n_workers:
        Number of worker processes (each holds one duplex pipe).
    """

    def __init__(self, n_workers: int):
        self.n_workers = max(1, int(n_workers))
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._conns = []
        self._procs = []
        for _ in range(self.n_workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_proc_worker_main, args=(child,),
                               daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        #: key -> (SharedMemory, shape, dtype str); parent owns lifetime.
        self._segments: dict[str, tuple[shared_memory.SharedMemory,
                                        tuple[int, ...], str]] = {}
        self._closed = False

    # -- shared segments ------------------------------------------------

    def share(self, key: str, array: np.ndarray) -> ShmToken:
        """Publish ``array`` under ``key``; returns the segment token.

        Re-sharing the same key with matching shape/dtype copies the
        new contents into the existing segment (workers keep their
        attachment); a shape/dtype change allocates a fresh segment.
        """
        array = np.ascontiguousarray(array)
        dtype = array.dtype.str
        entry = self._segments.get(key)
        if entry is not None and (entry[1] != array.shape
                                  or entry[2] != dtype):
            entry[0].close()
            entry[0].unlink()
            entry = None
            del self._segments[key]
        if entry is None:
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes))
            entry = (shm, array.shape, dtype)
            self._segments[key] = entry
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=entry[0].buf)
        view[...] = array
        return (entry[0].name, entry[1], entry[2])

    def output(self, key: str, shape: tuple[int, ...],
               dtype: Any = np.float64) -> ShmToken:
        """Ensure an output segment exists; contents are unspecified."""
        dtype = np.dtype(dtype)
        entry = self._segments.get(key)
        if entry is not None and (entry[1] != tuple(shape)
                                  or entry[2] != dtype.str):
            entry[0].close()
            entry[0].unlink()
            del self._segments[key]
            entry = None
        if entry is None:
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            shm = shared_memory.SharedMemory(create=True,
                                             size=max(1, nbytes))
            entry = (shm, tuple(shape), dtype.str)
            self._segments[key] = entry
        return (entry[0].name, entry[1], entry[2])

    def view(self, key: str) -> np.ndarray:
        """Parent-side ndarray view of a registered segment."""
        shm, shape, dtype = self._segments[key]
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)

    # -- dispatch -------------------------------------------------------

    def run(self, job: str, per_worker: list[dict[str, Any] | None],
            **shared: Any) -> None:
        """Run one job on every worker with non-``None`` args; barrier.

        ``per_worker[w]`` is merged over ``shared`` to form worker
        ``w``'s message.  Raises ``RuntimeError`` if any worker reports
        an error or died.
        """
        if self._closed:
            raise RuntimeError("ProcPool is closed")
        active = []
        for w, args in enumerate(per_worker):
            if args is None:
                continue
            message = {"job": job, **shared, **args}
            self._conns[w].send(message)
            active.append(w)
        errors = []
        for w in active:
            try:
                reply = self._conns[w].recv()
            except (EOFError, OSError):
                errors.append(f"worker {w} died")
                continue
            if not reply.get("ok"):
                errors.append(f"worker {w}: {reply.get('error')}")
        if errors:
            raise RuntimeError("; ".join(errors))

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down workers and release every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send({"cmd": "shutdown"})
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        for shm, _, _ in self._segments.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
