"""Context-driven execution of the colored spread/interpolate stages.

This is where the paper's Section IV.B.2 schedule finally meets real
workers: :class:`ColoredPMEEngine` takes the per-particle interpolation
tables (the ``(n, p^3)`` weight/column arrays behind ``P``), groups the
particles into the 8 independent sets of
:class:`~repro.parallel.coloring.IndependentSetColoring`, splits every
color into its mesh blocks, and executes

* **spreading** color by color, with the blocks of each color
  dispatched across the workers of an
  :class:`~repro.exec.ExecutionContext` — block write footprints are
  disjoint within a color, so the workers scatter with plain stores
  (no atomics), through the GIL-releasing C kernel of
  :mod:`repro.sparse.kernels` when available and an order-preserving
  ``np.add.at`` fallback otherwise;
* **interpolation** as a row-partitioned gather
  (:func:`~repro.parallel.partition.row_blocks`), trivially disjoint.

Accumulation order is fixed by construction — colors sequential,
within a color each mesh point is written by exactly one block, within
a block particles in a deterministic order — so the results are
**bit-identical** across the ``serial``, ``threads`` and ``processes``
backends for a fixed kernel configuration (the tested headline
invariant of the execution layer).

Mesh layout is batch-first ``(lanes, K^3)``, matching the batched FFT
pipeline of :meth:`repro.pme.operator.PMEOperator.apply_block`.
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

from ..geometry.box import Box
from ..sparse import kernels
from ..utils.validation import as_positions
from .coloring import IndependentSetColoring
from .partition import balance_by_cost, row_blocks

__all__ = ["ColoredPMEEngine"]

#: Engine instance counter (namespaces the shared-memory keys).
_SEQ = itertools.count()


class ColoredPMEEngine:
    """Executes spread/interpolate on an execution context's workers.

    Parameters
    ----------
    positions, box, K, p:
        The particle configuration and mesh the tables belong to.
    weights, columns:
        The ``(n, p^3)`` spreading weights and flat mesh columns (from
        :func:`repro.pme.spread._weights_and_columns`, shared with the
        stored ``P`` so nothing is recomputed).
    context:
        The :class:`~repro.exec.ExecutionContext` owning the workers.
    """

    def __init__(self, positions: Any, box: Box, K: int, p: int, *,
                 weights: np.ndarray, columns: np.ndarray, context: Any):
        self.K = int(K)
        self.p = int(p)
        self.context = context
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self.columns = np.ascontiguousarray(columns, dtype=np.int64)
        self.n = self.weights.shape[0]
        self.coloring = IndependentSetColoring(K, p)
        groups = self.coloring.groups(as_positions(positions), box)
        # Per color: particle indices stably ordered by block id, plus
        # the contiguous (lo, hi) range of each block inside that order.
        self._color_idx: list[np.ndarray] = []
        self._color_ranges: list[list[tuple[int, int]]] = []
        k = self.K
        nb = self.coloring.blocks_per_dim
        for group in groups:
            if group.size == 0:
                self._color_idx.append(np.empty(0, dtype=np.int64))
                self._color_ranges.append([])
                continue
            ends = self.columns[group][:, 0]
            bx = self.coloring.block_of(ends // (k * k))
            by = self.coloring.block_of((ends // k) % k)
            bz = self.coloring.block_of(ends % k)
            bid = (bx * nb + by) * nb + bz
            order = np.argsort(bid, kind="stable")
            idx = np.ascontiguousarray(group[order], dtype=np.int64)
            sorted_bid = bid[order]
            bounds = np.flatnonzero(np.diff(sorted_bid)) + 1
            starts = np.concatenate(([0], bounds))
            stops = np.concatenate((bounds, [idx.size]))
            self._color_idx.append(idx)
            self._color_ranges.append(
                [(int(lo), int(hi)) for lo, hi in zip(starts, stops)])
        # processes-backend shared-memory state (registered lazily)
        self._shm_prefix: str | None = None
        self._shm_static: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # spreading (scatter-add, 8 color stages)
    # ------------------------------------------------------------------

    def spread_batch(self, values: np.ndarray,
                     out: np.ndarray) -> np.ndarray:
        """Scatter ``values (n, lanes)`` onto the mesh ``out (lanes, K^3)``.

        Color stages run sequentially; the blocks of each color run on
        the context's workers with plain disjoint stores.
        """
        values = np.ascontiguousarray(values, dtype=np.float64)
        if self.context.backend == "processes":
            return self._spread_processes(values, out)
        out[...] = 0.0
        kern = kernels.spread_kernel()
        lanes = values.shape[1]
        k3 = self.K ** 3
        workers = self.context.workers
        for idx, ranges in zip(self._color_idx, self._color_ranges):
            if not ranges:
                continue
            shares = self._share_ranges(ranges, workers)
            tasks = [self._spread_task(kern, idx, share, values, out,
                                       lanes, k3)
                     for share in shares]
            self.context.run_tasks(tasks, stage="spread")
        return out

    def _spread_task(self, kern: Any, idx: np.ndarray,
                     ranges: list[tuple[int, int]], values: np.ndarray,
                     out: np.ndarray, lanes: int, k3: int) -> Any:
        weights, columns = self.weights, self.columns
        pcube = weights.shape[1]

        def task() -> None:
            for lo, hi in ranges:
                if kern is not None:
                    kern(hi - lo, idx[lo:hi], weights, columns, pcube,
                         values, lanes, out, k3)
                else:
                    sub = idx[lo:hi]
                    contrib = (weights[sub][:, :, None]
                               * values[sub][:, None, :])
                    np.add.at(out.T, columns[sub].ravel(),
                              contrib.reshape(-1, lanes))
        return task

    @staticmethod
    def _share_ranges(ranges: list[tuple[int, int]], workers: int
                      ) -> list[list[tuple[int, int]]]:
        """Cost-balanced assignment of block ranges to workers."""
        if workers <= 1 or len(ranges) <= 1:
            return [ranges]
        sizes = [hi - lo for lo, hi in ranges]
        assignment = balance_by_cost(sizes, min(workers, len(ranges)))
        return [[ranges[i] for i in part] for part in assignment if part]

    # ------------------------------------------------------------------
    # interpolation (row-partitioned gather)
    # ------------------------------------------------------------------

    def interpolate_batch(self, mesh: np.ndarray,
                          out: np.ndarray) -> np.ndarray:
        """Gather ``mesh (lanes, K^3)`` to particles ``out (lanes, n)``."""
        mesh = np.ascontiguousarray(mesh, dtype=np.float64)
        if self.context.backend == "processes":
            return self._interp_processes(mesh, out)
        kern = kernels.interp_kernel()
        lanes, k3 = mesh.shape
        weights, columns = self.weights, self.columns
        pcube = weights.shape[1]
        n = self.n

        def make_task(lo: int, hi: int) -> Any:
            def task() -> None:
                if kern is not None:
                    kern(lo, hi, weights, columns, pcube, mesh, k3,
                         lanes, n, out)
                else:
                    out[:, lo:hi] = np.einsum(
                        "ie,bie->bi", weights[lo:hi],
                        mesh[:, columns[lo:hi]])
            return task

        tasks = [make_task(lo, hi)
                 for lo, hi in row_blocks(n, self.context.workers)
                 if hi > lo]
        self.context.run_tasks(tasks, stage="interpolate")
        return out

    # ------------------------------------------------------------------
    # processes backend (shared-memory jobs)
    # ------------------------------------------------------------------

    def _proc_setup(self, pool: Any) -> None:
        """Register the static tables once per engine."""
        if self._shm_prefix is not None:
            return
        prefix = f"eng{next(_SEQ)}-"
        self._shm_prefix = prefix
        self._shm_static = {
            "data": pool.share(prefix + "w", self.weights),
            "cols": pool.share(prefix + "c", self.columns),
            "idx": [pool.share(f"{prefix}i{c}", idx)
                    for c, idx in enumerate(self._color_idx)],
        }

    def _spread_processes(self, values: np.ndarray,
                          out: np.ndarray) -> np.ndarray:
        pool = self.context.proc_pool()
        self._proc_setup(pool)
        prefix = self._shm_prefix
        vals_tok = pool.share(prefix + "vals", values)
        mesh_tok = pool.output(prefix + "mesh", out.shape)
        pool.view(prefix + "mesh")[...] = 0.0
        workers = pool.n_workers
        n_jobs = 0
        for color, ranges in enumerate(self._color_ranges):
            if not ranges:
                continue
            shares = self._share_ranges(ranges, workers)
            per_worker: list[dict[str, Any] | None] = [None] * workers
            for w, share in enumerate(shares):
                per_worker[w] = {"ranges": share}
            n_jobs += len(shares)
            pool.run("spread", per_worker,
                     data=self._shm_static["data"],
                     cols=self._shm_static["cols"],
                     idx=self._shm_static["idx"][color],
                     vals=vals_tok, out=mesh_tok)
        out[...] = pool.view(prefix + "mesh")
        self.context.record_dispatch(n_jobs, 0.0, "spread")
        return out

    def _interp_processes(self, mesh: np.ndarray,
                          out: np.ndarray) -> np.ndarray:
        pool = self.context.proc_pool()
        self._proc_setup(pool)
        prefix = self._shm_prefix
        mesh_tok = pool.share(prefix + "mesh_in", mesh)
        out_tok = pool.output(prefix + "part", out.shape)
        ranges = [(lo, hi) for lo, hi in row_blocks(self.n, pool.n_workers)
                  if hi > lo]
        per_worker: list[dict[str, Any] | None] = [None] * pool.n_workers
        for w, rng in enumerate(ranges):
            per_worker[w] = {"ranges": [rng]}
        pool.run("interp", per_worker,
                 data=self._shm_static["data"],
                 cols=self._shm_static["cols"],
                 mesh=mesh_tok, out=out_tok)
        out[...] = pool.view(prefix + "part")
        self.context.record_dispatch(len(ranges), 0.0, "interpolate")
        return out
