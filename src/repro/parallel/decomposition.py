"""Slab domain decomposition of the real-space operator construction.

The distributed-memory counterpart of the paper's shared-memory
techniques: to build the short-range BCSR matrix on ``D`` workers, the
box is cut into ``D`` slabs along ``x``; every worker owns the
particles in its slab, imports a *halo* of foreign particles within
``r_max`` of its slab faces (periodic in ``x``), finds its local pairs,
and keeps exactly the pairs whose lower global index it owns — a
disjoint cover of the global pair set, so concatenating the per-worker
results reproduces the global build exactly (tested bit-for-bit).

On this machine the workers run as a loop; the per-worker function
:meth:`SlabDecomposition.local_pair_blocks` touches only the worker's
owned + halo data, so the same code maps onto ``mpi4py`` ranks
unchanged (gather the per-rank triples with ``comm.allgather`` and
feed :func:`merge_pair_blocks`).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box
from ..lint.contracts import positions_arg
from ..neighbor.pairs import find_pairs
from ..rpy import beenakker
from ..sparse.bcsr import BlockCSR
from ..units import FluidParams, REDUCED
from ..utils.validation import as_positions

__all__ = ["SlabDecomposition", "merge_pair_blocks",
           "distributed_real_space_matrix"]


class SlabDecomposition:
    """``D`` equal slabs along ``x`` with periodic halos.

    Parameters
    ----------
    box:
        Periodic box.
    n_domains:
        Number of slabs; the slab width ``L / D`` must be at least the
        halo width or pairs could span non-adjacent slabs.
    halo_width:
        Import distance (use the interaction cutoff ``r_max``).
    """

    def __init__(self, box: Box, n_domains: int, halo_width: float):
        if n_domains < 1:
            raise ConfigurationError(
                f"n_domains must be >= 1, got {n_domains}")
        if halo_width <= 0:
            raise ConfigurationError(
                f"halo_width must be positive, got {halo_width}")
        slab = box.length / n_domains
        if n_domains > 1 and slab < halo_width:
            raise ConfigurationError(
                f"slab width {slab:.3g} is below the halo width "
                f"{halo_width:.3g}; use fewer domains")
        self.box = box
        self.n_domains = int(n_domains)
        self.halo_width = float(halo_width)
        self.slab_width = slab

    def owner(self, positions) -> np.ndarray:
        """Owning domain of each particle (by wrapped x coordinate)."""
        r = self.box.wrap(as_positions(positions))
        d = np.floor(r[:, 0] / self.slab_width).astype(np.intp)
        return np.minimum(d, self.n_domains - 1)

    @positions_arg()
    def owned_indices(self, positions, domain: int) -> np.ndarray:
        """Global indices of the particles domain ``domain`` owns."""
        return np.flatnonzero(self.owner(positions) == domain)

    def halo_indices(self, positions, domain: int) -> np.ndarray:
        """Foreign particles within ``halo_width`` of the slab (periodic)."""
        if self.n_domains == 1:
            return np.empty(0, dtype=np.intp)
        r = self.box.wrap(as_positions(positions))
        owner = self.owner(positions)
        lo = domain * self.slab_width
        hi = lo + self.slab_width
        x = r[:, 0]
        # periodic distance of x to the slab interval [lo, hi)
        below = np.minimum(np.abs(x - lo), np.abs(x - lo + self.box.length))
        below = np.minimum(below, np.abs(x - lo - self.box.length))
        above = np.minimum(np.abs(x - hi), np.abs(x - hi + self.box.length))
        above = np.minimum(above, np.abs(x - hi - self.box.length))
        near = np.minimum(below, above) < self.halo_width
        return np.flatnonzero(near & (owner != domain))

    def local_pair_blocks(self, positions, domain: int, xi: float,
                          fluid: FluidParams = REDUCED,
                          kernel: str = "rpy"
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """This domain's share of the real-space pair blocks.

        Runs the neighbor search on owned + halo particles only and
        keeps each pair exactly once across all domains (the domain
        owning the pair's lower global index keeps it).

        Returns ``(i, j, blocks)`` in *global* indices.
        """
        r = self.box.wrap(as_positions(positions))
        own = self.owned_indices(r, domain)
        halo = self.halo_indices(r, domain)
        local_global = np.concatenate([own, halo])
        if local_global.size < 2:
            return (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp),
                    np.empty((0, 3, 3)))
        sub = r[local_global]
        li, lj = find_pairs(sub, self.box, self.halo_width)
        gi = local_global[li]
        gj = local_global[lj]
        lo = np.minimum(gi, gj)
        hi = np.maximum(gi, gj)
        keep = self.owner(r)[lo] == domain
        lo, hi = lo[keep], hi[keep]
        if lo.size == 0:
            return (lo, hi, np.empty((0, 3, 3)))
        rij, dist = self.box.distances(r, lo, hi)
        blocks = beenakker.real_space_tensors(rij, xi, fluid.radius,
                                              kernel=kernel)
        return lo, hi, blocks


def merge_pair_blocks(parts, n: int, xi: float,
                      fluid: FluidParams = REDUCED,
                      kernel: str = "rpy") -> BlockCSR:
    """Assemble per-domain ``(i, j, blocks)`` triples into the BCSR matrix.

    The diagonal (self-term) blocks are added here, once.
    """
    i = np.concatenate([p[0] for p in parts]) if parts else np.empty(0, int)
    j = np.concatenate([p[1] for p in parts]) if parts else np.empty(0, int)
    blocks = (np.concatenate([p[2] for p in parts])
              if parts else np.empty((0, 3, 3)))
    diag_scalar = beenakker.self_mobility_scalar(xi, fluid.radius,
                                                 kernel=kernel)
    diag = np.broadcast_to(diag_scalar * np.eye(3), (n, 3, 3)).copy()
    return BlockCSR.from_pairs(n, i, j, blocks, diag_blocks=diag)


def distributed_real_space_matrix(positions, box: Box, xi: float,
                                  r_max: float, n_domains: int,
                                  fluid: FluidParams = REDUCED,
                                  kernel: str = "rpy") -> BlockCSR:
    """Build the real-space BCSR matrix via slab decomposition.

    Equivalent (bit-for-bit, up to block ordering) to the single-domain
    construction of :class:`repro.pme.realspace.RealSpaceOperator`;
    each domain's work only reads its owned + halo particles.
    """
    decomp = SlabDecomposition(box, n_domains, r_max)
    parts = [decomp.local_pair_blocks(positions, d, xi, fluid=fluid,
                                      kernel=kernel)
             for d in range(n_domains)]
    n = as_positions(positions).shape[0]
    return merge_pair_blocks(parts, n, xi, fluid=fluid, kernel=kernel)
