"""Independent-set (8-color) scheduling of the spreading scatter-add.

Spreading is ``F = P^T f``: many particles accumulate into shared mesh
points, so naive parallelization races.  The paper's solution
(Section IV.B.2, Fig. 2): partition the mesh into cubic blocks of edge
at least ``p`` points, then group blocks into *independent sets* such
that no two blocks in a set are adjacent — 8 sets in 3D (one per
parity class of the block coordinates).  A particle writes only into
its own block and the preceding block per dimension, so particles from
distinct blocks of the same set can never touch the same mesh point,
and each of the 8 stages is embarrassingly parallel.

The requirement for correctness under periodic wrap-around is an
*even* number of blocks per dimension (else the first and last blocks
are adjacent but share parity); the constructor enforces it by merging
blocks when needed.

:class:`ColoredSpreader` executes the schedule on real data; the test
suite verifies it reproduces the sparse-matrix spreading bit-for-bit
and that the per-set write footprints are disjoint — the property that
makes the schedule race-free on actual parallel hardware.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box
from ..utils.validation import as_positions
from ..pme.bspline import bspline_weights

__all__ = ["IndependentSetColoring", "ColoredSpreader"]


class IndependentSetColoring:
    """Partition of a ``K^3`` mesh into blocks and 8 independent sets.

    Parameters
    ----------
    K:
        Mesh dimension.
    p:
        B-spline order; blocks have edge >= ``p`` mesh points.
    """

    def __init__(self, K: int, p: int):
        if K < p:
            raise ConfigurationError(f"K={K} must be >= p={p}")
        self.K = int(K)
        self.p = int(p)
        nb = max(1, K // p)
        if nb > 1 and nb % 2 == 1:
            nb -= 1          # even block count per dim (periodic parity)
        self.blocks_per_dim = nb
        # block boundaries: nearly equal integer splits of [0, K)
        edges = np.linspace(0, K, nb + 1).astype(np.intp)
        self.block_edges = edges
        #: Number of distinct colors actually used (8, or fewer for tiny meshes).
        self.n_colors = 8 if nb >= 2 else 1

    def block_of(self, mesh_coord: np.ndarray) -> np.ndarray:
        """Block index per dimension for integer mesh coordinates."""
        return np.minimum(
            np.searchsorted(self.block_edges, mesh_coord, side="right") - 1,
            self.blocks_per_dim - 1)

    def color_of_particles(self, base: np.ndarray) -> np.ndarray:
        """Color (0..7) of particles whose spreading window *ends* at ``base``.

        ``base`` is the integer mesh coordinate ``floor(u)`` per
        dimension, shape ``(n, 3)``; the window covers
        ``base - p + 1 .. base``, which lies in the particle's block
        plus (at most) the preceding block — the containment the
        independence argument relies on.
        """
        base = np.asarray(base, dtype=np.intp)
        if self.n_colors == 1:
            return np.zeros(base.shape[0], dtype=np.intp)
        b = np.stack([self.block_of(base[:, d]) for d in range(3)], axis=1)
        parity = b & 1
        return (parity[:, 0] << 2) | (parity[:, 1] << 1) | parity[:, 2]

    def groups(self, positions, box: Box) -> list[np.ndarray]:
        """Particle index arrays, one per color."""
        r = as_positions(positions)
        u = box.fractional(r, self.K)
        base = np.floor(u).astype(np.intp)
        colors = self.color_of_particles(base)
        return [np.flatnonzero(colors == c) for c in range(self.n_colors)]


class ColoredSpreader:
    """Spreading executed color-by-color per the independent-set schedule.

    Functionally identical to ``P^T f`` (tested bit-for-bit); the value
    of the class is that within each color stage the writes of distinct
    blocks are provably disjoint, so a real multicore implementation
    runs each stage with plain (non-atomic) parallel writes.

    Parameters
    ----------
    positions, box, K, p:
        As for :class:`repro.pme.spread.InterpolationMatrix`.
    """

    def __init__(self, positions, box: Box, K: int, p: int):
        from ..pme.spread import _weights_and_columns
        self.K, self.p = int(K), int(p)
        self.coloring = IndependentSetColoring(K, p)
        self.n = as_positions(positions).shape[0]
        self._data, self._cols = _weights_and_columns(positions, box, K, p)
        self._groups = self.coloring.groups(positions, box)

    @property
    def n_colors(self) -> int:
        """Number of independent sets in the schedule."""
        return self.coloring.n_colors

    def color_footprints(self) -> list[np.ndarray]:
        """Unique mesh points written by each color (for disjointness tests
        at the block level use :meth:`block_footprints`)."""
        return [np.unique(self._cols[g]) for g in self._groups]

    def block_footprints(self, color: int) -> list[np.ndarray]:
        """Within one color, the mesh points written per block.

        These sets are pairwise disjoint — the race-freedom property.
        """
        group = self._groups[color]
        if group.size == 0:
            return []
        # recompute each particle's block id from its window end
        ends = self._cols[group][:, 0]  # first column = (base_x, base_y, base_z)
        bx = self.coloring.block_of(ends // (self.K * self.K))
        by = self.coloring.block_of((ends // self.K) % self.K)
        bz = self.coloring.block_of(ends % self.K)
        bid = (bx * self.coloring.blocks_per_dim + by) * \
            self.coloring.blocks_per_dim + bz
        return [np.unique(self._cols[group[bid == b]])
                for b in np.unique(bid)]

    def spread(self, values: np.ndarray) -> np.ndarray:
        """Spread per-particle values onto the mesh in 8 color stages.

        Parameters and return as
        :meth:`repro.pme.spread.InterpolationMatrix.spread`.
        """
        values = np.asarray(values, dtype=np.float64)
        flat = values.ndim == 1
        vals = values[:, None] if flat else values
        out = np.zeros((self.K ** 3, vals.shape[1]))
        for group in self._groups:
            if group.size == 0:
                continue
            contrib = self._data[group][:, :, None] * vals[group][:, None, :]
            np.add.at(out, self._cols[group].ravel(),
                      contrib.reshape(-1, vals.shape[1]))
        return out[:, 0] if flat else out
