"""Hybrid CPU + coprocessor execution of PME (paper Section IV.E).

The paper couples the host CPUs with Intel Xeon Phi coprocessors:

* **single-vector PME** (Algorithm 2, line 9): the real-space and
  reciprocal-space terms are independent, so the reciprocal part is
  offloaded to one coprocessor while the CPU does the real-space SpMV;
  the Ewald parameter ``alpha`` is tuned so both take about the same
  time, using the Section IV.D performance model;
* **block-of-vectors PME** (line 6): there is no FFT for blocks of
  vectors, so the reciprocal pipelines of the individual vectors are
  *statically partitioned* across the CPU and all coprocessors, again
  balanced with the model.

Physical coprocessors are not available here, so the scheduler executes
every planned piece on the host — producing bit-identical numerical
results — while the *predicted* duration of each device's share comes
from the machine models (see DESIGN.md, "Substitutions").  Figure 9 is
regenerated from those predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..perfmodel.machines import Machine, WESTMERE_EP, XEON_PHI_KNC
from ..perfmodel.model import PMECostModel

__all__ = ["OffloadModel", "HybridPlan", "HybridScheduler"]


@dataclass(frozen=True)
class OffloadModel:
    """PCIe offload cost model.

    Per offloaded vector the forces go out and the velocities come back
    (``2 * 3 * 8 * n`` bytes); per mobility update the interpolation
    data (``12 p^3 n`` bytes, amortized over the ``lambda_RPY`` steps)
    is shipped once.  The latency term covers the offload-region
    launch/synchronization cost per evaluation, which on PCIe
    coprocessors is of millisecond order and is what makes small
    configurations gain little from offloading (the paper's
    observation in Section V.E).
    """

    bandwidth_gbs: float = 6.0
    latency_s: float = 1.5e-3

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across the link."""
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)

    def per_vector_time(self, n: int) -> float:
        """Offload cost of one reciprocal-space vector evaluation."""
        return self.transfer_time(2 * 3 * 8 * n)

    def setup_time(self, n: int, p: int) -> float:
        """One-time cost of shipping the interpolation data."""
        return self.transfer_time(12 * p ** 3 * n)


@dataclass
class HybridPlan:
    """A scheduled PME evaluation with per-device predicted times.

    Attributes
    ----------
    assignments:
        Number of reciprocal-space vector pipelines per device
        (index 0 is the CPU).
    device_names:
        Display names aligned with ``assignments``.
    device_times:
        Predicted busy time per device (including the CPU's real-space
        work and the coprocessors' offload overhead).
    cpu_only_time:
        Predicted time of the same work run entirely on the CPU.
    """

    assignments: list[int]
    device_names: list[str]
    device_times: list[float]
    cpu_only_time: float
    notes: dict = field(default_factory=dict)

    @property
    def hybrid_time(self) -> float:
        """Predicted wall-clock of the hybrid execution (max device load)."""
        return max(self.device_times)

    @property
    def speedup(self) -> float:
        """Predicted speedup over CPU-only execution (the Fig. 9 metric)."""
        return self.cpu_only_time / self.hybrid_time


class HybridScheduler:
    """Plans (and host-executes) hybrid PME evaluations.

    Parameters
    ----------
    cpu:
        Host machine model (default: the paper's Westmere-EP).
    accelerators:
        Coprocessor machine models (default: two KNC cards, the paper's
        testbed).
    offload:
        PCIe transfer model.
    """

    def __init__(self, cpu: Machine = WESTMERE_EP,
                 accelerators: tuple[Machine, ...] = (XEON_PHI_KNC,
                                                      XEON_PHI_KNC),
                 offload: OffloadModel = OffloadModel()):
        self.cpu = cpu
        self.accelerators = tuple(accelerators)
        self.offload = offload
        self._cpu_model = PMECostModel(cpu)
        self._acc_models = [PMECostModel(m) for m in self.accelerators]

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan_single(self, n: int, K: int, p: int, pair_density: float
                    ) -> HybridPlan:
        """Plan for one PME application (Algorithm 2, line 9).

        Real space on the CPU, reciprocal space on the first
        coprocessor; they run concurrently.
        """
        t_real = self._cpu_model.t_real(n, pair_density)
        t_recip_cpu = self._cpu_model.t_reciprocal(n, K, p)
        cpu_only = t_real + t_recip_cpu
        if not self.accelerators:
            return HybridPlan([1], [self.cpu.name], [cpu_only], cpu_only)
        t_recip_acc = (self._acc_models[0].t_reciprocal(n, K, p)
                       + self.offload.per_vector_time(n))
        names = [self.cpu.name] + [m.name for m in self.accelerators]
        times = [t_real, t_recip_acc] + [0.0] * (len(self.accelerators) - 1)
        return HybridPlan([0, 1] + [0] * (len(self.accelerators) - 1),
                          names, times, cpu_only,
                          notes={"t_recip_cpu": t_recip_cpu})

    def plan_block(self, n: int, K: int, p: int, pair_density: float,
                   n_vectors: int) -> HybridPlan:
        """Plan for a block of ``n_vectors`` PME applications (line 6).

        The CPU first does the (efficient, multi-RHS) real-space block
        SpMV, then helps with reciprocal pipelines; each coprocessor
        takes pipelines as capacity allows.  Vectors are assigned
        greedily to the device that finishes them soonest.
        """
        if n_vectors < 1:
            raise ConfigurationError(
                f"n_vectors must be >= 1, got {n_vectors}")
        t_real_block = self._cpu_model.t_real(n, pair_density, n_vectors)
        t_recip_cpu = self._cpu_model.t_reciprocal(n, K, p)
        cpu_only = t_real_block + n_vectors * t_recip_cpu

        n_dev = 1 + len(self.accelerators)
        per_task = [t_recip_cpu] + [
            m.t_reciprocal(n, K, p) + self.offload.per_vector_time(n)
            for m in self._acc_models]
        loads = [t_real_block] + [self.offload.setup_time(n, p)
                                  for _ in self.accelerators]
        counts = [0] * n_dev
        for _ in range(n_vectors):
            finish = [loads[d] + per_task[d] for d in range(n_dev)]
            d = int(np.argmin(finish))
            counts[d] += 1
            loads[d] = finish[d]
        names = [self.cpu.name] + [m.name for m in self.accelerators]
        return HybridPlan(counts, names, loads, cpu_only,
                          notes={"per_task": per_task})

    def balance_alpha_cutoff(self, n: int, box_volume: float, K: int, p: int,
                             r_max_grid) -> float:
        """Pick the real-space cutoff balancing CPU and coprocessor work.

        The paper: "the Ewald parameter alpha is tuned so that one
        real-space calculation on the CPU and one reciprocal-space
        calculation on the accelerator consume approximately equal
        amounts of execution time."  Larger ``r_max`` (smaller alpha)
        moves work onto the CPU.  Returns the cutoff from ``r_max_grid``
        with the smallest predicted load imbalance.
        """
        if not self.accelerators:
            raise ConfigurationError("no accelerators to balance against")
        t_acc = self._acc_models[0].t_reciprocal(n, K, p)
        best_r, best_gap = None, np.inf
        for r_max in r_max_grid:
            density = n * (4.0 / 3.0) * np.pi * float(r_max) ** 3 / box_volume
            gap = abs(self._cpu_model.t_real(n, density) - t_acc)
            if gap < best_gap:
                best_r, best_gap = float(r_max), gap
        return best_r

    # ------------------------------------------------------------------
    # host execution of a plan
    # ------------------------------------------------------------------

    def execute(self, operator, forces,
                context=None) -> tuple[np.ndarray, HybridPlan]:
        """Execute ``u = M f`` per the hybrid schedule (on the host).

        The real-space term and each device's share of reciprocal
        vector pipelines are computed separately, exactly as the
        schedule prescribes, then summed — the result is numerically
        identical to ``operator.apply(forces)`` (tested), while the
        returned plan carries the modeled per-device times.

        ``context`` (an :class:`~repro.exec.ExecutionContext`) chunks
        the real-space SpMM across workers; the per-device reciprocal
        shares stay sequential on the host — they model distinct
        physical devices, so overlapping them here would misstate the
        schedule the plan's times describe.
        """
        f = np.asarray(forces, dtype=np.float64)
        flat = f.ndim == 1
        fb = f[:, None] if flat else f
        s = fb.shape[1]
        params = operator.params
        density = max(operator.real.n_pairs * 2.0 / operator.n, 0.0)
        plan = (self.plan_single(operator.n, params.K, params.p, density)
                if s == 1 else
                self.plan_block(operator.n, params.K, params.p, density, s))

        if context is not None:
            u_real = operator.real.apply_block(fb, context=context)
        else:
            u_real = operator.apply_real(fb)
        u_recip = np.empty_like(fb)
        col = 0
        split = plan.assignments if s > 1 else [0, s] + [0] * (
            len(self.accelerators) - 1)
        for count in split:
            if count == 0:
                continue
            u_recip[:, col:col + count] = operator.apply_reciprocal(
                fb[:, col:col + count])
            col += count
        # single-vector plans keep all reciprocal work on one device
        if col < s:
            u_recip[:, col:] = operator.apply_reciprocal(fb[:, col:])
        out = (u_real + u_recip) * operator.fluid.mobility0
        operator.n_applications += s
        return (out[:, 0] if flat else out), plan
