"""Thread-pool execution of the independent-set spreading schedule.

The point of the 8-color schedule (Section IV.B.2) is that within one
color, blocks write disjoint mesh regions, so real threads can scatter
*without atomics*.  :class:`ThreadedSpreader` demonstrates exactly
that: each color stage fans its blocks out over the worker pool of an
:class:`~repro.exec.ExecutionContext` and every worker writes its
block's mesh points with plain stores.  The result is bit-identical to
the sparse-matrix spreading (tested), which is the correctness property
a multicore C implementation relies on.

The pool lives on the execution context, not here: historically the
spreader created (and tore down) a ``ThreadPoolExecutor`` on *every*
``spread`` call, paying thread start-up per application.  Now it either
borrows the caller's context or owns a private ``threads`` context for
its lifetime — closed idempotently via :meth:`ThreadedSpreader.close`
or the context-manager protocol.

(On CPython, NumPy's scatter kernels hold the GIL for much of the
work, so this path is a *correctness* demonstration of the schedule;
the measured speedup lives in the GIL-releasing C kernels driven by
:class:`~repro.parallel.engine.ColoredPMEEngine`.)
"""

from __future__ import annotations

import numpy as np

from ..geometry.box import Box
from .coloring import ColoredSpreader

__all__ = ["ThreadedSpreader"]


class ThreadedSpreader(ColoredSpreader):
    """Colored spreading with per-block thread-pool execution.

    Parameters
    ----------
    positions, box, K, p:
        As for :class:`~repro.parallel.coloring.ColoredSpreader`.
    n_workers:
        Threads per color stage (ignored when ``context`` is given).
    context:
        Optional :class:`~repro.exec.ExecutionContext` to borrow the
        worker pool from.  When omitted, the spreader owns a private
        ``threads`` context (and is responsible for closing it).
    """

    def __init__(self, positions, box: Box, K: int, p: int,
                 n_workers: int = 4, context=None):
        super().__init__(positions, box, K, p)
        if context is None:
            from ..exec import ExecutionContext  # deferred: import cycle
            self.context = ExecutionContext(backend="threads",
                                            workers=max(1, int(n_workers)))
            self._owns_context = True
        else:
            self.context = context
            self._owns_context = False
        self.n_workers = self.context.workers
        self._closed = False
        # pre-split every color group by block id so stages only submit
        self._block_groups: list[list[np.ndarray]] = []
        for group in self._groups:
            if group.size == 0:
                self._block_groups.append([])
                continue
            ends = self._cols[group][:, 0]
            k = self.K
            bx = self.coloring.block_of(ends // (k * k))
            by = self.coloring.block_of((ends // k) % k)
            bz = self.coloring.block_of(ends % k)
            bid = (bx * self.coloring.blocks_per_dim + by) * \
                self.coloring.blocks_per_dim + bz
            self._block_groups.append(
                [group[bid == b] for b in np.unique(bid)])

    def spread(self, values: np.ndarray) -> np.ndarray:
        """Spread through the context's persistent worker pool.

        Within a color stage every dispatched block writes a disjoint
        set of mesh points (the coloring invariant), so the concurrent
        plain scatter below is race-free by construction.
        """
        if self._closed:
            raise RuntimeError("ThreadedSpreader is closed")
        values = np.asarray(values, dtype=np.float64)
        flat = values.ndim == 1
        vals = values[:, None] if flat else values
        out = np.zeros((self.K ** 3, vals.shape[1]))

        def make_task(particle_idx: np.ndarray):
            def task() -> None:
                contrib = (self._data[particle_idx][:, :, None]
                           * vals[particle_idx][:, None, :])
                np.add.at(out, self._cols[particle_idx].ravel(),
                          contrib.reshape(-1, vals.shape[1]))
            return task

        for blocks in self._block_groups:       # color stages: sequential
            if not blocks:
                continue
            # blocks within a stage: concurrent on the context's pool
            self.context.run_tasks([make_task(b) for b in blocks],
                                   stage="spread")
        return out[:, 0] if flat else out

    def close(self) -> None:
        """Release the worker pool (idempotent; borrowed contexts are
        left open for their owner)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_context:
            self.context.close()

    def __enter__(self) -> "ThreadedSpreader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
