"""Thread-pool execution of the independent-set spreading schedule.

The point of the 8-color schedule (Section IV.B.2) is that within one
color, blocks write disjoint mesh regions, so real threads can scatter
*without atomics*.  :class:`ThreadedSpreader` demonstrates exactly
that: each color stage fans its blocks out over a
``concurrent.futures.ThreadPoolExecutor`` and every worker writes its
block's mesh points with plain stores.  The result is bit-identical to
the sparse-matrix spreading (tested), which is the correctness property
a multicore C implementation relies on.

(On CPython, NumPy's scatter kernels hold the GIL for much of the
work, so this is a *correctness* demonstration of the schedule rather
than a speedup on this interpreter — the speedup claim lives in the
performance model.)
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..geometry.box import Box
from .coloring import ColoredSpreader

__all__ = ["ThreadedSpreader"]


class ThreadedSpreader(ColoredSpreader):
    """Colored spreading with per-block thread-pool execution.

    Parameters
    ----------
    positions, box, K, p:
        As for :class:`~repro.parallel.coloring.ColoredSpreader`.
    n_workers:
        Threads per color stage.
    """

    def __init__(self, positions, box: Box, K: int, p: int,
                 n_workers: int = 4):
        super().__init__(positions, box, K, p)
        self.n_workers = max(1, int(n_workers))
        # pre-split every color group by block id so stages only submit
        self._block_groups: list[list[np.ndarray]] = []
        for group in self._groups:
            if group.size == 0:
                self._block_groups.append([])
                continue
            ends = self._cols[group][:, 0]
            k = self.K
            bx = self.coloring.block_of(ends // (k * k))
            by = self.coloring.block_of((ends // k) % k)
            bz = self.coloring.block_of(ends % k)
            bid = (bx * self.coloring.blocks_per_dim + by) * \
                self.coloring.blocks_per_dim + bz
            self._block_groups.append(
                [group[bid == b] for b in np.unique(bid)])

    def spread(self, values: np.ndarray) -> np.ndarray:
        """Spread with one thread pool per color stage.

        Within a stage every submitted block writes a disjoint set of
        mesh points (the coloring invariant), so the concurrent plain
        scatter below is race-free by construction.
        """
        values = np.asarray(values, dtype=np.float64)
        flat = values.ndim == 1
        vals = values[:, None] if flat else values
        out = np.zeros((self.K ** 3, vals.shape[1]))

        def work(particle_idx: np.ndarray) -> None:
            contrib = (self._data[particle_idx][:, :, None]
                       * vals[particle_idx][:, None, :])
            np.add.at(out, self._cols[particle_idx].ravel(),
                      contrib.reshape(-1, vals.shape[1]))

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            for blocks in self._block_groups:   # color stages: sequential
                if not blocks:
                    continue
                # blocks within a stage: concurrent
                list(pool.map(work, blocks))
        return out[:, 0] if flat else out
