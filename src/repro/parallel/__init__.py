"""Parallel-execution substrate.

The paper's implementation techniques for multicore and manycore
machines, reproduced as explicit, testable work-partitioning logic:

* :mod:`~repro.parallel.coloring` -- the 8-color independent-set
  schedule that makes the spreading scatter-add write-conflict free
  (Section IV.B.2, Fig. 2),
* :mod:`~repro.parallel.partition` -- row-block and cost-balanced
  partitioning used for P construction and static work splits,
* :mod:`~repro.parallel.hybrid` -- the hybrid CPU + Xeon Phi scheduler:
  alpha-tuned real/reciprocal load balance and static partitioning of
  block-of-vector reciprocal work (Section IV.E), driven by the
  Section IV.D performance model.

On this machine the workers execute serially (single core), but every
schedule is *executed* — the partitions, colors and splits are applied
to real data and verified to reproduce the unpartitioned results
bit-for-bit, which is the property that makes them correct on real
parallel hardware.
"""

from .coloring import IndependentSetColoring, ColoredSpreader
from .partition import row_blocks, balance_by_cost
from .hybrid import HybridScheduler, HybridPlan, OffloadModel
from .threads import ThreadedSpreader
from .decomposition import (
    SlabDecomposition,
    distributed_real_space_matrix,
    merge_pair_blocks,
)

__all__ = [
    "IndependentSetColoring",
    "ColoredSpreader",
    "ThreadedSpreader",
    "row_blocks",
    "balance_by_cost",
    "HybridScheduler",
    "HybridPlan",
    "OffloadModel",
    "SlabDecomposition",
    "distributed_real_space_matrix",
    "merge_pair_blocks",
]
