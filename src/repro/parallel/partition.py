"""Work partitioning helpers.

The paper partitions the interpolation matrix ``P`` into row blocks
(one per thread, Section IV.B.1) and statically partitions the
block-of-vectors reciprocal work between CPUs and coprocessors
(Section IV.E).  These helpers compute such partitions; they are pure
functions so the schedules are unit-testable.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["row_blocks", "balance_by_cost"]


def row_blocks(n_rows: int, n_workers: int) -> list[tuple[int, int]]:
    """Split ``n_rows`` into ``n_workers`` contiguous, balanced ranges.

    Returns half-open ``(start, stop)`` ranges; sizes differ by at most
    one.  Workers beyond ``n_rows`` receive empty ranges.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if n_rows < 0:
        raise ConfigurationError(f"n_rows must be >= 0, got {n_rows}")
    base, extra = divmod(n_rows, n_workers)
    ranges = []
    start = 0
    for w in range(n_workers):
        size = base + (1 if w < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def balance_by_cost(costs, n_workers: int) -> list[list[int]]:
    """Assign indivisible tasks to workers minimizing the maximum load.

    Greedy longest-processing-time heuristic (sort descending, place
    each task on the least-loaded worker) — a 4/3-approximation, ample
    for the static splits of Section IV.E.

    Parameters
    ----------
    costs:
        Per-task costs (any positive floats).
    n_workers:
        Number of workers.

    Returns
    -------
    list of task-index lists, one per worker.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if np.any(costs < 0):
        raise ConfigurationError("task costs must be non-negative")
    order = np.argsort(costs)[::-1]
    loads = np.zeros(n_workers)
    assignment: list[list[int]] = [[] for _ in range(n_workers)]
    for task in order:
        w = int(np.argmin(loads))
        assignment[w].append(int(task))
        loads[w] += costs[task]
    return assignment
