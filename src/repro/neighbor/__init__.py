"""Neighbor search: Verlet cell lists and cross-check backends.

The paper evaluates short-range interactions (the real-space Ewald sum
and the repulsive force) "efficiently in linear time using Verlet cell
lists" (Sections IV.C and V.A, reference [27]).  This subpackage
provides:

* :class:`~repro.neighbor.celllist.CellList` -- the from-scratch,
  vectorized linked-cell implementation (the default),
* :func:`~repro.neighbor.kdtree.kdtree_pairs` -- a ``scipy.spatial``
  KD-tree backend used to cross-check correctness and as a faster
  option for very large systems,
* :func:`~repro.neighbor.pairs.brute_force_pairs` -- the O(n^2)
  reference used in tests,
* :class:`~repro.neighbor.verlet.VerletList` -- a skin-buffered pair
  list reusable across time steps.
"""

from .celllist import CellList
from .kdtree import kdtree_pairs
from .pairs import brute_force_pairs, find_pairs
from .verlet import VerletList

__all__ = ["CellList", "kdtree_pairs", "brute_force_pairs", "find_pairs",
           "VerletList"]
