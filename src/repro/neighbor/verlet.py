"""Skin-buffered Verlet pair list reusable across time steps.

The BD integrators rebuild short-range interaction lists every step; a
Verlet list with a skin buffer amortizes the cell-list construction by
caching all pairs within ``cutoff + skin`` and only rebuilding once any
particle has moved more than ``skin / 2`` since the last build (the
standard displacement criterion, Allen & Tildesley Section 5.3).
"""

from __future__ import annotations

import numpy as np

from ..geometry.box import Box
from ..utils.validation import as_positions, require
from .celllist import CellList

__all__ = ["VerletList"]


class VerletList:
    """Cached neighbor list with automatic displacement-triggered rebuilds.

    Parameters
    ----------
    box:
        Periodic simulation box.
    cutoff:
        Interaction cutoff actually needed by the force/mobility kernel.
    skin:
        Extra buffer distance; larger skins rebuild less often but
        return more candidate pairs.  Default ``0.3 * cutoff``.
    backend:
        Neighbor backend used for rebuilds (``"cells"``, ``"kdtree"``).
    """

    def __init__(self, box: Box, cutoff: float, skin: float | None = None,
                 backend: str = "cells"):
        require(cutoff > 0, f"cutoff must be positive, got {cutoff}")
        self.box = box
        self.cutoff = float(cutoff)
        self.skin = float(skin) if skin is not None else 0.3 * cutoff
        require(self.skin >= 0, f"skin must be non-negative, got {self.skin}")
        self.backend = backend
        self._reference_positions: np.ndarray | None = None
        self._cached: tuple[np.ndarray, np.ndarray] | None = None
        #: Number of full rebuilds performed (for diagnostics/benchmarks).
        self.n_rebuilds = 0

    def _needs_rebuild(self, r: np.ndarray) -> bool:
        if self._cached is None or self._reference_positions is None:
            return True
        if r.shape != self._reference_positions.shape:
            return True
        disp = self.box.minimum_image(r - self._reference_positions)
        max_disp = float(np.sqrt((disp * disp).sum(axis=1).max()))
        return max_disp > self.skin / 2.0

    def pairs(self, positions) -> tuple[np.ndarray, np.ndarray]:
        """Pairs within ``cutoff`` for the given configuration.

        Rebuilds the underlying list (at ``cutoff + skin``) only when
        the displacement criterion requires it; otherwise the cached
        candidates are re-filtered at the true cutoff.
        """
        r = self.box.wrap(as_positions(positions))
        if self._needs_rebuild(r):
            if self.backend == "cells":
                cl = CellList(self.box, self.cutoff + self.skin)
                self._cached = cl.pairs(r)
            else:
                from .pairs import find_pairs
                self._cached = find_pairs(r, self.box, self.cutoff + self.skin,
                                          backend=self.backend)
            self._reference_positions = r.copy()
            self.n_rebuilds += 1
        i, j = self._cached
        if self.skin == 0.0:
            return i, j
        _, dist = self.box.distances(r, i, j)
        sel = dist < self.cutoff
        return i[sel], j[sel]

    def invalidate(self) -> None:
        """Force a rebuild on the next :meth:`pairs` call."""
        self._cached = None
        self._reference_positions = None
