"""Pair-list utilities and the brute-force reference implementation."""

from __future__ import annotations

import numpy as np

from ..geometry.box import Box
from ..lint.contracts import positions_arg
from ..utils.validation import as_positions, require

__all__ = ["brute_force_pairs", "find_pairs", "canonicalize_pairs"]


def brute_force_pairs(positions, box: Box, cutoff: float
                      ) -> tuple[np.ndarray, np.ndarray]:
    """All pairs ``(i, j)``, ``i < j``, with minimum-image distance < cutoff.

    O(n^2) time and memory; the reference against which the cell list
    and KD-tree backends are validated.  Correct for any cutoff (even
    larger than ``L/2``, where it falls back to minimum-image truncation
    like the other backends).
    """
    r = as_positions(positions)
    n = r.shape[0]
    if n < 2:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    iu, ju = np.triu_indices(n, k=1)
    _, dist = box.distances(r, iu, ju)
    sel = dist < cutoff
    return iu[sel], ju[sel]


def canonicalize_pairs(i: np.ndarray, j: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Sort pair lists into the canonical order (i < j, lexicographic).

    Used by tests to compare pair lists produced by different backends.
    """
    i = np.asarray(i, dtype=np.intp)
    j = np.asarray(j, dtype=np.intp)
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    order = np.lexsort((hi, lo))
    return lo[order], hi[order]


@positions_arg()
def find_pairs(positions, box: Box, cutoff: float, backend: str = "cells"
               ) -> tuple[np.ndarray, np.ndarray]:
    """Find interacting pairs with the requested backend.

    Parameters
    ----------
    positions, box, cutoff:
        As for :func:`brute_force_pairs`.
    backend:
        ``"cells"`` (vectorized linked cells, default), ``"kdtree"``
        (``scipy.spatial.cKDTree``), or ``"brute"`` (O(n^2) reference).

    Returns
    -------
    (i, j):
        Index arrays with ``i < j`` for every pair within ``cutoff``.
    """
    require(cutoff > 0, f"cutoff must be positive, got {cutoff}")
    if backend == "cells":
        from .celllist import CellList
        return CellList(box, cutoff).pairs(positions)
    if backend == "kdtree":
        from .kdtree import kdtree_pairs
        return kdtree_pairs(positions, box, cutoff)
    if backend == "brute":
        return brute_force_pairs(positions, box, cutoff)
    raise ValueError(f"unknown neighbor backend {backend!r}")
