"""Vectorized linked-cell (Verlet cell) neighbor search.

The classic O(n) cell-list construction (Allen & Tildesley; paper
reference [27]) implemented without Python-level loops over particles:
particles are binned into an ``nc x nc x nc`` grid of cells whose edge
is at least the cutoff, sorted by cell id, and candidate pairs are
enumerated cell-against-cell using a half stencil of 13 neighbor
offsets (plus intra-cell pairs), so each pair is generated exactly
once.  The only Python loop is over the 14 stencil offsets.

When fewer than 3 cells fit per dimension the stencil would alias
through the periodic wrap, so the implementation falls back to the
O(n^2) brute-force reference — this only happens for small boxes where
brute force is cheap anyway.
"""

from __future__ import annotations

import numpy as np

from ..geometry.box import Box
from ..utils.validation import as_positions, require
from .pairs import brute_force_pairs

__all__ = ["CellList"]


def _ragged_cartesian(starts_a, counts_a, starts_b, counts_b
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated cartesian products of ragged index groups.

    For each group ``g`` produce all pairs ``(starts_a[g] + p,
    starts_b[g] + q)`` with ``0 <= p < counts_a[g]`` and
    ``0 <= q < counts_b[g]``, fully vectorized.  Returns the flattened
    ``(left, right)`` position-in-sorted-order indices.
    """
    sizes = counts_a * counts_b
    total = int(sizes.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    group = np.repeat(np.arange(sizes.size), sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    local = np.arange(total) - offsets[group]
    nb = counts_b[group]
    p = local // nb
    q = local - p * nb
    return starts_a[group] + p, starts_b[group] + q


class CellList:
    """Periodic linked-cell neighbor finder for a cubic box.

    Parameters
    ----------
    box:
        The periodic simulation box.
    cutoff:
        Interaction cutoff; every pair with minimum-image distance
        strictly below ``cutoff`` is returned by :meth:`pairs`.

    Notes
    -----
    The object is stateless with respect to positions: :meth:`pairs`
    may be called repeatedly with different configurations.  The number
    of cells per dimension is ``floor(L / cutoff)`` so the cell edge is
    never smaller than the cutoff.
    """

    #: Half stencil: the 13 lexicographically positive neighbor offsets.
    _HALF_STENCIL = np.array(
        [(dx, dy, dz)
         for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)
         if (dx, dy, dz) > (0, 0, 0)], dtype=np.intp)

    def __init__(self, box: Box, cutoff: float):
        require(cutoff > 0, f"cutoff must be positive, got {cutoff}")
        self.box = box
        self.cutoff = float(cutoff)
        self.n_cells = max(1, int(np.floor(box.length / cutoff)))

    @property
    def cell_edge(self) -> float:
        """Edge length of one cell (``>= cutoff`` whenever ``n_cells >= 1``)."""
        return self.box.length / self.n_cells

    def assign_cells(self, positions) -> np.ndarray:
        """Flat cell id of each particle (row-major over ``(cx, cy, cz)``)."""
        r = self.box.wrap(as_positions(positions))
        nc = self.n_cells
        cidx = np.floor(r / self.cell_edge).astype(np.intp)
        np.clip(cidx, 0, nc - 1, out=cidx)
        return (cidx[:, 0] * nc + cidx[:, 1]) * nc + cidx[:, 2]

    def pairs(self, positions) -> tuple[np.ndarray, np.ndarray]:
        """All pairs ``(i, j)``, ``i < j``, within ``cutoff`` (minimum image)."""
        r = self.box.wrap(as_positions(positions))
        n = r.shape[0]
        nc = self.n_cells
        if n < 2:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        if nc < 3:
            return brute_force_pairs(r, self.box, self.cutoff)

        cell_id = self.assign_cells(r)
        order = np.argsort(cell_id, kind="stable")
        sorted_cells = cell_id[order]
        n_total_cells = nc ** 3
        starts = np.searchsorted(sorted_cells, np.arange(n_total_cells + 1))
        counts = np.diff(starts)

        left_parts: list[np.ndarray] = []
        right_parts: list[np.ndarray] = []

        # intra-cell: cartesian product, keep strictly-lower local index
        la, lb = _ragged_cartesian(starts[:-1], counts, starts[:-1], counts)
        keep = la < lb
        left_parts.append(la[keep])
        right_parts.append(lb[keep])

        # inter-cell half stencil
        cx, cy, cz = np.unravel_index(np.arange(n_total_cells), (nc, nc, nc))
        for dx, dy, dz in self._HALF_STENCIL:
            nbr = (((cx + dx) % nc) * nc + (cy + dy) % nc) * nc + (cz + dz) % nc
            la, lb = _ragged_cartesian(starts[:-1], counts,
                                       starts[nbr], counts[nbr])
            left_parts.append(la)
            right_parts.append(lb)

        left = order[np.concatenate(left_parts)]
        right = order[np.concatenate(right_parts)]

        _, dist = self.box.distances(r, left, right)
        sel = dist < self.cutoff
        left, right = left[sel], right[sel]
        i = np.minimum(left, right)
        j = np.maximum(left, right)
        return i, j

    def pair_count_estimate(self, n: int) -> float:
        """Expected number of pairs for ``n`` uniformly random particles.

        ``n (n-1)/2 * (4/3 pi cutoff^3) / V`` — used by the benchmark
        harness to size workloads.
        """
        vol_ratio = (4.0 / 3.0) * np.pi * self.cutoff ** 3 / self.box.volume
        return 0.5 * n * (n - 1) * min(1.0, vol_ratio)
