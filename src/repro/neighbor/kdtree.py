"""KD-tree neighbor backend built on :mod:`scipy.spatial`.

``scipy.spatial.cKDTree`` supports periodic boxes natively via the
``boxsize`` argument; this backend exists to cross-validate the
from-scratch cell list and as a compiled-speed alternative for very
large particle counts.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..geometry.box import Box
from ..utils.validation import as_positions, require

__all__ = ["kdtree_pairs"]


def kdtree_pairs(positions, box: Box, cutoff: float
                 ) -> tuple[np.ndarray, np.ndarray]:
    """All pairs ``(i, j)``, ``i < j``, within ``cutoff`` (minimum image).

    Equivalent to :meth:`repro.neighbor.celllist.CellList.pairs`.
    ``cKDTree`` requires the cutoff not to exceed half the box length;
    larger cutoffs fall back to the brute-force reference.
    """
    require(cutoff > 0, f"cutoff must be positive, got {cutoff}")
    r = box.wrap(as_positions(positions))
    if cutoff > box.length / 2:
        from .pairs import brute_force_pairs
        return brute_force_pairs(r, box, cutoff)
    tree = cKDTree(r, boxsize=box.length)
    pairs = tree.query_pairs(cutoff, output_type="ndarray")
    if pairs.size == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    # query_pairs uses r <= cutoff; match the strict < convention
    _, dist = box.distances(r, pairs[:, 0], pairs[:, 1])
    sel = dist < cutoff
    return pairs[sel, 0], pairs[sel, 1]
