"""Lightweight timers used by the benchmark harness and the hybrid scheduler.

The paper's Section V instruments each PME phase separately (Fig. 5).
:class:`PhaseTimer` accumulates named phase durations so operators can
report a per-phase breakdown without littering the numerical code with
timing logic.

When a :mod:`repro.obs` tracer is installed and the timer carries a
``prefix``, every outermost phase occurrence is additionally recorded
as a trace span ``<prefix>.<name>`` — the span encloses the timer's
own start/stop pair, so per-phase span totals are always >= (and
within microseconds of) the accumulated timer values.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..obs import trace as _trace

__all__ = ["Timer", "PhaseTimer", "now"]


def now() -> float:
    """Monotonic clock read for schedulers (heartbeats, deadlines).

    The ensemble runtime needs raw timestamps — heartbeat ages and
    deadline arithmetic, not intervals — which :class:`Timer` does not
    model.  Routing the read through this module keeps the RPR009
    "no ad-hoc clock reads" chokepoint intact.
    """
    return time.monotonic()


@dataclass
class Timer:
    """A resettable stopwatch accumulating wall-clock time.

    Use either as a context manager::

        t = Timer()
        with t:
            work()
        print(t.elapsed)

    or manually via :meth:`start` / :meth:`stop`.
    """

    elapsed: float = 0.0
    #: Number of completed start/stop intervals.
    count: int = 0
    _t0: float | None = None

    def start(self) -> "Timer":
        """Begin an interval; returns ``self`` for chaining.

        Starting while an interval is already in flight raises
        ``RuntimeError`` (it would silently discard the open interval —
        the mirror image of the ``stop()``-before-``start()`` guard).
        """
        if self._t0 is not None:
            raise RuntimeError(
                "Timer.start() called with an interval already in flight; "
                "stop() or reset() first")
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the current interval and return its duration."""
        if self._t0 is None:
            raise RuntimeError("Timer.stop() called before start()")
        dt = time.perf_counter() - self._t0
        self._t0 = None
        self.elapsed += dt
        self.count += 1
        return dt

    def reset(self) -> None:
        """Zero the accumulated time and interval count."""
        self.elapsed = 0.0
        self.count = 0
        self._t0 = None

    @property
    def mean(self) -> float:
        """Mean interval duration (0 if no intervals completed)."""
        return self.elapsed / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time for named phases of a computation.

    The PME operator uses phase names ``"spread"``, ``"fft"``,
    ``"influence"``, ``"ifft"``, ``"interpolate"``, ``"real"`` matching
    the paper's Fig. 5 breakdown.

    :meth:`phase` is reentrant on the same name: nested occurrences are
    depth-counted and only the outermost one starts/stops the clock, so
    a recursive phase accumulates its wall time once instead of raising
    or double counting.

    When ``prefix`` is set (e.g. ``"pme"``) and a global
    :mod:`repro.obs` tracer is installed, each outermost phase
    occurrence also records a ``<prefix>.<name>`` trace span.
    """

    phases: dict[str, Timer] = field(default_factory=dict)
    #: Trace-span namespace; empty disables span emission entirely.
    prefix: str = ""
    _depth: dict[str, int] = field(default_factory=dict, repr=False)

    @contextmanager
    def phase(self, name: str, **span_args):
        """Context manager timing one occurrence of phase ``name``.

        Keyword arguments are attached to the emitted trace span (when
        a tracer and ``prefix`` are active) — e.g. ``vectors=s`` lets
        ``repro profile`` count batched pipeline passes correctly.
        """
        timer = self.phases.setdefault(name, Timer())
        depth = self._depth.get(name, 0)
        self._depth[name] = depth + 1
        if depth:
            # reentrant occurrence: the outer frame owns the clock
            try:
                yield timer
            finally:
                self._depth[name] -= 1
            return
        span = (_trace.span(f"{self.prefix}.{name}", **span_args)
                if self.prefix else _trace.NULL_SPAN)
        with span:
            timer.start()
            try:
                yield timer
            finally:
                timer.stop()
                self._depth[name] -= 1

    def elapsed(self, name: str) -> float:
        """Total time accumulated in phase ``name`` (0 if never run)."""
        timer = self.phases.get(name)
        return timer.elapsed if timer else 0.0

    @property
    def total(self) -> float:
        """Sum of all phase times."""
        return sum(t.elapsed for t in self.phases.values())

    def breakdown(self) -> dict[str, float]:
        """Mapping of phase name to accumulated seconds."""
        return {name: t.elapsed for name, t in self.phases.items()}

    def reset(self) -> None:
        """Zero all phases (the phase names are retained)."""
        for t in self.phases.values():
            t.reset()
