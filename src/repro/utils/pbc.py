"""Periodic-boundary-condition helpers for a cubic simulation box.

All BD simulations in the paper use a cubic ``L x L x L`` box with
periodic boundary conditions (Section II.B).  These helpers implement the
minimum-image convention and coordinate wrapping as cheap vectorized
NumPy operations; they are the only place PBC arithmetic lives so the
convention (positions wrapped into ``[0, L)``) is applied consistently.
"""

from __future__ import annotations

import numpy as np

__all__ = ["minimum_image", "wrap_positions", "fractional_coordinates"]


def minimum_image(dr: np.ndarray, box_length: float) -> np.ndarray:
    """Apply the minimum-image convention to displacement vectors.

    Parameters
    ----------
    dr:
        Array of displacement vectors, shape ``(..., 3)`` (any leading
        shape), in the same length units as ``box_length``.
    box_length:
        Edge length ``L`` of the cubic box.

    Returns
    -------
    numpy.ndarray
        Displacements folded into ``[-L/2, L/2)`` componentwise.  A new
        array is returned; the input is not modified.
    """
    dr = np.asarray(dr, dtype=np.float64)
    return dr - box_length * np.round(dr / box_length)


def wrap_positions(positions: np.ndarray,  # noqa: RPR001 - any-shape helper below the validation layer
                   box_length: float) -> np.ndarray:
    """Wrap absolute positions into the primary box ``[0, L)^3``.

    Exact multiples of ``L`` map to ``0`` so that the result is always a
    valid index base for mesh assignment.
    """
    positions = np.asarray(positions, dtype=np.float64)
    wrapped = positions - box_length * np.floor(positions / box_length)
    # floating point can produce wrapped == L when positions/L is a hair
    # below an integer, or a stray negative when the division underflows
    # (denormal inputs); fold both back into [0, L).
    wrapped[wrapped >= box_length] -= box_length
    wrapped[wrapped < 0.0] = 0.0
    return wrapped


def fractional_coordinates(positions: np.ndarray,  # noqa: RPR001 - validated by Box.fractional
                           box_length: float, mesh_dim: int) -> np.ndarray:
    """Scaled fractional coordinates ``u = r * K / L`` in ``[0, K)``.

    These are the coordinates used by the PME spreading equation
    (Eq. 4 of the paper): particle positions measured in units of the
    mesh spacing ``L / K``.

    Parameters
    ----------
    positions:
        Particle positions, shape ``(n, 3)``.
    box_length:
        Edge length ``L`` of the cubic box.
    mesh_dim:
        Mesh dimension ``K`` (the mesh is ``K x K x K``).
    """
    u = wrap_positions(positions, box_length) * (mesh_dim / box_length)
    # Guard against u == K from rounding: K - eps wraps to 0-side support.
    u[u >= mesh_dim] -= mesh_dim
    return u
