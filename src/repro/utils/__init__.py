"""Small shared utilities: periodic boundary helpers, timers, validation."""

from .pbc import minimum_image, wrap_positions, fractional_coordinates
from .params import keyword_only
from .timing import Timer, PhaseTimer
from .validation import (
    as_positions,
    as_force_block,
    as_radii,
    check_square_box,
    require,
)

__all__ = [
    "minimum_image",
    "wrap_positions",
    "fractional_coordinates",
    "keyword_only",
    "Timer",
    "PhaseTimer",
    "as_positions",
    "as_force_block",
    "as_radii",
    "check_square_box",
    "require",
]
