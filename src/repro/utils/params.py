"""Keyword-only configuration constructors with ``replace()``.

The parameter objects of the package (:class:`~repro.pme.operator.PMEParams`,
the Brownian-generator configs, :class:`~repro.rpy.ewald.EwaldSummation`)
historically accepted positional arguments, which makes call sites
fragile against field reordering and unreadable in reviews
(``PMEParams(0.5, 8.0, 64)`` — which number is which?).  The
:func:`keyword_only` decorator makes a constructor keyword-only:
positional construction raises :class:`TypeError` with a concrete
migration hint (the soft ``DeprecationWarning`` period ended with the
execution-context release), and every decorated class gains a
``replace(**changes)`` helper returning a copy with the given fields
overridden (``dataclasses.replace`` for dataclasses, re-construction
from the recorded keyword arguments otherwise).
"""

from __future__ import annotations

import dataclasses
import functools
import inspect
from typing import Any, NoReturn, TypeVar

__all__ = ["keyword_only"]

_T = TypeVar("_T", bound=type)


def _reject_positional(cls: type, names: list[str]) -> NoReturn:
    """Raise the positional-construction removal error."""
    hint = ", ".join(f"{name}=..." for name in names) or "..."
    raise TypeError(
        f"positional construction of {cls.__name__} was removed; "
        f"call {cls.__name__}({hint}) with keyword arguments "
        f"(see docs/api.md)")


def keyword_only(cls: _T) -> _T:
    """Class decorator: keyword-only ``__init__``.

    * Positional arguments raise :class:`TypeError` naming the fields
      to use instead.
    * Adds ``replace(**changes)`` unless the class defines one.

    Works on dataclasses (including frozen ones) and plain classes; for
    plain classes the keyword arguments of the original call are
    recorded on the instance so ``replace`` can reconstruct it.
    """
    original_init = cls.__init__
    parameters = [p for p in
                  inspect.signature(original_init).parameters.values()
                  if p.name != "self"
                  and p.kind in (p.POSITIONAL_ONLY,
                                 p.POSITIONAL_OR_KEYWORD)]
    positional_names = [p.name for p in parameters]
    is_dataclass = dataclasses.is_dataclass(cls)

    @functools.wraps(original_init)
    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        if args:
            _reject_positional(cls, positional_names[:len(args)] or
                               positional_names)
        if not is_dataclass:
            # record for replace(); object.__setattr__ tolerates
            # classes that freeze attributes in their own __init__
            object.__setattr__(self, "_init_kwargs", dict(kwargs))
        original_init(self, **kwargs)

    cls.__init__ = __init__  # type: ignore[method-assign]

    if "replace" not in cls.__dict__:
        if is_dataclass:
            def replace(self: Any, **changes: Any) -> Any:
                """Copy with the given fields replaced."""
                return dataclasses.replace(self, **changes)
        else:
            def replace(self: Any, **changes: Any) -> Any:
                """Copy with the given constructor arguments replaced."""
                kwargs = dict(getattr(self, "_init_kwargs", {}))
                kwargs.update(changes)
                return type(self)(**kwargs)
        cls.replace = replace  # type: ignore[attr-defined]
    return cls
