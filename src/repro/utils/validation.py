"""Input validation helpers shared by the public API.

Every operator in the package accepts particle positions as an ``(n, 3)``
float array and forces either as a flat ``(3n,)`` vector or an
``(3n, s)`` block of ``s`` vectors (Section IV.C of the paper applies the
real-space SpMV to blocks of vectors).  These helpers normalize and check
those shapes in one place so error messages are uniform.

Hot paths may pass ``check_finite=False`` to skip the ``O(n)`` finiteness
scan; the runtime contracts of :mod:`repro.lint.contracts` re-enable it
under ``REPRO_CHECKS=strict``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["require", "as_positions", "as_force_block", "as_radii",
           "check_square_box"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def as_positions(positions, n: int | None = None,  # noqa: RPR001 - this *is* the validator
                 check_finite: bool = True) -> np.ndarray:
    """Validate and return positions as a float64 C-contiguous ``(n, 3)`` array.

    Parameters
    ----------
    positions:
        Any array-like of shape ``(n, 3)``.
    n:
        If given, additionally require exactly this number of particles.
    check_finite:
        Scan for NaN/inf entries (default).  Hot paths that revalidate
        the same array every step may disable the ``O(n)`` scan.
    """
    r = np.ascontiguousarray(positions, dtype=np.float64)
    if r.ndim != 2 or r.shape[1] != 3:
        raise ConfigurationError(
            f"positions must have shape (n, 3), got {r.shape}")
    if n is not None and r.shape[0] != n:
        raise ConfigurationError(
            f"expected {n} particles, got {r.shape[0]}")
    if check_finite and not np.all(np.isfinite(r)):
        raise ConfigurationError("positions contain non-finite values")
    return r


def as_force_block(forces, n: int,
                   check_finite: bool = False) -> tuple[np.ndarray, bool]:
    """Validate forces for ``n`` particles; return ``(block, was_flat)``.

    ``block`` always has shape ``(3n, s)`` with ``s >= 1``; ``was_flat``
    records whether the caller passed a flat ``(3n,)`` vector so the
    result can be returned in the same shape.  Empty blocks (``s == 0``)
    are rejected — every operator application must produce at least one
    output column, and an empty block almost always indicates a slicing
    bug upstream.

    ``check_finite`` defaults to *off* here (the force SpMV is the hot
    path of Algorithm 2); pass ``True`` or run under
    ``REPRO_CHECKS=strict`` for the full scan.
    """
    f = np.asarray(forces, dtype=np.float64)
    was_flat = f.ndim == 1
    if was_flat:
        f = f[:, None]
    if f.ndim != 2 or f.shape[0] != 3 * n:
        raise ConfigurationError(
            f"forces must have shape (3n,) or (3n, s) with n={n}, "
            f"got {np.asarray(forces).shape}")
    if f.shape[1] == 0:
        raise ConfigurationError(
            "force block has zero vectors (s == 0); operators require "
            "at least one right-hand side")
    if check_finite and not np.all(np.isfinite(f)):
        raise ConfigurationError("forces contain non-finite values")
    return np.ascontiguousarray(f), was_flat


def as_radii(radii, n: int | None = None) -> np.ndarray:
    """Validate per-particle radii: positive, finite, shape ``(n,)``.

    Parameters
    ----------
    radii:
        Any array-like of shape ``(n,)``.
    n:
        If given, additionally require exactly this number of entries.
    """
    a = np.ascontiguousarray(radii, dtype=np.float64)
    if a.ndim != 1:
        raise ConfigurationError(
            f"radii must have shape (n,), got {a.shape}")
    if n is not None and a.shape[0] != n:
        raise ConfigurationError(
            f"expected {n} radii, got {a.shape[0]}")
    if not np.all(np.isfinite(a)):
        raise ConfigurationError("radii contain non-finite values")
    if a.size and np.min(a) <= 0.0:
        raise ConfigurationError("radii must be strictly positive")
    return a


def check_square_box(box_length: float) -> float:
    """Validate the cubic box edge length and return it as a float."""
    box_length = float(box_length)
    if not np.isfinite(box_length) or box_length <= 0:
        raise ConfigurationError(
            f"box_length must be a positive finite number, got {box_length}")
    return box_length
