"""Brownian dynamics core: forces, displacement generators, integrators.

This subpackage implements both BD algorithms of the paper:

* :class:`~repro.core.integrators.EwaldBD` — Algorithm 1, the
  conventional baseline (dense Ewald matrix + Cholesky),
* :class:`~repro.core.integrators.MatrixFreeBD` — Algorithm 2, the
  paper's contribution (PME operator + block Krylov),

plus the force models of Section V.A and the
:class:`~repro.core.simulation.Simulation` driver that records
trajectories for analysis.
"""

from .mobility import (
    MobilityOperator,
    DenseMobilityMatrix,
    CallableMobility,
    as_mobility,
)
from .forces import (
    ForceField,
    RepulsiveHarmonic,
    HarmonicBonds,
    ConstantForce,
    CompositeForce,
)
from .brownian import (
    CholeskyBrownianGenerator,
    KrylovBrownianGenerator,
    ChebyshevBrownianGenerator,
)
from .integrators import EwaldBD, MatrixFreeBD, BDStepStats
from .simulation import Simulation, Trajectory
from .trajectory_io import save_trajectory, load_trajectory
from .checkpoint import (
    save_checkpoint,
    load_checkpoint,
    load_checkpoint_with_fallback,
    resume,
    checkpoint_callback,
)
from .observables import (
    Monitor,
    MSDMonitor,
    MinSeparationMonitor,
    EnergyMonitor,
    compose,
)

__all__ = [
    "MobilityOperator",
    "DenseMobilityMatrix",
    "CallableMobility",
    "as_mobility",
    "ForceField",
    "RepulsiveHarmonic",
    "HarmonicBonds",
    "ConstantForce",
    "CompositeForce",
    "CholeskyBrownianGenerator",
    "KrylovBrownianGenerator",
    "ChebyshevBrownianGenerator",
    "EwaldBD",
    "MatrixFreeBD",
    "BDStepStats",
    "Simulation",
    "Trajectory",
    "save_trajectory",
    "load_trajectory",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_with_fallback",
    "resume",
    "checkpoint_callback",
    "Monitor",
    "MSDMonitor",
    "MinSeparationMonitor",
    "EnergyMonitor",
    "compose",
]
