"""The two BD propagation algorithms of the paper.

Both integrate the Ermak-McCammon equation (paper Eq. 1) with the
divergence term zero (true for the RPY tensor)::

    r(t + dt) = r(t) + M f dt + g,   g ~ N(0, 2 kT dt M)

and both exploit that the mobility changes slowly: the mobility
representation is rebuilt only every ``lambda_RPY`` steps and the
``lambda_RPY`` Brownian displacement vectors of the coming steps are
generated together (Section II.D).

* :class:`EwaldBD` — **Algorithm 1**: dense Ewald matrix, Cholesky
  factorization, ``O(n^2)`` memory, ``O(n^3)`` factor.
* :class:`MatrixFreeBD` — **Algorithm 2**: PME operator, block Krylov
  displacements, ``O(n)`` memory, ``O(n log n)`` per application.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..geometry.box import Box
from ..pme.cache import MobilityCache
from ..pme.operator import PMEOperator, PMEParams
from ..pme.tuning import tune_parameters
from ..resilience.backoff import next_dt_scale
from ..resilience.failures import FailureKind, StepFailure
from ..resilience.policy import RecoveryLog, RecoveryPolicy
from ..resilience.recovery import (
    cholesky_displacements_resilient,
    krylov_displacements_resilient,
)
from ..rpy.ewald import EwaldSummation
from ..units import FluidParams, REDUCED
from ..utils.timing import PhaseTimer
from ..utils.validation import as_positions
from .brownian import CholeskyBrownianGenerator, KrylovBrownianGenerator
from .forces import ForceField

__all__ = ["EwaldBD", "MatrixFreeBD", "BDStepStats"]


@dataclass
class BDStepStats:
    """Aggregate statistics of a :meth:`BrownianDynamicsBase.run` call.

    Attributes
    ----------
    n_steps:
        Inner time steps taken.
    mobility_updates:
        Number of mobility rebuilds (outer iterations).
    krylov_iterations:
        Block-Lanczos iteration counts per outer iteration
        (matrix-free algorithm only).
    timers:
        Phase timer with ``mobility``, ``brownian``, ``forces`` and
        ``propagate`` phases.
    recovery:
        The :class:`~repro.resilience.policy.RecoveryLog` of every
        failure observed and recovery action taken during the run
        (empty when no recovery policy is active or nothing failed).
    stopped_early:
        ``True`` when the run ended at a step boundary because its
        ``stop`` predicate fired (graceful shutdown / wall-time limit)
        rather than completing the requested step count.
    """

    n_steps: int = 0
    mobility_updates: int = 0
    krylov_iterations: list[int] = field(default_factory=list)
    timers: PhaseTimer = field(
        default_factory=lambda: PhaseTimer(prefix="bd"))
    recovery: RecoveryLog = field(default_factory=RecoveryLog)
    stopped_early: bool = False

    @property
    def seconds_per_step(self) -> float:
        """Mean wall-clock seconds per inner time step."""
        return self.timers.total / self.n_steps if self.n_steps else 0.0


class BrownianDynamicsBase(ABC):
    """Shared propagation loop of Algorithms 1 and 2.

    Subclasses provide the mobility representation: how it is rebuilt
    (:meth:`_prepare`), applied (:meth:`_apply_mobility`) and sampled
    from (:meth:`_generate_displacements`).

    Parameters
    ----------
    box, fluid:
        Geometry and fluid parameters.
    force_field:
        Deterministic forces ``f(r)``; ``None`` means force-free
        (diffusion only).
    dt:
        Time step (reduced units: fractions of ``a^2 / D_0``).
    lambda_rpy:
        Mobility update interval ``lambda_RPY`` (paper: 10-100).
    seed:
        Seed (or generator) for the Brownian noise.
    recovery:
        Optional :class:`~repro.resilience.policy.RecoveryPolicy`
        enabling the fault-tolerant step loop (retry/degrade ladder,
        dt backoff on non-finite states, block rollback).  ``None``
        (default) keeps the fail-fast behaviour; with a policy active
        but no failures occurring, trajectories are bit-identical to
        the unguarded loop.
    context:
        Optional :class:`~repro.exec.ExecutionContext` threaded into
        the mobility representation (the matrix-free path parallelizes
        PME applications on its workers; results stay bit-identical
        across backends).  ``None`` uses the process default.
    """

    def __init__(self, box: Box, fluid: FluidParams = REDUCED,
                 force_field: ForceField | None = None, dt: float = 1e-3,
                 lambda_rpy: int = 10,
                 seed: int | np.random.Generator | None = 0,
                 recovery: RecoveryPolicy | None = None, context=None):
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if lambda_rpy < 1:
            raise ConfigurationError(
                f"lambda_rpy must be >= 1, got {lambda_rpy}")
        self.box = box
        self.fluid = fluid
        self.force_field = force_field
        self.dt = float(dt)
        self.lambda_rpy = int(lambda_rpy)
        self.rng = (seed if isinstance(seed, np.random.Generator)
                    else np.random.default_rng(seed))
        self.recovery = recovery
        self.context = context
        #: Cumulative dt backoff scale (1.0 = nominal time step).
        self._dt_scale = 1.0
        self._clean_steps = 0

    # -- mobility interface, provided by the two algorithms --------------

    @abstractmethod
    def _prepare(self, positions: np.ndarray) -> None:
        """Rebuild the mobility representation at ``positions`` (wrapped)."""

    @abstractmethod
    def _apply_mobility(self, forces_flat: np.ndarray) -> np.ndarray:
        """``u = M f`` with the current representation."""

    @abstractmethod
    def _generate_displacements(self, n_cols: int,
                                stats: BDStepStats) -> np.ndarray:
        """``(3n, n_cols)`` Brownian displacements for the coming steps."""

    @abstractmethod
    def mobility_memory_bytes(self) -> int:
        """Bytes held by the current mobility representation (Fig. 7a)."""

    # -- propagation ------------------------------------------------------

    def run(self, positions, n_steps: int, callback=None,
            stats: BDStepStats | None = None, stop=None,
            unwrapped0=None) -> tuple[np.ndarray, BDStepStats]:
        """Propagate ``n_steps`` BD steps from ``positions``.

        Parameters
        ----------
        positions:
            Initial particle positions ``(n, 3)`` (any image).
        n_steps:
            Number of inner time steps.
        callback:
            Optional ``callback(step, wrapped, unwrapped)`` invoked
            after every step (step counts from 1).
        stats:
            Optional pre-existing stats object to accumulate into.
        stop:
            Optional zero-argument predicate consulted after every
            completed step (after ``callback``); returning true ends
            the run gracefully at that step boundary with
            ``stats.stopped_early`` set.  Used by the graceful-shutdown
            path (``repro simulate --max-wall-time``, the ensemble
            runtime's SIGTERM drain).
        unwrapped0:
            Optional initial *unwrapped* frame, for continuing a
            checkpointed run.  The accumulator starts from these exact
            values, so the continued unwrapped trajectory is
            byte-for-byte the uninterrupted one — reconstructing the
            image offset after the fact is not (adding the offset
            before vs. after the displacement sum rounds differently
            once a particle has crossed the box).  Defaults to the
            wrapped input (a fresh run).

        Returns
        -------
        (unwrapped, stats):
            Final *unwrapped* positions (for MSD analysis) and the run
            statistics.  The initial unwrapped positions coincide with
            the wrapped input.
        """
        r = as_positions(positions)
        n = r.shape[0]
        wrapped = self.box.wrap(r)
        unwrapped = (wrapped.copy() if unwrapped0 is None
                     else np.array(as_positions(unwrapped0),
                                   dtype=np.float64))
        stats = stats or BDStepStats()
        policy = self.recovery
        rollbacks = 0

        step = 0
        while step < n_steps:
            block = min(self.lambda_rpy, n_steps - step)
            if policy is not None:
                # block-boundary snapshot: positions + RNG state, the
                # rollback target if this block fails beyond repair
                snapshot = (wrapped.copy(), unwrapped.copy(),
                            self.rng.bit_generator.state, step,
                            stats.n_steps)
            try:
                with obs.span("bd.block", step=step, size=block):
                    with stats.timers.phase("mobility"):
                        self._prepare(wrapped)
                    stats.mobility_updates += 1
                    with stats.timers.phase("brownian"):
                        disp = self._generate_displacements(block, stats)
                    for col in range(block):
                        dr = self._propose_step(wrapped, disp[:, col], n,
                                                stats, step)
                        unwrapped += dr
                        wrapped = self.box.wrap(wrapped + dr)
                        step += 1
                        stats.n_steps += 1
                        obs.inc("bd_steps_total")
                        self._after_clean_step(stats, step)
                        if callback is not None:
                            callback(step, wrapped, unwrapped)
                        if stop is not None and stop():
                            # graceful stop: the completed step is kept,
                            # the rest of the block (and run) is dropped
                            stats.stopped_early = True
                            return unwrapped, stats
            except StepFailure as failure:
                if policy is None or rollbacks >= policy.max_rollbacks:
                    raise
                rollbacks += 1
                wrapped, unwrapped, rng_state, step, n_steps_done = snapshot
                wrapped = wrapped.copy()
                unwrapped = unwrapped.copy()
                self.rng.bit_generator.state = rng_state
                stats.n_steps = n_steps_done
                # the backed-off dt scale is deliberately kept: a
                # deterministic physics failure must not replay verbatim
                stats.recovery.record(step, failure.kind, "rollback",
                                      attempt=rollbacks,
                                      message=str(failure))
        return unwrapped, stats

    def _propose_step(self, wrapped: np.ndarray, g_col: np.ndarray, n: int,
                      stats: BDStepStats, step: int) -> np.ndarray:
        """One inner-step displacement, with dt-backoff retries.

        Without a recovery policy this is byte-for-byte the original
        step arithmetic (the finite checks are skipped and the dt scale
        is pinned at 1.0).  With a policy, a non-finite force or
        displacement rejects the step, halves the effective dt and
        retries; exhausting ``max_step_attempts`` (or the dt floor)
        escalates a :class:`StepFailure` to the block-rollback handler.
        """
        policy = self.recovery
        attempt = 0
        while True:
            try:
                scaled = self._dt_scale != 1.0
                g = g_col if not scaled else g_col * math.sqrt(self._dt_scale)
                if self.force_field is not None:
                    with stats.timers.phase("forces"):
                        f = self.force_field.forces(wrapped).reshape(3 * n)
                    if policy is not None and not np.all(np.isfinite(f)):
                        raise StepFailure(
                            FailureKind.NONFINITE_FORCES,
                            "force evaluation returned non-finite entries",
                            step=step + 1, attempt=attempt)
                    with stats.timers.phase("propagate"):
                        dt_eff = (self.dt if not scaled
                                  else self.dt * self._dt_scale)
                        drift = self._apply_mobility(f) * dt_eff
                        dr = (drift + g).reshape(n, 3)
                else:
                    with stats.timers.phase("propagate"):
                        dr = g.reshape(n, 3)
                if policy is not None and not np.all(np.isfinite(dr)):
                    raise StepFailure(
                        FailureKind.NONFINITE_STATE,
                        "proposed displacement contains non-finite entries",
                        step=step + 1, attempt=attempt)
                return dr
            except StepFailure as failure:
                if policy is None:
                    raise
                stats.recovery.record(step + 1, failure.kind, "detect",
                                      attempt=attempt)
                attempt += 1
                # the decay/floor decision lives in the shared backoff
                # utility (repro.resilience.backoff), not inline here
                next_scale = next_dt_scale(self._dt_scale,
                                           policy.dt_backoff_factor,
                                           policy.min_dt_scale)
                if attempt >= policy.max_step_attempts or next_scale is None:
                    raise
                self._dt_scale = next_scale
                self._clean_steps = 0
                obs.set_gauge("bd_dt_scale", self._dt_scale)
                stats.recovery.record(step + 1, failure.kind, "dt-backoff",
                                      attempt=attempt,
                                      dt_scale=self._dt_scale)

    def _after_clean_step(self, stats: BDStepStats, step: int) -> None:
        """Walk a backed-off dt back to nominal after clean steps."""
        if self.recovery is None or self._dt_scale == 1.0:
            return
        self._clean_steps += 1
        if self._clean_steps >= self.recovery.dt_recovery_steps:
            self._clean_steps = 0
            self._dt_scale = min(1.0, self._dt_scale * 2.0)
            obs.set_gauge("bd_dt_scale", self._dt_scale)
            stats.recovery.record(step, FailureKind.NONFINITE_STATE,
                                  "restore-dt", dt_scale=self._dt_scale)


class EwaldBD(BrownianDynamicsBase):
    """**Algorithm 1** — conventional Ewald BD (the paper's baseline).

    Builds the dense ``3n x 3n`` mobility every ``lambda_RPY`` steps,
    Cholesky-factors it, and draws ``lambda_RPY`` correlated
    displacement vectors with one triangular multiply.

    Parameters
    ----------
    ewald_tol:
        Truncation tolerance of the Ewald series.
    xi:
        Optional fixed splitting parameter (``None``: automatic).
    Remaining parameters as :class:`BrownianDynamicsBase`.
    """

    def __init__(self, box: Box, fluid: FluidParams = REDUCED,
                 force_field: ForceField | None = None, dt: float = 1e-3,
                 lambda_rpy: int = 10,
                 seed: int | np.random.Generator | None = 0,
                 ewald_tol: float = 1e-6, xi: float | None = None,
                 recovery: RecoveryPolicy | None = None, context=None):
        # the dense path has no parallel stage; context accepted (and
        # stored) so Simulation can forward it uniformly
        super().__init__(box, fluid, force_field, dt, lambda_rpy, seed,
                         recovery=recovery, context=context)
        self._summation = EwaldSummation(box=box, fluid=fluid, xi=xi,
                                         tol=ewald_tol)
        self._generator = CholeskyBrownianGenerator(kT=fluid.kT, dt=dt)
        self._matrix: np.ndarray | None = None

    def _prepare(self, positions: np.ndarray) -> None:
        self._matrix = self._summation.matrix(positions)

    def _apply_mobility(self, forces_flat: np.ndarray) -> np.ndarray:
        return self._matrix @ forces_flat

    def _generate_displacements(self, n_cols: int,
                                stats: BDStepStats) -> np.ndarray:
        z = self.rng.standard_normal((self._matrix.shape[0], n_cols))
        if self.recovery is None:
            return self._generator.generate(self._matrix, z)
        return cholesky_displacements_resilient(
            self._generator, self._matrix, z, self.recovery,
            stats.recovery, step=stats.n_steps)

    def mobility_memory_bytes(self) -> int:
        if self._matrix is None:
            return 0
        # matrix plus its Cholesky factor (LAPACK potrf works on a copy
        # here; the conventional algorithm stores both)
        return 2 * self._matrix.nbytes

    @property
    def mobility_matrix(self) -> np.ndarray | None:
        """The current dense mobility (``None`` before the first step)."""
        return self._matrix


class MatrixFreeBD(BrownianDynamicsBase):
    """**Algorithm 2** — the paper's matrix-free BD.

    Every ``lambda_RPY`` steps a fresh :class:`~repro.pme.operator.PMEOperator`
    is constructed (line 4) and the Brownian displacement block is
    computed with block Lanczos using only PME products (line 6).

    Parameters
    ----------
    pme_params:
        Explicit PME parameters; if ``None`` they are tuned once for
        ``target_ep`` at the first :meth:`run` call.
    target_ep:
        PME relative-error target used when auto-tuning.
    e_k:
        Krylov relative-error tolerance (Table II).
    store_p:
        Precompute the interpolation matrix ``P`` (Fig. 4 optimization).
    neighbor_backend:
        Pair-search backend for the real-space matrix.
    Remaining parameters as :class:`BrownianDynamicsBase`.
    """

    def __init__(self, box: Box, fluid: FluidParams = REDUCED,
                 force_field: ForceField | None = None, dt: float = 1e-3,
                 lambda_rpy: int = 10,
                 seed: int | np.random.Generator | None = 0,
                 pme_params: PMEParams | None = None, target_ep: float = 1e-3,
                 e_k: float = 1e-2, store_p: bool = True,
                 neighbor_backend: str = "cells", max_krylov_iter: int = 200,
                 recovery: RecoveryPolicy | None = None, context=None):
        super().__init__(box, fluid, force_field, dt, lambda_rpy, seed,
                         recovery=recovery, context=context)
        self.pme_params = pme_params
        self.target_ep = float(target_ep)
        self.store_p = bool(store_p)
        self.neighbor_backend = neighbor_backend
        self._generator = KrylovBrownianGenerator(kT=fluid.kT, dt=dt, tol=e_k,
                                                  max_iter=max_krylov_iter)
        self._operator: PMEOperator | None = None
        #: Position-independent PME state reused across mobility rebuilds.
        self._mobility_cache = MobilityCache()

    def _prepare(self, positions: np.ndarray) -> None:
        if self.pme_params is None:
            self.pme_params = tune_parameters(
                positions.shape[0], self.box, target_ep=self.target_ep,
                fluid=self.fluid)
        self._operator = PMEOperator(
            positions, self.box, self.pme_params, fluid=self.fluid,
            neighbor_backend=self.neighbor_backend, store_p=self.store_p,
            cache=self._mobility_cache, context=self.context)

    def _apply_mobility(self, forces_flat: np.ndarray) -> np.ndarray:
        return self._operator.apply(forces_flat)

    def _generate_displacements(self, n_cols: int,
                                stats: BDStepStats) -> np.ndarray:
        z = self.rng.standard_normal((3 * self._operator.n, n_cols))
        # hand the operator itself (not a bound matvec) down: block
        # Lanczos then issues one batched apply_block per iteration
        if self.recovery is None:
            d = self._generator.generate(self._operator, z)
            iters = self._generator.last_info.iterations
        else:
            d, info = krylov_displacements_resilient(
                self._generator, self._operator, z, self.recovery,
                stats.recovery, step=stats.n_steps)
            iters = info.iterations if info is not None else 0
        stats.krylov_iterations.append(iters)
        obs.observe("bd_krylov_iterations", iters)
        return d

    def mobility_memory_bytes(self) -> int:
        if self._operator is None:
            return 0
        return self._operator.memory_report()["total"]

    @property
    def operator(self) -> PMEOperator | None:
        """The current PME operator (``None`` before the first step)."""
        return self._operator
