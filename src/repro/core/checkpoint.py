"""Simulation checkpointing.

Long production runs (the paper's Fig. 3 trajectories run for 500,000
steps over 10 hours) must survive interruption.  A checkpoint captures
everything needed to continue *bit-exactly*: the current wrapped
positions, the accumulated unwrapped offset, the step count and the
exact NumPy RNG state of the integrator.

The integrator state is deliberately *not* pickled: checkpoints are
plain ``.npz`` archives readable across library versions, and the
mobility representation is rebuilt on resume (it is rebuilt every
``lambda_RPY`` steps anyway).
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..errors import ConfigurationError

__all__ = ["save_checkpoint", "load_checkpoint", "resume",
           "checkpoint_callback"]

_FORMAT_VERSION = 1


def save_checkpoint(path: str | os.PathLike, wrapped: np.ndarray,
                    unwrapped: np.ndarray, step: int,
                    rng: np.random.Generator) -> None:
    """Write a resumable checkpoint.

    Parameters
    ----------
    path:
        Output ``.npz`` path.
    wrapped, unwrapped:
        Current wrapped and unwrapped positions, shape ``(n, 3)``.
    step:
        Completed step count.
    rng:
        The integrator's generator; its full bit-generator state is
        serialized so the continued noise stream is identical to an
        uninterrupted run.
    """
    state = json.dumps(rng.bit_generator.state)
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        wrapped=np.asarray(wrapped, dtype=np.float64),
        unwrapped=np.asarray(unwrapped, dtype=np.float64),
        step=int(step),
        rng_state=np.frombuffer(state.encode(), dtype=np.uint8),
    )


def load_checkpoint(path: str | os.PathLike
                    ) -> tuple[np.ndarray, np.ndarray, int,
                               np.random.Generator]:
    """Read a checkpoint; returns ``(wrapped, unwrapped, step, rng)``."""
    with np.load(path) as data:
        try:
            version = int(data["format_version"])
            wrapped = data["wrapped"]
            unwrapped = data["unwrapped"]
            step = int(data["step"])
            raw = bytes(data["rng_state"].tobytes())
        except KeyError as exc:
            raise ConfigurationError(
                f"{path} is not a repro checkpoint: missing {exc}") from exc
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint format version {version}")
    state = json.loads(raw.decode())
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return wrapped, unwrapped, step, rng


def resume(path: str | os.PathLike, integrator, n_steps: int,
           callback=None):
    """Continue an integrator run from a checkpoint.

    The integrator's RNG is replaced by the checkpointed one and
    propagation restarts from the stored positions.  With the same
    integrator configuration the combined (pre-checkpoint +
    resumed) trajectory is bit-identical to an uninterrupted run —
    tested in ``tests/test_checkpoint.py``.

    Returns ``(unwrapped, stats)`` like
    :meth:`repro.core.integrators.BrownianDynamicsBase.run`; the
    returned unwrapped positions continue the stored unwrapped frame.
    """
    wrapped, unwrapped_start, step0, rng = load_checkpoint(path)
    integrator.rng = rng
    offset = unwrapped_start - wrapped

    shifted_callback = None
    if callback is not None:
        def shifted_callback(step, w, u):
            callback(step0 + step, w, u + offset)

    final, stats = integrator.run(wrapped, n_steps,
                                  callback=shifted_callback)
    return final + offset, stats


def checkpoint_callback(path: str | os.PathLike, integrator,
                        interval: int):
    """A run callback writing a checkpoint every ``interval`` steps.

    For *bit-exact* resumption, ``interval`` should be a multiple of
    the integrator's ``lambda_RPY``: the noise for a mobility block is
    drawn all at once, so only block-aligned checkpoints see the RNG in
    a resumable position.  (Non-aligned checkpoints still resume to a
    statistically equivalent trajectory.)

    Usage::

        bd.run(r0, 1000,
               callback=checkpoint_callback("run.ckpt.npz", bd, 100))
    """
    if interval < 1:
        raise ConfigurationError(f"interval must be >= 1, got {interval}")
    if interval % integrator.lambda_rpy != 0:
        import warnings
        warnings.warn(
            f"checkpoint interval {interval} is not a multiple of "
            f"lambda_RPY={integrator.lambda_rpy}; resumed trajectories "
            "will be statistically equivalent but not bit-identical",
            stacklevel=2)

    def callback(step, wrapped, unwrapped):
        if step % interval == 0:
            save_checkpoint(path, wrapped, unwrapped, step, integrator.rng)

    return callback
