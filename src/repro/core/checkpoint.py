"""Simulation checkpointing.

Long production runs (the paper's Fig. 3 trajectories run for 500,000
steps over 10 hours) must survive interruption.  A checkpoint captures
everything needed to continue *bit-exactly*: the current wrapped
positions, the accumulated unwrapped offset, the step count and the
exact NumPy RNG state of the integrator.

Checkpoint writes are **crash-safe**: the archive is written to a
temporary file in the same directory, fsynced, and atomically renamed
over the destination, so a process kill mid-write never corrupts the
previous checkpoint.  Every checkpoint embeds a SHA-256 checksum of
its payload which :func:`load_checkpoint` verifies, raising
:class:`~repro.errors.CheckpointCorruptionError` on truncation or bit
rot; :func:`checkpoint_callback` additionally rotates the previous
checkpoint to ``<path>.prev`` so a corrupt latest file falls back to
the previous good one (:func:`load_checkpoint_with_fallback`).

The integrator state is deliberately *not* pickled: checkpoints are
plain ``.npz`` archives readable across library versions, and the
mobility representation is rebuilt on resume (it is rebuilt every
``lambda_RPY`` steps anyway).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib

import numpy as np

from ..errors import CheckpointCorruptionError, ConfigurationError

__all__ = ["save_checkpoint", "load_checkpoint",
           "load_checkpoint_with_fallback", "previous_checkpoint_path",
           "resume", "checkpoint_callback", "fsync_directory"]

_FORMAT_VERSION = 2


def previous_checkpoint_path(path: str | os.PathLike) -> str:
    """The rotation target for ``path`` (``<path>.prev``)."""
    return str(path) + ".prev"


def fsync_directory(directory: str | os.PathLike) -> bool:
    """Flush a directory's entry table to stable storage.

    An atomic ``os.replace`` makes the *file contents* crash-safe, but
    the rename itself lives in the directory inode — until that is
    fsynced, a power loss can roll the directory back and the renamed
    checkpoint silently vanishes.  Called after every rename
    (:func:`save_checkpoint` and the ``.prev`` rotation in
    :func:`checkpoint_callback`).  Best-effort: returns ``False`` on
    filesystems that refuse ``open``/``fsync`` on directories (some
    network mounts) instead of failing the run.
    """
    try:
        dir_fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(dir_fd)
        return True
    except OSError:
        return False
    finally:
        os.close(dir_fd)


def _payload_checksum(wrapped: np.ndarray, unwrapped: np.ndarray,
                      step: int, state: str) -> str:
    """SHA-256 over a canonical serialization of the checkpoint payload."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(wrapped).tobytes())
    h.update(np.ascontiguousarray(unwrapped).tobytes())
    h.update(str(int(step)).encode())
    h.update(state.encode())
    return h.hexdigest()


def save_checkpoint(path: str | os.PathLike, wrapped: np.ndarray,
                    unwrapped: np.ndarray, step: int,
                    rng: np.random.Generator) -> None:
    """Write a resumable checkpoint, atomically.

    Parameters
    ----------
    path:
        Output ``.npz`` path.
    wrapped, unwrapped:
        Current wrapped and unwrapped positions, shape ``(n, 3)``.
    step:
        Completed step count.
    rng:
        The integrator's generator; its full bit-generator state is
        serialized so the continued noise stream is identical to an
        uninterrupted run.

    Notes
    -----
    The archive is staged in a temporary file in the destination
    directory, flushed and fsynced, then moved into place with
    :func:`os.replace` — on any crash the destination holds either the
    complete old checkpoint or the complete new one, never a torn
    write.
    """
    wrapped = np.asarray(wrapped, dtype=np.float64)
    unwrapped = np.asarray(unwrapped, dtype=np.float64)
    state = json.dumps(rng.bit_generator.state)
    checksum = _payload_checksum(wrapped, unwrapped, step, state)

    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(
                fh,
                format_version=_FORMAT_VERSION,
                wrapped=wrapped,
                unwrapped=unwrapped,
                step=int(step),
                rng_state=np.frombuffer(state.encode(), dtype=np.uint8),
                checksum=np.frombuffer(checksum.encode(), dtype=np.uint8),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # persist the rename itself: without the directory fsync the new
    # checkpoint can vanish on power loss between rename and journal flush
    fsync_directory(directory)


def load_checkpoint(path: str | os.PathLike
                    ) -> tuple[np.ndarray, np.ndarray, int,
                               np.random.Generator]:
    """Read and verify a checkpoint; returns ``(wrapped, unwrapped, step, rng)``.

    Raises
    ------
    CheckpointCorruptionError
        If the file is not a readable archive (truncated mid-write by a
        non-atomic writer, for instance) or its embedded checksum does
        not match the payload (bit rot, partial overwrite).
    ConfigurationError
        If the file is a valid archive but not a repro checkpoint, or
        an unsupported format version.
    FileNotFoundError
        If ``path`` does not exist.
    """
    try:
        data = np.load(path)
    except FileNotFoundError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile, EOFError,
            zlib.error) as exc:
        raise CheckpointCorruptionError(
            f"{path} is unreadable (truncated or corrupt archive): "
            f"{exc}") from exc
    with data:
        try:
            version = int(data["format_version"])
            wrapped = data["wrapped"]
            unwrapped = data["unwrapped"]
            step = int(data["step"])
            raw = bytes(data["rng_state"].tobytes())
            stored_checksum = (bytes(data["checksum"].tobytes()).decode()
                               if version >= 2 else None)
        except KeyError as exc:
            raise ConfigurationError(
                f"{path} is not a repro checkpoint: missing {exc}") from exc
        except (zipfile.BadZipFile, OSError, EOFError, ValueError,
                zlib.error) as exc:
            # zlib.error: a bit flip inside a deflated member breaks
            # the stream before the zip CRC is even checked
            raise CheckpointCorruptionError(
                f"{path} is corrupt (archive member unreadable): "
                f"{exc}") from exc
    if version not in (1, _FORMAT_VERSION):
        raise ConfigurationError(
            f"unsupported checkpoint format version {version}")
    state_json = raw.decode(errors="replace")
    if stored_checksum is not None:
        expected = _payload_checksum(wrapped, unwrapped, step, state_json)
        if stored_checksum != expected:
            raise CheckpointCorruptionError(
                f"{path} failed its integrity check "
                f"(stored {stored_checksum[:12]}..., "
                f"computed {expected[:12]}...)")
    try:
        state = json.loads(state_json)
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptionError(
            f"{path} has an unparseable RNG state: {exc}") from exc
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return wrapped, unwrapped, step, rng


def load_checkpoint_with_fallback(path: str | os.PathLike
                                  ) -> tuple[np.ndarray, np.ndarray, int,
                                             np.random.Generator, str]:
    """Load ``path``, falling back to its rotated predecessor.

    Returns ``(wrapped, unwrapped, step, rng, used_path)`` where
    ``used_path`` names the file that actually loaded.  The fallback is
    attempted when the latest checkpoint is missing or fails integrity
    verification; if both fail, the *primary* error is raised (with the
    fallback failure attached as context).
    """
    prev = previous_checkpoint_path(path)
    try:
        wrapped, unwrapped, step, rng = load_checkpoint(path)
        return wrapped, unwrapped, step, rng, os.fspath(path)
    except (CheckpointCorruptionError, FileNotFoundError) as primary:
        try:
            wrapped, unwrapped, step, rng = load_checkpoint(prev)
        except (CheckpointCorruptionError, FileNotFoundError,
                ConfigurationError) as secondary:
            raise primary from secondary
        return wrapped, unwrapped, step, rng, prev


def resume(path: str | os.PathLike, integrator, n_steps: int,
           callback=None, fallback: bool = True):
    """Continue an integrator run from a checkpoint.

    The integrator's RNG is replaced by the checkpointed one and
    propagation restarts from the stored positions.  With the same
    integrator configuration the combined (pre-checkpoint +
    resumed) trajectory is bit-identical to an uninterrupted run —
    tested in ``tests/test_checkpoint.py``.

    With ``fallback=True`` (default) a corrupt or missing latest
    checkpoint falls back to the rotated ``<path>.prev`` written by
    :func:`checkpoint_callback`.

    Returns ``(unwrapped, stats)`` like
    :meth:`repro.core.integrators.BrownianDynamicsBase.run`; the
    returned unwrapped positions continue the stored unwrapped frame.
    """
    if fallback:
        wrapped, unwrapped_start, step0, rng, _used = (
            load_checkpoint_with_fallback(path))
    else:
        wrapped, unwrapped_start, step0, rng = load_checkpoint(path)
    integrator.rng = rng

    shifted_callback = None
    if callback is not None:
        def shifted_callback(step, w, u):
            callback(step0 + step, w, u)

    # continuing the stored unwrapped frame inside the integrator (not
    # re-adding the image offset afterwards) keeps the continuation
    # byte-for-byte identical to an uninterrupted run
    return integrator.run(wrapped, n_steps, callback=shifted_callback,
                          unwrapped0=unwrapped_start)


def checkpoint_callback(path: str | os.PathLike, integrator,
                        interval: int, keep_previous: bool = True,
                        _save=save_checkpoint):
    """A run callback writing a checkpoint every ``interval`` steps.

    With ``keep_previous=True`` (default) the existing checkpoint is
    rotated to ``<path>.prev`` before each write, so even if the latest
    file is later found corrupt (bit rot, torn copy by an external
    tool) the run can restart from the previous good one via
    :func:`load_checkpoint_with_fallback`.

    ``_save`` is an internal injection point used by the
    fault-injection harness
    (:func:`repro.resilience.faults.faulty_checkpoint_callback`).

    For *bit-exact* resumption, ``interval`` should be a multiple of
    the integrator's ``lambda_RPY``: the noise for a mobility block is
    drawn all at once, so only block-aligned checkpoints see the RNG in
    a resumable position.  (Non-aligned checkpoints still resume to a
    statistically equivalent trajectory.)

    Usage::

        bd.run(r0, 1000,
               callback=checkpoint_callback("run.ckpt.npz", bd, 100))
    """
    if interval < 1:
        raise ConfigurationError(f"interval must be >= 1, got {interval}")
    if interval % integrator.lambda_rpy != 0:
        import warnings
        warnings.warn(
            f"checkpoint interval {interval} is not a multiple of "
            f"lambda_RPY={integrator.lambda_rpy}; resumed trajectories "
            "will be statistically equivalent but not bit-identical",
            stacklevel=2)
    path = os.fspath(path)

    def callback(step, wrapped, unwrapped):
        if step % interval == 0:
            if keep_previous and os.path.exists(path):
                os.replace(path, previous_checkpoint_path(path))
                # make the rotation durable too: otherwise a power loss
                # after the (durable) new write could resurface a state
                # where <path> vanished but .prev never appeared
                fsync_directory(os.path.dirname(os.path.abspath(path)))
            _save(path, wrapped, unwrapped, step, integrator.rng)

    return callback
