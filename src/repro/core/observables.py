"""Run-time observation of BD simulations.

Monitors are lightweight callbacks attached to
:meth:`repro.core.integrators.BrownianDynamicsBase.run` that accumulate
observables *during* propagation — the way long production runs (the
paper's 500,000-step Fig. 3 trajectories) collect statistics without
storing every frame.

Use :func:`compose` to attach several monitors (and/or a recording
callback) at once::

    msd = MSDMonitor(reference=susp.positions, interval=10)
    sep = MinSeparationMonitor(box, interval=50)
    bd.run(susp.positions, 1000, callback=compose(msd, sep))
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box
from ..neighbor.celllist import CellList
from .forces import ForceField

__all__ = ["Monitor", "MSDMonitor", "MinSeparationMonitor",
           "EnergyMonitor", "compose"]


class Monitor:
    """Base monitor: samples every ``interval`` steps.

    Subclasses implement :meth:`sample`; the accumulated series is in
    :attr:`steps` and :attr:`values`.
    """

    def __init__(self, interval: int = 1):
        if interval < 1:
            raise ConfigurationError(
                f"interval must be >= 1, got {interval}")
        self.interval = int(interval)
        #: Step indices at which samples were taken.
        self.steps: list[int] = []
        #: Sampled values (scalar per sample).
        self.values: list[float] = []

    def sample(self, wrapped: np.ndarray, unwrapped: np.ndarray) -> float:
        """Compute one observable sample (override)."""
        raise NotImplementedError

    def __call__(self, step: int, wrapped: np.ndarray,
                 unwrapped: np.ndarray) -> None:
        if step % self.interval == 0:
            self.steps.append(step)
            self.values.append(float(self.sample(wrapped, unwrapped)))

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(steps, values)`` as arrays."""
        return np.asarray(self.steps), np.asarray(self.values)


class MSDMonitor(Monitor):
    """Mean squared displacement from a fixed reference configuration."""

    def __init__(self, reference: np.ndarray, interval: int = 1):
        super().__init__(interval)
        self.reference = np.asarray(reference, dtype=np.float64).copy()

    def sample(self, wrapped, unwrapped) -> float:
        diff = unwrapped - self.reference
        return float((diff * diff).sum(axis=1).mean())


class MinSeparationMonitor(Monitor):
    """Smallest pair separation (overlap watchdog).

    A value persistently below ``2a`` indicates the time step is too
    large for the repulsive force to resolve contacts.
    """

    def __init__(self, box: Box, cutoff: float = 4.0, interval: int = 1):
        super().__init__(interval)
        self.box = box
        self.cutoff = min(cutoff, box.length / 2)

    def sample(self, wrapped, unwrapped) -> float:
        i, j = CellList(self.box, self.cutoff).pairs(wrapped)
        if i.size == 0:
            return float("inf")
        _, dist = self.box.distances(wrapped, i, j)
        return float(dist.min())


class EnergyMonitor(Monitor):
    """Potential energy of a force field along the trajectory."""

    def __init__(self, force_field: ForceField, interval: int = 1):
        super().__init__(interval)
        self.force_field = force_field

    def sample(self, wrapped, unwrapped) -> float:
        return self.force_field.energy(wrapped)


def compose(*callbacks):
    """Combine several ``(step, wrapped, unwrapped)`` callbacks into one."""
    if not callbacks:
        raise ConfigurationError("compose needs at least one callback")

    def combined(step, wrapped, unwrapped):
        for cb in callbacks:
            cb(step, wrapped, unwrapped)

    return combined
