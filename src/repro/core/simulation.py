"""High-level simulation driver and trajectory container.

``Simulation`` wires a :class:`~repro.systems.suspension.Suspension`,
a force field and one of the two BD integrators together, records a
:class:`Trajectory` at a configurable interval, and hands it to the
analysis subpackage — the workflow of the paper's Fig. 3 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..resilience.policy import RecoveryPolicy
from ..systems.suspension import Suspension
from ..units import FluidParams
from .checkpoint import checkpoint_callback, save_checkpoint
from .forces import ForceField, RepulsiveHarmonic
from .integrators import BDStepStats, BrownianDynamicsBase, EwaldBD, MatrixFreeBD

__all__ = ["Simulation", "Trajectory"]


@dataclass
class Trajectory:
    """Recorded BD trajectory.

    Attributes
    ----------
    times:
        Sample times, shape ``(T,)`` (time 0 is the initial state).
    positions:
        *Unwrapped* positions, shape ``(T, n, 3)`` — suitable for mean
        squared displacements without image bookkeeping.
    box_length:
        Box edge (to re-wrap for structural analysis).
    fluid:
        Fluid parameters of the run.
    """

    times: np.ndarray
    positions: np.ndarray
    box_length: float
    fluid: FluidParams

    @property
    def n_frames(self) -> int:
        """Number of stored frames."""
        return self.positions.shape[0]

    @property
    def n_particles(self) -> int:
        """Number of particles."""
        return self.positions.shape[1]

    @property
    def dt_frame(self) -> float:
        """Time between consecutive frames (assumes uniform sampling)."""
        if self.n_frames < 2:
            raise ConfigurationError("trajectory has fewer than 2 frames")
        return float(self.times[1] - self.times[0])


class Simulation:
    """One BD simulation: system + forces + integrator + recording.

    Parameters
    ----------
    suspension:
        The initial configuration (carries box and fluid).
    algorithm:
        ``"matrix-free"`` (Algorithm 2, default) or ``"ewald"``
        (Algorithm 1).
    force_field:
        Deterministic forces; the default is the paper's repulsive
        harmonic contact force.  Pass ``force_field=None`` explicitly
        for force-free diffusion.
    dt, lambda_rpy, seed:
        Forwarded to the integrator.
    recovery:
        Optional :class:`~repro.resilience.policy.RecoveryPolicy`;
        enables the fault-tolerant step loop (see
        ``docs/robustness.md``).  The recovery log of a run is
        available as ``stats.recovery``.
    **integrator_kwargs:
        Algorithm-specific options (``e_k``, ``target_ep``,
        ``pme_params``, ``store_p``, ``ewald_tol``, ...) plus the
        shared ``context=`` (an :class:`~repro.exec.ExecutionContext`
        parallelizing the matrix-free mobility applications).
    """

    _DEFAULT_FORCE = object()  # sentinel: "give me the paper's default"

    def __init__(self, suspension: Suspension, algorithm: str = "matrix-free",
                 force_field: ForceField | None = _DEFAULT_FORCE,
                 dt: float = 1e-3, lambda_rpy: int = 10,
                 seed: int | np.random.Generator | None = 0,
                 recovery: RecoveryPolicy | None = None,
                 **integrator_kwargs):
        self.suspension = suspension
        if force_field is Simulation._DEFAULT_FORCE:
            force_field = RepulsiveHarmonic(suspension.box, suspension.fluid)
        common = dict(box=suspension.box, fluid=suspension.fluid,
                      force_field=force_field, dt=dt, lambda_rpy=lambda_rpy,
                      seed=seed, recovery=recovery)
        if algorithm == "matrix-free":
            self.integrator: BrownianDynamicsBase = MatrixFreeBD(
                **common, **integrator_kwargs)
        elif algorithm == "ewald":
            self.integrator = EwaldBD(**common, **integrator_kwargs)
        else:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; "
                "use 'matrix-free' or 'ewald'")
        self.algorithm = algorithm
        self._current = suspension.positions.copy()

    def run(self, n_steps: int, record_interval: int = 1,
            checkpoint_path: str | None = None,
            checkpoint_interval: int | None = None,
            extra_callback=None,
            stats: BDStepStats | None = None,
            stop=None
            ) -> tuple[Trajectory, BDStepStats]:
        """Propagate and record.

        Parameters
        ----------
        n_steps:
            Inner BD steps to take.
        record_interval:
            Store every this-many-th frame (frame 0 always stored).
        checkpoint_path:
            Optional path for rotating crash-safe checkpoints
            (``<path>.prev`` keeps the previous one) written every
            ``checkpoint_interval`` steps.
        checkpoint_interval:
            Steps between checkpoints; defaults to the integrator's
            ``lambda_RPY`` (the block-aligned, bit-exact choice).
        extra_callback:
            Optional additional ``callback(step, wrapped, unwrapped)``
            invoked after recording (used by the fault-injection soak).
        stats:
            Optional pre-existing stats object to accumulate into (so
            external callbacks can share the run's recovery log).
        stop:
            Optional zero-argument predicate; returning true ends the
            run gracefully at the next step boundary
            (``stats.stopped_early``).  When a ``checkpoint_path`` is
            set, a final checkpoint at the stopped step is written
            before returning, so the run is resumable from exactly
            where it stopped.

        Returns
        -------
        (trajectory, stats)
        """
        if n_steps < 1:
            raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
        if record_interval < 1:
            raise ConfigurationError(
                f"record_interval must be >= 1, got {record_interval}")
        dt = self.integrator.dt
        # keyed by step so a recovery rollback that replays steps simply
        # overwrites the frames recorded before the rollback
        frames: dict[int, np.ndarray] = {0: self._current.copy()}

        ckpt = None
        if checkpoint_path is not None:
            interval = checkpoint_interval or self.integrator.lambda_rpy
            ckpt = checkpoint_callback(checkpoint_path, self.integrator,
                                       interval)

        last_state: dict[str, np.ndarray] = {}

        def record(step, wrapped, unwrapped):
            if step % record_interval == 0:
                frames[step] = unwrapped.copy()
            last_state["wrapped"] = wrapped
            last_state["unwrapped"] = unwrapped
            if ckpt is not None:
                ckpt(step, wrapped, unwrapped)
            if extra_callback is not None:
                extra_callback(step, wrapped, unwrapped)

        with obs.span("sim.run", n_steps=n_steps,
                      n=self._current.shape[0],
                      algorithm=self.algorithm):
            final, stats = self.integrator.run(self._current, n_steps,
                                               callback=record, stats=stats,
                                               stop=stop)
        if (stats.stopped_early and checkpoint_path is not None
                and "wrapped" in last_state
                and stats.n_steps % (checkpoint_interval
                                     or self.integrator.lambda_rpy) != 0):
            # the interval callback missed the stopped step; write one
            # final checkpoint so the interrupted run resumes from here
            save_checkpoint(checkpoint_path, last_state["wrapped"],
                            last_state["unwrapped"], stats.n_steps,
                            self.integrator.rng)
        self._current = self.suspension.box.wrap(final)
        steps = sorted(frames)
        traj = Trajectory(np.array([s * dt for s in steps]),
                          np.array([frames[s] for s in steps]),
                          self.suspension.box.length, self.suspension.fluid)
        return traj, stats
