"""Force models for BD simulations.

The paper's evaluation uses a single deterministic force: a repulsive
harmonic contact force preventing particle overlap (Section V.A)::

    f_ij = -125 (|r_ij| - 2a) rhat_ij     if |r_ij| <= 2a, else 0

evaluated with Verlet cell lists.  This module provides that force plus
the small set of extras the example applications need (harmonic bonds
for polymers, constant body forces for sedimentation) behind one
``ForceField`` interface so integrators are agnostic to the model.

All forces return an ``(n, 3)`` array; energies are available for
testing (forces are validated as the negative energy gradient).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box
from ..lint.contracts import positions_arg
from ..neighbor.verlet import VerletList
from ..units import FluidParams, REDUCED
from ..utils.validation import as_positions

__all__ = ["ForceField", "RepulsiveHarmonic", "HarmonicBonds",
           "ConstantForce", "CompositeForce"]


class ForceField(ABC):
    """Interface of a deterministic force model."""

    @abstractmethod
    def forces(self, positions: np.ndarray) -> np.ndarray:
        """Forces on all particles, shape ``(n, 3)``."""

    @abstractmethod
    def energy(self, positions: np.ndarray) -> float:
        """Total potential energy of the configuration."""


class RepulsiveHarmonic(ForceField):
    """The paper's contact repulsion (Section V.A).

    Parameters
    ----------
    box:
        Periodic simulation box.
    fluid:
        Supplies the particle radius ``a`` (contact distance ``2a``).
    stiffness:
        Spring constant ``k`` in units of ``kT / a^2`` scaled into the
        simulation units; the paper uses 125.
    skin:
        Verlet-list skin (see :class:`repro.neighbor.verlet.VerletList`).

    Notes
    -----
    ``E = (k/2) (r - 2a)^2`` for ``r <= 2a``;
    ``f_i = -k (r_ij - 2a) rhat_ij`` with ``rhat_ij`` pointing from
    ``j`` to ``i`` — positive (separating) when the pair overlaps.
    """

    def __init__(self, box: Box, fluid: FluidParams = REDUCED,
                 stiffness: float = 125.0, skin: float | None = None):
        if stiffness <= 0:
            raise ConfigurationError(
                f"stiffness must be positive, got {stiffness}")
        self.box = box
        self.fluid = fluid
        self.stiffness = float(stiffness)
        self.contact = 2.0 * fluid.radius
        self._verlet = VerletList(box, self.contact, skin=skin)

    def _overlapping(self, r: np.ndarray):
        i, j = self._verlet.pairs(r)
        if i.size == 0:
            return i, j, None, None
        rij, dist = self.box.distances(r, i, j)
        sel = dist <= self.contact
        return i[sel], j[sel], rij[sel], dist[sel]

    def forces(self, positions: np.ndarray) -> np.ndarray:
        r = as_positions(positions)
        out = np.zeros_like(r)
        i, j, rij, dist = self._overlapping(r)
        if i.size == 0:
            return out
        mag = -self.stiffness * (dist - self.contact)   # > 0 when overlapping
        fij = (mag / dist)[:, None] * rij               # force on i
        np.add.at(out, i, fij)
        np.add.at(out, j, -fij)
        return out

    def energy(self, positions: np.ndarray) -> float:
        r = as_positions(positions)
        i, _, _, dist = self._overlapping(r)
        if i.size == 0:
            return 0.0
        return float(0.5 * self.stiffness
                     * np.sum((dist - self.contact) ** 2))


class HarmonicBonds(ForceField):
    """Harmonic springs between bonded bead pairs (polymer chains).

    ``E = (k/2) sum_b (|r_b| - r0)^2`` over bonds ``b`` with
    minimum-image bond vectors.
    """

    def __init__(self, box: Box, bonds: np.ndarray, stiffness: float,
                 rest_length: float):
        bonds = np.asarray(bonds, dtype=np.intp)
        if bonds.ndim != 2 or bonds.shape[1] != 2:
            raise ConfigurationError(
                f"bonds must have shape (m, 2), got {bonds.shape}")
        if stiffness <= 0 or rest_length <= 0:
            raise ConfigurationError(
                "stiffness and rest_length must be positive")
        self.box = box
        self.bonds = bonds
        self.stiffness = float(stiffness)
        self.rest_length = float(rest_length)

    def forces(self, positions: np.ndarray) -> np.ndarray:
        r = as_positions(positions)
        out = np.zeros_like(r)
        i, j = self.bonds[:, 0], self.bonds[:, 1]
        rij, dist = self.box.distances(r, i, j)
        mag = -self.stiffness * (dist - self.rest_length)
        fij = (mag / dist)[:, None] * rij
        np.add.at(out, i, fij)
        np.add.at(out, j, -fij)
        return out

    def energy(self, positions: np.ndarray) -> float:
        r = as_positions(positions)
        _, dist = self.box.distances(r, self.bonds[:, 0], self.bonds[:, 1])
        return float(0.5 * self.stiffness
                     * np.sum((dist - self.rest_length) ** 2))


class ConstantForce(ForceField):
    """A uniform body force on every particle (gravity/sedimentation)."""

    def __init__(self, force: np.ndarray):
        force = np.asarray(force, dtype=np.float64)
        if force.shape != (3,):
            raise ConfigurationError(
                f"force must have shape (3,), got {force.shape}")
        self.force = force

    def forces(self, positions: np.ndarray) -> np.ndarray:
        r = as_positions(positions)
        return np.broadcast_to(self.force, r.shape).copy()

    @positions_arg()
    def energy(self, positions: np.ndarray) -> float:
        # potential of a constant force in a periodic box is gauge
        # dependent; report 0 by convention
        return 0.0


class CompositeForce(ForceField):
    """Sum of several force fields."""

    def __init__(self, *fields: ForceField):
        if not fields:
            raise ConfigurationError("CompositeForce needs at least one field")
        self.fields = fields

    @positions_arg()
    def forces(self, positions: np.ndarray) -> np.ndarray:
        out = self.fields[0].forces(positions)
        for field in self.fields[1:]:
            out = out + field.forces(positions)
        return out

    @positions_arg()
    def energy(self, positions: np.ndarray) -> float:
        return float(sum(field.energy(positions) for field in self.fields))
