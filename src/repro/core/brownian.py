"""Brownian displacement generators.

Both BD algorithms draw correlated Gaussian displacements
``g ~ N(0, 2 kT dt M)`` for ``lambda_RPY`` steps at once:

* :class:`CholeskyBrownianGenerator` — Algorithm 1: factor the dense
  mobility once, then ``D = sqrt(2 kT dt) S Z`` (paper Section II.C),
* :class:`KrylovBrownianGenerator` — Algorithm 2: block Lanczos using
  only matrix-free products (paper Section III.B).

Both return a ``(3n, lambda)`` block ``D`` whose columns are consumed
one per inner time step.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..krylov.block_lanczos import block_lanczos_sqrt
from ..krylov.chebyshev import chebyshev_sqrt, eigenvalue_bounds
from ..krylov.lanczos import LanczosInfo
from ..krylov.reference import cholesky_displacements
from ..lint.contracts import array_arg, spd_arg
from ..utils.params import keyword_only

__all__ = ["CholeskyBrownianGenerator", "KrylovBrownianGenerator",
           "ChebyshevBrownianGenerator"]


@keyword_only
class CholeskyBrownianGenerator:
    """Dense-matrix Brownian displacements (Algorithm 1, lines 5-7).

    Construct with keyword arguments (positional construction warns
    once; ``replace(**changes)`` returns a reconfigured copy).

    Parameters
    ----------
    kT, dt:
        Thermal energy and time step; the scale is ``sqrt(2 kT dt)``.
    """

    def __init__(self, kT: float, dt: float):
        self.scale = math.sqrt(2.0 * kT * dt)

    @spd_arg("mobility")
    @array_arg("z", ndim=(1, 2))
    def generate(self, mobility: np.ndarray, z: np.ndarray) -> np.ndarray:
        """``D = sqrt(2 kT dt) S Z`` with ``mobility = S S^T``."""
        return cholesky_displacements(mobility, z, scale=self.scale)


@keyword_only
class KrylovBrownianGenerator:
    """Matrix-free Brownian displacements (Algorithm 2, line 6).

    Parameters
    ----------
    kT, dt:
        Thermal energy and time step.
    tol:
        Relative-error stopping tolerance ``e_k`` of the block Lanczos
        iteration (paper Table II varies 1e-6 .. 1e-2).
    max_iter:
        Iteration cap forwarded to the solver.

    Construct with keyword arguments (positional construction warns
    once; ``replace(**changes)`` returns a reconfigured copy).
    """

    def __init__(self, kT: float, dt: float, tol: float = 1e-2,
                 max_iter: int = 200):
        self.scale = math.sqrt(2.0 * kT * dt)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        #: Diagnostics of the last solve (iterations, matvecs, ...).
        self.last_info: LanczosInfo | None = None

    @array_arg("z", ndim=(1, 2))
    def generate(self, matvec: Any, z: np.ndarray) -> np.ndarray:
        """``D = sqrt(2 kT dt) M^(1/2) Z`` via block Lanczos.

        ``matvec`` may be a
        :class:`~repro.core.mobility.MobilityOperator` (each Lanczos
        iteration then issues one batched ``apply_block``), a dense
        matrix, or a legacy ``matvec`` callable.

        Blocks wider than the operator dimension (tiny systems with a
        large ``lambda_RPY``) are processed in chunks of at most ``d``
        columns — the columns are independent samples, so chunking does
        not change the statistics.
        """
        z2 = np.atleast_2d(z.T).T
        d, s = z2.shape
        if s <= d:
            y, info = block_lanczos_sqrt(matvec, z2, tol=self.tol,
                                         max_iter=self.max_iter)
        else:
            y = np.empty_like(z2)
            total_matvecs = 0
            iters = 0
            for lo in range(0, s, d):
                hi = min(lo + d, s)
                y[:, lo:hi], info = block_lanczos_sqrt(
                    matvec, z2[:, lo:hi], tol=self.tol,
                    max_iter=self.max_iter)
                total_matvecs += info.n_matvecs
                iters = max(iters, info.iterations)
            info = LanczosInfo(iters, True, info.rel_change, total_matvecs)
        self.last_info = info
        return self.scale * y


@keyword_only
class ChebyshevBrownianGenerator:
    """Fixman-style Brownian displacements via Chebyshev polynomials.

    The alternative matrix-free method the paper cites (reference
    [25]): a polynomial approximation of ``sqrt`` on the estimated
    spectral interval of ``M``, evaluated with the three-term
    recurrence.  Requires eigenvalue estimates (refreshed whenever the
    mobility changes), which Lanczos does not — the practical advantage
    of the paper's Krylov choice; the ablation benchmark
    ``benchmarks/bench_ablation_brownian.py`` quantifies the trade.

    Parameters
    ----------
    kT, dt:
        Thermal energy and time step.
    tol:
        Sup-norm tolerance of the polynomial on the spectral interval
        (plays the role of ``e_k``).
    bound_iterations:
        Lanczos steps used to estimate the spectral interval.

    Construct with keyword arguments (positional construction warns
    once; ``replace(**changes)`` returns a reconfigured copy).
    """

    def __init__(self, kT: float, dt: float, tol: float = 1e-2,
                 bound_iterations: int = 25):
        self.scale = math.sqrt(2.0 * kT * dt)
        self.tol = float(tol)
        self.bound_iterations = int(bound_iterations)
        #: Diagnostics of the last solve.
        self.last_info: LanczosInfo | None = None
        #: Spectral interval used by the last solve.
        self.last_bounds: tuple[float, float] | None = None

    @array_arg("z", ndim=(1, 2))
    def generate(self, matvec: Any, z: np.ndarray) -> np.ndarray:
        """``D = sqrt(2 kT dt) M^(1/2) Z`` via a Chebyshev polynomial.

        ``matvec`` accepts the same operator forms as
        :meth:`KrylovBrownianGenerator.generate`.
        """
        z2 = np.atleast_2d(z.T).T
        l_min, l_max = eigenvalue_bounds(matvec, z2.shape[0],
                                         n_iter=self.bound_iterations)
        self.last_bounds = (l_min, l_max)
        y, info = chebyshev_sqrt(matvec, z2, l_min, l_max, tol=self.tol)
        # account for the bound-estimation matvecs in the diagnostics
        info.n_matvecs += min(self.bound_iterations, z2.shape[0])
        self.last_info = info
        return self.scale * y
