"""Trajectory persistence (NumPy ``.npz`` container).

Long BD runs (the paper's Fig. 3 trajectories take hours) need
checkpointable output; this module round-trips
:class:`~repro.core.simulation.Trajectory` objects through a single
compressed ``.npz`` file carrying positions, times, box and fluid
parameters.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ConfigurationError
from ..units import FluidParams
from .simulation import Trajectory

__all__ = ["save_trajectory", "load_trajectory"]

_FORMAT_VERSION = 1


def save_trajectory(path: str | os.PathLike, trajectory: Trajectory) -> None:
    """Write a trajectory to ``path`` (compressed ``.npz``)."""
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        times=trajectory.times,
        positions=trajectory.positions,
        box_length=trajectory.box_length,
        fluid=np.array([trajectory.fluid.radius, trajectory.fluid.viscosity,
                        trajectory.fluid.kT]),
    )


def load_trajectory(path: str | os.PathLike) -> Trajectory:
    """Read a trajectory previously written by :func:`save_trajectory`."""
    with np.load(path) as data:
        try:
            version = int(data["format_version"])
            times = data["times"]
            positions = data["positions"]
            box_length = float(data["box_length"])
            radius, viscosity, kT = data["fluid"]
        except KeyError as exc:
            raise ConfigurationError(
                f"{path} is not a repro trajectory file: missing {exc}"
            ) from exc
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported trajectory format version {version}")
    return Trajectory(
        times=times, positions=positions, box_length=box_length,
        fluid=FluidParams(radius=float(radius), viscosity=float(viscosity),
                          kT=float(kT)))
