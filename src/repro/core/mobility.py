"""The unified mobility-operator API (batched multi-RHS pipeline).

Every representation of the periodic RPY mobility matrix — the
matrix-free :class:`~repro.pme.operator.PMEOperator`, the dense Ewald
matrix, an ad-hoc callable in a test — is consumed by the Krylov
solvers and the BD integrators through one small protocol:

* ``shape``                 — ``(3n, 3n)``;
* ``apply(f)``              — ``u = M f`` for a single vector (or a
  column block, column by column);
* ``apply_block(F)``        — ``U = M F`` for an ``(3n, s)`` block,
  amortizing spread/FFT/influence machinery across all ``s``
  right-hand sides (paper Sections III.B and IV.C);
* ``as_linear_operator()``  — a SciPy ``LinearOperator`` view.

The protocol is :func:`~typing.runtime_checkable`, so conformance is a
plain ``isinstance`` check.  :func:`as_mobility` normalizes anything a
solver may receive — a conforming operator, a dense matrix, or a bare
``matvec`` callable — into a :class:`MobilityOperator`, which lets the
block solvers issue *one* batched apply per iteration regardless of
what the caller handed them.

Calling an operator directly (``op(f)``) was deprecated in favour of
``op.apply(f)`` and the deprecation cycle is now complete: the
``__call__`` shims raise :class:`TypeError` with the migration hint
(see ``docs/api.md`` for the migration guide).
"""

from __future__ import annotations

from typing import Any, Callable, NoReturn, Protocol, runtime_checkable

import numpy as np
from scipy.sparse.linalg import LinearOperator

__all__ = [
    "MobilityOperator",
    "DenseMobilityMatrix",
    "CallableMobility",
    "as_mobility",
    "reject_call_shim",
]


def reject_call_shim(cls_name: str) -> NoReturn:
    """Raise the ``operator(f)`` removal error (shared shim).

    The ``DeprecationWarning`` period for direct calls ended with the
    execution-context release; direct calls now fail loudly with the
    same migration hint the warning used to carry.
    """
    raise TypeError(
        f"calling {cls_name} instances directly was removed; use "
        f".apply(f) for single vectors or .apply_block(F) for "
        f"multi-RHS blocks (see docs/api.md)")


@runtime_checkable
class MobilityOperator(Protocol):
    """Structural interface of every mobility representation."""

    @property
    def shape(self) -> tuple[int, int]:
        """Operator dimensions ``(3n, 3n)``."""
        ...

    def apply(self, forces: Any) -> np.ndarray:
        """``u = M f`` for one force vector (columns looped if 2-D)."""
        ...

    def apply_block(self, forces: Any) -> np.ndarray:
        """``U = M F`` for an ``(3n, s)`` block in one batched pass."""
        ...

    def as_linear_operator(self) -> LinearOperator:
        """SciPy ``LinearOperator`` view of the operator."""
        ...


class DenseMobilityMatrix:
    """A dense ``3n x 3n`` mobility matrix behind the operator API.

    Wraps the output of :meth:`~repro.rpy.ewald.EwaldSummation.matrix`
    (or any explicitly assembled SPD mobility) so that Algorithm 1
    machinery and the dense fallbacks of the recovery ladder speak the
    same :class:`MobilityOperator` protocol as the matrix-free path.
    BLAS GEMM already batches over columns, so ``apply_block`` is a
    single matrix product.
    """

    def __init__(self, matrix: Any):
        m = np.asarray(matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(
                f"mobility matrix must be square 2-D, got shape {m.shape}")
        self.matrix = m

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def apply(self, forces: Any) -> np.ndarray:
        return self.matrix @ np.asarray(forces, dtype=np.float64)

    def apply_block(self, forces: Any) -> np.ndarray:
        f = np.asarray(forces, dtype=np.float64)
        if f.ndim != 2:
            raise ValueError(
                f"apply_block expects a 2-D (3n, s) block, got {f.shape}")
        return self.matrix @ f

    def as_linear_operator(self) -> LinearOperator:
        return LinearOperator(self.shape, matvec=self.apply,
                              matmat=self.apply_block, rmatvec=self.apply,
                              dtype=np.float64)

    def __call__(self, forces: Any) -> np.ndarray:
        reject_call_shim(type(self).__name__)


class CallableMobility:
    """Adapter presenting a bare ``matvec`` callable as an operator.

    The legacy solver entry points took ``matvec: f -> M f``; wrapping
    keeps every such call site working while the solvers themselves
    consume only the protocol.  ``apply_block`` first offers the whole
    block to the callable (the package's operators accept column
    blocks) and falls back to a column loop if the callable rejects it
    or returns the wrong shape.
    """

    def __init__(self, matvec: Callable[[np.ndarray], np.ndarray],
                 dim: int | None = None):
        if not callable(matvec):
            raise TypeError(f"matvec must be callable, got {type(matvec)!r}")
        self.matvec = matvec
        self._dim = None if dim is None else int(dim)

    @property
    def shape(self) -> tuple[int, int]:
        if self._dim is None:
            raise ValueError(
                "CallableMobility has no dimension; pass dim= when the "
                "shape is needed (as_linear_operator)")
        return (self._dim, self._dim)

    def apply(self, forces: Any) -> np.ndarray:
        return np.asarray(self.matvec(forces), dtype=np.float64)

    def apply_block(self, forces: Any) -> np.ndarray:
        f = np.asarray(forces, dtype=np.float64)
        if f.ndim != 2:
            raise ValueError(
                f"apply_block expects a 2-D (3n, s) block, got {f.shape}")
        try:
            candidate = np.asarray(self.matvec(f), dtype=np.float64)
        except (TypeError, ValueError):
            candidate = None  # vector-only callable: rejects a block
        if candidate is not None and candidate.shape == f.shape:
            return candidate
        out = np.empty_like(f)
        for col in range(f.shape[1]):
            out[:, col] = np.asarray(self.matvec(f[:, col]),
                                     dtype=np.float64).reshape(-1)
        return out

    def as_linear_operator(self) -> LinearOperator:
        return LinearOperator(self.shape, matvec=self.apply,
                              matmat=self.apply_block, rmatvec=self.apply,
                              dtype=np.float64)

    def __call__(self, forces: Any) -> np.ndarray:
        # the adapter exists *for* callable call sites: no deprecation
        return self.apply(forces)


def as_mobility(operator: Any, dim: int | None = None) -> MobilityOperator:
    """Normalize ``operator`` into a :class:`MobilityOperator`.

    Accepts (in precedence order) a conforming operator, a dense 2-D
    matrix, or a bare ``matvec`` callable.  Solvers call this once at
    entry so their iteration loops can rely on ``apply_block``.
    """
    if isinstance(operator, MobilityOperator):
        return operator
    if isinstance(operator, np.ndarray) and operator.ndim == 2:
        return DenseMobilityMatrix(operator)
    if callable(operator):
        return CallableMobility(operator, dim=dim)
    raise TypeError(
        f"cannot interpret {type(operator).__name__} as a mobility "
        f"operator: expected a MobilityOperator, a dense matrix, or a "
        f"matvec callable")
