"""Finding baselines: adopt the linter without fixing history first.

A baseline file records the *accepted* findings of a codebase as
fingerprint counts.  ``repro lint --baseline write`` snapshots the
current findings; ``--baseline check`` then fails only on findings NOT
covered by the snapshot, so new debt is blocked while known debt is
paid down incrementally (shrinking the baseline is always safe;
growing it requires an explicit re-``write``).

Fingerprints are ``(path, rule, message)`` — deliberately *without*
the line number, so pure line drift (an import added above) does not
invalidate the baseline.  Identical findings on different lines of one
file collapse into a count; the checker tolerates up to that many
occurrences.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from .findings import Finding

__all__ = ["BASELINE_VERSION", "DEFAULT_BASELINE", "Baseline",
           "fingerprint", "apply_baseline"]

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"


def fingerprint(finding: Finding) -> str:
    """Stable, line-independent identity of a finding."""
    return f"{finding.path}::{finding.rule}::{finding.message}"


@dataclass
class Baseline:
    """Accepted findings as ``fingerprint -> occurrence count``."""

    entries: dict[str, int]

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: dict[str, int] = {}
        for finding in findings:
            key = fingerprint(finding)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls(entries={})
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise ConfigurationError(
                f"baseline {path} is not a lint baseline "
                f"(missing 'entries')")
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline {path} has version {version!r}; this linter "
                f"writes version {BASELINE_VERSION} — regenerate with "
                f"--baseline write")
        entries = data["entries"]
        if not isinstance(entries, dict) or not all(
                isinstance(k, str) and isinstance(v, int) and v > 0
                for k, v in entries.items()):
            raise ConfigurationError(
                f"baseline {path}: 'entries' must map fingerprints to "
                f"positive counts")
        return cls(entries=dict(entries))

    def write(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro-lint",
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")


def apply_baseline(findings: Sequence[Finding], baseline: Baseline
                   ) -> tuple[list[Finding], int, list[str]]:
    """Split findings into new-vs-accepted against a baseline.

    Returns ``(new_findings, suppressed_count, stale_fingerprints)``.
    When a fingerprint occurs more often than the baseline allows, the
    excess occurrences (highest line numbers first removed last — i.e.
    the *earliest* occurrences are accepted) surface as new findings.
    Stale fingerprints — baseline entries nothing matched — signal the
    baseline can be shrunk; they are reported but never fail the run.
    """
    budget = dict(baseline.entries)
    new: list[Finding] = []
    suppressed = 0
    for finding in sorted(findings):
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            new.append(finding)
    stale = sorted(k for k, v in budget.items() if v > 0)
    return new, suppressed, stale
