"""The built-in physics-aware lint rules (RPR001 .. RPR012).

Each rule encodes an invariant the paper's algorithms depend on but the
Python type system cannot express — see ``docs/static_analysis.md`` for
the rationale of every rule and the paper section it protects.  Rules
are deliberately syntactic (pure AST, no imports of the checked code),
so the linter can run on broken or dependency-missing files.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .findings import Finding
from .registry import Rule, RuleMeta, register

if TYPE_CHECKING:  # pragma: no cover
    from .engine import FileContext

__all__ = ["CONTRACT_DECORATORS", "VALIDATION_CALLS"]

#: Decorator names (from :mod:`repro.lint.contracts`) that satisfy RPR001.
CONTRACT_DECORATORS = frozenset({
    "contract", "positions_arg", "force_block_arg", "radii_arg",
    "trajectory_arg", "array_arg", "spd_arg", "returns_spd",
})

#: Callee names whose invocation counts as validating ``positions``.
VALIDATION_CALLS = frozenset({"as_positions"})

#: Legacy/global :mod:`numpy.random` attributes that are *not* flagged.
_RNG_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Reduced-precision dtypes that indicate drift from the documented
#: float64 contract of every kernel in the package.
_NARROW_DTYPES = frozenset({
    "float32", "float16", "half", "single", "complex64", "csingle",
})


def _last_attr(node: ast.expr) -> str | None:
    """Final component of a ``Name`` / dotted ``Attribute`` callee."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _decorator_names(func: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> set[str]:
    """Root names of all decorators (``@x``, ``@m.x``, ``@x(...)``)."""
    names: set[str] = set()
    for dec in func.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = _last_attr(target)
        if name:
            names.add(name)
    return names


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    a = func.args
    return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]


def _is_stub_body(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True for docstring-only / ``pass`` / ``...`` / raise-only bodies."""
    for stmt in func.body:
        if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Raise):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or Ellipsis
        return False
    return True


@register
class UnvalidatedPositionsRule(Rule):
    """RPR001: a public function takes ``positions`` but never validates it."""

    meta = RuleMeta(
        id="RPR001", name="unvalidated-positions",
        summary="public function takes `positions` but neither calls "
                "as_positions nor carries a contract decorator",
        rationale="Every operator assumes (n, 3) float64 positions "
                  "(paper Section II); an unvalidated entry point turns a "
                  "transposed array into silently wrong physics.")

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name.startswith("_") and func.name != "__init__":
                continue
            if "positions" not in _param_names(func):
                continue
            decorators = _decorator_names(func)
            if decorators & CONTRACT_DECORATORS:
                continue
            if "abstractmethod" in decorators or _is_stub_body(func):
                continue
            if self._body_validates(func):
                continue
            yield self.finding(
                ctx, func,
                f"function {func.name!r} takes `positions` but never "
                "validates it",
                hint="call as_positions(positions) or decorate with "
                     "@positions_arg from repro.lint.contracts")

    @staticmethod
    def _body_validates(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = _last_attr(node.func)
            if callee in VALIDATION_CALLS:
                return True
            # delegation: super().__init__(positions, ...) — the parent
            # initializer is responsible for validation
            if (callee == "__init__"
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Call)
                    and _last_attr(node.func.value.func) == "super"):
                forwarded = [a.id for a in node.args
                             if isinstance(a, ast.Name)]
                forwarded += [k.value.id for k in node.keywords
                              if isinstance(k.value, ast.Name)]
                if "positions" in forwarded:
                    return True
        return False


@register
class GlobalRngRule(Rule):
    """RPR002: use of the global NumPy RNG instead of a ``Generator``."""

    meta = RuleMeta(
        id="RPR002", name="global-numpy-rng",
        summary="legacy global numpy RNG call (np.random.rand & friends)",
        rationale="Brownian displacements must be reproducible per seed "
                  "(Section II.C); global-state RNG calls break replay and "
                  "cross-thread determinism.  Use "
                  "np.random.default_rng(seed).")

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (len(parts) == 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _RNG_ALLOWED):
                yield self.finding(
                    ctx, node,
                    f"call to global RNG `{dotted}` (shared mutable state)",
                    hint="use an explicit np.random.default_rng(seed) "
                         "Generator")


@register
class UnguardedCholeskyRule(Rule):
    """RPR003: Cholesky on a mobility matrix without an SPD failure guard."""

    meta = RuleMeta(
        id="RPR003", name="unguarded-cholesky",
        summary="np.linalg.cholesky outside a try/except LinAlgError guard",
        rationale="The RPY mobility is SPD only up to round-off and overlap "
                  "regularization (Section II.A); an unguarded factorization "
                  "turns near-singular configurations into raw "
                  "LinAlgError crashes instead of the package's "
                  "NotPositiveDefiniteError diagnostics.")

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        guarded: set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            if not any(self._handles_linalg_error(h) for h in node.handlers):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    guarded.add(id(sub))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func) or ""
            if not dotted.endswith("linalg.cholesky"):
                continue
            if id(node) in guarded:
                continue
            yield self.finding(
                ctx, node,
                "cholesky factorization without a LinAlgError guard",
                hint="wrap in try/except LinAlgError raising "
                     "NotPositiveDefiniteError, or add a diagonal jitter "
                     "before factorizing")

    @staticmethod
    def _handles_linalg_error(handler: ast.ExceptHandler) -> bool:
        types = ([] if handler.type is None
                 else handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        if handler.type is None:
            return True  # bare except technically guards (RPR006 fires)
        for t in types:
            name = _last_attr(t) or ""
            if name in ("LinAlgError", "Exception", "BaseException"):
                return True
        return False


@register
class MissingMinimumImageRule(Rule):
    """RPR004: raw pairwise distances in a periodic-box module."""

    meta = RuleMeta(
        id="RPR004", name="missing-minimum-image",
        summary="pair distance computed from a raw difference in a module "
                "that imports the periodic box",
        rationale="Every pairwise kernel must fold separations with the "
                  "minimum-image convention (Section II.B); "
                  "norm(r[i] - r[j]) without Box.distances/minimum_image "
                  "is wrong for pairs straddling the boundary.")

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        if not self._module_is_periodic(ctx.tree):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func) or ""
            if not (dotted.endswith("linalg.norm") or dotted == "norm"):
                continue
            if node.args and self._is_raw_pair_difference(node.args[0]):
                yield self.finding(
                    ctx, node,
                    "distance computed from a raw coordinate difference "
                    "in a periodic-box module",
                    hint="use Box.distances(...) or "
                         "minimum_image(r_i - r_j, L) before taking the norm")

    @staticmethod
    def _is_raw_pair_difference(node: ast.expr) -> bool:
        """True for ``x[i] - x[j]``-style differences of indexed coordinates.

        Plain name differences (residuals like ``u_pme - u_ref``) are
        not pair separations and are left alone.
        """
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub)):
            return False
        return (isinstance(node.left, ast.Subscript)
                or isinstance(node.right, ast.Subscript))

    @staticmethod
    def _module_is_periodic(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.endswith("geometry.box") or module.endswith("pbc"):
                    return True
                if any(a.name in ("Box", "minimum_image") for a in node.names):
                    return True
        return False


@register
class DtypeDriftRule(Rule):
    """RPR005: reduced-precision dtype in code documented as float64."""

    meta = RuleMeta(
        id="RPR005", name="dtype-drift",
        summary="array created with a reduced-precision dtype "
                "(float32/float16/complex64)",
        rationale="The Ewald error bounds and Lanczos convergence analysis "
                  "(Sections III-IV) assume float64 kernels; silent "
                  "single-precision arrays destroy the tuned e_p/e_k "
                  "accuracy targets.")

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "dtype":
                    continue
                name = None
                if isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, str):
                    name = kw.value.value
                else:
                    name = _last_attr(kw.value)
                if name in _NARROW_DTYPES:
                    yield self.finding(
                        ctx, kw.value,
                        f"reduced-precision dtype {name!r} in a float64 "
                        "code base",
                        hint="use np.float64 (the package-wide contract) "
                             "or add an explicit `# noqa: RPR005` with "
                             "justification")


@register
class SwallowedExceptionRule(Rule):
    """RPR006: broad exception handler that swallows ``repro.errors``."""

    meta = RuleMeta(
        id="RPR006", name="swallowed-exception",
        summary="bare `except:` or `except Exception:` that does not "
                "re-raise",
        rationale="ConvergenceError / NotPositiveDefiniteError carry solver "
                  "diagnostics (iterations, residuals); a broad handler "
                  "that swallows them hides the dominant failure mode of "
                  "the stochastic sampler (Section III.B).")

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue
            label = ("bare except:" if node.type is None
                     else f"except {_last_attr(node.type)}:")
            yield self.finding(
                ctx, node,
                f"{label} swallows repro.errors diagnostics",
                hint="catch the specific ReproError subclass, or re-raise "
                     "after handling")

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        name = _last_attr(handler.type)
        return name in ("Exception", "BaseException")


@register
class MutableDefaultRule(Rule):
    """RPR007: mutable default argument."""

    meta = RuleMeta(
        id="RPR007", name="mutable-default-argument",
        summary="function default is a mutable literal or constructor",
        rationale="A mutable default is shared across calls — state leaks "
                  "between nominally independent simulations and breaks "
                  "seeded reproducibility.")

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in {func.name!r}",
                        hint="default to None and create the container "
                             "inside the function body")

    @classmethod
    def _is_mutable(cls, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _last_attr(node.func) in cls._MUTABLE_CALLS
        return False


@register
class AssertValidationRule(Rule):
    """RPR008: ``assert`` used for input validation in library code."""

    meta = RuleMeta(
        id="RPR008", name="assert-validation",
        summary="assert statement in library code (stripped under -O)",
        rationale="Assertions disappear under `python -O`, silently "
                  "disabling the very SPD/shape checks that keep long "
                  "simulations honest; raise ConfigurationError instead.")

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx, node,
                    "assert used for validation (removed under python -O)",
                    hint="raise repro.errors.ConfigurationError (or use "
                         "repro.utils.validation.require)")


@register
class DirectWallClockRule(Rule):
    """RPR009: wall-clock read outside the timing/observability layers."""

    meta = RuleMeta(
        id="RPR009", name="direct-wall-clock",
        summary="direct time.perf_counter()/time.time() call outside "
                "repro.utils.timing, repro.obs and the bench harness",
        rationale="Ad-hoc clock reads bypass the Timer/PhaseTimer/tracer "
                  "chokepoints, so the interval never reaches span traces, "
                  "metrics or the Fig. 5 phase profile; route timing "
                  "through repro.utils.timing or an obs span instead.")

    #: ``time.<attr>()`` calls that read a wall/CPU clock.
    _CLOCK_ATTRS = frozenset({
        "time", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns",
    })
    #: Unambiguous bare names (``from time import perf_counter``);
    #: bare ``time(...)`` is too common a user symbol to flag.
    _CLOCK_NAMES = _CLOCK_ATTRS - {"time"}

    @staticmethod
    def _exempt(display_path: str) -> bool:
        parts = display_path.replace("\\", "/").split("/")
        filename = parts[-1] if parts else ""
        if filename.startswith("test_") or "tests" in parts:
            return True
        if "bench" in parts or "benchmarks" in parts or "obs" in parts:
            return True
        return filename == "timing.py" and "utils" in parts

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        if self._exempt(ctx.display_path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            bare = isinstance(node.func, ast.Name)
            clock = None
            if dotted and dotted.startswith("time."):
                attr = dotted.split(".", 1)[1]
                if attr in self._CLOCK_ATTRS:
                    clock = dotted
            elif bare and node.func.id in self._CLOCK_NAMES:
                clock = node.func.id
            if clock is not None:
                yield self.finding(
                    ctx, node,
                    f"direct wall-clock call {clock}() outside the "
                    "timing utilities",
                    hint="use repro.utils.timing.Timer/PhaseTimer or an "
                         "obs.span so the interval is observable")


@register
class SwallowedStepFailureRule(Rule):
    """RPR010: broad handler discarding failures outside the taxonomy."""

    meta = RuleMeta(
        id="RPR010", name="swallowed-step-failure",
        summary="bare `except:` or `except Exception:` that neither "
                "re-raises nor routes the failure through the resilience "
                "taxonomy (StepFailure / classify_exception / a recovery "
                "log)",
        rationale="A StepFailure carries the failure kind, step, attempt "
                  "and solver diagnostics the supervisor and recovery "
                  "ladder act on; a broad handler that drops it silently "
                  "turns a classified, retryable fault into a wrong "
                  "answer.  Even a deliberate process/worker boundary "
                  "(where `# noqa: RPR006` is acceptable) must still "
                  "convert the exception with StepFailure.from_exception "
                  "or record it on a RecoveryLog before moving on.")

    #: Call names (last dotted components) that count as routing the
    #: failure through the resilience taxonomy.
    _TAXONOMY_CALLS = frozenset({
        "StepFailure", "from_exception", "classify_exception", "record",
    })

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if self._compliant(node):
                continue
            label = ("bare except:" if node.type is None
                     else f"except {_last_attr(node.type)}:")
            yield self.finding(
                ctx, node,
                f"{label} drops the failure without re-raising or routing "
                "it through the resilience taxonomy",
                hint="re-raise, wrap with StepFailure.from_exception(...), "
                     "or record the failure on a RecoveryLog")

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        return any(_last_attr(t) in ("Exception", "BaseException")
                   for t in types)

    @classmethod
    def _compliant(cls, handler: ast.ExceptHandler) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call):
                name = _last_attr(sub.func)
                if name in cls._TAXONOMY_CALLS:
                    return True
        return False


@register
class AdHocWorkerPoolRule(Rule):
    """RPR011: worker pool constructed outside the execution layer."""

    meta = RuleMeta(
        id="RPR011", name="ad-hoc-worker-pool",
        summary="direct ThreadPoolExecutor / ProcessPoolExecutor / "
                "multiprocessing Pool construction outside repro.exec",
        rationale="The ExecutionContext owns worker resources: it sizes "
                  "pools against the configured worker budget (so "
                  "ensemble workers don't oversubscribe the machine), "
                  "reuses them across applications instead of paying "
                  "thread start-up per call, and closes them "
                  "deterministically.  A pool constructed elsewhere "
                  "escapes all three guarantees.")

    #: Constructor names that allocate a worker pool.
    _POOL_NAMES = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})

    @staticmethod
    def _exempt(display_path: str) -> bool:
        parts = display_path.replace("\\", "/").split("/")
        filename = parts[-1] if parts else ""
        if filename.startswith("test_") or "tests" in parts:
            return True
        return "exec" in parts

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        if self._exempt(ctx.display_path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _last_attr(node.func)
            dotted = _dotted(node.func)
            pool = None
            if name in self._POOL_NAMES:
                pool = name
            elif name == "Pool" and dotted is not None and "." in dotted:
                # multiprocessing.Pool / mp.Pool / ctx.Pool(...)
                pool = dotted
            if pool is not None:
                yield self.finding(
                    ctx, node,
                    f"worker pool {pool}(...) constructed outside "
                    "repro.exec",
                    hint="request workers from an "
                         "repro.exec.ExecutionContext (run_tasks / "
                         "thread_pool / proc_pool) so sizing, reuse and "
                         "shutdown stay centralized")


@register
class BlockingCallInAsyncRule(Rule):
    """RPR012: blocking call inside an ``async def`` of the serve layer."""

    meta = RuleMeta(
        id="RPR012", name="blocking-call-in-async",
        summary="blocking call (time.sleep, sync Connection.recv, "
                "subprocess, blocking file I/O) inside an async def "
                "under src/repro/serve/",
        rationale="The serve event loop multiplexes every client over "
                  "one thread: a single blocking call stalls request "
                  "parsing, batch-window timers and progress streaming "
                  "for all connections at once — the latency SLO dies "
                  "quietly.  CPU-bound and blocking work belongs on the "
                  "ExecutionContext thread pool via "
                  "loop.run_in_executor, or behind the asyncio-native "
                  "equivalent (asyncio.sleep, stream reader/writer).")

    #: Dotted calls that always block the calling thread.
    _BLOCKING_DOTTED = frozenset({
        "time.sleep", "subprocess.run", "subprocess.call",
        "subprocess.check_call", "subprocess.check_output",
        "subprocess.Popen", "os.system",
    })
    #: Bare names (``from time import sleep``; the ``open`` builtin —
    #: file I/O on the loop thread blocks on the filesystem).
    _BLOCKING_BARE = frozenset({"sleep", "open"})
    #: Method names that are synchronous waits on their object
    #: (pipe/socket reads, process joins, blocking Path I/O).
    _BLOCKING_METHODS = frozenset({
        "recv", "recv_bytes", "accept", "wait_for_message",
        "read_text", "read_bytes", "write_text", "write_bytes",
    })

    @staticmethod
    def _applies(display_path: str) -> bool:
        parts = display_path.replace("\\", "/").split("/")
        filename = parts[-1] if parts else ""
        if filename.startswith("test_") or "tests" in parts:
            return False
        return "serve" in parts

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        if not self._applies(ctx.display_path):
            return
        awaited: set[int] = set()
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Await)
                    and isinstance(node.value, ast.Call)):
                awaited.add(id(node.value))
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for call in self._direct_calls(func):
                if id(call) in awaited:
                    continue  # awaited: an async wrapper, not a block
                label = self._blocking_label(call)
                if label is not None:
                    yield self.finding(
                        ctx, call,
                        f"blocking call {label}(...) inside "
                        f"async def {func.name}",
                        hint="run it via loop.run_in_executor(context."
                             "thread_pool(), ...) or use the asyncio-"
                             "native equivalent (asyncio.sleep, "
                             "StreamReader/StreamWriter)")

    @staticmethod
    def _direct_calls(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
        """Calls in ``func``'s own body, not in nested ``def``s.

        Nested synchronous functions are almost always executor
        targets — blocking *there* is the point; nested async
        functions are visited by the outer walk on their own.
        """
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _blocking_label(cls, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is not None and dotted in cls._BLOCKING_DOTTED:
            return dotted
        if (isinstance(call.func, ast.Name)
                and call.func.id in cls._BLOCKING_BARE):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            if (call.func.attr in cls._BLOCKING_METHODS
                    and dotted not in cls._BLOCKING_DOTTED):
                return f".{call.func.attr}"
        return None
