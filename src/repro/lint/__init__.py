"""repro.lint — physics-aware static analysis and runtime array contracts.

Two cooperating layers keep the package's array invariants honest:

* **Static layer** — an AST linter (``python -m repro.lint``, ``repro
  lint``, ``repro-lint``) with per-file rules RPR001-RPR011 targeting
  the failure modes of fast Brownian dynamics codes (unvalidated
  position arrays, global RNG state, unguarded Cholesky
  factorizations, missing minimum-image folds, dtype drift, swallowed
  solver diagnostics, mutable defaults, ``assert``-based validation,
  failures dropped outside the resilience taxonomy)
  plus the whole-program dataflow families of :mod:`repro.lint.flow`:
  RPR1xx shape/dtype flow, RPR2xx determinism flow and RPR3xx hot-path
  allocation lints.
* **Runtime layer** — :mod:`repro.lint.contracts`, lightweight
  decorators (``@positions_arg``, ``@force_block_arg``,
  ``@returns_spd``, ...) applied across the public entry points and
  toggled by the ``REPRO_CHECKS`` environment variable (``0`` off,
  ``1`` shape checks, ``strict`` finiteness + SPD debug gates).

See ``docs/static_analysis.md`` for each rule's rationale and the paper
section it protects.
"""

from __future__ import annotations

from .contracts import (
    BASIC,
    OFF,
    STRICT,
    array_arg,
    check_level,
    contract,
    force_block_arg,
    positions_arg,
    radii_arg,
    returns_spd,
    spd_arg,
    trajectory_arg,
)
from .baseline import Baseline, apply_baseline
from .engine import lint_paths, lint_source
from .findings import Finding, REPORT_JSON_SCHEMA
from .registry import all_rules, get_rule, resolve_selection

__all__ = [
    "Finding",
    "REPORT_JSON_SCHEMA",
    "lint_paths",
    "lint_source",
    "all_rules",
    "get_rule",
    "resolve_selection",
    "Baseline",
    "apply_baseline",
    "OFF",
    "BASIC",
    "STRICT",
    "check_level",
    "contract",
    "positions_arg",
    "force_block_arg",
    "radii_arg",
    "trajectory_arg",
    "array_arg",
    "spd_arg",
    "returns_spd",
]
