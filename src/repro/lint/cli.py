"""Command-line interface of the linter.

Invocations::

    python -m repro.lint [paths ...]
    repro lint [paths ...]          (subcommand of the main CLI)
    repro-lint [paths ...]          (console script)

Exit codes follow the convention CI gates on: ``0`` no findings, ``1``
findings were reported, ``2`` usage error (bad path / unknown rule).

Beyond plain linting the CLI drives two workflows:

* ``--baseline write`` snapshots current findings to a baseline file;
  ``--baseline check`` fails only on findings not covered by it.
* ``--graph out.json`` exports the whole-program model (call graph,
  function summaries, hot registry) the dataflow rules analyzed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TextIO

from ..errors import ConfigurationError
from .baseline import DEFAULT_BASELINE, Baseline, apply_baseline
from .findings import Finding, report_to_dict
from .engine import lint_paths
from .registry import all_rules

__all__ = ["main", "build_parser", "format_github"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Physics-aware static analysis for the repro package "
                    "(file rules RPR001-RPR010, dataflow rules "
                    "RPR101-RPR302; see docs/static_analysis.md)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", "-f", "--output-format",
                        dest="format", choices=["text", "json", "github"],
                        default="text",
                        help="output format (github emits workflow-command "
                             "annotations for CI)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULES",
                        help="comma-separated rule-id prefixes to enable "
                             "(default: all); repeatable")
    parser.add_argument("--ignore", action="append", default=None,
                        metavar="RULES",
                        help="comma-separated rule-id prefixes to disable; "
                             "repeatable")
    parser.add_argument("--baseline", choices=["write", "check"],
                        default=None,
                        help="write: snapshot findings to the baseline "
                             "file; check: fail only on findings not in it")
    parser.add_argument("--baseline-file", default=DEFAULT_BASELINE,
                        metavar="PATH",
                        help=f"baseline location (default: "
                             f"{DEFAULT_BASELINE})")
    parser.add_argument("--graph", default=None, metavar="PATH",
                        help="also export the analyzed call graph + "
                             "function summaries as JSON to PATH")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every registered rule and exit")
    return parser


def _split_csv(values: list[str] | None) -> list[str] | None:
    if values is None:
        return None
    return [item.strip() for value in values for item in value.split(",")
            if item.strip()]


def _print_rules(out: "TextIO") -> None:
    for rule in all_rules():
        meta = rule.meta
        print(f"{meta.id}  {meta.name}", file=out)
        print(f"    {meta.summary}", file=out)


_RULE_NAMES = {rule.meta.id: rule.meta.name for rule in all_rules()}


def format_github(finding: Finding) -> str:
    """One GitHub Actions workflow-command annotation per finding.

    Rendered by Actions as an inline warning on the PR diff; newlines
    and the command-significant characters are escaped per the
    workflow-command spec.
    """
    def _escape(text: str, *, prop: bool) -> str:
        text = (text.replace("%", "%25").replace("\r", "%0D")
                    .replace("\n", "%0A"))
        if prop:
            text = text.replace(":", "%3A").replace(",", "%2C")
        return text

    name = _RULE_NAMES.get(finding.rule, "syntax-error")
    title = _escape(f"{finding.rule} {name}", prop=True)
    message = finding.message + (f" ({finding.hint})" if finding.hint
                                 else "")
    return (f"::warning file={_escape(finding.path, prop=True)},"
            f"line={finding.line},col={finding.col + 1},"
            f"title={title}::{_escape(message, prop=False)}")


def _emit(findings: list[Finding], files_checked: int, fmt: str,
          trailer: str = "") -> None:
    if fmt == "json":
        print(json.dumps(report_to_dict(findings, files_checked), indent=2))
        return
    if fmt == "github":
        for finding in findings:
            print(format_github(finding))
    else:
        for finding in findings:
            print(finding.format_text())
    summary = (f"{len(findings)} finding(s) in {files_checked} file(s)"
               if findings else
               f"clean: {files_checked} file(s), no findings")
    if trailer:
        summary += f" ({trailer})"
    print(summary)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code (0 clean, 1 findings)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules(sys.stdout)
        return 0

    try:
        findings, files_checked = lint_paths(
            args.paths, select=_split_csv(args.select),
            ignore=_split_csv(args.ignore))
        if args.graph:
            from .flow.graphexport import export_graph
            export_graph(args.paths, args.graph)

        if args.baseline == "write":
            Baseline.from_findings(findings).write(args.baseline_file)
            print(f"baseline: wrote {len(findings)} finding(s) to "
                  f"{args.baseline_file}")
            return 0
        if args.baseline == "check":
            baseline = Baseline.load(args.baseline_file)
            findings, suppressed, stale = apply_baseline(findings, baseline)
            for key in stale:
                print(f"repro-lint: note: stale baseline entry {key!r} "
                      f"(fixed? shrink the baseline)", file=sys.stderr)
            trailer = f"{suppressed} baselined" if suppressed else ""
            _emit(findings, files_checked, args.format, trailer)
            return 1 if findings else 0
    except ConfigurationError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    _emit(findings, files_checked, args.format)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
