"""Command-line interface of the linter.

Invocations::

    python -m repro.lint [paths ...]
    repro lint [paths ...]          (subcommand of the main CLI)
    repro-lint [paths ...]          (console script)

Exit codes follow the convention CI gates on: ``0`` no findings, ``1``
findings were reported, ``2`` usage error (bad path / unknown rule).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ConfigurationError
from .findings import report_to_dict
from .engine import lint_paths
from .registry import all_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Physics-aware static analysis for the repro package "
                    "(rules RPR001-RPR009; see docs/static_analysis.md)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", "-f", choices=["text", "json"],
                        default="text", help="output format")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULES",
                        help="comma-separated rule-id prefixes to enable "
                             "(default: all); repeatable")
    parser.add_argument("--ignore", action="append", default=None,
                        metavar="RULES",
                        help="comma-separated rule-id prefixes to disable; "
                             "repeatable")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every registered rule and exit")
    return parser


def _split_csv(values: list[str] | None) -> list[str] | None:
    if values is None:
        return None
    return [item.strip() for value in values for item in value.split(",")
            if item.strip()]


def _print_rules(out) -> None:
    for rule in all_rules():
        meta = rule.meta
        print(f"{meta.id}  {meta.name}", file=out)
        print(f"    {meta.summary}", file=out)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code (0 clean, 1 findings)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules(sys.stdout)
        return 0

    try:
        findings, files_checked = lint_paths(
            args.paths, select=_split_csv(args.select),
            ignore=_split_csv(args.ignore))
    except ConfigurationError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report_to_dict(findings, files_checked), indent=2))
    else:
        for finding in findings:
            print(finding.format_text())
        summary = (f"{len(findings)} finding(s) in {files_checked} file(s)"
                   if findings else
                   f"clean: {files_checked} file(s), no findings")
        print(summary)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
