"""Runtime array contracts for the public entry points of the package.

The static layer (``repro lint``) proves that every public function
*declares* its array contract; this module makes the contract executable.
Decorators validate the named argument (or the return value) according
to the ``REPRO_CHECKS`` environment variable:

``REPRO_CHECKS=0``
    Contracts are disabled entirely — decorated functions run with zero
    per-call validation overhead (one cached environment lookup).
``REPRO_CHECKS=1`` (default)
    Shape/dtype contracts are enforced; ``O(n)`` finiteness scans and
    ``O(d^3)`` SPD factorizations are skipped.
``REPRO_CHECKS=strict``
    Everything: finiteness scans, and — for small operators — symmetric
    positive definiteness of debug mobility matrices (the invariant
    Lanczos needs before taking ``M^(1/2) Z``, paper Section III.B).

All contract violations raise
:class:`~repro.errors.ConfigurationError` so callers have a single
exception type for "you handed the library a malformed array".
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable

import numpy as np

from ..config import get_config
from ..errors import ConfigurationError
from ..utils import validation

__all__ = ["OFF", "BASIC", "STRICT", "check_level", "contract",
           "positions_arg", "force_block_arg", "radii_arg",
           "trajectory_arg", "array_arg", "spd_arg", "returns_spd"]

#: Contract levels (ordered).
OFF, BASIC, STRICT = 0, 1, 2

_LEVEL_NAMES = {
    "0": OFF, "off": OFF, "false": OFF, "no": OFF, "none": OFF,
    "1": BASIC, "on": BASIC, "true": BASIC, "yes": BASIC, "basic": BASIC,
    "2": STRICT, "strict": STRICT, "full": STRICT,
}

#: Largest operator dimension ``3n`` for which strict mode runs the
#: ``O(d^3)`` SPD eigenvalue check (debug-sized systems only).
SPD_CHECK_MAX_DIM = 900


def check_level() -> int:
    """The active contract level (re-resolved per call).

    The level comes from :func:`repro.config.get_config`, which
    re-reads the environment fingerprint on every call — cheap enough
    to do on every decorated call, which lets tests and long-running
    processes flip ``REPRO_CHECKS`` without re-importing the package.
    """
    raw = get_config().checks
    try:
        return _LEVEL_NAMES[raw]
    except KeyError:
        raise ConfigurationError(
            f"REPRO_CHECKS must be one of 0, 1, strict; got {raw!r}") from None


def contract(name: str, validate: Callable) -> Callable:
    """Generic argument contract: apply ``validate`` to parameter ``name``.

    ``validate(value, strict)`` is called when checks are enabled and its
    return value replaces the argument (return ``value`` unchanged for
    check-only contracts).  The decorated function exposes the contract
    via the ``__repro_contracts__`` attribute for introspection.
    """

    def decorate(fn: Callable) -> Callable:
        params = list(inspect.signature(fn).parameters)
        try:
            index = params.index(name)
        except ValueError:
            raise ConfigurationError(
                f"@contract: {fn.__qualname__} has no parameter {name!r}"
            ) from None

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            level = check_level()
            if level == OFF:
                return fn(*args, **kwargs)
            strict = level >= STRICT
            if name in kwargs:
                kwargs = dict(kwargs)
                kwargs[name] = validate(kwargs[name], strict)
            elif index < len(args):
                args = list(args)
                args[index] = validate(args[index], strict)
                args = tuple(args)
            return fn(*args, **kwargs)

        existing = getattr(fn, "__repro_contracts__", ())
        wrapper.__repro_contracts__ = (*existing, name)
        return wrapper

    return decorate


# ----------------------------------------------------------------------
# named contracts
# ----------------------------------------------------------------------

def positions_arg(name: str = "positions") -> Callable:
    """Require parameter ``name`` to be an ``(n, 3)`` float64 array.

    The argument is normalized (contiguous float64) in place of the raw
    value; strict mode adds the finiteness scan.
    """

    def validate(value: Any, strict: bool) -> Any:
        return validation.as_positions(value, check_finite=strict)

    return contract(name, validate)


def force_block_arg(name: str = "forces") -> Callable:
    """Require ``name`` to be a ``(3n,)`` vector or non-empty ``(3n, s)`` block.

    Check-only (the argument passes through unchanged — operators call
    :func:`~repro.utils.validation.as_force_block` themselves to learn
    the flat/block shape).  ``n`` is inferred from divisibility by 3.
    """

    def validate(value: Any, strict: bool) -> Any:
        f = np.asarray(value)
        if f.ndim not in (1, 2):
            raise ConfigurationError(
                f"{name} must have shape (3n,) or (3n, s), got {f.shape}")
        if f.shape[0] % 3 != 0:
            raise ConfigurationError(
                f"{name} first dimension must be a multiple of 3 "
                f"(3 components per particle), got {f.shape[0]}")
        if f.ndim == 2 and f.shape[1] == 0:
            raise ConfigurationError(
                f"{name} block has zero vectors (s == 0)")
        if strict and f.size and not np.all(np.isfinite(
                np.asarray(f, dtype=np.float64))):
            raise ConfigurationError(f"{name} contain non-finite values")
        return value

    return contract(name, validate)


def radii_arg(name: str = "radii") -> Callable:
    """Require ``name`` to be a positive finite ``(n,)`` radii array."""

    def validate(value: Any, strict: bool) -> Any:
        return validation.as_radii(value)

    return contract(name, validate)


def trajectory_arg(name: str = "positions") -> Callable:
    """Require ``name`` to be a ``(T, n, 3)`` float64 trajectory array."""

    def validate(value: Any, strict: bool) -> Any:
        r = np.asarray(value, dtype=np.float64)
        if r.ndim != 3 or r.shape[2] != 3:
            raise ConfigurationError(
                f"{name} must have shape (T, n, 3), got {r.shape}")
        if strict and not np.all(np.isfinite(r)):
            raise ConfigurationError(f"{name} contain non-finite values")
        return r

    return contract(name, validate)


def array_arg(name: str, ndim: tuple[int, ...] = (1, 2)) -> Callable:
    """Require ``name`` to be a float array with one of the given ranks.

    Check-only; used for Krylov starting vectors/blocks where the solver
    performs its own shape-specific handling.
    """

    def validate(value: Any, strict: bool) -> Any:
        z = np.asarray(value)
        if z.ndim not in ndim:
            expected = " or ".join(f"{d}-D" for d in ndim)
            raise ConfigurationError(
                f"{name} must be {expected}, got shape {z.shape}")
        if strict and z.size and not np.all(np.isfinite(
                np.asarray(z, dtype=np.float64))):
            raise ConfigurationError(f"{name} contain non-finite values")
        return value

    return contract(name, validate)


def _check_spd(matrix: np.ndarray, what: str) -> None:
    """Strict-mode SPD gate for debug-sized matrices."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ConfigurationError(
            f"{what} must be a square matrix, got shape {m.shape}")
    if m.shape[0] > SPD_CHECK_MAX_DIM:
        return  # O(d^3) check is debug-only; skip at production sizes
    if not np.allclose(m, m.T, rtol=1e-8, atol=1e-10):
        raise ConfigurationError(f"{what} is not symmetric")
    eigenvalues = np.linalg.eigvalsh(m)
    floor = -1e-10 * max(1.0, float(eigenvalues[-1]))
    if eigenvalues[0] < floor:
        raise ConfigurationError(
            f"{what} is not positive definite "
            f"(min eigenvalue {eigenvalues[0]:.3e}); Lanczos/Cholesky "
            "require an SPD mobility (paper Section III.B)")


def spd_arg(name: str = "mobility") -> Callable:
    """Under ``REPRO_CHECKS=strict``, require ``name`` to be SPD.

    Symmetry and the eigenvalue check run only in strict mode and only
    for matrices up to :data:`SPD_CHECK_MAX_DIM` — this is a debug gate
    for the dense Algorithm 1 path, not a production check.
    """

    def validate(value: Any, strict: bool) -> Any:
        if strict:
            _check_spd(value, name)
        return value

    return contract(name, validate)


def returns_spd(what: str = "returned mobility matrix",
                unless: Callable | None = None) -> Callable:
    """Under ``REPRO_CHECKS=strict``, verify the return value is SPD.

    ``unless`` is an optional predicate receiving the bound instance;
    when it returns ``True`` the check is skipped.  Used for kernel
    variants whose mobility is *legitimately* not positive definite —
    the Oseen tensor loses definiteness at close range, which is the
    very deficiency RPY exists to fix.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = fn(*args, **kwargs)
            if check_level() >= STRICT and not (
                    unless is not None and args and unless(args[0])):
                _check_spd(result, what)
            return result

        existing = getattr(fn, "__repro_contracts__", ())
        wrapper.__repro_contracts__ = (*existing, "return")
        return wrapper

    return decorate
