"""``python -m repro.lint`` dispatches to :mod:`repro.lint.cli`."""

import sys

from .cli import main

sys.exit(main())
