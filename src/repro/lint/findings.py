"""Finding records produced by the linter and their JSON representation.

A :class:`Finding` is one rule violation at one source location.  The
JSON document emitted by ``python -m repro.lint --format json`` is
described by :data:`REPORT_JSON_SCHEMA` (a JSON-Schema fragment the test
suite validates against), so CI tooling can consume the output without
parsing the human-readable text format.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        File the violation was found in (as given on the command line).
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule identifier, e.g. ``"RPR002"``.
    message:
        Human-readable description of the violation.
    hint:
        A short suggestion for how to fix it.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable representation (one entry of ``findings``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }

    def format_text(self) -> str:
        """The one-line text rendering ``path:line:col: RULE message``."""
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text


#: JSON Schema of the document produced by ``--format json``.
REPORT_JSON_SCHEMA: dict = {
    "type": "object",
    "required": ["version", "findings", "counts", "files_checked"],
    "properties": {
        "version": {"type": "integer"},
        "files_checked": {"type": "integer", "minimum": 0},
        "counts": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 1},
        },
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["path", "line", "col", "rule", "message", "hint"],
                "properties": {
                    "path": {"type": "string"},
                    "line": {"type": "integer", "minimum": 1},
                    "col": {"type": "integer", "minimum": 0},
                    "rule": {"type": "string", "pattern": "^RPR[0-9]{3}$"},
                    "message": {"type": "string"},
                    "hint": {"type": "string"},
                },
            },
        },
    },
}


def report_to_dict(findings: list[Finding], files_checked: int) -> dict:
    """Assemble the ``--format json`` document for a finished run."""
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return {
        "version": 1,
        "files_checked": files_checked,
        "counts": counts,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
