"""Whole-program dataflow rules: RPR1xx, RPR2xx and RPR3xx families.

All families run on the shared analysis of one
:class:`~repro.lint.flow.project.ProjectModel` (built once per lint
run) and fire only on *definite* facts — an unknown shape, dtype or
contiguity never produces a finding.

* **RPR1xx — shape/dtype flow**: the contiguous float64
  ``(3n,)``/``(3n, s)`` pipeline the paper's performance model assumes
  (Sections III-IV) must hold across call boundaries.
* **RPR2xx — determinism flow**: bit-identical replay (PR 2's rollback
  guarantee) requires every stochastic callee to consume the caller's
  seeded Generator and no numeric result to depend on hash order.
* **RPR3xx — hot-path allocations**: per-iteration allocations in the
  span-instrumented PME/Krylov/sparse phases show up directly in the
  Fig. 5 phase profile; workspaces belong outside the loop.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..findings import Finding
from ..registry import ProjectRule, RuleMeta, register
from .domain import NARROW_DTYPES, match_patterns, shape_str
from .hotpaths import derive_hot_registry
from .interp import FunctionAnalysis
from .project import FunctionInfo, ProjectModel
from .summaries import (analyze_project, arg_spec_pairs,
                        specs_for_call)

__all__ = ["ensure_analyzed"]


def ensure_analyzed(project: ProjectModel) -> None:
    """Run the (shared, idempotent) whole-program analysis."""
    if getattr(project, "_flow_analyzed", False):
        return
    analyze_project(project)
    derive_hot_registry(project)
    project._flow_analyzed = True  # type: ignore[attr-defined]


def _callee_label(callee: str | None) -> str:
    if callee is None:
        return "<unresolved>"
    if callee.startswith("@method."):
        return f".{callee[len('@method.'):]}()"
    return callee.rsplit(".", 1)[-1] + "()" if "." in callee else callee


def _iter_analyses(project: ProjectModel
                   ) -> Iterator[Tuple[FunctionInfo, FunctionAnalysis]]:
    for qual in sorted(project.analyses):
        analysis = project.analyses[qual]
        if isinstance(analysis, FunctionAnalysis):
            info = project.function(qual)
            if info is not None:
                yield info, analysis


@register
class ShapeFlowRule(ProjectRule):
    """RPR101: call argument definitely incompatible with the callee's
    declared symbolic shape."""

    meta = RuleMeta(
        id="RPR101", name="shape-incompatible-call",
        summary="argument shape is provably incompatible with the "
                "callee's declared (3n,)/(3n, s)/(n, 3) contract",
        rationale="The mobility pipeline reinterprets nothing: an "
                  "(n, 3) block handed to a (3n,) entry point (or an n "
                  "where a 3n is required) silently computes wrong "
                  "physics long before any runtime check fires "
                  "(paper Sections II, IV.A).")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        ensure_analyzed(project)
        for info, analysis in _iter_analyses(project):
            path = info.module.path
            for obs in analysis.calls:
                if obs.star_args:
                    continue
                specs = specs_for_call(obs.callee, project)
                if not specs:
                    continue
                bindings: dict = {}
                for key, value, spec in arg_spec_pairs(obs.pos_args, obs.kw_args, specs):
                    if spec.shape is None or value.kind != "array" \
                            or value.shape is None:
                        continue
                    if not match_patterns(spec.shape, value.shape,
                                          bindings):
                        yield self.finding_at(
                            path, obs.node,
                            f"argument {key!r} of "
                            f"{_callee_label(obs.callee)} has shape "
                            f"{shape_str(value.shape)}, incompatible "
                            f"with the declared {spec.shape.what}",
                            hint="reshape/transpose the array to the "
                                 "documented layout before the call")


@register
class DtypeFlowRule(ProjectRule):
    """RPR102: reduced-precision value flowing into the float64
    pipeline (possibly across several calls)."""

    meta = RuleMeta(
        id="RPR102", name="dtype-pipeline-drift",
        summary="float32/complex64 value reaches a documented-float64 "
                "pipeline entry point (apply/apply_block/FFT/BCSR)",
        rationale="The Ewald error bounds and Lanczos convergence "
                  "criteria are calibrated in double precision "
                  "(Sections III-IV); one narrow array upstream of "
                  "apply_block silently destroys the e_p/e_k targets. "
                  "Interprocedural summaries catch drift RPR005 cannot "
                  "see (allocation and sink in different functions).")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        ensure_analyzed(project)
        for info, analysis in _iter_analyses(project):
            path = info.module.path
            for obs in analysis.calls:
                specs = specs_for_call(obs.callee, project)
                if not specs:
                    continue
                for key, value, spec in arg_spec_pairs(obs.pos_args, obs.kw_args, specs):
                    if not spec.require_wide:
                        continue
                    if value.kind == "array" \
                            and value.dtype in NARROW_DTYPES:
                        origin = f" (created by {value.provenance})" \
                            if value.provenance else ""
                        yield self.finding_at(
                            path, obs.node,
                            f"{value.dtype} value{origin} reaches the "
                            f"float64 pipeline via argument {key!r} of "
                            f"{_callee_label(obs.callee)}",
                            hint="keep the mobility pipeline in float64 "
                                 "end to end; cast at the boundary only "
                                 "with an explicit noqa justification")


@register
class ContiguityFlowRule(ProjectRule):
    """RPR103: non-contiguous array reaching an FFT/BCSR/C-kernel
    entry point."""

    meta = RuleMeta(
        id="RPR103", name="noncontiguous-kernel-input",
        summary="non-contiguous array (transpose/strided slice/order-F) "
                "reaches an FFT, BCSR or C-kernel entry point",
        rationale="The batched pipeline's claimed throughput assumes "
                  "unit-stride streams (Section IV.C); a transposed or "
                  "strided operand forces a hidden normalization copy "
                  "per application — correctness survives, the "
                  "performance model does not.")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        ensure_analyzed(project)
        for info, analysis in _iter_analyses(project):
            path = info.module.path
            for obs in analysis.calls:
                specs = specs_for_call(obs.callee, project)
                if not specs:
                    continue
                for key, value, spec in arg_spec_pairs(obs.pos_args, obs.kw_args, specs):
                    if not spec.require_contiguous:
                        continue
                    if value.kind == "array" and value.contiguous is False:
                        via = f" ({value.provenance})" \
                            if value.provenance else ""
                        yield self.finding_at(
                            path, obs.node,
                            f"non-contiguous array{via} passed as "
                            f"argument {key!r} of "
                            f"{_callee_label(obs.callee)}",
                            hint="make the operand C-contiguous once, "
                                 "outside the apply loop "
                                 "(np.ascontiguousarray)")


@register
class UnthreadedRngRule(ProjectRule):
    """RPR201: a Generator is created but a stochastic callee is
    invoked without it."""

    meta = RuleMeta(
        id="RPR201", name="unthreaded-rng",
        summary="numpy Generator created but not passed to a stochastic "
                "callee that accepts one",
        rationale="Replay and block rollback are bit-identical only if "
                  "every stochastic draw comes from the one seeded "
                  "Generator (Section II.C, PR 2's zero-fault "
                  "guarantee); a callee that silently seeds its own "
                  "default_rng() decouples the streams.")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        ensure_analyzed(project)
        for info, analysis in _iter_analyses(project):
            if not analysis.rng_created:
                continue
            path = info.module.path
            first_creation = min(node.lineno for node, _ in
                                 analysis.rng_created
                                 if hasattr(node, "lineno"))
            rng_names = ", ".join(sorted({name for _, name in
                                          analysis.rng_created}))
            for obs in analysis.calls:
                summary = project.summaries.get(obs.callee or "")
                if summary is None or not getattr(summary, "stochastic",
                                                  False):
                    continue
                if getattr(summary, "rng_param", None) is None:
                    continue
                if obs.passes_rng or obs.star_args:
                    continue
                if getattr(obs.node, "lineno", 0) < first_creation:
                    continue
                yield self.finding_at(
                    path, obs.node,
                    f"Generator {rng_names!r} is not threaded to "
                    f"stochastic callee {_callee_label(obs.callee)} "
                    f"(accepts {getattr(summary, 'rng_param', '?')!r})",
                    hint="pass the caller's Generator so all draws come "
                         "from one seeded stream")


@register
class UnorderedIterationRule(ProjectRule):
    """RPR202: numeric accumulation over a hash-ordered container."""

    meta = RuleMeta(
        id="RPR202", name="unordered-accumulation",
        summary="iteration over a set (or a set-derived dict) feeds "
                "numeric accumulation",
        rationale="Set iteration order depends on PYTHONHASHSEED; "
                  "float addition is not associative, so accumulating "
                  "over a set breaks bit-identical replay across runs. "
                  "(Insertion-ordered dicts are deterministic and "
                  "exempt unless their order derives from a set.)")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        ensure_analyzed(project)
        for info, analysis in _iter_analyses(project):
            path = info.module.path
            for loop in analysis.set_loops:
                if not loop.accumulates:
                    continue
                yield self.finding_at(
                    path, loop.node,
                    f"numeric accumulation iterates an unordered "
                    f"container ({loop.source})",
                    hint="iterate sorted(...) so the floating-point "
                         "reduction order is reproducible")


@register
class HotLoopAllocationRule(ProjectRule):
    """RPR301: array allocation inside a loop of a hot function."""

    meta = RuleMeta(
        id="RPR301", name="hot-loop-allocation",
        summary="array allocated inside a loop of a span-instrumented "
                "hot function (pme/krylov/sparse)",
        rationale="The measured phases of Fig. 5 are memory-bandwidth "
                  "bound; a per-iteration np.zeros/np.empty turns the "
                  "paper's streaming model into an allocator benchmark. "
                  "Hoist workspaces out of the loop (the MobilityCache "
                  "exists for exactly this).")

    _KIND = "alloc"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        ensure_analyzed(project)
        for info, analysis in _iter_analyses(project):
            span = project.hot.get(info.qualname)
            if span is None:
                continue
            path = info.module.path
            for alloc in analysis.allocs:
                if alloc.kind != self._KIND or alloc.loop_depth == 0:
                    continue
                yield self.finding_at(
                    path, alloc.node,
                    f"{alloc.label} inside a loop of hot path "
                    f"{info.name!r} (span {span})",
                    hint=self._hint())

    @staticmethod
    def _hint() -> str:
        return ("preallocate the workspace before the loop, or reuse "
                "the operator/cache scratch arrays")


@register
class HotLoopCopyRule(HotLoopAllocationRule):
    """RPR302: implicit array copy inside a loop of a hot function."""

    meta = RuleMeta(
        id="RPR302", name="hot-loop-copy",
        summary="implicit copy (ascontiguousarray/astype/.copy/"
                "concatenate) inside a loop of a hot function",
        rationale="An implicit per-iteration copy doubles the memory "
                  "traffic of a bandwidth-bound phase without showing "
                  "up in the operation count — the exact drift the "
                  "Section IV.D performance model cannot predict. "
                  "Normalize operands once at the entry point instead.")

    _KIND = "copy"

    @staticmethod
    def _hint() -> str:
        return ("normalize layout/dtype once before the loop; inside "
                "it, write into preallocated output via np.copyto/out=")
