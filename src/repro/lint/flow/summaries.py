"""Per-function summaries and their interprocedural propagation.

A :class:`FunctionSummary` condenses what the abstract interpreter
learned about one function into the facts that survive a call boundary:

* ``params`` — the requirements each parameter imposes on its argument
  (expected symbolic shape, float64 pipeline dtype, C-contiguity, the
  performance sinks — FFT / BCSR / C kernel — the value flows into,
  whether the parameter is an RNG),
* ``returns`` — the abstract value of the result,
* ``stochastic`` / ``rng_param`` — whether the function consumes
  randomness and through which parameter.

Requirements originate at three kinds of *specification anchors* and
are then propagated caller-ward to a fixpoint along identity argument
edges (an argument that is a parameter passed unchanged):

1. contract decorators (``@positions_arg``, ``@force_block_arg``, ...)
   declare the documented shapes of the public entry points,
2. a builtin table describes the external sinks (``numpy.fft.*``),
3. a protocol table describes the duck-typed operator methods
   (``apply``, ``apply_block``, ``matvec``, ``matmat``) whose receiver
   the AST cannot type.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Dict, Iterator, Mapping, Optional,
                    Sequence, Tuple)

from .domain import (
    AbstractValue,
    ParamSpec,
    ShapeSpec,
    UNKNOWN,
    array_value,
    rng_value,
)
from .interp import FunctionAnalysis, interpret_function
from .project import FunctionInfo, ModuleInfo, ProjectModel

__all__ = ["FunctionSummary", "analyze_project", "specs_for_call",
           "CONTRACT_SPECS", "PROTOCOL_SPECS", "EXTERNAL_SPECS"]

#: Maximum caller-ward propagation rounds (call-graph cycles converge
#: much earlier; this is a safety bound, not a tuning knob).
_MAX_ROUNDS = 25

_FORCE_PATTERNS = (((3, "N"),), ((3, "N"), (1, "S")))

#: contract decorator name -> (default parameter name, ParamSpec)
CONTRACT_SPECS: Dict[str, ParamSpec] = {
    "positions_arg": ParamSpec(
        name="positions",
        shape=ShapeSpec((((1, "N"), (3, None)),), what="(n, 3) positions"),
        require_wide=True),
    "force_block_arg": ParamSpec(
        name="forces",
        shape=ShapeSpec(_FORCE_PATTERNS, what="(3n,) / (3n, s) forces"),
        require_wide=True, sinks=frozenset({"pipeline"})),
    "radii_arg": ParamSpec(
        name="radii",
        shape=ShapeSpec((((1, "N"),),), what="(n,) radii")),
    "trajectory_arg": ParamSpec(
        name="positions",
        shape=ShapeSpec((((1, "T"), (1, "N"), (3, None)),),
                        what="(T, n, 3) trajectory"),
        require_wide=True),
    "spd_arg": ParamSpec(
        name="mobility",
        shape=ShapeSpec((((1, "D"), (1, "D")),), what="(d, d) SPD matrix"),
        require_wide=True),
}

#: duck-typed operator-protocol methods -> spec of the first argument.
PROTOCOL_SPECS: Dict[str, ParamSpec] = {
    "apply": ParamSpec(
        name="forces",
        shape=ShapeSpec(_FORCE_PATTERNS, what="(3n,) / (3n, s) forces"),
        require_wide=True, sinks=frozenset({"pipeline"})),
    "apply_block": ParamSpec(
        name="forces",
        shape=ShapeSpec((((3, "N"), (1, "S")),), what="(3n, s) block"),
        require_wide=True, require_contiguous=True,
        sinks=frozenset({"pipeline"})),
    "matvec": ParamSpec(
        name="x",
        shape=ShapeSpec(_FORCE_PATTERNS, what="(3n,) / (3n, s) operand"),
        require_wide=True, require_contiguous=True,
        sinks=frozenset({"bcsr"})),
    "matmat": ParamSpec(
        name="x",
        shape=ShapeSpec((((3, "N"), (1, "S")),), what="(3n, s) block"),
        require_wide=True, require_contiguous=True,
        sinks=frozenset({"bcsr"})),
}

_FFT_SPEC = ParamSpec(name="a", require_wide=True, require_contiguous=True,
                      sinks=frozenset({"fft"}))

#: fully-resolved external callables -> positional-index ParamSpecs.
EXTERNAL_SPECS: Dict[str, Dict[int, ParamSpec]] = {}
for _mod in ("numpy.fft", "scipy.fft"):
    for _fn in ("fft", "fft2", "fftn", "rfft", "rfft2", "rfftn",
                "ifft", "ifft2", "ifftn", "irfft", "irfft2", "irfftn",
                "hfft", "ihfft"):
        EXTERNAL_SPECS[f"{_mod}.{_fn}"] = {0: _FFT_SPEC}

#: parameter names treated as Generators when nothing else is known.
_RNG_PARAM_NAMES = frozenset({"rng", "generator", "bit_generator"})


@dataclass
class FunctionSummary:
    """Call-boundary-crossing facts about one function."""

    returns: AbstractValue = UNKNOWN
    params: Dict[str, ParamSpec] = field(default_factory=dict)
    stochastic: bool = False
    rng_param: Optional[str] = None

    def to_dict(self) -> dict:
        from .domain import shape_str
        out: dict = {"stochastic": self.stochastic}
        if self.rng_param:
            out["rng_param"] = self.rng_param
        if self.returns.kind != "unknown":
            out["returns"] = {
                "kind": self.returns.kind,
                "shape": shape_str(self.returns.shape),
                "dtype": self.returns.dtype,
                "contiguous": self.returns.contiguous,
            }
        params = {}
        for name, spec in sorted(self.params.items()):
            entry: dict = {}
            if spec.shape is not None:
                entry["shape"] = spec.shape.what
            if spec.require_wide:
                entry["require_float64"] = True
            if spec.require_contiguous:
                entry["require_contiguous"] = True
            if spec.sinks:
                entry["sinks"] = sorted(spec.sinks)
            if spec.is_rng:
                entry["rng"] = True
            if entry:
                params[name] = entry
        if params:
            out["params"] = params
        return out


def contract_param_specs(info: FunctionInfo) -> Dict[str, ParamSpec]:
    """Seed specs for the contract decorators on one function."""
    specs: Dict[str, ParamSpec] = {}
    for dec_name, dec in info.decorator_calls():
        base = CONTRACT_SPECS.get(dec_name)
        if base is None:
            continue
        param = base.name
        if isinstance(dec, ast.Call) and dec.args:
            arg0 = dec.args[0]
            if isinstance(arg0, ast.Constant) and isinstance(arg0.value,
                                                             str):
                param = arg0.value
        spec = ParamSpec(name=param, shape=base.shape,
                         require_wide=base.require_wide,
                         require_contiguous=base.require_contiguous,
                         sinks=base.sinks, is_rng=base.is_rng)
        prev = specs.get(param)
        specs[param] = spec if prev is None else prev.merged(spec)
    # protocol methods carry their spec on the first parameter even
    # without a decorator (duck-typed implementations must conform)
    proto = PROTOCOL_SPECS.get(info.name)
    if proto is not None and info.params:
        param = info.params[0]
        spec = ParamSpec(name=param, shape=proto.shape,
                         require_wide=proto.require_wide,
                         require_contiguous=proto.require_contiguous,
                         sinks=proto.sinks)
        prev = specs.get(param)
        specs[param] = spec if prev is None else prev.merged(spec)
    for param in info.params:
        if param in _RNG_PARAM_NAMES:
            prev = specs.get(param)
            spec = ParamSpec(name=param, is_rng=True)
            specs[param] = spec if prev is None else prev.merged(spec)
    return specs


def initial_env(info: FunctionInfo,
                specs: Dict[str, ParamSpec]) -> Dict[str, AbstractValue]:
    """Abstract values of the parameters at function entry."""
    env: Dict[str, AbstractValue] = {}
    for param in info.params:
        spec = specs.get(param)
        if spec is None:
            env[param] = AbstractValue(origin=param)
            continue
        if spec.is_rng:
            env[param] = rng_value(provenance=f"param {param}").but(
                origin=param)
            continue
        shape = None
        if spec.shape is not None and len(spec.shape.patterns) == 1:
            # instantiate the single pattern with lower-case local vars
            shape = tuple(
                (coeff, var.lower() if var is not None else None)
                for coeff, var in spec.shape.patterns[0])
        value = array_value(
            shape=shape,
            dtype="float64" if spec.require_wide else None,
            contiguous=True if spec.require_contiguous else None,
            provenance=f"contract on {param}")
        env[param] = value.but(origin=param)
    return env


def specs_for_call(callee: Optional[str], project: ProjectModel
                   ) -> Optional[Dict[object, ParamSpec]]:
    """Parameter specs of a resolved callee.

    Returns a mapping whose keys are positional indices (0-based, after
    ``self``) *and* parameter names, so both argument styles can be
    matched; ``None`` when nothing is known about the callee.
    """
    if callee is None:
        return None
    out: Dict[object, ParamSpec] = {}
    if callee.startswith("@method."):
        proto = PROTOCOL_SPECS.get(callee[len("@method."):])
        if proto is None:
            return None
        out[0] = proto
        out[proto.name] = proto
        return out
    info = project.function(callee)
    if info is not None:
        summary = project.summaries.get(callee)
        params = info.params
        if isinstance(summary, FunctionSummary):
            for index, name in enumerate(params):
                spec = summary.params.get(name)
                if spec is not None:
                    out[index] = spec
                    out[name] = spec
            if summary.rng_param is not None \
                    and summary.rng_param in params:
                rng_spec = out.get(summary.rng_param,
                                   ParamSpec(name=summary.rng_param))
                rng_spec = rng_spec.merged(
                    ParamSpec(name=summary.rng_param, is_rng=True))
                out[summary.rng_param] = rng_spec
                out[params.index(summary.rng_param)] = rng_spec
        return out or None
    external = EXTERNAL_SPECS.get(callee)
    if external is not None:
        for index, spec in external.items():
            out[index] = spec
            out[spec.name] = spec
        return out
    return None


def arg_spec_pairs(
        obs_args: Sequence[AbstractValue],
        obs_kwargs: Mapping[str, AbstractValue],
        specs: Mapping[object, ParamSpec],
) -> Iterator[Tuple[object, AbstractValue, ParamSpec]]:
    """Yield ``(key, value, spec)`` for every argument with a spec."""
    for index, value in enumerate(obs_args):
        spec = specs.get(index)
        if spec is not None:
            yield index, value, spec
    for name, value in obs_kwargs.items():
        spec = specs.get(name)
        if spec is not None:
            yield name, value, spec


def analyze_project(project: ProjectModel, passes: int = 2) -> None:
    """Run the whole-program analysis, filling ``project.analyses`` and
    ``project.summaries``.

    Each pass re-interprets every function with the previous pass's
    summaries (so returned facts flow through call chains), then
    propagates parameter requirements caller-ward to a fixpoint along
    identity-argument edges.
    """
    summaries: Dict[str, FunctionSummary] = {}
    for info in project.iter_functions():
        summaries[info.qualname] = FunctionSummary(
            params=contract_param_specs(info))
    project.summaries = summaries  # type: ignore[assignment]

    def returns_of(callee: str) -> Optional[AbstractValue]:
        summary = summaries.get(callee)
        return summary.returns if summary is not None else None

    for _ in range(max(1, passes)):
        for info in project.iter_functions():
            def resolver(func: ast.expr,
                         _module: ModuleInfo = info.module) -> Optional[str]:
                return project.resolve_call(_module, func)

            env = initial_env(info, summaries[info.qualname].params)
            analysis = interpret_function(info, resolver, returns_of, env)
            project.analyses[info.qualname] = analysis
        _propagate(project, summaries)
        for qual, analysis in project.analyses.items():
            if isinstance(analysis, FunctionAnalysis):
                summaries[qual].returns = analysis.returns


def _propagate(project: ProjectModel,
               summaries: Dict[str, FunctionSummary]) -> None:
    """Caller-ward requirement / stochasticity fixpoint."""
    for _ in range(_MAX_ROUNDS):
        changed = False
        for qual, analysis in project.analyses.items():
            if not isinstance(analysis, FunctionAnalysis):
                continue
            summary = summaries[qual]
            for obs in analysis.calls:
                callee_summary = summaries.get(obs.callee or "")
                if callee_summary is not None and callee_summary.stochastic \
                        and not summary.stochastic:
                    summary.stochastic = True
                    changed = True
                specs = specs_for_call(obs.callee, project)
                if specs is None:
                    continue
                for _key, value, spec in arg_spec_pairs(
                        obs.pos_args, obs.kw_args, specs):
                    param = value.origin
                    if param is None:
                        continue
                    prev = summary.params.get(param)
                    merged = spec if prev is None else prev.merged(
                        ParamSpec(name=param, shape=spec.shape,
                                  require_wide=spec.require_wide,
                                  require_contiguous=spec.require_contiguous,
                                  sinks=spec.sinks, is_rng=spec.is_rng))
                    if merged != prev:
                        summary.params[param] = ParamSpec(
                            name=param, shape=merged.shape,
                            require_wide=merged.require_wide,
                            require_contiguous=merged.require_contiguous,
                            sinks=merged.sinks, is_rng=merged.is_rng)
                        changed = True
            if analysis.draws_randomness and not summary.stochastic:
                summary.stochastic = True
                changed = True
            rng_param = _rng_param(qual, analysis, summary)
            if rng_param is not None and summary.rng_param is None:
                summary.rng_param = rng_param
                summary.stochastic = True
                changed = True
        if not changed:
            return


def _rng_param(qual: str, analysis: FunctionAnalysis,
               summary: FunctionSummary) -> Optional[str]:
    if analysis.rng_draw_params:
        return sorted(analysis.rng_draw_params)[0]
    for name, spec in summary.params.items():
        if spec.is_rng:
            return name
    return None
