"""repro.lint.flow — whole-program dataflow analysis.

Layers (each building on the previous):

1. :mod:`~repro.lint.flow.project` — project model: module index,
   symbol table, call graph resolving ``repro.*`` imports.
2. :mod:`~repro.lint.flow.domain` / :mod:`~repro.lint.flow.interp` —
   abstract interpretation over NumPy-shaped values (symbolic shapes,
   dtype, C-contiguity, RNG provenance).
3. :mod:`~repro.lint.flow.summaries` — per-function summaries
   propagated interprocedurally so facts survive
   ``apply``/``apply_block``/solver call chains.
4. :mod:`~repro.lint.flow.rules_flow` — the RPR1xx (shape/dtype flow),
   RPR2xx (determinism flow) and RPR3xx (hot-path allocation) rule
   families; :mod:`~repro.lint.flow.hotpaths` derives the hot-function
   registry from the observability span names.

See ``docs/static_analysis.md`` for the architecture walk-through.
"""

from __future__ import annotations

from . import rules_flow as _rules_flow  # noqa: F401 - registers RPR1xx-3xx
from .domain import AbstractValue, ParamSpec, ShapeSpec
from .hotpaths import HOT_PACKAGES, derive_hot_registry
from .project import FunctionInfo, ModuleInfo, ProjectModel, build_project
from .rules_flow import ensure_analyzed
from .summaries import FunctionSummary, analyze_project, specs_for_call

__all__ = [
    "AbstractValue",
    "ParamSpec",
    "ShapeSpec",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_project",
    "FunctionSummary",
    "analyze_project",
    "specs_for_call",
    "derive_hot_registry",
    "HOT_PACKAGES",
    "ensure_analyzed",
]
