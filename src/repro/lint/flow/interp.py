"""Intraprocedural abstract interpretation over NumPy-shaped values.

One linear forward pass per function (branches are joined, loop bodies
interpreted once at increased loop depth) computes an environment of
:class:`~repro.lint.flow.domain.AbstractValue` facts and records the
observations the whole-program rules consume:

* every call site with the abstract values of its arguments,
* array allocations / implicit copies and their loop depth,
* ``for`` loops over unordered containers and whether their body
  accumulates numerically,
* ``numpy.random`` Generator creations and draws.

The pass is deliberately conservative: any construct it does not model
degrades the affected facts to "unknown", never to a wrong claim — the
rules only fire on *definite* information.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .domain import (
    AbstractValue,
    Dim,
    NARROW_DTYPES,
    Shape,
    UNKNOWN,
    array_value,
    join_values,
    promote_dtype,
    rng_value,
)
from .project import FunctionInfo, dotted_name

__all__ = ["CallObs", "AllocObs", "SetLoopObs", "FunctionAnalysis",
           "interpret_function", "RNG_DRAW_METHODS"]

#: numpy constructors returning a freshly allocated array.
_ALLOC_FUNCS = frozenset({"zeros", "ones", "empty", "full"})
_ALLOC_LIKE = frozenset({"zeros_like", "ones_like", "empty_like",
                         "full_like"})
_RANGE_FUNCS = frozenset({"arange", "linspace", "logspace"})
#: calls that (may) produce a fresh copy of an existing array.
_COPY_FUNCS = frozenset({"ascontiguousarray", "asfortranarray", "require",
                         "copy", "concatenate", "stack", "vstack", "hstack",
                         "column_stack", "tile", "repeat"})
_COPY_METHODS = frozenset({"astype", "copy", "flatten"})
#: numpy.random.Generator draw methods (stochastic provenance).
RNG_DRAW_METHODS = frozenset({
    "standard_normal", "normal", "random", "integers", "uniform",
    "choice", "permutation", "shuffle", "exponential", "gamma", "beta",
    "poisson", "binomial",
})
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_FFT_COMPLEX = frozenset({"fft", "fft2", "fftn", "rfft", "rfft2", "rfftn",
                          "ifft", "ifft2", "ifftn", "hfft"})
_FFT_REAL = frozenset({"irfft", "irfft2", "irfftn", "ihfft"})


@dataclass
class CallObs:
    """One observed call site with abstract argument facts."""

    node: ast.Call
    callee: Optional[str]          #: resolved qualname / dotted external
    pos_args: List[AbstractValue]
    kw_args: Dict[str, AbstractValue]
    loop_depth: int
    star_args: bool = False        #: *args/**kwargs present (facts partial)

    @property
    def passes_rng(self) -> bool:
        return any(v.kind == "rng" for v in self.pos_args) or \
            any(v.kind == "rng" for v in self.kw_args.values())


@dataclass
class AllocObs:
    """One array allocation or implicit copy."""

    node: ast.AST
    label: str                     #: e.g. ``np.zeros`` or ``.astype``
    kind: str                      #: ``"alloc"`` or ``"copy"``
    loop_depth: int


@dataclass
class SetLoopObs:
    """A ``for`` loop iterating an unordered container."""

    node: ast.AST
    source: str                    #: provenance of the container
    accumulates: bool = False


@dataclass
class FunctionAnalysis:
    """Everything the rules need to know about one function."""

    qualname: str
    calls: List[CallObs] = field(default_factory=list)
    allocs: List[AllocObs] = field(default_factory=list)
    set_loops: List[SetLoopObs] = field(default_factory=list)
    #: ``(node, local name)`` of each ``default_rng`` creation
    rng_created: List[Tuple[ast.AST, str]] = field(default_factory=list)
    #: parameter names used directly as a Generator (draw methods)
    rng_draw_params: set = field(default_factory=set)
    #: the function draws randomness somewhere in its own body
    draws_randomness: bool = False
    returns: AbstractValue = UNKNOWN


# ----------------------------------------------------------------------
# the interpreter
# ----------------------------------------------------------------------

SummaryLookup = Callable[[str], Optional[AbstractValue]]
"""Maps a resolved callee to its summarized return value (or None)."""


class _Interpreter:
    def __init__(self, info: FunctionInfo,
                 resolve: Callable[[ast.expr], Optional[str]],
                 returns_of: SummaryLookup,
                 initial_env: Dict[str, AbstractValue]) -> None:
        self.info = info
        self.resolve = resolve
        self.returns_of = returns_of
        self.env: Dict[str, AbstractValue] = dict(initial_env)
        self.result = FunctionAnalysis(qualname=info.qualname)
        self.loop_depth = 0

    # -- statements ----------------------------------------------------

    def run(self) -> FunctionAnalysis:
        self.exec_body(self.info.node.body)
        return self.result

    def exec_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prev = self.env.get(stmt.target.id, UNKNOWN)
                out = self.binop_result(prev, value)
                self.env[stmt.target.id] = out.but(origin=None)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value) if stmt.value is not None \
                else UNKNOWN
            self.result.returns = (
                value if self.result.returns is UNKNOWN
                else join_values(self.result.returns, value))
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.loop_depth += 1
            before = dict(self.env)
            self.exec_body(stmt.body)
            self.loop_depth -= 1
            self.join_env(before)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, UNKNOWN,
                                item.context_expr)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                saved = dict(self.env)
                self.env = dict(before)
                self.exec_body(handler.body)
                self.join_env(saved)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes are separate analysis units
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # raise/pass/import/global/assert: no dataflow effect we track

    def exec_branches(self, branches: List[List[ast.stmt]]) -> None:
        before = dict(self.env)
        merged: Optional[Dict[str, AbstractValue]] = None
        for body in branches:
            self.env = dict(before)
            self.exec_body(body)
            if merged is None:
                merged = self.env
            else:
                merged = self._joined(merged, self.env)
        self.env = merged if merged is not None else before

    def exec_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        iter_value = self.eval(stmt.iter)
        if iter_value.kind == "set":
            self.result.set_loops.append(SetLoopObs(
                node=stmt, source=iter_value.provenance or "set",
                accumulates=_body_accumulates(stmt.body)))
        element = self.element_of(iter_value)
        self.assign(stmt.target, element, stmt.iter)
        self.loop_depth += 1
        before = dict(self.env)
        self.exec_body(stmt.body)
        self.loop_depth -= 1
        self.join_env(before)
        self.exec_body(stmt.orelse)

    @staticmethod
    def element_of(iterable: AbstractValue) -> AbstractValue:
        """Abstract value of one element of an iterated container."""
        if iterable.kind == "array" and iterable.shape is not None \
                and len(iterable.shape) >= 2:
            return array_value(shape=iterable.shape[1:],
                               dtype=iterable.dtype,
                               contiguous=iterable.contiguous,
                               provenance="iteration")
        return UNKNOWN

    def join_env(self, other: Dict[str, AbstractValue]) -> None:
        self.env = self._joined(self.env, other)

    @staticmethod
    def _joined(a: Dict[str, AbstractValue],
                b: Dict[str, AbstractValue]) -> Dict[str, AbstractValue]:
        out: Dict[str, AbstractValue] = {}
        for name in set(a) | set(b):
            va, vb = a.get(name, UNKNOWN), b.get(name, UNKNOWN)
            out[name] = join_values(va, vb)
        return out

    def assign(self, target: ast.expr, value: AbstractValue,
               source: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value.but(origin=None) \
                if not isinstance(source, ast.Name) else value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, UNKNOWN, source)
        # subscript/attribute targets: no tracked effect

    # -- expressions ---------------------------------------------------

    def eval(self, node: ast.expr) -> AbstractValue:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                    node.value, (int, float, complex)):
                return UNKNOWN
            dim: Dim = ((int(node.value), None)
                        if isinstance(node.value, int) else None)
            return AbstractValue(kind="scalar", shape=None, dtype=None,
                                 contiguous=None).but(provenance="const") \
                if dim is None else _scalar_dim(dim)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand).but(origin=None)
        if isinstance(node, (ast.Set, ast.SetComp)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    self.eval(sub)
            return AbstractValue(kind="set", provenance="set literal")
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return AbstractValue(kind="dict", provenance="dict literal")
        if isinstance(node, (ast.List, ast.ListComp, ast.Tuple,
                             ast.GeneratorExp)):
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join_values(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        return UNKNOWN

    def eval_binop(self, node: ast.BinOp) -> AbstractValue:
        left, right = self.eval(node.left), self.eval(node.right)
        if isinstance(node.op, ast.Mult):
            dim = _scale_dim(left, right)
            if dim is not None:
                return _scalar_dim(dim)
        if isinstance(node.op, ast.MatMult):
            return self.matmul_result(left, right)
        return self.binop_result(left, right)

    @staticmethod
    def binop_result(left: AbstractValue,
                     right: AbstractValue) -> AbstractValue:
        if left.kind != "array" and right.kind != "array":
            return UNKNOWN
        shape: Shape = None
        for v in (left, right):
            if v.kind == "array" and v.shape is not None:
                if shape is None or len(v.shape) > len(shape):
                    shape = v.shape
        return array_value(shape=shape,
                           dtype=promote_dtype(left.dtype, right.dtype)
                           if left.kind == right.kind == "array"
                           else (left.dtype or right.dtype),
                           contiguous=True, provenance="arithmetic")

    @staticmethod
    def matmul_result(left: AbstractValue,
                      right: AbstractValue) -> AbstractValue:
        shape: Shape = None
        if (left.kind == "array" and right.kind == "array"
                and left.shape is not None and right.shape is not None):
            if len(left.shape) == 2 and len(right.shape) == 1:
                shape = (left.shape[0],)
            elif len(left.shape) == 2 and len(right.shape) == 2:
                shape = (left.shape[0], right.shape[1])
        return array_value(shape=shape,
                           dtype=promote_dtype(left.dtype, right.dtype),
                           contiguous=True, provenance="matmul")

    # -- attributes / subscripts ---------------------------------------

    def eval_attribute(self, node: ast.Attribute) -> AbstractValue:
        value = self.eval(node.value)
        if node.attr == "T" and value.kind == "array":
            shape = None if value.shape is None else value.shape[::-1]
            if value.rank is not None and value.rank >= 2:
                contig: Optional[bool] = False
            elif value.rank == 1:
                contig = value.contiguous
            else:
                contig = None
            return value.but(shape=shape, contiguous=contig, origin=None,
                             provenance="transpose")
        return UNKNOWN

    def eval_subscript(self, node: ast.Subscript) -> AbstractValue:
        value = self.eval(node.value)
        # x.shape[i] -> a scalar carrying that dimension
        if (isinstance(node.value, ast.Attribute)
                and node.value.attr == "shape"):
            owner = self.eval(node.value.value)
            index = _const_int(node.slice)
            if (owner.kind == "array" and owner.shape is not None
                    and index is not None and -len(owner.shape) <= index
                    < len(owner.shape)):
                return _scalar_dim(owner.shape[index])
            name = _receiver_name(node.value.value)
            if name is not None and index is not None:
                return _scalar_dim((1, f"{name}.shape[{index}]"))
            return AbstractValue(kind="scalar")
        if value.kind != "array":
            return UNKNOWN
        return _sliced(value, node.slice)

    # -- calls ---------------------------------------------------------

    def eval_call(self, node: ast.Call) -> AbstractValue:
        pos_args = [self.eval(a) for a in node.args
                    if not isinstance(a, ast.Starred)]
        kw_args = {k.arg: self.eval(k.value) for k in node.keywords
                   if k.arg is not None}
        star = (len(pos_args) != len(node.args)
                or any(k.arg is None for k in node.keywords))

        callee = self.resolve(node.func)
        self.result.calls.append(CallObs(
            node=node, callee=callee, pos_args=pos_args, kw_args=kw_args,
            loop_depth=self.loop_depth, star_args=star))

        value = self._builtin_call(node, callee, pos_args, kw_args)
        if value is not None:
            return value
        if callee is not None:
            ret = self.returns_of(callee)
            if ret is not None:
                return ret.but(origin=None)
        return UNKNOWN

    def _builtin_call(self, node: ast.Call, callee: Optional[str],
                      pos: List[AbstractValue],
                      kw: Dict[str, AbstractValue]
                      ) -> Optional[AbstractValue]:
        """Model well-known numpy / stdlib calls; None = not builtin."""
        func = node.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if tail is None:
            return None
        dotted = dotted_name(func) or tail
        is_np = dotted.split(".")[0] in ("np", "numpy") or dotted == tail

        # -- allocations ------------------------------------------------
        if tail in _ALLOC_FUNCS and is_np and node.args:
            self.result.allocs.append(AllocObs(
                node=node, label=f"np.{tail}", kind="alloc",
                loop_depth=self.loop_depth))
            shape = self._shape_argument(node.args[0])
            dtype = _dtype_keyword(node, default="float64")
            order = _order_keyword(node)
            return array_value(shape=shape, dtype=dtype,
                               contiguous=(order != "F"),
                               provenance=f"np.{tail}")
        if tail in _ALLOC_LIKE and is_np and pos:
            self.result.allocs.append(AllocObs(
                node=node, label=f"np.{tail}", kind="alloc",
                loop_depth=self.loop_depth))
            base = pos[0]
            dtype = _dtype_keyword(node, default=base.dtype)
            return array_value(shape=base.shape, dtype=dtype,
                               contiguous=True, provenance=f"np.{tail}")
        if tail in _RANGE_FUNCS and is_np:
            return array_value(shape=None,
                               dtype=_dtype_keyword(node, default="float64"),
                               contiguous=True, provenance=f"np.{tail}")

        # -- conversions / copies --------------------------------------
        if tail in ("asarray", "array", "ascontiguousarray", "require",
                    "asfortranarray") and is_np and pos:
            base = pos[0]
            dtype = _dtype_keyword(node, default=base.dtype)
            if tail in ("ascontiguousarray", "require"):
                self.result.allocs.append(AllocObs(
                    node=node, label=f"np.{tail}", kind="copy",
                    loop_depth=self.loop_depth))
                contiguous: Optional[bool] = True
            elif tail == "asfortranarray":
                self.result.allocs.append(AllocObs(
                    node=node, label=f"np.{tail}", kind="copy",
                    loop_depth=self.loop_depth))
                contiguous = False
            elif tail == "array":
                contiguous = True
            else:
                contiguous = base.contiguous if base.kind == "array" \
                    else True
            shape = base.shape if base.kind == "array" else None
            return array_value(shape=shape, dtype=dtype,
                               contiguous=contiguous,
                               provenance=f"np.{tail}")
        if tail in _COPY_FUNCS and is_np:
            self.result.allocs.append(AllocObs(
                node=node, label=f"np.{tail}", kind="copy",
                loop_depth=self.loop_depth))
            return array_value(contiguous=True, provenance=f"np.{tail}")

        # -- FFT --------------------------------------------------------
        if (callee or "").startswith(("numpy.fft.", "scipy.fft.")) or \
                (isinstance(func, ast.Attribute)
                 and dotted_name(func.value) in ("np.fft", "numpy.fft")):
            if tail in _FFT_COMPLEX:
                return array_value(dtype="complex128", contiguous=True,
                                   provenance=f"fft.{tail}")
            if tail in _FFT_REAL:
                return array_value(dtype="float64", contiguous=True,
                                   provenance=f"fft.{tail}")

        # -- RNG --------------------------------------------------------
        if tail == "default_rng":
            name = _assigned_name(node)
            self.result.rng_created.append((node, name or "<anonymous>"))
            return rng_value(provenance="default_rng")
        if tail in RNG_DRAW_METHODS and isinstance(func, ast.Attribute):
            receiver = self.eval(func.value)
            if receiver.kind == "rng":
                self.result.draws_randomness = True
                if receiver.origin is not None:
                    self.result.rng_draw_params.add(receiver.origin)
                shape = (self._shape_argument(node.args[0])
                         if node.args else None)
                if "size" in {k.arg for k in node.keywords}:
                    for k in node.keywords:
                        if k.arg == "size":
                            shape = self._shape_argument(k.value)
                return array_value(shape=shape, dtype="float64",
                                   contiguous=True,
                                   provenance=f"rng.{tail}")

        # -- array methods ---------------------------------------------
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value)
            if receiver.kind == "array":
                return self._array_method(node, tail, receiver)
            if (receiver.kind == "unknown" and tail in _COPY_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.env):
                # .copy()/.astype()/.flatten() on a *local variable*
                # allocates whatever the receiver's concrete type is;
                # record it even though the array fact was lost (typical
                # for uncontracted hot-helper params).  The Name-in-env
                # guard keeps module calls (shutil.copy) out.
                self.result.allocs.append(AllocObs(
                    node=node, label=f".{tail}", kind="copy",
                    loop_depth=self.loop_depth))
                return UNKNOWN
            if tail == "fromkeys" and pos and pos[0].kind == "set":
                return AbstractValue(kind="set",
                                     provenance="dict.fromkeys(set)")
            if receiver.kind in ("set", "dict") and tail in (
                    "keys", "values", "items", "union", "intersection",
                    "difference", "symmetric_difference"):
                kind = receiver.kind if tail in ("keys", "values", "items") \
                    else "set"
                return AbstractValue(kind=kind,
                                     provenance=receiver.provenance)

        # -- containers / ordering helpers ------------------------------
        if tail in _SET_CONSTRUCTORS and isinstance(func, ast.Name):
            return AbstractValue(kind="set", provenance=f"{tail}()")
        if tail in ("sorted", "list", "tuple") and isinstance(func, ast.Name):
            return UNKNOWN  # ordered view: not flaggable
        if tail == "sum" and node.args:
            src = self._unordered_source(node.args[0], pos[0] if pos
                                         else UNKNOWN)
            if src is not None:
                self.result.set_loops.append(SetLoopObs(
                    node=node, source=src, accumulates=True))
        return None

    def _unordered_source(self, arg: ast.expr,
                          value: AbstractValue) -> Optional[str]:
        """Provenance string when ``sum(arg)`` folds an unordered
        container (directly or through a generator expression)."""
        if value.kind == "set":
            return value.provenance or "set"
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)) \
                and arg.generators:
            inner = self.eval(arg.generators[0].iter)
            if inner.kind == "set":
                return inner.provenance or "set"
        return None

    def _array_method(self, node: ast.Call, method: str,
                      receiver: AbstractValue) -> Optional[AbstractValue]:
        if method in _COPY_METHODS:
            self.result.allocs.append(AllocObs(
                node=node, label=f".{method}", kind="copy",
                loop_depth=self.loop_depth))
        if method == "astype":
            dtype = None
            if node.args:
                dtype = _dtype_of_node(node.args[0])
            return receiver.but(dtype=dtype, contiguous=True, origin=None,
                                provenance=".astype")
        if method == "copy":
            return receiver.but(contiguous=True, origin=None,
                                provenance=".copy")
        if method in ("reshape", "ravel", "flatten"):
            if method == "reshape" and node.args:
                args = node.args
                if len(args) == 1 and isinstance(args[0], ast.Tuple):
                    args = list(args[0].elts)
                if len(args) == 1 and _const_int(args[0]) == -1:
                    shape: Shape = (_flat_dim(receiver.shape),)
                else:
                    shape = tuple(
                        None if _const_int(a) == -1 else self._dim_of(a)
                        for a in args)
            else:
                shape = (_flat_dim(receiver.shape),)
            contiguous = True if method == "flatten" else (
                True if receiver.contiguous else None)
            return receiver.but(shape=shape, contiguous=contiguous,
                                origin=None, provenance=f".{method}")
        if method == "transpose":
            shape = None if receiver.shape is None else receiver.shape[::-1]
            return receiver.but(shape=shape, contiguous=False, origin=None,
                                provenance=".transpose")
        if method in ("sum", "mean", "dot", "conj", "conjugate", "clip"):
            return UNKNOWN
        return UNKNOWN

    # -- helpers -------------------------------------------------------

    def _dim_of(self, node: ast.expr) -> Dim:
        value = self.eval(node)
        if value.kind == "scalar" and value.shape is not None \
                and len(value.shape) == 1:
            return value.shape[0]
        if isinstance(node, ast.Name):
            return (1, node.id)
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return (node.value, None)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            left, right = self.eval(node.left), self.eval(node.right)
            dim = _scale_dim(left, right)
            if dim is not None:
                return dim
            cl = _const_int(node.left)
            if cl is not None:
                inner = self._dim_of(node.right)
                if inner is not None:
                    return (cl * inner[0], inner[1])
            cr = _const_int(node.right)
            if cr is not None:
                inner = self._dim_of(node.left)
                if inner is not None:
                    return (cr * inner[0], inner[1])
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "len" and node.args:
            inner = self.eval(node.args[0])
            if inner.kind == "array" and inner.shape:
                return inner.shape[0]
            name = _receiver_name(node.args[0])
            if name is not None:
                return (1, f"len({name})")
        dotted = dotted_name(node)
        if dotted is not None:
            return (1, dotted)
        return None

    def _shape_argument(self, node: ast.expr) -> Shape:
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._dim_of(e) for e in node.elts)
        value = self.eval(node)
        if value.kind == "scalar" and value.shape is not None:
            return value.shape
        dim = self._dim_of(node)
        return (dim,)


# ----------------------------------------------------------------------
# module-level helpers
# ----------------------------------------------------------------------

def _sliced(value: AbstractValue, index: ast.expr) -> AbstractValue:
    """Abstract result of ``value[index]`` for an array value.

    Only definitely-known effects are modelled: integer indices reduce
    the rank, step slices break contiguity, narrowing slices on a
    non-leading axis break contiguity; everything else degrades to
    "unknown contiguity" rather than guessing.
    """
    items = list(index.elts) if isinstance(index, ast.Tuple) else [index]
    contiguous = value.contiguous
    shape = value.shape
    dropped = 0
    for axis, item in enumerate(items):
        if isinstance(item, ast.Slice):
            has_step = item.step is not None and _const_int(item.step) != 1
            narrowing = item.lower is not None or item.upper is not None
            if has_step:
                contiguous = False
            elif narrowing and axis > 0:
                contiguous = False
            elif narrowing:
                contiguous = value.contiguous  # leading-axis slice is fine
            # the sliced dimension is no longer known
            if shape is not None and axis - dropped < len(shape) \
                    and narrowing:
                new = list(shape)
                new[axis - dropped] = None
                shape = tuple(new)
        elif _const_int(item) is not None:
            if shape is not None and axis - dropped < len(shape):
                new = list(shape)
                del new[axis - dropped]
                shape = tuple(new)
                dropped += 1
        elif isinstance(item, ast.Name):
            # could be an int index (rank-1) or a boolean mask (same
            # rank) — keep only the dtype fact
            return array_value(dtype=value.dtype, contiguous=None,
                               provenance="subscript")
        elif isinstance(item, ast.Constant) and item.value is None:
            # np.newaxis inserts a length-1 axis; give up on the shape
            shape = None
        else:
            # advanced indexing (mask / fancy): fresh contiguous array
            return array_value(dtype=value.dtype, contiguous=True,
                               provenance="fancy-index")
    if shape is not None and len(items) > (len(value.shape or ())):
        shape = None
    return value.but(shape=shape, contiguous=contiguous, origin=None,
                     provenance="subscript")


def _scalar_dim(dim: Dim) -> AbstractValue:
    """An integer scalar carrying a symbolic dimension (stored as a
    rank-1 pseudo-shape so AbstractValue needs no extra field)."""
    return AbstractValue(kind="scalar", shape=(dim,))


def _scale_dim(left: AbstractValue, right: AbstractValue) -> Dim:
    """Dimension of ``left * right`` when both are tracked scalars."""
    dims = []
    for v in (left, right):
        if v.kind == "scalar" and v.shape is not None and len(v.shape) == 1:
            dims.append(v.shape[0])
        else:
            return None
    a, b = dims
    if a is None or b is None:
        return None
    if a[1] is not None and b[1] is not None:
        return None  # n * m: nonlinear, give up
    if a[1] is None:
        return (a[0] * b[0], b[1])
    return (a[0] * b[0], a[1])


def _flat_dim(shape: Shape) -> Dim:
    """Dimension of ``x.ravel()`` — the product of the dims when at most
    one is symbolic."""
    if shape is None:
        return None
    coeff, var = 1, None
    for dim in shape:
        if dim is None:
            return None
        c, v = dim
        coeff *= c
        if v is not None:
            if var is not None:
                return None
            var = v
    return (coeff, var)


def _const_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return None if inner is None else -inner
    return None


def _receiver_name(node: ast.expr) -> Optional[str]:
    return dotted_name(node)


def _dtype_keyword(node: ast.Call,
                   default: Optional[str] = None) -> Optional[str]:
    for kw in node.keywords:
        if kw.arg == "dtype":
            return _dtype_of_node(kw.value) or None
    return default


def _dtype_of_node(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name = node.attr if isinstance(node, ast.Attribute) else (
        node.id if isinstance(node, ast.Name) else None)
    if name in NARROW_DTYPES or name in (
            "float64", "double", "complex128", "cdouble", "float",
            "int64", "int32", "intp", "bool_"):
        return name
    return None


def _order_keyword(node: ast.Call) -> Optional[str]:
    for kw in node.keywords:
        if kw.arg == "order" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    return None


def _assigned_name(node: ast.Call) -> Optional[str]:
    """Best effort: the Name an rng creation is assigned to (filled in
    by the caller via the Assign statement; None when not a direct
    assignment)."""
    return None


def _body_accumulates(body: List[ast.stmt]) -> bool:
    """Does a loop body contain numeric accumulation (``acc += ...`` or
    ``acc = acc + ...``)?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult)):
                return True
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, (ast.Add, ast.Sub))
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                target = node.targets[0].id
                for side in (node.value.left, node.value.right):
                    if isinstance(side, ast.Name) and side.id == target:
                        return True
    return False


def interpret_function(info: FunctionInfo,
                       resolve: Callable[[ast.expr], Optional[str]],
                       returns_of: SummaryLookup,
                       initial_env: Dict[str, AbstractValue]
                       ) -> FunctionAnalysis:
    """Run the abstract interpretation of one function body."""
    interp = _Interpreter(info, resolve, returns_of, initial_env)
    analysis = interp.run()
    # attach local names to rng creations (via a second cheap pass)
    _name_rng_creations(info, analysis)
    return analysis


def _name_rng_creations(info: FunctionInfo,
                        analysis: FunctionAnalysis) -> None:
    if not analysis.rng_created:
        return
    assigned: Dict[int, str] = {}
    for stmt in ast.walk(info.node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            for sub in ast.walk(stmt.value):
                assigned[id(sub)] = stmt.targets[0].id
    analysis.rng_created = [
        (node, assigned.get(id(node), name))
        for node, name in analysis.rng_created]
