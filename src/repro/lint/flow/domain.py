"""Abstract domain of the whole-program dataflow analysis.

The analysis tracks NumPy-shaped values symbolically.  A dimension is
either unknown or a linear monomial ``coeff * var`` (``var=None`` for a
plain integer), so the pipeline's characteristic shapes — ``(n, 3)``
positions, ``(3n,)`` force vectors, ``(3n, s)`` force blocks — stay
distinguishable across assignments and call boundaries.  Two dimensions
*definitely differ* when they share the same symbol with different
coefficients (``n`` vs ``3n``): the codebase never reinterprets an
``n``-vector as a ``3n``-vector without an explicit reshape (which
resets the fact), so that comparison is the deliberate heuristic that
catches particle-count/DOF-count confusion.

Values carry dtype and C-contiguity facts alongside the shape, plus an
``origin`` naming the function parameter a value was derived from
unchanged — that is what lets per-function summaries propagate
requirements interprocedurally.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

__all__ = [
    "Dim", "Shape", "AbstractValue", "ShapeSpec", "ParamSpec",
    "UNKNOWN", "array_value", "rng_value", "dim_str", "shape_str",
    "dims_definitely_differ", "match_patterns", "join_values",
    "promote_dtype", "NARROW_DTYPES", "WIDE_DTYPES",
]

#: A dimension: ``None`` (unknown) or ``(coeff, var)`` meaning
#: ``coeff * var`` (``var=None`` -> the integer ``coeff``).
Dim = Optional[Tuple[int, Optional[str]]]

#: A shape: ``None`` (unknown rank) or a tuple of dimensions.
Shape = Optional[Tuple[Dim, ...]]

#: Reduced-precision dtypes that violate the float64 pipeline contract.
NARROW_DTYPES = frozenset({
    "float32", "float16", "half", "single", "complex64", "csingle",
})

#: Full-precision dtypes of the documented pipeline.
WIDE_DTYPES = frozenset({"float64", "double", "complex128", "cdouble"})


@dataclass(frozen=True)
class AbstractValue:
    """One abstract fact about a runtime value.

    ``kind`` is one of ``"array"``, ``"rng"``, ``"set"``, ``"dict"``,
    ``"scalar"``, ``"unknown"``.  Shape/dtype/contiguity only carry
    meaning for arrays; ``None`` always means "no information".
    """

    kind: str = "unknown"
    shape: Shape = None
    dtype: Optional[str] = None
    contiguous: Optional[bool] = None
    #: Parameter name this value *is* (identity flow only), or None.
    origin: Optional[str] = None
    #: Short human label of where the fact was established.
    provenance: str = ""

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)

    def but(self, **changes: object) -> "AbstractValue":
        return replace(self, **changes)  # type: ignore[arg-type]


UNKNOWN = AbstractValue()


def array_value(shape: Shape = None, dtype: Optional[str] = None,
                contiguous: Optional[bool] = None,
                provenance: str = "") -> AbstractValue:
    return AbstractValue(kind="array", shape=shape, dtype=dtype,
                         contiguous=contiguous, provenance=provenance)


def rng_value(provenance: str = "") -> AbstractValue:
    return AbstractValue(kind="rng", provenance=provenance)


def dim_str(dim: Dim) -> str:
    if dim is None:
        return "?"
    coeff, var = dim
    if var is None:
        return str(coeff)
    return var if coeff == 1 else f"{coeff}*{var}"


def shape_str(shape: Shape) -> str:
    if shape is None:
        return "(?)"
    inner = ", ".join(dim_str(d) for d in shape)
    if len(shape) == 1:
        inner += ","
    return f"({inner})"


def dims_definitely_differ(a: Dim, b: Dim) -> bool:
    """True when two dimensions provably cannot be equal.

    Constants differ when unequal; symbolic dims differ only when they
    share the *same* symbol with different coefficients (the ``n`` vs
    ``3n`` heuristic — see the module docstring).
    """
    if a is None or b is None:
        return False
    ca, va = a
    cb, vb = b
    if va is None and vb is None:
        return ca != cb
    if va is not None and va == vb:
        return ca != cb
    return False


def join_dim(a: Dim, b: Dim) -> Dim:
    return a if a == b else None


def join_shape(a: Shape, b: Shape) -> Shape:
    if a is None or b is None or len(a) != len(b):
        return None
    return tuple(join_dim(x, y) for x, y in zip(a, b))


def join_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two facts (control-flow merge).

    One asymmetry: ``rng ⊔ unknown = rng``.  The determinism rules must
    stay liberal — claiming "no Generator was passed" on a maybe would
    be a false positive — and the one idiom that produces this merge,
    ``seed if isinstance(seed, Generator) else default_rng(seed)``,
    always yields a Generator at runtime anyway.
    """
    if {a.kind, b.kind} == {"rng", "unknown"}:
        return AbstractValue(kind="rng",
                             provenance=a.provenance or b.provenance)
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN
    if a.kind != b.kind:
        return UNKNOWN
    return AbstractValue(
        kind=a.kind,
        shape=join_shape(a.shape, b.shape),
        dtype=a.dtype if a.dtype == b.dtype else None,
        contiguous=a.contiguous if a.contiguous == b.contiguous else None,
        origin=a.origin if a.origin == b.origin else None,
        provenance=a.provenance or b.provenance)


def promote_dtype(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """NumPy-style promotion restricted to the dtypes we track."""
    if a is None or b is None:
        return None
    complex_out = ("complex" in a or "csingle" in a or "cdouble" in a
                   or "complex" in b or "csingle" in b or "cdouble" in b)
    wide = a in WIDE_DTYPES or b in WIDE_DTYPES
    if complex_out:
        return "complex128" if wide else "complex64"
    return "float64" if wide else ("float32" if a == b == "float32" else a)


# ----------------------------------------------------------------------
# callee parameter specifications and pattern matching
# ----------------------------------------------------------------------

#: A shape pattern: a tuple of ``(coeff, var)`` pattern dimensions.
#: Pattern variables (upper-case by convention) unify against the
#: caller's dimensions within one call site.
Pattern = Tuple[Tuple[int, Optional[str]], ...]


@dataclass(frozen=True)
class ShapeSpec:
    """Accepted shapes of one parameter (any pattern may match)."""

    patterns: Tuple[Pattern, ...]
    what: str = "array"

    def ranks(self) -> frozenset:
        return frozenset(len(p) for p in self.patterns)


@dataclass(frozen=True)
class ParamSpec:
    """Requirements one callee parameter imposes on its argument."""

    name: str
    shape: Optional[ShapeSpec] = None
    #: argument must be float64/complex128 (documented pipeline dtype)
    require_wide: bool = False
    #: argument must be C-contiguous (FFT / BCSR / C-kernel entry)
    require_contiguous: bool = False
    #: names of the performance-critical sinks the value reaches
    sinks: frozenset = frozenset()
    #: this parameter is a numpy.random.Generator
    is_rng: bool = False

    def merged(self, other: "ParamSpec") -> "ParamSpec":
        return ParamSpec(
            name=self.name,
            shape=self.shape or other.shape,
            require_wide=self.require_wide or other.require_wide,
            require_contiguous=(self.require_contiguous
                                or other.require_contiguous),
            sinks=self.sinks | other.sinks,
            is_rng=self.is_rng or other.is_rng)


def _match_one(pattern: Pattern, shape: Tuple[Dim, ...],
               bindings: dict) -> bool:
    """Try to unify ``pattern`` with a fully/partially known shape.

    Returns False only on a *definite* mismatch; unknown dimensions
    always unify.  ``bindings`` (pattern var -> caller Dim) is shared
    across all parameters of a call so repeated variables — ``(D, D)``
    square matrices, the ``N`` of positions and forces — must agree.
    """
    if len(pattern) != len(shape):
        return False
    trial = dict(bindings)
    for (coeff, var), dim in zip(pattern, shape):
        if dim is None:
            continue
        dcoeff, dvar = dim
        if var is None:  # concrete pattern dimension, e.g. the 3 of (n, 3)
            if dvar is None and dcoeff != coeff:
                return False
            continue
        # pattern dimension coeff * VAR: VAR binds to dim / coeff
        if dcoeff % coeff != 0:
            return False
        bound: Dim = (dcoeff // coeff, dvar)
        prev = trial.get(var)
        if prev is not None and dims_definitely_differ(prev, bound):
            return False
        trial[var] = bound
    bindings.clear()
    bindings.update(trial)
    return True


def match_patterns(spec: ShapeSpec, shape: Shape, bindings: dict) -> bool:
    """True unless ``shape`` definitely matches none of the patterns."""
    if shape is None:
        return True
    for pattern in spec.patterns:
        trial = dict(bindings)
        if _match_one(pattern, shape, trial):
            bindings.clear()
            bindings.update(trial)
            return True
    return False
