"""JSON export of the whole-program model (``repro lint --graph``).

The export is a debugging and CI artifact: it shows exactly what the
dataflow rules saw — which calls resolved to which functions, what
summary each function earned (shape/dtype facts, stochasticity, rng
parameter) and which functions the hot registry covers.  CI uploads it
so a surprising finding can be diagnosed from the artifact alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .project import ProjectModel, build_project

__all__ = ["project_to_dict", "export_graph", "build_analyzed_project"]


def build_analyzed_project(paths: Iterable[str | Path]) -> ProjectModel:
    """Parse ``paths`` and run the full whole-program analysis."""
    from ..engine import FileContext, iter_python_files, parse_context
    from .rules_flow import ensure_analyzed

    contexts = []
    for path in iter_python_files(paths):
        parsed = parse_context(path.read_text(encoding="utf-8"), str(path))
        if isinstance(parsed, FileContext):
            contexts.append((parsed.display_path, parsed.tree))
    project = build_project(contexts)
    ensure_analyzed(project)
    return project


def project_to_dict(project: ProjectModel) -> dict:
    """Serializable view of modules, call graph, summaries and hot set."""
    modules = {
        mod.modname: {
            "path": mod.path,
            "functions": sorted(mod.functions),
        }
        for mod in sorted(project.modules.values(),
                          key=lambda m: m.modname)
    }
    call_graph = {
        caller: sorted(set(callees))
        for caller, callees in sorted(project.call_graph.items())
        if callees
    }
    summaries = {
        qual: summary.to_dict()
        for qual, summary in sorted(project.summaries.items())
    }
    return {
        "version": 1,
        "tool": "repro-lint",
        "modules": modules,
        "call_graph": call_graph,
        "summaries": summaries,
        "hot": {qual: span for qual, span in sorted(project.hot.items())},
    }


def export_graph(paths: Iterable[str | Path],
                 out_path: str | Path) -> dict:
    """Analyze ``paths`` and write the model JSON to ``out_path``."""
    payload = project_to_dict(build_analyzed_project(paths))
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")
    return payload
