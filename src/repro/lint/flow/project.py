"""Project model: module index, symbol table and call graph.

The model is built from the already-parsed :class:`FileContext` objects
of one lint run, so whole-program rules see exactly the files the user
asked to lint.  Resolution is purely syntactic — ``repro.*`` imports
(absolute or relative) are mapped onto the modules present in the run;
anything else stays an external dotted name (``numpy.fft.rfftn``) that
the summary layer matches against its builtin specification table.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectModel", "build_project"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One function or method of the project."""

    qualname: str            #: ``repro.pme.operator.PMEOperator.apply``
    name: str                #: bare name (``apply``)
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def params(self) -> List[str]:
        a = self.node.args
        names = [p.arg for p in (*a.posonlyargs, *a.args)]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names + [p.arg for p in a.kwonlyargs]

    def decorator_calls(self) -> Iterator[Tuple[str, ast.expr]]:
        """``(root_name, decorator_node)`` for every decorator."""
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = _last_attr(target)
            if name:
                yield name, dec


@dataclass
class ModuleInfo:
    """One parsed source file of the run."""

    path: str                        #: display path (as linted)
    modname: str                     #: dotted module name (best effort)
    tree: ast.Module
    #: local alias -> fully qualified dotted target
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def package_parts(self) -> Tuple[str, ...]:
        return tuple(self.modname.split("."))


def _last_attr(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render an ``a.b.c`` attribute chain; ``None`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: str) -> str:
    """Best-effort dotted module name from a file path.

    Files under a ``src`` (or site-packages-like) layout get their real
    package path (``src/repro/pme/mesh.py`` -> ``repro.pme.mesh``);
    anything else falls back to the path components without suffix.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src", "lib"):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1:]
            break
    parts = [p for p in parts if p not in ("", ".", "..")]
    return ".".join(parts) or (parts[-1] if parts else "<module>")


def _collect_imports(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.imports[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname:
                    module.imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative import: resolve against modname
                anchor = module.package_parts
                up = node.level
                anchor = anchor[:-up] if up <= len(anchor) else ()
                base = ".".join((*anchor, base)) if base else ".".join(anchor)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                module.imports[alias.asname or alias.name] = target


def _collect_functions(module: ModuleInfo) -> None:
    def visit(body: List[ast.stmt], prefix: str,
              class_name: Optional[str]) -> None:
        for node in body:
            if isinstance(node, _FUNC_NODES):
                qual = f"{prefix}.{node.name}"
                info = FunctionInfo(qualname=qual, name=node.name,
                                    module=module, node=node,
                                    class_name=class_name)
                module.functions[qual] = info
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{prefix}.{node.name}", node.name)

    visit(module.tree.body, module.modname, None)


class ProjectModel:
    """Everything the whole-program rules may inspect about one run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}          # by path
        self.by_modname: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}      # by qualname
        #: bare method name -> qualnames (for duck-typed resolution)
        self.methods: Dict[str, List[str]] = {}
        #: caller qualname -> sorted unique callee qualnames
        self.call_graph: Dict[str, List[str]] = {}
        #: function qualname -> analysis result (filled by summaries)
        self.analyses: Dict[str, object] = {}
        self.summaries: Dict[str, object] = {}
        #: function qualname -> span name that marks it hot
        self.hot: Dict[str, str] = {}

    # -- resolution ----------------------------------------------------

    def resolve_call(self, module: ModuleInfo,
                     func: ast.expr) -> Optional[str]:
        """Resolve a callee expression to a project qualname or dotted
        external name.  Returns ``None`` for unresolvable targets."""
        if isinstance(func, ast.Name):
            target = module.imports.get(func.id, func.id)
            return self._resolve_dotted(module, target)
        dotted = dotted_name(func)
        if dotted is not None:
            root, _, rest = dotted.partition(".")
            base = module.imports.get(root)
            if base is not None:
                # imported module / symbol: resolve through the alias
                dotted = f"{base}.{rest}" if rest else base
                return self._resolve_dotted(module, dotted)
            resolved = self._resolve_dotted(module, dotted)
            if resolved in self.functions:
                return resolved
            # the root is a local object (self.pme.apply, op.matvec...):
            # fall back to duck-typed method resolution
            if isinstance(func, ast.Attribute):
                return self.resolve_method(func.attr)
            return resolved
        # method call on a computed receiver: f(x).method(...)
        if isinstance(func, ast.Attribute):
            return self.resolve_method(func.attr)
        return None

    def _resolve_dotted(self, module: ModuleInfo,
                        dotted: str) -> Optional[str]:
        if dotted in self.functions:
            return dotted
        local = f"{module.modname}.{dotted}"
        if local in self.functions:
            return local
        # from repro.pme import operator; operator.PMEOperator -> class
        head, _, tail = dotted.rpartition(".")
        if head and head in self.by_modname:
            qual = f"{head}.{tail}"
            if qual in self.functions:
                return qual
            # constructor call: Class(...) -> Class.__init__
            init = f"{qual}.__init__"
            if init in self.functions:
                return init
        init = f"{dotted}.__init__"
        if init in self.functions:
            return init
        return dotted  # external (numpy.fft.rfftn, scipy...)

    def resolve_method(self, name: str) -> Optional[str]:
        """Duck-typed ``obj.method`` resolution by unique method name."""
        candidates = self.methods.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return f"@method.{name}" if candidates else None

    # -- queries -------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()


def build_project(contexts: List[Tuple[str, ast.Module]]) -> ProjectModel:
    """Build the model from ``(display_path, parsed tree)`` pairs."""
    project = ProjectModel()
    for path, tree in contexts:
        module = ModuleInfo(path=path, modname=module_name_for(path),
                            tree=tree)
        _collect_imports(module)
        _collect_functions(module)
        project.modules[path] = module
        project.by_modname[module.modname] = module
        for qual, info in module.functions.items():
            project.functions[qual] = info
            if info.is_method:
                project.methods.setdefault(info.name, []).append(qual)
    # call graph (edges only to project functions)
    for info in project.iter_functions():
        callees: set = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                target = project.resolve_call(info.module, node.func)
                if target in project.functions:
                    callees.add(target)
        project.call_graph[info.qualname] = sorted(callees)
    return project
