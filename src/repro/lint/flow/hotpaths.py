"""Hot-path registry derived from the observability span names.

The paper's per-step cost lives in the PME pipeline, the Krylov
solvers and the sparse real-space product — exactly the code the
observability layer (PR 3) already wraps in trace spans
(``pme.spread``, ``krylov.lanczos``, ``pme.real_spmm``, ...).  Instead
of maintaining a hand-written list of hot functions, the analysis
*derives* it: any function in the ``pme`` / ``krylov`` / ``sparse``
packages that opens an ``obs.span(...)`` or times a
``PhaseTimer.phase(...)`` is a measured hot phase, and everything it
(transitively) calls inside those packages runs under that span.

``HOT_EXTRA`` lets a project pin additional qualnames manually.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from .project import FunctionInfo, ProjectModel, dotted_name

__all__ = ["HOT_PACKAGES", "HOT_EXTRA", "derive_hot_registry"]

#: package path components whose span-opening functions are hot.
HOT_PACKAGES = frozenset({"pme", "krylov", "sparse"})

#: qualname -> label; manual additions to the derived registry.
HOT_EXTRA: Dict[str, str] = {}


def _in_hot_package(info: FunctionInfo) -> bool:
    parts = set(info.module.package_parts)
    parts.update(info.module.path.replace("\\", "/").split("/"))
    return bool(parts & HOT_PACKAGES)


def _span_name(node: ast.Call) -> Optional[str]:
    """Span/phase name of an ``obs.span("x")`` / ``timers.phase("x")``
    call; ``None`` for anything else."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in ("span", "phase"):
        return None
    if not node.args:
        return None
    arg = node.args[0]
    if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
        return None
    if func.attr == "span":
        receiver = dotted_name(func.value) or ""
        if receiver.split(".")[-1] not in ("obs", "trace", "tracer", "_trace"):
            return None
        return arg.value
    return f"phase:{arg.value}"


def derive_hot_registry(project: ProjectModel) -> Dict[str, str]:
    """Map hot function qualnames to the span that marks them hot."""
    hot: Dict[str, str] = dict(HOT_EXTRA)
    for info in project.iter_functions():
        if not _in_hot_package(info):
            continue
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                name = _span_name(node)
                if name is not None:
                    hot.setdefault(info.qualname, name)
                    break
    # everything a hot function calls inside the hot packages runs
    # under the same span
    frontier = sorted(hot)
    while frontier:
        qual = frontier.pop()
        label = hot[qual]
        for callee in project.call_graph.get(qual, []):
            if callee in hot:
                continue
            info = project.function(callee)
            if info is not None and _in_hot_package(info):
                hot[callee] = label
                frontier.append(callee)
    project.hot = hot
    return hot
