"""Rule registry and ``--select`` / ``--ignore`` resolution.

Rules are classes with a :class:`RuleMeta` ``meta`` attribute and a
``check(ctx)`` generator; registering them with :func:`register` makes
them discoverable by the engine, the CLI (``--list-rules``) and the
documentation.  Selection strings are rule-id prefixes, so
``--select RPR00`` matches every built-in rule and ``--ignore RPR007``
disables exactly one.
"""

from __future__ import annotations

import ast

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Type

from ..errors import ConfigurationError
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import FileContext
    from .flow.project import ProjectModel

__all__ = ["RuleMeta", "Rule", "ProjectRule", "register", "all_rules",
           "get_rule", "resolve_selection", "SYNTAX_ERROR_ID"]

#: Pseudo-rule id of unparseable files (emitted by the engine itself).
SYNTAX_ERROR_ID = "RPR000"


@dataclass(frozen=True)
class RuleMeta:
    """Static description of one rule.

    Attributes
    ----------
    id:
        Stable identifier (``RPRnnn``).
    name:
        Short kebab-case name, e.g. ``"global-numpy-rng"``.
    summary:
        One-line description shown by ``--list-rules``.
    rationale:
        Why the pattern is dangerous for this codebase, tied to the
        paper section the rule protects (see docs/static_analysis.md).
    """

    id: str
    name: str
    summary: str
    rationale: str = ""


class Rule:
    """Base class of all lint rules.

    Subclasses set ``meta`` and implement :meth:`check`, a generator of
    :class:`~repro.lint.findings.Finding` objects for one parsed file.
    Rules must be stateless across files; per-file state lives in local
    variables of ``check``.
    """

    meta: RuleMeta
    #: ``"file"`` rules see one parsed file; ``"project"`` rules
    #: (:class:`ProjectRule`) see the whole-program model.
    scope: str = "file"

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST,
                message: str,
                hint: str = "") -> Finding:
        """Build a :class:`Finding` for an AST node of ``ctx``."""
        return Finding(path=ctx.display_path, line=node.lineno,
                       col=node.col_offset, rule=self.meta.id,
                       message=message, hint=hint)


class ProjectRule(Rule):
    """Base class of whole-program (dataflow) rules.

    Subclasses implement :meth:`check_project` over the
    :class:`~repro.lint.flow.project.ProjectModel` of one lint run;
    findings still carry per-file locations and honour ``noqa``.
    """

    scope = "project"

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())  # project rules never run per-file

    def check_project(self, project: "ProjectModel") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, node: ast.AST, message: str,
                   hint: str = "") -> Finding:
        return Finding(path=path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.meta.id, message=message, hint=hint)


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = cls.meta.id
    if rule_id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by exact id."""
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise ConfigurationError(f"unknown rule id {rule_id!r}") from None


def resolve_selection(select: Iterable[str] | None,
                      ignore: Iterable[str] | None) -> set[str]:
    """Resolve ``--select`` / ``--ignore`` prefixes to a set of rule ids.

    ``select`` defaults to every registered rule; ``ignore`` is applied
    afterwards.  Each entry is a rule-id prefix (``RPR``, ``RPR00``,
    ``RPR004`` all work).  A prefix matching nothing raises
    :class:`~repro.errors.ConfigurationError` — a misspelled selection
    should fail loudly, not silently lint nothing.

    The pseudo-rule ``RPR000`` (syntax error) participates in the
    resolution like a real rule: it is on by default, an explicit
    ``--select`` must cover it for unparseable files to be reported,
    and ``--ignore RPR000`` silences it.
    """
    known = sorted([*_REGISTRY, SYNTAX_ERROR_ID])

    def expand(prefixes: Iterable[str], what: str) -> set[str]:
        out: set[str] = set()
        for prefix in prefixes:
            matched = {rid for rid in known if rid.startswith(prefix)}
            if not matched:
                raise ConfigurationError(
                    f"{what} {prefix!r} matches no known rule "
                    f"(known: {', '.join(known)})")
            out |= matched
        return out

    selected = expand(select, "--select") if select else set(known)
    if ignore:
        selected -= expand(ignore, "--ignore")
    return selected
