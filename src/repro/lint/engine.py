"""Lint engine: file discovery, parsing, rule dispatch, noqa filtering.

The engine is pure analysis — it never imports the code it checks, so
it works on files with missing optional dependencies or syntax errors
(the latter are reported as findings rather than crashing the run).

Suppression follows the familiar ``noqa`` convention: a trailing
``# noqa`` comment silences every rule on that line, and
``# noqa: RPR001, RPR005`` silences only the listed rules.  For a
multi-line statement (a wrapped call, a long ``def`` signature) the
comment may sit on *any* physical line of the statement — the closing
paren included — and still suppresses findings anchored anywhere in it.

Two kinds of rules run per invocation: per-file rules see one parsed
:class:`FileContext`; project rules (:class:`~repro.lint.registry
.ProjectRule`, the RPR1xx/2xx/3xx dataflow families) see the
whole-program model built from every file of the run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from . import rules as _builtin_rules  # noqa: F401 - registers RPR rules
from .findings import Finding
from .flow import rules_flow as _flow_rules  # noqa: F401 - RPR1xx-3xx
from .registry import (
    ProjectRule,
    Rule,
    SYNTAX_ERROR_ID,
    all_rules,
    resolve_selection,
)

__all__ = ["FileContext", "lint_source", "lint_paths", "iter_python_files"]

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<rules>[A-Z]{3}[0-9]{3}(?:\s*,\s*[A-Z]{3}[0-9]{3})*))?",
    re.IGNORECASE)

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class FileContext:
    """Everything a rule may inspect about one parsed file."""

    display_path: str
    source: str
    tree: ast.Module
    #: ``line -> None`` (blanket noqa) or ``line -> set of rule ids``.
    noqa: dict[int, set[str] | None] = field(default_factory=dict)
    #: lazily computed ``(start, end)`` line ranges of statements /
    #: statement headers, for multi-line noqa suppression
    _extents: list[tuple[int, int]] | None = field(
        default=None, repr=False, compare=False)

    def statement_extents(self) -> list[tuple[int, int]]:
        if self._extents is None:
            self._extents = _statement_extents(self.tree)
        return self._extents


def _collect_noqa(source: str) -> dict[int, set[str] | None]:
    """Map line numbers to their noqa suppressions."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "noqa" not in line.lower():
            continue
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip().upper() for r in rules.split(",")}
    return out


def _statement_extents(tree: ast.Module) -> list[tuple[int, int]]:
    """Line ranges over which a noqa comment suppresses a finding.

    Simple statements span ``lineno..end_lineno``.  Compound statements
    (``def``, ``if``, ``for``, ``try`` ...) contribute only their
    *header* (up to the line before the first body statement) so a noqa
    inside a function body never silences a finding on the ``def`` line.
    """
    extents: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.stmt, ast.ExceptHandler)):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if isinstance(body, list) and body \
                and isinstance(body[0], (ast.stmt, ast.ExceptHandler)):
            end = max(start, body[0].lineno - 1)
        extents.append((start, end))
    return extents


def _suppressed(ctx: FileContext, finding: Finding) -> bool:
    if not ctx.noqa:
        return False
    lines = {finding.line}
    best: tuple[int, int] | None = None
    for start, end in ctx.statement_extents():
        if start <= finding.line <= end:
            if best is None or end - start < best[1] - best[0]:
                best = (start, end)
    if best is not None:
        lines.update(range(best[0], best[1] + 1))
    for line in lines:
        if line in ctx.noqa:
            rules = ctx.noqa[line]
            if rules is None or finding.rule in rules:
                return True
    return False


def parse_context(source: str, display_path: str
                  ) -> FileContext | Finding:
    """Parse one source file into a :class:`FileContext`.

    A syntax error yields the ``RPR000`` :class:`Finding` instead.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return Finding(path=display_path, line=exc.lineno or 1,
                       col=(exc.offset or 1) - 1, rule=SYNTAX_ERROR_ID,
                       message=f"syntax error: {exc.msg}",
                       hint="file could not be parsed; no rules were run")
    return FileContext(display_path=display_path, source=source, tree=tree,
                       noqa=_collect_noqa(source))


def _run_file_rules(ctx: FileContext,
                    rules: Sequence[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        if rule.scope != "file":
            continue
        for finding in rule.check(ctx):
            if not _suppressed(ctx, finding):
                findings.append(finding)
    return findings


def _run_project_rules(contexts: Sequence[FileContext],
                       rules: Sequence[ProjectRule]) -> list[Finding]:
    if not rules or not contexts:
        return []
    from .flow.project import build_project

    project = build_project([(ctx.display_path, ctx.tree)
                             for ctx in contexts])
    by_path = {ctx.display_path: ctx for ctx in contexts}
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check_project(project):
            ctx = by_path.get(finding.path)
            if ctx is None or not _suppressed(ctx, finding):
                findings.append(finding)
    return findings


def lint_source(source: str, display_path: str,
                rules: Sequence[Rule] | None = None,
                include_syntax_errors: bool = True) -> list[Finding]:
    """Lint one in-memory source string; returns surviving findings.

    Both per-file and project rules run (the "project" is the single
    source string).  Syntax errors produce one ``RPR000`` finding at
    the error location instead of raising.
    """
    if rules is None:
        rules = all_rules()
    parsed = parse_context(source, display_path)
    if isinstance(parsed, Finding):
        return [parsed] if include_syntax_errors else []
    findings = _run_file_rules(parsed, rules)
    findings += _run_project_rules(
        [parsed], [r for r in rules if isinstance(r, ProjectRule)])
    return sorted(findings)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & {part for part in p.parts}))
        else:
            candidates = [path]
        for p in candidates:
            key = p.resolve()
            if key not in seen:
                seen.add(key)
                out.append(p)
    return out


def lint_paths(paths: Iterable[str | Path],
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None
               ) -> tuple[list[Finding], int]:
    """Lint files and directories; returns ``(findings, files_checked)``.

    Unreadable files raise ``OSError`` to the caller — a missing path on
    the command line is a usage error, not a lint finding.
    """
    selected = resolve_selection(select, ignore)
    rules = [r for r in all_rules() if r.meta.id in selected]
    file_rules = [r for r in rules if r.scope == "file"]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    emit_syntax = SYNTAX_ERROR_ID in selected

    findings: list[Finding] = []
    contexts: list[FileContext] = []
    files = iter_python_files(paths)
    for path in files:
        source = path.read_text(encoding="utf-8")
        parsed = parse_context(source, str(path))
        if isinstance(parsed, Finding):
            if emit_syntax:
                findings.append(parsed)
            continue
        contexts.append(parsed)
        findings.extend(_run_file_rules(parsed, file_rules))
    findings.extend(_run_project_rules(contexts, project_rules))
    return sorted(findings), len(files)
