"""Lint engine: file discovery, parsing, rule dispatch, noqa filtering.

The engine is pure analysis — it never imports the code it checks, so
it works on files with missing optional dependencies or syntax errors
(the latter are reported as findings rather than crashing the run).

Suppression follows the familiar ``noqa`` convention: a trailing
``# noqa`` comment silences every rule on that line, and
``# noqa: RPR001, RPR005`` silences only the listed rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from . import rules as _builtin_rules  # noqa: F401 - registers RPR rules
from .findings import Finding
from .registry import Rule, all_rules, resolve_selection

__all__ = ["FileContext", "lint_source", "lint_paths", "iter_python_files"]

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<rules>[A-Z]{3}[0-9]{3}(?:\s*,\s*[A-Z]{3}[0-9]{3})*))?",
    re.IGNORECASE)

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class FileContext:
    """Everything a rule may inspect about one parsed file."""

    display_path: str
    source: str
    tree: ast.Module
    #: ``line -> None`` (blanket noqa) or ``line -> set of rule ids``.
    noqa: dict[int, set[str] | None] = field(default_factory=dict)


def _collect_noqa(source: str) -> dict[int, set[str] | None]:
    """Map line numbers to their noqa suppressions."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "noqa" not in line.lower():
            continue
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip().upper() for r in rules.split(",")}
    return out


def _suppressed(ctx: FileContext, finding: Finding) -> bool:
    if finding.line not in ctx.noqa:
        return False
    rules = ctx.noqa[finding.line]
    return rules is None or finding.rule in rules


def lint_source(source: str, display_path: str,
                rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory source string; returns surviving findings.

    Syntax errors produce a single ``RPR000`` finding at the error
    location instead of raising.
    """
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(path=display_path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, rule="RPR000",
                        message=f"syntax error: {exc.msg}",
                        hint="file could not be parsed; no rules were run")]
    ctx = FileContext(display_path=display_path, source=source, tree=tree,
                      noqa=_collect_noqa(source))
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not _suppressed(ctx, finding):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & {part for part in p.parts}))
        else:
            candidates = [path]
        for p in candidates:
            key = p.resolve()
            if key not in seen:
                seen.add(key)
                out.append(p)
    return out


def lint_paths(paths: Iterable[str | Path],
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None
               ) -> tuple[list[Finding], int]:
    """Lint files and directories; returns ``(findings, files_checked)``.

    Unreadable files raise ``OSError`` to the caller — a missing path on
    the command line is a usage error, not a lint finding.
    """
    selected = resolve_selection(select, ignore)
    rules = [r for r in all_rules() if r.meta.id in selected]
    findings: list[Finding] = []
    files = iter_python_files(paths)
    for path in files:
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(path), rules))
    return sorted(findings), len(files)
