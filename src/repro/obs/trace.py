"""Span-based tracing for the BD pipeline.

A :class:`Tracer` records *spans* — named, timed, attributed intervals
— with thread-safe nesting, plus zero-duration *instant* events (used
by the recovery ladder).  The recorded stream exports to

* JSONL (one event object per line, the ``--trace out.jsonl`` format),
* the Chrome trace-event JSON consumed by ``chrome://tracing`` and
  Perfetto (``ph: "X"`` complete events / ``ph: "i"`` instants).

Tracing is **opt-in and near-free when off**: the module-level
:func:`span` / :func:`instant` facades check one global and return a
shared no-op context manager when no tracer is installed, so the
instrumented numerical code pays a single attribute load + ``is None``
test per call site.  Installing a tracer never touches the numerics or
the RNG stream — traced and untraced runs are bit-identical.

Span names are dotted, coarse-to-fine (``pme.spread``,
``krylov.block_lanczos``, ``bd.mobility`` — see
``docs/observability.md`` for the full taxonomy).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = ["SpanEvent", "Tracer", "span", "instant", "get_tracer",
           "set_tracer", "tracing_enabled", "write_jsonl", "read_jsonl",
           "read_jsonl_header", "to_chrome_trace", "clock", "NULL_SPAN",
           "TRACE_SCHEMA"]

#: Version tag of the trace event/stream layout.  v2 adds the optional
#: process-identity fields (``pid``/``worker_id``/``task_id``) and the
#: JSONL header line carrying ``dropped`` — v1 streams (no header, no
#: identity fields) still validate.
TRACE_SCHEMA = "repro-trace/2"


@dataclass
class SpanEvent:
    """One recorded trace event.

    Attributes
    ----------
    name:
        Dotted span name (``"pme.fft"``).
    ts:
        Start time in seconds relative to the tracer's epoch.
    dur:
        Duration in seconds (0.0 for instant events).
    tid:
        Identifier of the recording thread.
    depth:
        Nesting depth within the recording thread (0 = top level).
    phase:
        ``"X"`` for a complete span, ``"i"`` for an instant event
        (Chrome trace-event phase letters).
    args:
        Free-form attributes attached at the call site.
    pid:
        Recording process id (schema v2; stamped by the tracer so
        multi-process merges keep events attributable).
    worker_id:
        Ensemble worker that recorded the event (``None`` outside the
        multi-process runtime).
    task_id:
        Campaign task the event belongs to (``None`` outside a task).
    """

    name: str
    ts: float
    dur: float
    tid: int
    depth: int
    phase: str = "X"
    args: dict[str, Any] = field(default_factory=dict)
    pid: int | None = None
    worker_id: int | None = None
    task_id: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSONL export."""
        out: dict[str, Any] = {"name": self.name, "ph": self.phase,
                               "ts": self.ts, "dur": self.dur,
                               "tid": self.tid, "depth": self.depth}
        if self.pid is not None:
            out["pid"] = self.pid
        if self.worker_id is not None:
            out["worker_id"] = self.worker_id
        if self.task_id is not None:
            out["task_id"] = self.task_id
        if self.args:
            out["args"] = self.args
        return out


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


#: Shared do-nothing context manager (also used by instrumentation that
#: wants to skip span construction entirely on its own fast path).
NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one span into a tracer."""

    __slots__ = ("_tracer", "name", "args", "_t0", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._push()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        dur = time.perf_counter() - self._t0
        self._tracer._pop()
        self._tracer._record(self.name, self._t0, dur, self._depth,
                             "X", self.args)


class Tracer:
    """Collects :class:`SpanEvent` records from any number of threads.

    Parameters
    ----------
    max_events:
        Safety cap on stored events; once reached, further events are
        counted in :attr:`dropped` instead of stored (an unbounded
        month-long run must not exhaust memory through its telemetry).
        A spooling consumer that calls :meth:`drain` periodically
        effectively turns the cap into a per-flush-window bound.
    worker_id, task_id:
        Optional trace context (schema v2) stamped on every recorded
        event — the ensemble runtime propagates these so merged
        multi-process traces stay attributable and correlatable.
    """

    def __init__(self, max_events: int = 1_000_000, *,
                 worker_id: int | None = None,
                 task_id: int | None = None):
        self.epoch = time.perf_counter()
        self.max_events = int(max_events)
        self.events: list[SpanEvent] = []
        #: Events discarded after ``max_events`` was reached.
        self.dropped = 0
        self.pid = os.getpid()
        self.worker_id = worker_id
        self.task_id = task_id
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording (internal API used by _Span and the facades) ----------

    def _push(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _pop(self) -> None:
        self._local.depth -= 1

    def _record(self, name: str, t0: float, dur: float, depth: int,
                phase: str, args: dict[str, Any]) -> None:
        event = SpanEvent(name=name, ts=t0 - self.epoch, dur=dur,
                          tid=threading.get_ident(), depth=depth,
                          phase=phase, args=args, pid=self.pid,
                          worker_id=self.worker_id, task_id=self.task_id)
        with self._lock:
            if len(self.events) < self.max_events:
                self.events.append(event)
            else:
                self.dropped += 1

    def drain(self) -> list[SpanEvent]:
        """Atomically remove and return the recorded events.

        Used by spooling consumers (the ensemble workers) to ship
        events incrementally with bounded memory: :attr:`dropped`
        stays cumulative across drains, and draining frees the whole
        ``max_events`` budget for the next flush window.
        """
        with self._lock:
            events, self.events = self.events, []
        return events

    # -- public recording API --------------------------------------------

    def span(self, name: str, **args: Any) -> _Span:
        """Context manager timing one span named ``name``."""
        return _Span(self, name, args)

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration event (e.g. a recovery action)."""
        self._record(name, time.perf_counter(), 0.0,
                     getattr(self._local, "depth", 0), "i", args)

    def add_interval(self, name: str, t0: float, dur: float,
                     **args: Any) -> None:
        """Record an externally timed interval (``t0`` in perf-counter
        time) — used by :class:`~repro.utils.timing.PhaseTimer` so span
        durations coincide with the timer's own measurement."""
        self._record(name, t0, dur, getattr(self._local, "depth", 0),
                     "X", args)

    # -- aggregation -------------------------------------------------------

    def totals(self, prefix: str = "") -> dict[str, float]:
        """Accumulated seconds per span name (optionally filtered).

        Only top-level occurrences of each *name* are summed — i.e. a
        reentrant span nested inside itself is not double counted —
        but distinct nested names each report their own total.
        """
        out: dict[str, float] = {}
        with self._lock:
            events = list(self.events)
        for e in events:
            if e.phase != "X" or not e.name.startswith(prefix):
                continue
            out[e.name] = out.get(e.name, 0.0) + e.dur
        return out

    def counts(self, prefix: str = "") -> dict[str, int]:
        """Number of spans per name (optionally filtered by prefix)."""
        out: dict[str, int] = {}
        with self._lock:
            events = list(self.events)
        for e in events:
            if e.phase != "X" or not e.name.startswith(prefix):
                continue
            out[e.name] = out.get(e.name, 0) + 1
        return out

    # -- export ------------------------------------------------------------

    def header(self) -> dict[str, Any]:
        """The JSONL stream header (schema tag, drop count, context)."""
        out: dict[str, Any] = {"schema": TRACE_SCHEMA,
                               "dropped": self.dropped, "pid": self.pid,
                               "epoch": self.epoch}
        if self.worker_id is not None:
            out["worker_id"] = self.worker_id
        return out

    def _export_events(self) -> list[SpanEvent]:
        """Events to export, with a final ``trace.dropped`` instant when
        the cap truncated the stream (no silent drops)."""
        events = list(self.events)
        if self.dropped:
            events.append(SpanEvent(
                name="trace.dropped", ts=time.perf_counter() - self.epoch,
                dur=0.0, tid=threading.get_ident(), depth=0, phase="i",
                args={"dropped": self.dropped,
                      "max_events": self.max_events},
                pid=self.pid, worker_id=self.worker_id))
        return events

    def write_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per line; returns the path written.

        The first line is the stream header (schema tag, ``dropped``
        count, recording context); a nonzero drop count additionally
        appends a ``trace.dropped`` instant event.
        """
        return write_jsonl(self._export_events(), path,
                           header=self.header())

    def to_chrome_trace(self) -> dict[str, Any]:
        """The ``chrome://tracing`` / Perfetto JSON document."""
        doc = to_chrome_trace(self._export_events())
        doc["otherData"]["dropped"] = self.dropped
        return doc

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write the Chrome trace-event JSON document to ``path``."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace()),
                        encoding="utf-8")
        return path


def write_jsonl(events: Iterable[SpanEvent], path: str | Path,
                header: dict[str, Any] | None = None) -> Path:
    """Write events as JSON Lines (one event dict per line).

    ``header``, when given, becomes the first line of the stream (the
    schema-v2 header object; distinguished from events by its
    ``schema`` key and absence of a ``name``).
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        if header is not None:
            fh.write(json.dumps(header) + "\n")
        for event in events:
            fh.write(json.dumps(event.to_dict()) + "\n")
    return path


def is_header(obj: dict[str, Any]) -> bool:
    """Whether a parsed JSONL line is a stream header, not an event."""
    return "schema" in obj and "name" not in obj


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace back into event dictionaries.

    A leading schema-v2 header line is skipped (use
    :func:`read_jsonl_header` to read it).
    """
    out = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                obj = json.loads(line)
                if not out and is_header(obj):
                    continue
                out.append(obj)
    return out


def read_jsonl_header(path: str | Path) -> dict[str, Any] | None:
    """The stream header of a JSONL trace (``None`` for v1 streams)."""
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                obj = json.loads(line)
                return obj if is_header(obj) else None
    return None


def to_chrome_trace(events: Iterable[SpanEvent]) -> dict[str, Any]:
    """Convert events to the Chrome trace-event format.

    Timestamps and durations are microseconds as the format requires;
    the span's dotted root becomes the category.  Events stamped with
    a ``pid`` (schema v2) keep it — merged multi-process traces rely
    on it for their per-worker process tracks — and their
    ``worker_id``/``task_id`` context lands in ``args`` so Perfetto
    queries can correlate supervisor and worker spans.
    """
    own_pid = os.getpid()
    trace_events = []
    for e in events:
        entry: dict[str, Any] = {
            "name": e.name,
            "cat": e.name.split(".", 1)[0],
            "ph": e.phase,
            "pid": own_pid if e.pid is None else e.pid,
            "tid": e.tid,
            "ts": e.ts * 1e6,
        }
        if e.phase == "X":
            entry["dur"] = e.dur * 1e6
        else:
            entry["s"] = "t"  # thread-scoped instant
        args = dict(e.args)
        if e.worker_id is not None:
            args.setdefault("worker_id", e.worker_id)
        if e.task_id is not None:
            args.setdefault("task_id", e.task_id)
        if args:
            entry["args"] = args
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA}}


def clock() -> float:
    """A reading of the tracer clock (for externally timed intervals).

    :meth:`Tracer.add_interval` interprets ``t0`` on this clock;
    callers outside the timing/obs layers must use this helper rather
    than a direct ``time.perf_counter()`` so every interval stays on
    the single tracer timebase (``time.monotonic`` — the
    :func:`repro.utils.timing.now` scheduler clock — is *not*
    guaranteed to share an epoch with it on every platform).
    """
    return time.perf_counter()


# ----------------------------------------------------------------------
# the process-global tracer and its fast-path facades
# ----------------------------------------------------------------------

_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed global tracer (``None`` when tracing is off)."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or remove, with ``None``) the global tracer.

    Returns the previously installed tracer so callers can restore it.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def tracing_enabled() -> bool:
    """Whether a global tracer is installed."""
    return _TRACER is not None


def span(name: str, **args: Any):
    """Span against the global tracer; no-op singleton when disabled."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **args)


def instant(name: str, **args: Any) -> None:
    """Instant event against the global tracer; no-op when disabled."""
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, **args)
