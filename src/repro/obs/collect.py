"""Cross-process trace collection for the ensemble runtime.

The supervised multi-worker runtime (:mod:`repro.runtime`) fans a
campaign out across OS processes, and each worker process is its own
observability domain: tracers and metric registries die with the
process unless their contents are shipped out incrementally.  This
module provides the full collection pipeline:

* :class:`TraceContext` — the supervisor-assigned context propagated
  through :class:`~repro.runtime.tasks.TaskSpec` into each worker
  (campaign ``trace_id`` + ``task_id``), so merged traces stay
  correlatable across the process boundary;
* :class:`SpoolWriter` / :func:`read_spool` — per-worker spool files
  (append-only JSONL in the campaign checkpoint directory) that
  workers flush at heartbeat/checkpoint cadence.  A SIGKILL'd worker
  loses at most its last unflushed window; the reader tolerates a
  torn final line;
* :class:`SpoolingSession` — the worker-side driver: a per-task
  :class:`~repro.obs.trace.Tracer` and a per-process
  :class:`~repro.obs.metrics.MetricsRegistry` installed as the process
  globals, drained to the spool and snapshotted to disk on every
  flush;
* :func:`merge_traces` — deterministic merge of supervisor + worker
  event streams into one timeline: one named Perfetto process track
  per worker (``process_name``/``thread_name`` metadata events),
  timestamps normalised to the earliest event, byte-identical output
  for the same event set regardless of spool grouping or arrival
  order;
* :func:`aggregate_metrics` — campaign-level metric aggregation:
  counters sum across workers, histograms merge bucket-by-bucket
  (identical bucket ladders required), gauges become per-worker
  labelled series;
* :func:`collect_campaign` — the one-call entry point the supervisor
  uses after a campaign: discover spools, merge, aggregate, and write
  the canonical ``campaign-trace.json`` / ``campaign-metrics.json`` /
  ``campaign-metrics.prom`` next to ``campaign.json``.

Timestamps inside spool files are *absolute* tracer-clock readings
(``time.perf_counter``), which on one machine is a shared monotonic
timebase across processes — the merge subtracts the global minimum, so
the merged timeline starts at zero and preserves true cross-process
ordering.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from .metrics import MetricsRegistry, set_metrics
from .trace import TRACE_SCHEMA, SpanEvent, Tracer, is_header, set_tracer

__all__ = ["TraceContext", "SpoolWriter", "SpoolData", "SpoolingSession",
           "read_spool", "spool_path", "metrics_snapshot_path",
           "find_spools", "merge_traces", "MergedTrace",
           "aggregate_metrics", "collect_campaign", "CampaignCollection",
           "spans_for_task"]

#: Spool files are named so every worker *process* gets its own file
#: (worker ids restart at 0 on ``--resume``; the pid disambiguates).
SPOOL_PREFIX = "obs-worker-"


@dataclass(frozen=True)
class TraceContext:
    """Supervisor-assigned trace context carried by a task spec.

    ``trace_id`` names the campaign (derived deterministically from
    the task set), ``task_id`` the campaign member — together they let
    the merge correlate a supervisor-side ``supervisor.task`` span
    with every worker-side span recorded while running that task.
    """

    trace_id: str
    task_id: int | None = None

    def to_json(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "task_id": self.task_id}

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> TraceContext:
        return cls(trace_id=d["trace_id"], task_id=d.get("task_id"))


def spool_path(directory: str | Path, worker_id: int, pid: int) -> Path:
    """The spool file of one worker process inside ``directory``."""
    return Path(directory) / (
        f"{SPOOL_PREFIX}{worker_id:04d}-pid{pid}.spool.jsonl")


def metrics_snapshot_path(directory: str | Path, worker_id: int,
                          pid: int) -> Path:
    """The metrics-snapshot file of one worker process."""
    return Path(directory) / (
        f"{SPOOL_PREFIX}{worker_id:04d}-pid{pid}.metrics.json")


def find_spools(directory: str | Path) -> list[Path]:
    """All worker spool files in a campaign directory, sorted."""
    return sorted(Path(directory).glob(f"{SPOOL_PREFIX}*.spool.jsonl"))


class SpoolWriter:
    """Append-only JSONL event spool for one worker process.

    The file starts with a schema-v2 header line; every
    :meth:`write` appends one line per event with *absolute*
    tracer-clock timestamps and flushes to the OS, so a SIGKILL loses
    at most the events recorded since the previous flush (plus,
    possibly, a torn final line that :func:`read_spool` skips).
    """

    def __init__(self, path: str | Path, *, pid: int, worker_id: int,
                 trace_id: str | None = None):
        self.path = Path(path)
        self.pid = pid
        self.worker_id = worker_id
        self.trace_id = trace_id
        self._dropped = 0
        new = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = self.path.open("a", encoding="utf-8")
        if new:
            header: dict[str, Any] = {"schema": TRACE_SCHEMA,
                                      "kind": "spool", "dropped": 0,
                                      "pid": pid, "worker_id": worker_id}
            if trace_id is not None:
                header["trace_id"] = trace_id
            self._fh.write(json.dumps(header) + "\n")
            self._fh.flush()

    def write(self, events: Iterable[SpanEvent], epoch: float,
              dropped: int = 0) -> int:
        """Append drained events (timestamps shifted to absolute).

        ``dropped`` is the draining tracer's cumulative drop count; an
        increase since the last write is recorded in the spool as a
        ``trace.dropped`` instant, so the cap is never silent even
        when the process later dies.  Returns the number of event
        lines written.
        """
        n = 0
        for e in events:
            d = e.to_dict()
            d["ts"] = d["ts"] + epoch
            self._fh.write(json.dumps(d) + "\n")
            n += 1
        if dropped > self._dropped:
            self._fh.write(json.dumps({
                "name": "trace.dropped", "ph": "i", "ts": epoch,
                "dur": 0.0, "tid": 0, "depth": 0, "pid": self.pid,
                "worker_id": self.worker_id,
                "args": {"dropped": dropped}}) + "\n")
            self._dropped = dropped
            n += 1
        if n:
            self._fh.flush()
        return n

    def close(self) -> None:
        self._fh.close()


@dataclass
class SpoolData:
    """Parsed contents of one worker spool file."""

    path: Path
    header: dict[str, Any] | None
    events: list[dict[str, Any]]
    #: True when the file ended mid-line (the writer was killed while
    #: flushing); everything before the tear was still recovered.
    truncated: bool = False

    @property
    def worker_id(self) -> int | None:
        return (self.header or {}).get("worker_id")

    @property
    def pid(self) -> int | None:
        return (self.header or {}).get("pid")

    @property
    def dropped(self) -> int:
        """Cumulative drop count (from ``trace.dropped`` instants)."""
        out = 0
        for e in self.events:
            if e.get("name") == "trace.dropped":
                out = max(out, int(e.get("args", {}).get("dropped", 0)))
        return out


def read_spool(path: str | Path) -> SpoolData:
    """Parse a spool file, tolerating a torn (SIGKILL) final line."""
    path = Path(path)
    header: dict[str, Any] | None = None
    events: list[dict[str, Any]] = []
    truncated = False
    with path.open(encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                obj = json.loads(stripped)
            except json.JSONDecodeError:
                truncated = True
                break
            if i == 0 and is_header(obj):
                header = obj
            else:
                events.append(obj)
    return SpoolData(path=path, header=header, events=events,
                     truncated=truncated)


class SpoolingSession:
    """Worker-side observability driver for the ensemble runtime.

    One instance lives for the worker process's lifetime: the metrics
    registry accumulates across tasks (so per-worker counter sums are
    meaningful), while each task gets a fresh tracer stamped with the
    task's :class:`TraceContext`.  Events are drained to the spool and
    the metrics snapshot rewritten atomically on every :meth:`flush`
    — called from the worker's heartbeat/checkpoint callback, so a
    SIGKILL'd worker leaves behind everything up to its last flush.
    """

    def __init__(self, spool_dir: str | Path, worker_id: int, *,
                 trace: bool = True, metrics: bool = True,
                 trace_id: str | None = None,
                 max_events: int = 1_000_000):
        self.worker_id = worker_id
        self.pid = os.getpid()
        self.trace_id = trace_id
        self.max_events = max_events
        self.spool = (SpoolWriter(
            spool_path(spool_dir, worker_id, self.pid), pid=self.pid,
            worker_id=worker_id, trace_id=trace_id) if trace else None)
        self.registry = MetricsRegistry() if metrics else None
        self.metrics_path = metrics_snapshot_path(spool_dir, worker_id,
                                                  self.pid)
        self.tracer: Tracer | None = None
        self._prev_tracer: Tracer | None = None
        self._prev_registry: MetricsRegistry | None = None

    def begin_task(self, task_id: int,
                   trace_id: str | None = None) -> None:
        """Install per-task observability as the process globals."""
        if trace_id is not None:
            self.trace_id = trace_id
        if self.spool is not None:
            self.tracer = Tracer(max_events=self.max_events,
                                 worker_id=self.worker_id,
                                 task_id=task_id)
            self.tracer.instant("worker.task_begin", task=task_id,
                                worker=self.worker_id)
        self._prev_tracer = set_tracer(self.tracer)
        if self.registry is not None:
            self._prev_registry = set_metrics(self.registry)
        self.flush()

    def flush(self) -> None:
        """Drain trace events to the spool; snapshot the metrics."""
        if self.tracer is not None and self.spool is not None:
            self.spool.write(self.tracer.drain(), self.tracer.epoch,
                             self.tracer.dropped)
        if self.registry is not None:
            _write_json_atomic(self.metrics_path,
                               self.registry.to_json())

    def end_task(self, outcome: str) -> None:
        """Record the task outcome, flush, restore the globals."""
        if self.tracer is not None:
            self.tracer.instant("worker.task_end", outcome=outcome)
        self.flush()
        set_tracer(self._prev_tracer)
        if self.registry is not None:
            set_metrics(self._prev_registry)
        self.tracer = None

    def close(self) -> None:
        if self.spool is not None:
            self.spool.close()


def _write_json_atomic(path: Path, doc: dict[str, Any]) -> None:
    """tmp + rename so a mid-write SIGKILL never leaves a torn file."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=f".{path.name}-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------

@dataclass
class TrackGroup:
    """One process track feeding the merge (supervisor or a worker)."""

    label: str
    pid: int
    #: Event dicts with *absolute* tracer-clock ``ts`` (seconds).
    events: list[dict[str, Any]]
    worker_id: int | None = None
    dropped: int = 0
    truncated: bool = False


@dataclass
class MergedTrace:
    """One deterministic cross-process timeline.

    ``events`` carry normalised timestamps (seconds from the earliest
    event across every process) and keep their schema-v2 identity
    fields, so the JSONL form validates and the Chrome form groups
    into named per-worker process tracks.
    """

    events: list[dict[str, Any]]
    groups: list[TrackGroup]
    trace_id: str | None = None

    @property
    def dropped(self) -> int:
        return sum(g.dropped for g in self.groups)

    def header(self) -> dict[str, Any]:
        out: dict[str, Any] = {"schema": TRACE_SCHEMA, "kind": "merged",
                               "dropped": self.dropped,
                               "processes": len(self.groups)}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        truncated = sorted(g.worker_id for g in self.groups
                           if g.truncated and g.worker_id is not None)
        if truncated:
            out["truncated_workers"] = truncated
        return out

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.header()) + "\n")
            for e in self.events:
                fh.write(json.dumps(e) + "\n")
        return path

    def to_chrome_trace(self) -> dict[str, Any]:
        """The merged Perfetto document: metadata tracks + events."""
        trace_events: list[dict[str, Any]] = []
        ordered = sorted(self.groups, key=_group_sort_key)
        tids_by_pid: dict[int, list[int]] = {}
        for e in self.events:
            tids = tids_by_pid.setdefault(int(e.get("pid", 0)), [])
            tid = int(e["tid"])
            if tid not in tids:
                tids.append(tid)
        for sort_index, group in enumerate(ordered):
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": group.pid,
                "tid": 0, "ts": 0, "args": {"name": group.label}})
            trace_events.append({
                "name": "process_sort_index", "ph": "M",
                "pid": group.pid, "tid": 0, "ts": 0,
                "args": {"sort_index": sort_index}})
            for k, tid in enumerate(sorted(tids_by_pid.get(group.pid,
                                                           []))):
                trace_events.append({
                    "name": "thread_name", "ph": "M", "pid": group.pid,
                    "tid": tid, "ts": 0,
                    "args": {"name": "main" if k == 0
                             else f"thread-{k}"}})
        for e in self.events:
            entry: dict[str, Any] = {
                "name": e["name"],
                "cat": str(e["name"]).split(".", 1)[0],
                "ph": e["ph"],
                "pid": int(e.get("pid", 0)),
                "tid": int(e["tid"]),
                "ts": e["ts"] * 1e6,
            }
            if e["ph"] == "X":
                entry["dur"] = e["dur"] * 1e6
            else:
                entry["s"] = "t"
            args = dict(e.get("args", {}))
            if e.get("worker_id") is not None:
                args.setdefault("worker_id", e["worker_id"])
            if e.get("task_id") is not None:
                args.setdefault("task_id", e["task_id"])
            if args:
                entry["args"] = args
            trace_events.append(entry)
        other: dict[str, Any] = dict(self.header())
        return {"traceEvents": trace_events, "displayTimeUnit": "ms",
                "otherData": other}

    def write_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace()),
                        encoding="utf-8")
        return path


def _group_sort_key(group: TrackGroup) -> tuple[int, int, int]:
    # supervisor first, then workers by id (pid breaks ties so the
    # order is total even with recycled worker ids)
    return (0 if group.worker_id is None else 1,
            -1 if group.worker_id is None else group.worker_id,
            group.pid)


def _event_sort_key(e: dict[str, Any]) -> tuple:
    args = e.get("args") or {}
    return (float(e["ts"]), int(e.get("pid", 0)), int(e["tid"]),
            int(e.get("depth", 0)), str(e["name"]), float(e["dur"]),
            str(e["ph"]), json.dumps(args, sort_keys=True))


def merge_traces(groups: Iterable[TrackGroup],
                 trace_id: str | None = None) -> MergedTrace:
    """Merge per-process event streams into one deterministic timeline.

    Timestamps are normalised by the earliest event over *all* groups
    and events sorted on a total key ``(ts, pid, tid, depth, name,
    dur, ph, args)`` — so the output is byte-identical for a given
    event set regardless of how events were grouped into spools or in
    what order they arrived.
    """
    groups = list(groups)
    all_events: list[dict[str, Any]] = []
    for group in groups:
        for e in group.events:
            d = dict(e)
            d.setdefault("pid", group.pid)
            if group.worker_id is not None:
                d.setdefault("worker_id", group.worker_id)
            all_events.append(d)
    t0 = min((float(e["ts"]) for e in all_events), default=0.0)
    for d in all_events:
        d["ts"] = float(d["ts"]) - t0
    all_events.sort(key=_event_sort_key)
    return MergedTrace(events=all_events, groups=groups,
                       trace_id=trace_id)


def spans_for_task(events: Iterable[dict[str, Any]],
                   task_id: int) -> list[dict[str, Any]]:
    """Every merged event correlated to one campaign task.

    Matches the schema-v2 ``task_id`` event field (worker spans) and
    the ``task`` span argument (supervisor spans) — the two ends of
    the cross-process correlation.
    """
    out = []
    for e in events:
        args = e.get("args") or {}
        if e.get("task_id") == task_id or args.get("task") == task_id \
                or args.get("task_id") == task_id:
            out.append(e)
    return out


# ----------------------------------------------------------------------
# metric aggregation
# ----------------------------------------------------------------------

def aggregate_metrics(
        docs: Iterable[tuple[dict[str, Any], dict[str, str]]]
) -> MetricsRegistry:
    """Aggregate metrics-JSON documents into one registry.

    ``docs`` is an iterable of ``(metrics_json_document,
    extra_labels)`` pairs.  Aggregation semantics:

    * **counters** sum across documents (no extra labels — a campaign
      total),
    * **histograms** merge bucket-by-bucket; mismatched bucket
      ladders for the same series raise ``ValueError`` (merging them
      silently would fabricate counts),
    * **gauges** keep ``extra_labels`` (the supervisor passes
      ``{"worker": "<id>"}`` per worker), since a last-write-wins
      value has no meaningful cross-process sum.
    """
    registry = MetricsRegistry()
    for doc, extra in docs:
        for family in doc.get("metrics", []):
            name, kind = family["name"], family["type"]
            help_ = family.get("help", "")
            for series in family["series"]:
                labels = {str(k): str(v)
                          for k, v in series["labels"].items()}
                if kind == "counter":
                    registry.counter(name, help_,
                                     **labels).inc(series["value"])
                elif kind == "gauge":
                    registry.gauge(name, help_,
                                   **{**labels, **extra}
                                   ).set(series["value"])
                else:
                    bounds = tuple(b["le"] for b in series["buckets"])
                    hist = registry.histogram(name, help_,
                                              buckets=bounds, **labels)
                    if hist.buckets != bounds:
                        raise ValueError(
                            f"histogram {name!r}: mismatched buckets "
                            f"{hist.buckets} vs {bounds}")
                    for i, b in enumerate(series["buckets"]):
                        hist.counts[i] += int(b["count"])
                    hist.count += int(series["count"])
                    hist.sum += float(series["sum"])
                    if series.get("min") is not None:
                        hist.min = min(hist.min, float(series["min"]))
                    if series.get("max") is not None:
                        hist.max = max(hist.max, float(series["max"]))
    return registry


# ----------------------------------------------------------------------
# campaign collection (the supervisor-side entry point)
# ----------------------------------------------------------------------

@dataclass
class CampaignCollection:
    """Everything observability collected from one campaign."""

    merged: MergedTrace
    metrics: MetricsRegistry
    spools: list[SpoolData] = field(default_factory=list)
    #: Canonical files written next to ``campaign.json``.
    outputs: dict[str, Path] = field(default_factory=dict)

    @property
    def recovered_events(self) -> int:
        """Worker events recovered from spool files."""
        return sum(len(s.events) for s in self.spools)

    def summary(self) -> str:
        parts = [f"{len(self.merged.events)} events across "
                 f"{len(self.merged.groups)} processes",
                 f"{self.recovered_events} recovered from "
                 f"{len(self.spools)} worker spools"]
        if self.merged.dropped:
            parts.append(f"{self.merged.dropped} dropped")
        truncated = [s.worker_id for s in self.spools if s.truncated]
        if truncated:
            parts.append(f"torn spools recovered: workers {truncated}")
        return "; ".join(parts)

    def write_defaults(self, directory: str | Path) -> dict[str, Path]:
        """Write the canonical campaign exports into ``directory``."""
        directory = Path(directory)
        self.outputs["trace"] = self.merged.write_chrome_trace(
            directory / "campaign-trace.json")
        self.outputs["metrics_json"] = self.metrics.write(
            directory / "campaign-metrics.json")
        self.outputs["metrics_prom"] = self.metrics.write(
            directory / "campaign-metrics.prom")
        return self.outputs


def collect_campaign(directory: str | Path, *,
                     supervisor_tracer: Tracer | None = None,
                     supervisor_registry: MetricsRegistry | None = None,
                     trace_id: str | None = None) -> CampaignCollection:
    """Collect and merge a campaign's observability from disk.

    Reads every worker spool + metrics snapshot in ``directory``,
    folds in the supervisor's own tracer/registry, and returns the
    merged timeline plus the aggregated registry.  Safe to call on a
    directory with no spools (single-process campaign with
    observability off in the workers).
    """
    directory = Path(directory)
    groups: list[TrackGroup] = []
    spools: list[SpoolData] = []

    if supervisor_tracer is not None:
        events = []
        for e in supervisor_tracer._export_events():
            d = e.to_dict()
            d["ts"] = d["ts"] + supervisor_tracer.epoch
            events.append(d)
        groups.append(TrackGroup(
            label="supervisor", pid=supervisor_tracer.pid,
            events=events, worker_id=None,
            dropped=supervisor_tracer.dropped))

    for path in find_spools(directory):
        data = read_spool(path)
        if data.header is None and not data.events:
            continue
        spools.append(data)
        worker_id = data.worker_id if data.worker_id is not None else -1
        pid = data.pid if data.pid is not None else 0
        groups.append(TrackGroup(
            label=f"worker-{worker_id}", pid=pid, events=data.events,
            worker_id=worker_id, dropped=data.dropped,
            truncated=data.truncated))

    merged = merge_traces(groups, trace_id=trace_id)

    docs: list[tuple[dict[str, Any], dict[str, str]]] = []
    if supervisor_registry is not None:
        docs.append((supervisor_registry.to_json(), {}))
    for snapshot in sorted(directory.glob(
            f"{SPOOL_PREFIX}*.metrics.json")):
        try:
            doc = json.loads(snapshot.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue  # torn snapshot: the atomic writer's tmp survived
        worker = snapshot.name[len(SPOOL_PREFIX):].split("-", 1)[0]
        docs.append((doc, {"worker": str(int(worker))}))
    metrics = aggregate_metrics(docs)

    return CampaignCollection(merged=merged, metrics=metrics,
                              spools=spools)
