"""``repro profile`` — a Fig. 5-style phase table from a live run.

Runs a short matrix-free BD simulation with tracing and metrics
enabled, aggregates the per-phase span totals, and prints them next to
the Section IV.D performance-model predictions evaluated with the host
machine description — the measured-vs-modeled comparison of the
paper's Fig. 5, but produced from the *instrumentation* rather than a
bespoke benchmark loop (the profiler dogfoods ``repro.obs``).

The number of single-vector reciprocal pipeline passes is read off the
trace as the count of ``pme.fft`` spans (the FFT phase runs once per
vector per application), and each per-application model prediction is
scaled by that count.  The real-space prediction charges the full
matrix payload per vector, so block (multi-RHS) application typically
measures *below* it — the amortization the paper's reference [24]
exploits.

This module deliberately imports the simulation stack, so it is
imported lazily (by the CLI), never from ``repro.obs.__init__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from . import metrics as _metrics
from . import trace as _trace

__all__ = ["PhaseRow", "ProfileReport", "run_profile", "PROFILE_SCHEMA"]

#: Version tag of the ``repro profile --json`` document layout.  The
#: document doubles as a :mod:`repro.bench.ledger` input — per-phase
#: measured seconds become ledger timings.
PROFILE_SCHEMA = "repro-profile/1"

#: Reciprocal phases in Fig. 5 order, then the real-space term.
PROFILE_PHASES = ["spread", "fft", "influence", "ifft", "interpolate",
                  "real"]


@dataclass
class PhaseRow:
    """One line of the profile table."""

    phase: str
    calls: int
    measured: float
    predicted: float | None

    @property
    def ratio(self) -> float | None:
        """measured / predicted (``None`` without a prediction)."""
        if self.predicted is None or self.predicted == 0.0:
            return None
        return self.measured / self.predicted


@dataclass
class ProfileReport:
    """Aggregated result of :func:`run_profile`."""

    n: int
    K: int
    p: int
    steps: int
    #: Single-vector reciprocal pipeline passes (``pme.fft`` spans).
    applications: int
    rows: list[PhaseRow]
    #: Seconds per span name, all recorded spans.
    totals: dict[str, float] = field(default_factory=dict)
    #: Span counts per name.
    counts: dict[str, int] = field(default_factory=dict)
    #: Paths written (trace/chrome/metrics), for the CLI summary.
    outputs: dict[str, Path] = field(default_factory=dict)

    def format_table(self) -> str:
        """The Fig. 5-style aligned table."""
        from ..bench.harness import format_table

        table_rows: list[list[Any]] = []
        for row in self.rows:
            predicted = ("-" if row.predicted is None
                         else f"{row.predicted:.4g}")
            ratio = "-" if row.ratio is None else f"{row.ratio:.2f}x"
            table_rows.append([row.phase, row.calls,
                               f"{row.measured:.4g}", predicted, ratio])
        title = (f"repro profile: PME phase breakdown, measured vs "
                 f"Eq. 10 model (n={self.n}, K={self.K}, p={self.p}, "
                 f"{self.applications} reciprocal applications)")
        return format_table(title,
                            ["phase", "calls", "measured (s)",
                             "predicted (s)", "meas/pred"],
                            table_rows)

    def to_json(self) -> dict[str, Any]:
        """The machine-readable profile document (``repro-profile/1``).

        Consumable by :mod:`repro.bench.ledger`, so profile runs can
        feed the same regression gate as the benchmarks.
        """
        return {
            "schema": PROFILE_SCHEMA,
            "n": self.n, "K": self.K, "p": self.p, "steps": self.steps,
            "applications": self.applications,
            "rows": [{"phase": row.phase, "calls": row.calls,
                      "measured": row.measured,
                      "predicted": row.predicted, "ratio": row.ratio}
                     for row in self.rows],
            "totals": dict(self.totals),
            "counts": dict(self.counts),
        }

    def write_json(self, path: str | Path) -> Path:
        """Write :meth:`to_json` to ``path``; returns the path."""
        import json

        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n",
                        encoding="utf-8")
        return path


def run_profile(n: int = 1000, phi: float = 0.2, steps: int = 5,
                dt: float = 1e-3, lambda_rpy: int = 16,
                e_k: float = 1e-2, e_p: float = 1e-3, seed: int = 0,
                trace_path: str | Path | None = None,
                chrome_path: str | Path | None = None,
                metrics_path: str | Path | None = None,
                max_events: int = 1_000_000) -> ProfileReport:
    """Run a short traced simulation and aggregate the phase profile.

    A fresh tracer and metrics registry are installed for the duration
    of the run and the previous globals restored afterwards, so
    profiling composes with (and never corrupts) an enclosing
    observability session.
    """
    from ..core.simulation import Simulation
    from ..perfmodel import HOST, PMECostModel
    from ..systems.suspension import make_suspension

    tracer = _trace.Tracer(max_events=max_events)
    registry = _metrics.MetricsRegistry()
    previous_tracer = _trace.set_tracer(tracer)
    previous_registry = _metrics.set_metrics(registry)
    try:
        susp = make_suspension(n, phi, seed=seed)
        sim = Simulation(susp, algorithm="matrix-free", dt=dt,
                         lambda_rpy=lambda_rpy, seed=seed + 1, e_k=e_k,
                         target_ep=e_p)
        sim.run(n_steps=steps, record_interval=max(1, steps))
        params = sim.integrator.pme_params
        operator = sim.integrator.operator
    finally:
        _trace.set_tracer(previous_tracer)
        _metrics.set_metrics(previous_registry)

    totals = tracer.totals()
    counts = tracer.counts()
    # one batched apply_block pass carries s vectors (span arg
    # ``vectors``); legacy single-vector passes default to 1
    n_apps = sum(int(e.args.get("vectors", 1)) for e in tracer.events
                 if e.name == "pme.fft" and e.phase == "X")

    model = PMECostModel(HOST)
    per_apply = model.breakdown(n, params.K, params.p)
    pair_density = 2.0 * operator.real.n_pairs / max(1, n)
    per_apply["real"] = model.t_real(n, pair_density, n_vectors=1)

    rows = []
    for phase in PROFILE_PHASES:
        name = f"pme.{phase}"
        predicted = per_apply.get(phase)
        rows.append(PhaseRow(
            phase=phase,
            calls=counts.get(name, 0),
            measured=totals.get(name, 0.0),
            predicted=(None if predicted is None
                       else predicted * n_apps)))

    report = ProfileReport(n=n, K=params.K, p=params.p, steps=steps,
                           applications=n_apps, rows=rows,
                           totals=totals, counts=counts)
    if trace_path is not None:
        report.outputs["trace"] = tracer.write_jsonl(trace_path)
    if chrome_path is not None:
        report.outputs["chrome"] = tracer.write_chrome_trace(chrome_path)
    if metrics_path is not None:
        report.outputs["metrics"] = registry.write(metrics_path)
    return report
