"""repro.obs — unified tracing, metrics and solver telemetry.

The observability layer every other subsystem reports into (the
instrumentation behind the paper's Section V evaluation):

* :mod:`repro.obs.trace` — span-based tracer with thread-safe nesting,
  JSONL event logs and Chrome ``chrome://tracing`` / Perfetto export;
* :mod:`repro.obs.metrics` — counters, gauges and histograms with
  Prometheus-text and JSON export;
* :mod:`repro.obs.schema` — published schemas + validators for every
  export format (also ``python -m repro.obs.schema FILE...``);
* :mod:`repro.obs.profiling` — the ``repro profile`` engine producing
  the paper-style Fig. 5 phase table with measured-vs-predicted
  columns (imported lazily; it pulls in the simulation stack).

Both tracing and metrics are process-global and **disabled by
default**; the instrumented code pays one ``is None`` guard per call
site when off, and installing them never perturbs numerics or RNG
streams.  Typical usage::

    from repro import obs

    tracer, registry = obs.enable()
    ...  # run a simulation
    tracer.write_jsonl("out.jsonl")
    registry.write("out.prom")
    obs.disable()

Inside library code, use the fast-path facades::

    with obs.span("pme.spread", n=n):
        ...
    obs.inc("pme_applications_total", s)
"""

from __future__ import annotations

from .collect import (
    CampaignCollection,
    MergedTrace,
    SpoolingSession,
    SpoolWriter,
    TraceContext,
    TrackGroup,
    aggregate_metrics,
    collect_campaign,
    merge_traces,
    read_spool,
    spans_for_task,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    inc,
    metrics_enabled,
    observe,
    record_solver,
    set_gauge,
    set_metrics,
)
from .schema import (
    METRICS_JSON_SCHEMA,
    TRACE_EVENT_SCHEMA,
    validate_chrome_trace,
    validate_metrics_json,
    validate_prometheus_text,
    validate_trace_events,
)
from .trace import (
    TRACE_SCHEMA,
    SpanEvent,
    Tracer,
    clock,
    get_tracer,
    instant,
    read_jsonl,
    read_jsonl_header,
    set_tracer,
    span,
    to_chrome_trace,
    tracing_enabled,
    write_jsonl,
)

__all__ = [
    "SpanEvent", "Tracer", "span", "instant", "get_tracer", "set_tracer",
    "tracing_enabled", "read_jsonl", "read_jsonl_header", "write_jsonl",
    "to_chrome_trace", "clock", "TRACE_SCHEMA",
    "TraceContext", "SpoolWriter", "SpoolingSession", "TrackGroup",
    "MergedTrace", "merge_traces", "read_spool", "aggregate_metrics",
    "collect_campaign", "CampaignCollection", "spans_for_task",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_metrics",
    "set_metrics", "metrics_enabled", "inc", "observe", "set_gauge",
    "record_solver",
    "TRACE_EVENT_SCHEMA", "METRICS_JSON_SCHEMA", "validate_trace_events",
    "validate_chrome_trace", "validate_metrics_json",
    "validate_prometheus_text",
    "enable", "disable",
]


def enable(max_events: int = 1_000_000
           ) -> tuple[Tracer, MetricsRegistry]:
    """Install a fresh global tracer + metrics registry; returns both."""
    tracer = Tracer(max_events=max_events)
    registry = MetricsRegistry()
    set_tracer(tracer)
    set_metrics(registry)
    return tracer, registry


def disable() -> None:
    """Remove the global tracer and metrics registry."""
    set_tracer(None)
    set_metrics(None)
