"""Metrics registry: counters, gauges and histograms with exporters.

The registry captures the solver telemetry the paper's evaluation is
built on — Lanczos iteration counts, relative errors ``e_k``, matvec
counts, recovery actions, per-phase times, and the
:mod:`repro.perfmodel` byte/flop estimates — and exports it as

* Prometheus text exposition format (``--metrics out.prom``), and
* a JSON document (``--metrics out.json``).

Like tracing, metrics are **opt-in**: the module-level fast-path
helpers (:func:`inc`, :func:`observe`, :func:`set_gauge`) check one
global and return immediately when no registry is installed, so
instrumented hot loops pay only a guard check.

Metric names follow the Prometheus conventions (snake_case, ``_total``
suffix for counters, base-unit suffixes such as ``_seconds``).
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "get_metrics", "set_metrics", "metrics_enabled",
           "inc", "observe", "set_gauge", "record_solver"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets: solver iteration counts and sub-second
#: phase times both land comfortably in a 1 .. 1e3 geometric ladder.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                   500.0, 1000.0)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(
            f"invalid metric name {name!r} (must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*)")
    return name


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


@dataclass
class Counter:
    """Monotonically increasing value."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only increase, got inc({amount})")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists.  ``observe`` also tracks sum/count/min/max so the JSON
    export can report summary statistics directly.
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ConfigurationError(
                f"histogram buckets must be sorted, got {self.buckets}")
        if not self.counts:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile, interpolated from the buckets.

        Prometheus-style ``histogram_quantile``: find the bucket the
        target rank falls in and interpolate linearly inside it,
        clamped to the observed ``min``/``max`` (which also bound the
        open-ended first and ``+Inf`` buckets).  Returns ``None`` for
        an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        previous = 0
        for i, (bound, cumulative) in enumerate(zip(self.buckets,
                                                    self.counts)):
            if cumulative >= target:
                in_bucket = cumulative - previous
                lower = max(self.buckets[i - 1] if i > 0 else self.min,
                            self.min)
                upper = min(bound, self.max)
                if in_bucket == 0 or upper <= lower:
                    return min(max(upper, self.min), self.max)
                frac = (target - previous) / in_bucket
                return min(max(lower + frac * (upper - lower), self.min),
                           self.max)
            previous = cumulative
        # target beyond the last finite bucket: the +Inf bucket
        return self.max


@dataclass
class _Family:
    """All series of one metric name (one per label combination)."""

    name: str
    kind: str
    help: str
    series: dict[tuple[tuple[str, str], ...], Any] = field(
        default_factory=dict)


class MetricsRegistry:
    """Process-local registry of named metric families.

    ``counter`` / ``gauge`` / ``histogram`` create-or-fetch the series
    for a (name, labels) pair, so call sites never need registration
    boilerplate; the first call fixes the metric kind and re-using a
    name with a different kind raises
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help: str) -> _Family:
        family = self._families.get(_check_name(name))
        if family is None:
            family = _Family(name=name, kind=kind, help=help)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}, not a {kind}")
        elif help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter series for ``(name, labels)``."""
        family = self._family(name, "counter", help)
        return family.series.setdefault(_label_key(labels), Counter())

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge series for ``(name, labels)``."""
        family = self._family(name, "gauge", help)
        return family.series.setdefault(_label_key(labels), Gauge())

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] | None = None,
                  **labels: str) -> Histogram:
        """The histogram series for ``(name, labels)``."""
        family = self._family(name, "histogram", help)
        key = _label_key(labels)
        if key not in family.series:
            family.series[key] = Histogram(
                buckets=tuple(buckets) if buckets is not None
                else DEFAULT_BUCKETS)
        return family.series[key]

    # -- export ----------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (one family per block)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.series):
                series = family.series[key]
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(series.buckets, series.counts):
                        cumulative = count
                        bkey = key + (("le", f"{bound:g}"),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bkey)} "
                            f"{cumulative}")
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(f"{name}_bucket{_format_labels(inf_key)} "
                                 f"{series.count}")
                    lines.append(f"{name}_sum{_format_labels(key)} "
                                 f"{series.sum:g}")
                    lines.append(f"{name}_count{_format_labels(key)} "
                                 f"{series.count}")
                else:
                    lines.append(f"{name}{_format_labels(key)} "
                                 f"{series.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict[str, Any]:
        """JSON document mirroring the full registry state."""
        families = []
        for name in sorted(self._families):
            family = self._families[name]
            series_out = []
            for key in sorted(family.series):
                series = family.series[key]
                entry: dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry.update(
                        count=series.count, sum=series.sum,
                        mean=series.mean,
                        min=(None if series.count == 0 else series.min),
                        max=(None if series.count == 0 else series.max),
                        p50=series.quantile(0.50),
                        p90=series.quantile(0.90),
                        p99=series.quantile(0.99),
                        buckets=[{"le": b, "count": c} for b, c in
                                 zip(series.buckets, series.counts)])
                else:
                    entry["value"] = series.value
                series_out.append(entry)
            families.append({"name": name, "type": family.kind,
                             "help": family.help, "series": series_out})
        return {"metrics": families}

    def write(self, path):
        """Write to ``path`` (JSON when it ends in ``.json``, else
        Prometheus text); returns the path."""
        from pathlib import Path
        path = Path(path)
        if path.suffix == ".json":
            path.write_text(json.dumps(self.to_json(), indent=2),
                            encoding="utf-8")
        else:
            path.write_text(self.to_prometheus_text(), encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# the process-global registry and its fast-path facades
# ----------------------------------------------------------------------

_REGISTRY: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry | None:
    """The installed global registry (``None`` when metrics are off)."""
    return _REGISTRY


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or remove) the global registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def metrics_enabled() -> bool:
    """Whether a global metrics registry is installed."""
    return _REGISTRY is not None


def inc(name: str, amount: float = 1.0, **labels: str) -> None:
    """Increment a counter on the global registry; no-op when disabled."""
    registry = _REGISTRY
    if registry is not None:
        registry.counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels: str) -> None:
    """Observe into a histogram on the global registry; no-op when off."""
    registry = _REGISTRY
    if registry is not None:
        registry.histogram(name, **labels).observe(value)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge on the global registry; no-op when disabled."""
    registry = _REGISTRY
    if registry is not None:
        registry.gauge(name, **labels).set(value)


def record_solver(method: str, iterations: int, converged: bool,
                  rel_change: float, n_matvecs: int) -> None:
    """Record one iterative square-root solve (the paper's Table II
    quantities: iteration count, relative error ``e_k``, matvecs).

    No-op when metrics are disabled; called by the Lanczos, block
    Lanczos and Chebyshev solvers on every completed solve.
    """
    registry = _REGISTRY
    if registry is None:
        return
    registry.counter("krylov_solves_total", help="iterative sqrt solves",
                     method=method,
                     converged=str(bool(converged)).lower()).inc()
    registry.counter("krylov_matvecs_total",
                     help="operator applications, counted per column",
                     method=method).inc(n_matvecs)
    registry.histogram("krylov_iterations",
                       help="iterations (or polynomial degree) per solve",
                       method=method).observe(iterations)
    if math.isfinite(rel_change):
        registry.histogram(
            "krylov_rel_change",
            help="final relative update e_k of each solve",
            buckets=(1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0),
            method=method).observe(rel_change)
