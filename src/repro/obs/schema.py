"""Schemas and validators for the observability export formats.

Mirrors the approach of :mod:`repro.lint` (``REPORT_JSON_SCHEMA``):
the schemas are plain dictionaries published for external consumers,
and validation is implemented directly so it works without a
``jsonschema`` dependency.  The validators are used by the test suite
and by the CI ``observability`` job::

    python -m repro.obs.schema out.jsonl out.prom

validates any mix of trace JSONL, Chrome trace JSON, metrics JSON and
Prometheus text files (dispatched on extension) and exits non-zero on
the first violation.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Any

__all__ = ["TRACE_EVENT_SCHEMA", "TRACE_HEADER_SCHEMA",
           "METRICS_JSON_SCHEMA",
           "validate_trace_event", "validate_trace_events",
           "validate_trace_header", "validate_chrome_trace",
           "validate_metrics_json",
           "validate_prometheus_text", "validate_file", "main"]

#: JSON-Schema-style description of one JSONL trace event (v2: the
#: ``pid``/``worker_id``/``task_id`` process-identity fields are
#: optional, so v1 streams keep validating).
TRACE_EVENT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["name", "ph", "ts", "dur", "tid", "depth"],
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "ph": {"enum": ["X", "i"]},
        "ts": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},
        "tid": {"type": "integer"},
        "depth": {"type": "integer", "minimum": 0},
        "args": {"type": "object"},
        "pid": {"type": "integer"},
        "worker_id": {"type": "integer"},
        "task_id": {"type": "integer"},
    },
}

#: JSON-Schema-style description of the v2 JSONL stream header (first
#: line; distinguished from events by ``schema`` + missing ``name``).
TRACE_HEADER_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["schema", "dropped"],
    "properties": {
        "schema": {"type": "string", "pattern": "^repro-trace/"},
        "dropped": {"type": "integer", "minimum": 0},
        "pid": {"type": "integer"},
        "worker_id": {"type": "integer"},
        "trace_id": {"type": "string"},
        "epoch": {"type": "number"},
        "kind": {"enum": ["trace", "spool", "merged"]},
    },
}

#: JSON-Schema-style description of the metrics JSON export.
METRICS_JSON_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["metrics"],
    "properties": {
        "metrics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "type", "series"],
                "properties": {
                    "name": {"type": "string"},
                    "type": {"enum": ["counter", "gauge", "histogram"]},
                    "help": {"type": "string"},
                    "series": {"type": "array"},
                },
            },
        },
    },
}

_METRIC_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                      # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""           # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"      # more labels
    r" [0-9eE+.\-]+(\s+[0-9]+)?$")                    # value [timestamp]
_COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


class SchemaError(ValueError):
    """A document does not conform to its observability schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def validate_trace_event(event: dict[str, Any],
                         where: str = "event") -> None:
    """Validate one JSONL trace event dict; raises :class:`SchemaError`."""
    _require(isinstance(event, dict), f"{where}: not an object")
    for key in TRACE_EVENT_SCHEMA["required"]:
        _require(key in event, f"{where}: missing required key {key!r}")
    _require(isinstance(event["name"], str) and event["name"],
             f"{where}: name must be a non-empty string")
    _require(event["ph"] in ("X", "i"),
             f"{where}: ph must be 'X' or 'i', got {event['ph']!r}")
    for key in ("ts", "dur"):
        _require(isinstance(event[key], (int, float))
                 and not isinstance(event[key], bool)
                 and event[key] >= 0,
                 f"{where}: {key} must be a non-negative number")
    for key in ("tid", "depth"):
        _require(isinstance(event[key], int)
                 and not isinstance(event[key], bool),
                 f"{where}: {key} must be an integer")
    _require(event["depth"] >= 0, f"{where}: depth must be >= 0")
    if event["ph"] == "i":
        _require(event["dur"] == 0,
                 f"{where}: instant events must have dur == 0")
    if "args" in event:
        _require(isinstance(event["args"], dict),
                 f"{where}: args must be an object")
    for key in ("pid", "worker_id", "task_id"):
        if key in event:
            _require(isinstance(event[key], int)
                     and not isinstance(event[key], bool),
                     f"{where}: {key} must be an integer")


def validate_trace_header(header: dict[str, Any]) -> None:
    """Validate a v2 JSONL stream header; raises :class:`SchemaError`."""
    _require(isinstance(header, dict), "header: not an object")
    _require(isinstance(header.get("schema"), str)
             and header["schema"].startswith("repro-trace/"),
             f"header: schema must be 'repro-trace/<v>', "
             f"got {header.get('schema')!r}")
    dropped = header.get("dropped")
    _require(isinstance(dropped, int) and not isinstance(dropped, bool)
             and dropped >= 0,
             "header: dropped must be a non-negative integer")
    if "kind" in header:
        _require(header["kind"] in ("trace", "spool", "merged"),
                 f"header: unknown kind {header['kind']!r}")


def validate_trace_events(events: list[dict[str, Any]]) -> None:
    """Validate a parsed JSONL trace (an empty trace is valid)."""
    for i, event in enumerate(events):
        validate_trace_event(event, where=f"event {i}")


def validate_chrome_trace(doc: dict[str, Any]) -> None:
    """Validate a Chrome trace-event JSON document."""
    _require(isinstance(doc, dict), "chrome trace: not an object")
    _require("traceEvents" in doc, "chrome trace: missing traceEvents")
    events = doc["traceEvents"]
    _require(isinstance(events, list), "chrome trace: traceEvents must "
             "be an array")
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        _require(isinstance(e, dict), f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid", "ts"):
            _require(key in e, f"{where}: missing required key {key!r}")
        _require(e["ph"] in ("X", "i", "M"),
                 f"{where}: unsupported phase {e['ph']!r}")
        if e["ph"] == "X":
            _require("dur" in e and e["dur"] >= 0,
                     f"{where}: complete events need dur >= 0")
        if e["ph"] == "M":
            _require(e["name"] in ("process_name", "process_sort_index",
                                   "thread_name", "thread_sort_index"),
                     f"{where}: unknown metadata event {e['name']!r}")


def validate_metrics_json(doc: dict[str, Any]) -> None:
    """Validate the metrics JSON export document."""
    _require(isinstance(doc, dict) and "metrics" in doc,
             "metrics json: missing top-level 'metrics'")
    _require(isinstance(doc["metrics"], list),
             "metrics json: 'metrics' must be an array")
    for i, family in enumerate(doc["metrics"]):
        where = f"metrics[{i}]"
        for key in ("name", "type", "series"):
            _require(key in family, f"{where}: missing {key!r}")
        _require(family["type"] in ("counter", "gauge", "histogram"),
                 f"{where}: unknown type {family['type']!r}")
        for j, series in enumerate(family["series"]):
            swhere = f"{where}.series[{j}]"
            _require(isinstance(series.get("labels"), dict),
                     f"{swhere}: missing labels object")
            if family["type"] == "histogram":
                for key in ("count", "sum", "buckets"):
                    _require(key in series, f"{swhere}: missing {key!r}")
            else:
                _require("value" in series, f"{swhere}: missing 'value'")


def validate_prometheus_text(text: str) -> None:
    """Validate Prometheus text exposition format (empty text is valid)."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            _require(_COMMENT_RE.match(line) is not None,
                     f"line {lineno}: malformed comment {line!r} "
                     "(only '# HELP name text' / '# TYPE name kind')")
            continue
        _require(_METRIC_LINE_RE.match(line) is not None,
                 f"line {lineno}: malformed sample line {line!r}")
    _require(text == "" or text.endswith("\n"),
             "prometheus text must end with a newline")


def validate_file(path: str | Path) -> str:
    """Validate one exported file, dispatching on its extension.

    Returns a short description of what was validated — including a
    ``WARNING`` notice when the stream recorded dropped events (the
    ``max_events`` cap truncated it; no silent caps) — or raises
    :class:`SchemaError` (or ``OSError`` / ``json.JSONDecodeError``)
    on failure.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        from .trace import read_jsonl, read_jsonl_header
        header = read_jsonl_header(path)
        if header is not None:
            validate_trace_header(header)
        events = read_jsonl(path)
        validate_trace_events(events)
        desc = f"trace jsonl ({len(events)} events)"
        return desc + _dropped_warning(header)
    if path.suffix == ".json":
        doc = json.loads(path.read_text(encoding="utf-8"))
        if "traceEvents" in doc:
            validate_chrome_trace(doc)
            desc = f"chrome trace ({len(doc['traceEvents'])} events)"
            return desc + _dropped_warning(doc.get("otherData"))
        validate_metrics_json(doc)
        return f"metrics json ({len(doc['metrics'])} families)"
    text = path.read_text(encoding="utf-8")
    validate_prometheus_text(text)
    return f"prometheus text ({len(text.splitlines())} lines)"


def _dropped_warning(header: dict[str, Any] | None) -> str:
    dropped = (header or {}).get("dropped", 0)
    if isinstance(dropped, int) and dropped > 0:
        return (f" — WARNING: {dropped} events dropped at the "
                "max_events cap (raise it for complete traces)")
    return ""


def main(argv: list[str] | None = None) -> int:
    """Validate every file given on the command line."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv:
        print("usage: python -m repro.obs.schema FILE [FILE ...]",
              file=sys.stderr)
        return 2
    status = 0
    for arg in argv:
        try:
            what = validate_file(arg)
        except (SchemaError, OSError, json.JSONDecodeError) as exc:
            print(f"{arg}: INVALID — {exc}")
            status = 1
        else:
            print(f"{arg}: ok — {what}")
            if "WARNING" in what:
                print(f"{arg}: warning — dropped events detected",
                      file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
