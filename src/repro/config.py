"""Runtime configuration — the single reader of every ``REPRO_*`` knob.

Historically each subsystem read its own environment variable at its
own call site (``REPRO_CHECKS`` in the contracts layer,
``REPRO_NO_CKERNEL`` in the kernel loader, ``REPRO_BENCH_*`` in the
bench harness), which made the effective configuration impossible to
inspect and the precedence rules implicit.  This module consolidates
them:

* :class:`RuntimeConfig` is a frozen dataclass holding every runtime
  knob, including the execution-backend settings of :mod:`repro.exec`;
* :func:`get_config` resolves ``env > CLI > defaults`` on every call
  (the environment lookup is a handful of dict accesses, so
  long-running processes and tests can flip a variable at runtime and
  the next decorated call sees it — the behavior the contracts layer
  has always had);
* :func:`set_cli_overrides` is how ``repro ...`` subcommands inject
  ``--backend``/``--exec-workers`` and friends; environment variables
  still win, so a deployment can pin a knob across an entire campaign
  regardless of what individual commands pass.

``repro config show`` prints the resolved table with per-field
provenance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Any, Iterator, Mapping

__all__ = [
    "RuntimeConfig",
    "ENV_VARS",
    "BACKENDS",
    "get_config",
    "set_cli_overrides",
    "clear_cli_overrides",
    "config_table",
]

#: Supported execution backends (see :mod:`repro.exec`).
BACKENDS = ("serial", "threads", "processes")

#: Field name -> environment variable consulted for it.
ENV_VARS: Mapping[str, str] = {
    "checks": "REPRO_CHECKS",
    "no_ckernel": "REPRO_NO_CKERNEL",
    "ckernel_cache": "REPRO_CKERNEL_CACHE",
    "bench_scale": "REPRO_BENCH_SCALE",
    "bench_outdir": "REPRO_BENCH_OUTDIR",
    "backend": "REPRO_BACKEND",
    "exec_workers": "REPRO_EXEC_WORKERS",
}

_TRUTHY = ("1", "true", "yes", "on")


@dataclass(frozen=True)
class RuntimeConfig:
    """Every runtime knob of the package, resolved.

    Values are stored in their *raw* normalized form; semantic
    validation stays with the consumer (``check_level`` parses
    ``checks``, ``bench_scale`` enforces ``ci|paper``) so error
    behavior is unchanged — but the execution-backend fields are
    validated here because :mod:`repro.exec` is new with this module.
    """

    #: Contract level string (``"0"``/``"1"``/``"strict"``, see
    #: :func:`repro.lint.contracts.check_level`).
    checks: str = "1"
    #: Disable the runtime-compiled C kernels entirely.
    no_ckernel: bool = False
    #: Override directory caching compiled kernel libraries.
    ckernel_cache: str = ""
    #: Benchmark problem sizes: ``"ci"`` or ``"paper"``.
    bench_scale: str = "ci"
    #: Directory receiving ``BENCH_*.json`` records.
    bench_outdir: str = "."
    #: Execution backend: ``"serial"``, ``"threads"`` or ``"processes"``.
    backend: str = "serial"
    #: Worker count for parallel backends (0 = auto: one per CPU).
    exec_workers: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            from .errors import ConfigurationError
            raise ConfigurationError(
                f"backend must be one of {'|'.join(BACKENDS)}, "
                f"got {self.backend!r} (REPRO_BACKEND / --backend)")
        if self.exec_workers < 0:
            from .errors import ConfigurationError
            raise ConfigurationError(
                f"exec_workers must be >= 0 (0 = auto), got "
                f"{self.exec_workers} (REPRO_EXEC_WORKERS / --exec-workers)")

    def resolved_workers(self) -> int:
        """The effective worker count (auto = one per available CPU)."""
        if self.backend == "serial":
            return 1
        if self.exec_workers > 0:
            return self.exec_workers
        try:
            auto = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            auto = os.cpu_count() or 1
        return max(1, auto)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (for ``repro config show --format json``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _coerce(name: str, raw: str) -> Any:
    """Convert an environment string to the field's python type."""
    if name == "no_ckernel":
        return raw.strip().lower() in _TRUTHY
    if name == "exec_workers":
        try:
            return int(raw)
        except ValueError:
            from .errors import ConfigurationError
            raise ConfigurationError(
                f"{ENV_VARS[name]} must be an integer, got {raw!r}"
            ) from None
    if name in ("checks", "bench_scale", "backend"):
        return raw.strip().lower() or getattr(RuntimeConfig, name)
    return raw


#: CLI-provided overrides (field name -> value); env still wins.
_cli_overrides: dict[str, Any] = {}

#: Cache of the last resolution, keyed by the env fingerprint + CLI state.
_cache_key: tuple[Any, ...] | None = None
_cache_value: RuntimeConfig | None = None


def set_cli_overrides(**overrides: Any) -> None:
    """Install CLI-level values (``None`` entries are ignored).

    Precedence is ``env > CLI > defaults``: these apply only where the
    corresponding environment variable is unset.
    """
    unknown = set(overrides) - set(ENV_VARS)
    if unknown:
        raise TypeError(f"unknown config fields: {sorted(unknown)}")
    for name, value in overrides.items():
        if value is None:
            continue
        _cli_overrides[name] = value


def clear_cli_overrides() -> None:
    """Drop all CLI overrides (test helper / CLI re-entry)."""
    _cli_overrides.clear()


def _fingerprint() -> tuple[Any, ...]:
    env = tuple(os.environ.get(var) for var in ENV_VARS.values())
    return env + (tuple(sorted(_cli_overrides.items())),)


def get_config() -> RuntimeConfig:
    """The resolved :class:`RuntimeConfig` (env > CLI > defaults).

    Re-resolves whenever an ``REPRO_*`` variable or a CLI override
    changed since the previous call; otherwise returns the cached
    frozen instance.
    """
    global _cache_key, _cache_value
    key = _fingerprint()
    if key == _cache_key and _cache_value is not None:
        return _cache_value
    values: dict[str, Any] = dict(_cli_overrides)
    for name, var in ENV_VARS.items():
        raw = os.environ.get(var)
        if raw is not None:
            values[name] = _coerce(name, raw)
    config = RuntimeConfig(**values)
    _cache_key, _cache_value = key, config
    return config


def config_table() -> Iterator[tuple[str, str, str, str]]:
    """Rows ``(field, env var, value, source)`` for ``repro config show``."""
    config = get_config()
    for name, var in ENV_VARS.items():
        if os.environ.get(var) is not None:
            source = "env"
        elif name in _cli_overrides:
            source = "cli"
        else:
            source = "default"
        yield name, var, str(getattr(config, name)), source
