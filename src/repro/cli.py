"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the common workflows:

* ``simulate`` — run a matrix-free (or Ewald) BD simulation of a
  monodisperse suspension and write the trajectory to ``.npz``,
* ``ensemble`` — run a campaign of independent trajectories on a
  supervised multi-process worker pool (crash/hang/slow recovery,
  graceful SIGTERM drain, ``--resume``),
* ``profile``  — short traced run printing the Fig. 5-style phase
  breakdown, measured vs the Section IV.D performance model,
* ``analyze``  — diffusion analysis of a saved trajectory,
* ``tune``     — print the PME parameters the tuner selects for a
  system size / accuracy target (one Table III row),
* ``bench``    — performance-regression ledger: ``bench record``
  appends ``BENCH_*.json`` runs to a machine-keyed history file,
  ``bench compare`` diffs a run against a committed baseline with
  noise-aware thresholds (nonzero exit on regression),
* ``info``     — version, backend and machine-model summary.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matrix-free hydrodynamic Brownian dynamics "
                    "(Liu & Chow, IPDPS 2014 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a BD simulation")
    sim.add_argument("-n", "--particles", type=int, default=1000)
    sim.add_argument("--phi", type=float, default=0.2,
                     help="volume fraction (default 0.2)")
    sim.add_argument("--steps", type=int, default=1000)
    sim.add_argument("--dt", type=float, default=1e-3)
    sim.add_argument("--algorithm", choices=["matrix-free", "ewald"],
                     default="matrix-free")
    sim.add_argument("--lambda-rpy", type=int, default=16)
    sim.add_argument("--e-k", type=float, default=1e-2,
                     help="Krylov tolerance (matrix-free)")
    sim.add_argument("--e-p", type=float, default=1e-3,
                     help="PME accuracy target (matrix-free)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--record-interval", type=int, default=10)
    sim.add_argument("-o", "--output", default="trajectory.npz")
    sim.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="write rotating crash-safe checkpoints to PATH")
    sim.add_argument("--checkpoint-interval", type=int, default=None,
                     help="steps between checkpoints "
                          "(default: lambda-rpy, the bit-exact choice)")
    sim.add_argument("--recover", action="store_true",
                     help="enable the fault-tolerant step loop "
                          "(retry/degrade ladder, dt backoff, rollback)")
    sim.add_argument("--inject-faults", default=None, metavar="SPEC",
                     help="deterministic fault-injection soak, e.g. "
                          "'seed=7,lanczos=0.01,nan-force=0.005,ckpt=kill@3'"
                          " (implies --recover)")
    sim.add_argument("--max-wall-time", type=float, default=None,
                     metavar="SECONDS",
                     help="stop gracefully at the next step boundary once "
                          "this wall-clock budget is spent (also installs "
                          "SIGTERM/SIGINT handlers); with --checkpoint the "
                          "run is resumable and exits 0")
    _add_obs_arguments(sim)
    _add_exec_arguments(sim)

    ens = sub.add_parser(
        "ensemble",
        help="run an ensemble campaign on a supervised worker pool")
    ens.add_argument("-n", "--particles", type=int, default=100)
    ens.add_argument("--phi", type=float, default=0.2)
    ens.add_argument("--steps", type=int, default=1000,
                     help="BD steps per ensemble member")
    ens.add_argument("--tasks", type=int, default=8,
                     help="number of ensemble members")
    ens.add_argument("--dt", type=float, default=1e-3)
    ens.add_argument("--lambda-rpy", type=int, default=16)
    ens.add_argument("--e-k", type=float, default=1e-2)
    ens.add_argument("--seed", type=int, default=0,
                     help="campaign seed (per-task seeds are derived)")
    ens.add_argument("--workers", type=int, default=2,
                     help="worker-process pool size")
    ens.add_argument("--checkpoint-dir", default="campaign", metavar="DIR",
                     help="directory for per-task checkpoints and the "
                          "campaign manifest (default: campaign/)")
    ens.add_argument("--resume", action="store_true",
                     help="continue the campaign recorded in "
                          "DIR/campaign.json")
    ens.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="per-task-attempt wall-clock budget; slower "
                          "attempts are killed and retried")
    ens.add_argument("--hang-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="heartbeat silence before a worker is declared "
                          "hung (default 30)")
    ens.add_argument("--inject-faults", default=None, metavar="SPEC",
                     help="process-level fault plan, e.g. "
                          "'seed=7,kill=2,hang=1,slow=1,corrupt=1,"
                          "slow-per-step=0.2'")
    _add_obs_arguments(ens)
    _add_exec_arguments(ens)

    prof = sub.add_parser(
        "profile",
        help="traced run with a Fig. 5-style measured-vs-model table")
    prof.add_argument("-n", "--particles", type=int, default=1000)
    prof.add_argument("--phi", type=float, default=0.2)
    prof.add_argument("--steps", type=int, default=5)
    prof.add_argument("--dt", type=float, default=1e-3)
    prof.add_argument("--lambda-rpy", type=int, default=16)
    prof.add_argument("--e-k", type=float, default=1e-2)
    prof.add_argument("--e-p", type=float, default=1e-3)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--json", default=None, metavar="PATH",
                      help="write the machine-readable profile document "
                           "(repro-profile/1; feeds `repro bench`)")
    _add_obs_arguments(prof)
    _add_exec_arguments(prof)

    ana = sub.add_parser("analyze", help="analyze a saved trajectory")
    ana.add_argument("trajectory", help="path to a .npz trajectory")
    ana.add_argument("--max-lag", type=int, default=None)

    tune = sub.add_parser("tune", help="select PME parameters")
    tune.add_argument("-n", "--particles", type=int, required=True)
    tune.add_argument("--phi", type=float, default=0.2)
    tune.add_argument("--e-p", type=float, default=1e-3)
    tune.add_argument("-p", "--order", type=int, default=6,
                      help="B-spline order (4, 6 or 8)")

    bench = sub.add_parser(
        "bench",
        help="benchmark ledger: record history, compare vs a baseline")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    brec = bench_sub.add_parser(
        "record",
        help="append BENCH_*.json records to the machine-keyed "
             "history ledger")
    brec.add_argument("records", nargs="+", metavar="BENCH_JSON",
                      help="benchmark record files (or repro-profile "
                           "JSON documents)")
    brec.add_argument("--history", default="benchmarks/bench-history.jsonl",
                      metavar="PATH",
                      help="history ledger to append to "
                           "(default benchmarks/bench-history.jsonl)")
    bcmp = bench_sub.add_parser(
        "compare",
        help="diff a benchmark record against a committed baseline "
             "(noise-aware; exits nonzero on regression)")
    bcmp.add_argument("current", metavar="BENCH_JSON",
                      help="the freshly produced record")
    bcmp.add_argument("--baseline", required=True, metavar="PATH",
                      help="the committed baseline record")
    bcmp.add_argument("--rel-tol", type=float, default=None,
                      help="relative slowdown budget (default 0.5 = +50%%)")
    bcmp.add_argument("--sigma", type=float, default=None,
                      help="noise widening in standard deviations "
                           "(default 3)")

    lint = sub.add_parser(
        "lint", help="physics-aware static analysis (file rules "
                     "RPR001-RPR011, dataflow rules RPR101-RPR302)",
        add_help=False)
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to repro-lint "
                           "(see `repro lint --help`)")

    conf = sub.add_parser(
        "config", help="runtime configuration (REPRO_* knobs)")
    conf_sub = conf.add_subparsers(dest="config_command", required=True)
    cshow = conf_sub.add_parser(
        "show", help="print the resolved configuration with provenance "
                     "(env > CLI > defaults)")
    cshow.add_argument("--format", choices=["table", "json"],
                       default="table")

    serve = sub.add_parser(
        "serve",
        help="run the batched simulation service on a local socket")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="listen on a Unix socket at PATH "
                            "(default: TCP)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7321,
                       help="TCP port (0 = ephemeral; default 7321)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="columns that flush a mobility batch "
                            "immediately (default 8)")
    serve.add_argument("--max-wait", type=float, default=2e-3,
                       metavar="SECONDS",
                       help="microbatching window (default 2ms)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="mobility backlog bound in columns; beyond "
                            "it requests are shed (default 64)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="unanswered requests allowed per connection "
                            "(default 8)")
    serve.add_argument("--max-jobs", type=int, default=2,
                       help="concurrent simulate campaigns (default 2)")
    serve.add_argument("--compute-threads", type=int, default=0,
                       help="thread pool size for applies/builds "
                            "(0 = REPRO_EXEC_WORKERS resolution)")
    serve.add_argument("--sim-workers", type=int, default=1,
                       help="Supervisor workers per simulate job "
                            "(default 1)")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="result cache LRU bound (default 256)")
    serve.add_argument("--cache-ttl", type=float, default=600.0,
                       help="result cache TTL seconds "
                            "(0 disables expiry; default 600)")
    serve.add_argument("--work-dir", default="serve-jobs",
                       help="checkpoint/manifest directory for served "
                            "simulate jobs (default serve-jobs/)")
    _add_obs_arguments(serve)
    _add_exec_arguments(serve)

    smt = sub.add_parser(
        "submit", help="send one request to a running serve instance")
    smt.add_argument("--socket", default=None, metavar="PATH",
                     help="connect to a Unix socket at PATH")
    smt.add_argument("--host", default="127.0.0.1")
    smt.add_argument("--port", type=int, default=7321)
    smt.add_argument("--op", choices=["ping", "stats", "simulate",
                                      "mobility-bench"],
                     default="ping")
    smt.add_argument("-n", "--particles", type=int, default=100)
    smt.add_argument("--phi", type=float, default=0.2)
    smt.add_argument("--steps", type=int, default=100)
    smt.add_argument("--seed", type=int, default=0)
    smt.add_argument("--system-seed", type=int, default=0)
    smt.add_argument("--repeats", type=int, default=8,
                     help="mobility-bench: applies to send (default 8)")
    smt.add_argument("--retries", type=int, default=10,
                     help="Retry-After attempts on shed (default 10)")
    smt.add_argument("--timeout", type=float, default=600.0)

    sub.add_parser("info", help="version and environment summary")
    return parser


def _add_exec_arguments(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--backend", choices=["serial", "threads", "processes"],
        default=None,
        help="execution backend for the PME pipeline (default: "
             "REPRO_BACKEND or serial)")
    sub_parser.add_argument(
        "--exec-workers", type=int, default=None, metavar="N",
        help="worker count for parallel backends (0 = one per CPU; "
             "default: REPRO_EXEC_WORKERS)")


def _add_obs_arguments(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("--trace", default=None, metavar="PATH",
                            help="write span events as JSONL to PATH")
    sub_parser.add_argument("--chrome-trace", default=None, metavar="PATH",
                            help="write a chrome://tracing / Perfetto "
                                 "JSON trace to PATH")
    sub_parser.add_argument("--metrics", default=None, metavar="PATH",
                            help="write metrics to PATH (.json -> JSON, "
                                 "otherwise Prometheus text)")


def _obs_wanted(args) -> bool:
    return any(getattr(args, name, None) is not None
               for name in ("trace", "chrome_trace", "metrics"))


def _write_obs_outputs(args, tracer, registry) -> None:
    if args.trace is not None:
        path = tracer.write_jsonl(args.trace)
        print(f"trace: {len(tracer.events)} events -> {path}")
    if args.chrome_trace is not None:
        path = tracer.write_chrome_trace(args.chrome_trace)
        print(f"chrome trace -> {path}")
    if args.metrics is not None:
        path = registry.write(args.metrics)
        print(f"metrics -> {path}")


def _with_obs(args, runner, write_outputs: bool = True) -> int:
    """Run ``runner(args)`` under a fresh tracer/registry if requested.

    ``write_outputs=False`` leaves the export to the runner — the
    ensemble command writes *merged* cross-process outputs instead of
    the supervisor-only view this helper would produce.
    """
    if not _obs_wanted(args):
        return runner(args)
    from . import obs

    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    previous_tracer = obs.set_tracer(tracer)
    previous_registry = obs.set_metrics(registry)
    try:
        code = runner(args)
    finally:
        obs.set_tracer(previous_tracer)
        obs.set_metrics(previous_registry)
    if write_outputs:
        _write_obs_outputs(args, tracer, registry)
    return code


def _cmd_simulate(args) -> int:
    return _with_obs(args, _run_simulate)


def _cmd_ensemble(args) -> int:
    return _with_obs(args, _run_ensemble, write_outputs=False)


def _run_simulate(args) -> int:
    from .core.simulation import Simulation
    from .core.trajectory_io import save_trajectory
    from .resilience import RecoveryPolicy
    from .systems.suspension import make_suspension

    susp = make_suspension(args.particles, args.phi, seed=args.seed)
    print(f"system: n={susp.n}, Phi={susp.volume_fraction:.3f}, "
          f"L={susp.box.length:.2f}")
    kwargs = {}
    if args.algorithm == "matrix-free":
        kwargs = dict(e_k=args.e_k, target_ep=args.e_p)
    recovery = (RecoveryPolicy() if (args.recover or args.inject_faults)
                else None)
    sim = Simulation(susp, algorithm=args.algorithm, dt=args.dt,
                     lambda_rpy=args.lambda_rpy, seed=args.seed + 1,
                     recovery=recovery, **kwargs)

    run_kwargs = dict(n_steps=args.steps,
                      record_interval=args.record_interval)
    schedule = None
    if args.inject_faults is not None:
        from .resilience.faults import (
            FaultSchedule,
            faulty_checkpoint_callback,
            install_faults,
        )

        schedule = FaultSchedule.from_spec(args.inject_faults)
        install_faults(sim.integrator, schedule)
        if args.checkpoint:
            from .core.integrators import BDStepStats

            # share one stats object so checkpoint faults land in the
            # same recovery log as everything else
            run_kwargs["stats"] = BDStepStats()
            run_kwargs["extra_callback"] = faulty_checkpoint_callback(
                args.checkpoint, sim.integrator,
                args.checkpoint_interval or args.lambda_rpy, schedule,
                log=run_kwargs["stats"].recovery)
    elif args.checkpoint:
        run_kwargs["checkpoint_path"] = args.checkpoint
        run_kwargs["checkpoint_interval"] = args.checkpoint_interval

    if args.max_wall_time is not None:
        from .runtime.signals import GracefulShutdown
        from .utils.timing import now

        t0 = now()
        with GracefulShutdown() as shutdown:
            run_kwargs["stop"] = lambda: (
                shutdown.triggered
                or now() - t0 >= args.max_wall_time)
            traj, stats = sim.run(**run_kwargs)
        stop_reason = shutdown.signal_name or "wall-time limit"
    else:
        traj, stats = sim.run(**run_kwargs)
    save_trajectory(args.output, traj)
    print(f"ran {stats.n_steps} steps in {stats.timers.total:.1f} s "
          f"({stats.seconds_per_step * 1e3:.1f} ms/step); "
          f"{traj.n_frames} frames -> {args.output}")
    if stats.stopped_early:
        where = (args.checkpoint if args.checkpoint
                 else "no checkpoint (pass --checkpoint to continue "
                      "bit-exactly)")
        print(f"resumable: stopped gracefully at step {stats.n_steps} "
              f"of {args.steps} ({stop_reason}); checkpoint: {where}")
    if schedule is not None:
        print(f"injected faults: {len(schedule.injected)} "
              f"(force={schedule.count('force')}, "
              f"operator={schedule.count('operator')}, "
              f"brownian={schedule.count('brownian')}, "
              f"checkpoint={schedule.count('checkpoint')})")
    if recovery is not None:
        print("recovery log:")
        for line in stats.recovery.summary().splitlines():
            print(f"  {line}")
    return 0


def _run_ensemble(args) -> int:
    import os

    from .runtime import (
        CampaignManifest,
        GracefulShutdown,
        ProcessFaultPlan,
        Supervisor,
        TaskState,
        make_ensemble,
    )

    os.makedirs(args.checkpoint_dir, exist_ok=True)
    manifest_path = os.path.join(args.checkpoint_dir, "campaign.json")
    if args.resume:
        manifest = CampaignManifest.load(manifest_path)
        tasks = manifest.tasks
        counts = manifest.counts()
        print(f"resuming campaign from {manifest_path}: "
              + ", ".join(f"{v} {k}" for k, v in sorted(counts.items())))
    else:
        tasks = make_ensemble(args.tasks, n=args.particles, phi=args.phi,
                              n_steps=args.steps, seed=args.seed,
                              dt=args.dt, lambda_rpy=args.lambda_rpy,
                              e_k=args.e_k)
        print(f"campaign: {len(tasks)} tasks x {args.steps} steps, "
              f"n={args.particles}, Phi={args.phi}, "
              f"{args.workers} workers")
    plan = (ProcessFaultPlan.from_spec(args.inject_faults)
            if args.inject_faults else None)
    supervisor = Supervisor(
        tasks, args.checkpoint_dir, n_workers=args.workers,
        deadline=args.deadline, hang_timeout=args.hang_timeout,
        fault_plan=plan, manifest_path=manifest_path)
    with GracefulShutdown() as shutdown:
        report = supervisor.run(shutdown=shutdown)
    print(report.summary())
    if plan is not None:
        for fault in plan.faults:
            print(f"  fault {fault.kind} on task {fault.task_id} "
                  f"@ step {fault.at_step}: "
                  f"observed={fault.observed or 'NOT OBSERVED'}")
    for record in report.manifest.tasks:
        if record.state is TaskState.QUARANTINED:
            failure = record.failure or {}
            print(f"  quarantined task {record.spec.task_id}: "
                  f"{failure.get('kind')}: {failure.get('message')}")
    print(f"manifest -> {manifest_path}")
    collection = report.collection
    if collection is not None:
        print(f"observability: {collection.summary()}")
        for kind, path in sorted(collection.outputs.items()):
            print(f"  {kind} -> {path}")
        if args.trace is not None:
            path = collection.merged.write_jsonl(args.trace)
            print(f"merged trace: {len(collection.merged.events)} "
                  f"events -> {path}")
        if args.chrome_trace is not None:
            path = collection.merged.write_chrome_trace(args.chrome_trace)
            print(f"merged chrome trace -> {path}")
        if args.metrics is not None:
            path = collection.metrics.write(args.metrics)
            print(f"aggregated metrics -> {path}")
    if report.drained:
        print("resumable: campaign drained; continue with "
              f"`repro ensemble --resume --checkpoint-dir "
              f"{args.checkpoint_dir}`")
    return 0


def _cmd_profile(args) -> int:
    from .obs.profiling import run_profile

    report = run_profile(
        n=args.particles, phi=args.phi, steps=args.steps, dt=args.dt,
        lambda_rpy=args.lambda_rpy, e_k=args.e_k, e_p=args.e_p,
        seed=args.seed, trace_path=args.trace,
        chrome_path=args.chrome_trace, metrics_path=args.metrics)
    print(report.format_table())
    other = {name: total for name, total in sorted(report.totals.items())
             if not name.startswith("pme.")}
    if other:
        print("other spans (s): " + ", ".join(
            f"{name}={total:.4g}" for name, total in other.items()))
    if args.json is not None:
        report.outputs["json"] = report.write_json(args.json)
    for kind, path in report.outputs.items():
        print(f"{kind} -> {path}")
    return 0


def _cmd_analyze(args) -> int:
    from .analysis.diffusion import (
        diffusion_coefficient,
        finite_size_correction,
    )
    from .analysis.dynamics import diffusion_vs_lag
    from .core.trajectory_io import load_trajectory

    traj = load_trajectory(args.trajectory)
    print(f"trajectory: {traj.n_frames} frames, {traj.n_particles} "
          f"particles, box {traj.box_length:.2f}")
    d0 = diffusion_coefficient(traj, lag_frames=1)
    fs = finite_size_correction(traj.fluid.radius / traj.box_length)
    print(f"D(tau->0) = {d0:.4f} (RPY periodic theory "
          f"{fs * traj.fluid.D0:.4f})")
    tau, d = diffusion_vs_lag(traj, max_lag=args.max_lag)
    show = np.unique(np.linspace(0, tau.size - 1, 8).astype(int))
    for i in show:
        print(f"  D(tau={tau[i]:.4g}) = {d[i]:.4f}")
    return 0


def _cmd_tune(args) -> int:
    from .geometry.box import Box
    from .pme.tuning import tune_parameters

    box = Box.for_volume_fraction(args.particles, args.phi)
    params = tune_parameters(args.particles, box, target_ep=args.e_p,
                             p=args.order)
    print(f"n={args.particles}  Phi={args.phi}  L={box.length:.2f}")
    print(f"  K={params.K}  p={params.p}  r_max={params.r_max:.2f}  "
          f"alpha={params.xi:.4f}")
    from .perfmodel import PMECostModel, WESTMERE_EP
    model = PMECostModel(WESTMERE_EP)
    print(f"  predicted reciprocal time/apply (Westmere model): "
          f"{model.t_reciprocal(args.particles, params.K, params.p) * 1e3:.2f} ms")
    return 0


def _cmd_bench(args) -> int:
    import json as _json
    from pathlib import Path

    from .bench import ledger

    if args.bench_command == "record":
        for record_path in args.records:
            record = _json.loads(
                Path(record_path).read_text(encoding="utf-8"))
            entry = ledger.append_history(record, args.history)
            print(f"{record_path}: {entry['name']} "
                  f"[{entry['machine_key']}] "
                  f"{len(entry['timings'])} timings -> {args.history}")
        return 0

    # compare
    current = _json.loads(Path(args.current).read_text(encoding="utf-8"))
    baseline = _json.loads(
        Path(args.baseline).read_text(encoding="utf-8"))
    kwargs = {}
    if args.rel_tol is not None:
        kwargs["rel_tol"] = args.rel_tol
    if args.sigma is not None:
        kwargs["sigma"] = args.sigma
    comparison = ledger.compare_records(current, baseline, **kwargs)
    print(comparison.format_table())
    if comparison.new:
        print("new timings (not in baseline): "
              + ", ".join(sorted(comparison.new)))
    if comparison.ok:
        print(f"ok: {len(comparison.deltas)} timings within threshold")
        return 0
    if comparison.regressions:
        print(f"REGRESSION: {len(comparison.regressions)} of "
              f"{len(comparison.deltas)} timings exceeded threshold")
    if comparison.missing:
        print(f"MISSING: {len(comparison.missing)} baseline timings "
              "absent from the current record (update the baseline "
              "deliberately if the benchmark changed)")
    return 1


def _cmd_lint(args) -> int:
    return _cmd_lint_argv(args.lint_args)


def _cmd_lint_argv(lint_args: list[str]) -> int:
    from .lint.cli import main as lint_main

    return lint_main(lint_args)


def _cmd_info(_args) -> int:
    import numpy
    import scipy

    from . import __version__
    from .perfmodel import HOST

    print(f"repro {__version__} — matrix-free hydrodynamic BD "
          "(Liu & Chow, IPDPS 2014)")
    print(f"numpy {numpy.__version__}, scipy {scipy.__version__}")
    print(f"host model: {HOST.name}, "
          f"B={HOST.stream_bandwidth_gbs:.1f} GB/s")
    return 0


def _cmd_config(args) -> int:
    from . import config as config_mod

    if args.format == "json":
        import json

        print(json.dumps(config_mod.get_config().as_dict(), indent=2))
        return 0
    rows = list(config_mod.config_table())
    widths = [max(len(r[i]) for r in rows + [("field", "env var",
                                              "value", "source")])
              for i in range(4)]
    header = ("field", "env var", "value", "source")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return 0


def _cmd_serve(args) -> int:
    return _with_obs(args, _run_serve)


def _run_serve(args) -> int:
    from .serve import ServeSettings, SimulationService

    settings = ServeSettings(
        socket_path=args.socket, host=args.host, port=args.port,
        max_batch=args.max_batch, max_wait=args.max_wait,
        max_queue_columns=args.max_queue,
        max_inflight=args.max_inflight, max_jobs=args.max_jobs,
        compute_threads=args.compute_threads,
        sim_workers=args.sim_workers,
        cache_entries=args.cache_entries,
        cache_ttl=(None if args.cache_ttl == 0 else args.cache_ttl),
        work_dir=args.work_dir)
    service = SimulationService(settings)
    where = (args.socket if args.socket is not None
             else f"{args.host}:{args.port}")
    print(f"repro serve: listening on {where} "
          f"(max_batch={settings.max_batch}, "
          f"max_wait={settings.max_wait * 1e3:g}ms, "
          f"max_queue={settings.max_queue_columns}); "
          f"SIGTERM/SIGINT drains gracefully")
    service.run_forever()
    stats = service.stats()
    print(f"repro serve: stopped after {stats['requests_total']} "
          f"requests ({stats['batcher']['batches_flushed']} batches, "
          f"cache {stats['cache']['hits']} hits / "
          f"{stats['cache']['misses']} misses)")
    return 0


def _cmd_submit(args) -> int:
    import json

    import numpy as np

    from .serve import ServeClient, SystemSpec

    client = ServeClient(socket_path=args.socket, host=args.host,
                         port=args.port, timeout=args.timeout,
                         max_retries=args.retries)
    spec = SystemSpec(n=args.particles, phi=args.phi,
                      system_seed=args.system_seed)
    with client:
        if args.op == "ping":
            print(json.dumps(client.ping(), indent=2))
        elif args.op == "stats":
            print(json.dumps(client.stats(), indent=2))
        elif args.op == "simulate":
            result = client.simulate(
                spec, steps=args.steps, seed=args.seed,
                on_progress=lambda step, of: print(
                    f"  progress: {step}/{of}"))
            print(json.dumps(result, indent=2))
            return 0 if result.get("state") == "done" else 1
        else:  # mobility-bench
            rng = np.random.default_rng(args.seed)
            for i in range(args.repeats):
                forces = rng.standard_normal(3 * spec.n)
                velocities = client.mobility_apply(spec, forces)
                print(f"  apply {i}: |U| = "
                      f"{float(np.linalg.norm(velocities)):.6e}")
    return 0


def _apply_exec_overrides(args) -> None:
    """Install ``--backend``/``--exec-workers`` as CLI-level config."""
    from . import config as config_mod

    config_mod.set_cli_overrides(
        backend=getattr(args, "backend", None),
        exec_workers=getattr(args, "exec_workers", None))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # Forward everything after `lint` untouched: argparse REMAINDER
        # refuses a leading optional such as `repro lint --help`.
        return _cmd_lint_argv(argv[1:])
    args = build_parser().parse_args(argv)
    _apply_exec_overrides(args)
    handlers = {
        "simulate": _cmd_simulate,
        "ensemble": _cmd_ensemble,
        "profile": _cmd_profile,
        "analyze": _cmd_analyze,
        "tune": _cmd_tune,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "config": _cmd_config,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
