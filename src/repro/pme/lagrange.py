"""Lagrangian interpolation for the original (non-smooth) PME.

The paper: "We found the SPME approach to be more accurate than the
original PME approach [6] with Lagrangian interpolation, while
negligibly increasing computational cost."  This module supplies that
original scheme so the claim can be reproduced
(``benchmarks/bench_ablation_interpolation.py``): order-``p`` Lagrange
interpolation on the ``p`` mesh points centered around the particle,
used for both spreading and interpolation, with **no** ``b(k)``
deconvolution in the influence function (the interpolant is exact at
the nodes; its in-between error is what limits accuracy).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["lagrange_weights", "lagrange_window_offsets"]


def lagrange_window_offsets(p: int) -> np.ndarray:
    """Node offsets (relative to ``floor(u)``) of the order-``p`` window.

    The window is centered on the containing interval: for example
    ``p = 4`` uses offsets ``(-1, 0, 1, 2)`` so the interpolation point
    ``u - floor(u)`` in ``[0, 1)`` sits in the central subinterval.
    """
    if p < 2:
        raise ConfigurationError(f"Lagrange order must be >= 2, got {p}")
    return np.arange(p) - (p // 2 - 1)


def lagrange_weights(frac: np.ndarray, p: int) -> np.ndarray:
    """Order-``p`` Lagrange basis weights at fractional offsets.

    Parameters
    ----------
    frac:
        Fractional parts ``u - floor(u)`` in ``[0, 1)``, shape ``(n,)``.
    p:
        Number of interpolation nodes.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, p)``; column ``j`` is the weight of the mesh point
        at offset :func:`lagrange_window_offsets`\\ ``(p)[j]``.  Rows sum
        to 1 exactly (constants are reproduced).
    """
    frac = np.asarray(frac, dtype=np.float64)
    if frac.ndim != 1:
        raise ConfigurationError(f"frac must be 1-D, got shape {frac.shape}")
    nodes = lagrange_window_offsets(p).astype(np.float64)
    out = np.ones((frac.shape[0], p))
    for j in range(p):
        for s in range(p):
            if s == j:
                continue
            out[:, j] *= (frac - nodes[s]) / (nodes[j] - nodes[s])
    return out
