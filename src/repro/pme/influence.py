"""The PME influence function (paper Section IV.B.4).

At every mesh wavevector the reciprocal-space kernel is the 3x3 tensor
``M^(2)_alpha(k) = (I - khat khat^T) m_alpha(|k|)`` (paper Eq. 5).
Storing the full tensor would need six floats per mode; the paper's
memory optimization stores only the *scalar* ``m_alpha`` (one float per
mode, on the half spectrum) and reconstructs the projector
``I - khat khat^T`` from the wavevector on the fly — a factor-6 saving
that makes the method fit accelerator memories.

The stored scalar also absorbs the smooth-PME correction
``|b1(k1) b2(k2) b3(k3)|^2`` and the constant ``K^3 / V`` arising from
the inverse-FFT normalization, so applying the influence function is a
single fused multiply over the spectrum.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rpy.beenakker import reciprocal_scalar
from .bspline import euler_spline_modulus
from .mesh import Mesh

__all__ = ["InfluenceFunction"]


class InfluenceFunction:
    """Precomputed scalar influence function on the half-spectrum mesh.

    Parameters
    ----------
    mesh:
        The PME mesh (defines ``K`` and the box).
    xi:
        Ewald splitting parameter (the paper's ``alpha``).
    p:
        B-spline order (enters through the ``|b|^2`` correction).
    radius:
        Particle radius ``a``.
    interpolation:
        ``"bspline"`` applies the smooth-PME ``|b|^2`` deconvolution;
        ``"lagrange"`` (original PME) applies none.

    Notes
    -----
    The influence function depends only on ``(L, K, p, xi, a)`` — not on
    the particle configuration — so one instance is reused for the whole
    simulation (paper Section IV.B.4).
    """

    def __init__(self, mesh: Mesh, xi: float, p: int, radius: float = 1.0,
                 interpolation: str = "bspline", kernel: str = "rpy"):
        if xi <= 0:
            raise ConfigurationError(f"xi must be positive, got {xi}")
        if interpolation not in ("bspline", "lagrange"):
            raise ConfigurationError(
                f"unknown interpolation {interpolation!r}")
        self.mesh = mesh
        self.xi = float(xi)
        self.p = int(p)
        self.radius = float(radius)
        self.interpolation = interpolation
        self.kernel = kernel

        K = mesh.K
        k2 = mesh.k2_grid()
        scalar = reciprocal_scalar(k2, self.xi, self.radius, kernel=kernel)
        if interpolation == "bspline":
            bsq = euler_spline_modulus(K, p)
            bz = bsq[: K // 2 + 1]
            scalar = scalar * (bsq[:, None, None] * bsq[None, :, None]
                               * bz[None, None, :])
        # fold in the 1/V Ewald prefactor and the K^3 that cancels the
        # irfftn normalization, so apply() needs no further scaling
        scalar *= K ** 3 / mesh.box.volume
        #: The stored scalar field, shape ``mesh.rshape`` (one float per mode).
        self.scalar = scalar

        # unit wavevector components, built once; k=0 entry is arbitrary
        # because scalar[0,0,0] == 0.
        gx, gy, gz = mesh.k_grids()
        k2_safe = np.where(k2 == 0.0, 1.0, k2)
        inv_k = 1.0 / np.sqrt(k2_safe)
        self._khat = (gx * inv_k, gy * inv_k, gz * inv_k)

    def apply(self, C: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Apply ``scalar(k) (I - khat khat^T)`` to a spectral force field.

        Parameters
        ----------
        C:
            Complex array of shape ``(3,) + mesh.rshape`` — the three
            Cartesian components of the transformed mesh forces.
        out:
            Optional preallocated output of the same shape (may alias
            ``C``; the computation is safe in place).

        Returns
        -------
        The projected, scaled spectrum ``D`` with
        ``D_u = scalar * (C_u - khat_u (khat . C))``.
        """
        if C.shape != (3,) + self.mesh.rshape:
            raise ConfigurationError(
                f"expected spectrum of shape {(3,) + self.mesh.rshape}, "
                f"got {C.shape}")
        hx, hy, hz = self._khat
        dot = C[0] * hx + C[1] * hy + C[2] * hz
        if out is None:
            out = np.empty_like(C)
        np.multiply(self.scalar, C[0] - hx * dot, out=out[0])
        np.multiply(self.scalar, C[1] - hy * dot, out=out[1])
        np.multiply(self.scalar, C[2] - hz * dot, out=out[2])
        return out

    def apply_batch(self, spec: np.ndarray, slab: int | None = None
                    ) -> np.ndarray:
        """In-place batched influence over ``s`` spectra at once.

        Parameters
        ----------
        spec:
            Complex array of shape ``(3, s) + mesh.rshape`` — component
            ``u`` of vector ``v`` at ``spec[u, v]``.  Modified **in
            place** (and returned): the batched pipeline owns its
            workspace, so the copy :meth:`apply` makes for safety would
            be pure overhead here.
        slab:
            Rows of the leading mesh axis processed per pass; the
            default keeps the working set (3 slabs of ``khat`` plus the
            scalar and the spectra slices) inside cache.  The result is
            independent of the slab size.

        Notes
        -----
        This is the same ``scalar(k) (I - khat khat^T)`` projection as
        :meth:`apply`, but fused over slabs of the leading axis so the
        ``khat`` grids and the stored scalar are read once per slab for
        all ``s`` vectors instead of once per vector — the reciprocal
        analogue of the paper's block-of-vectors SpMV (Section IV.C).
        """
        K = self.mesh.K
        expected = (3,) + (spec.shape[1],) + self.mesh.rshape
        if spec.shape != expected:
            raise ConfigurationError(
                f"expected batched spectrum of shape (3, s) + "
                f"{self.mesh.rshape}, got {spec.shape}")
        s = spec.shape[1]
        hx, hy, hz = self._khat
        if slab is None:
            slab = max(1, 324 // K)
        for lo in range(0, K, slab):
            hi = min(lo + slab, K)
            hxs, hys, hzs = hx[lo:hi], hy[lo:hi], hz[lo:hi]
            ss = self.scalar[lo:hi]
            for v in range(s):
                cx = spec[0, v, lo:hi]
                cy = spec[1, v, lo:hi]
                cz = spec[2, v, lo:hi]
                dot = cx * hxs
                dot += cy * hys
                dot += cz * hzs
                cx -= hxs * dot
                cx *= ss
                cy -= hys * dot
                cy *= ss
                cz -= hzs * dot
                cz *= ss
        return spec

    @property
    def memory_bytes(self) -> int:
        """Bytes of the stored scalar (the paper's ``8 K^3 / 2``)."""
        return self.scalar.nbytes

    @property
    def tensor_memory_bytes(self) -> int:
        """Bytes an explicit symmetric 3x3 tensor field would need
        (the ``6 x 8 x K^3/2`` figure the paper's optimization avoids)."""
        return 6 * self.scalar.nbytes
