"""Measurement of the PME relative error ``e_p`` (paper Section V.B).

The paper defines ``e_p = ||u_pme - u_exact||_2 / ||u_exact||_2`` where
``u_exact`` is "computed with very high accuracy, possibly by a
different method".  Here the reference is the dense Ewald summation
(tight tolerance) for small systems, or a deliberately over-resolved
PME operator for systems too large to densify.
"""

from __future__ import annotations

import numpy as np

from ..geometry.box import Box
from ..lint.contracts import positions_arg
from ..rpy.ewald import EwaldSummation
from ..units import FluidParams, REDUCED
from .operator import PMEOperator, PMEParams

__all__ = ["pme_relative_error", "reference_operator"]

#: Largest particle count for which the dense Ewald reference is used.
DENSE_REFERENCE_LIMIT = 600


@positions_arg()
def reference_operator(positions, box: Box, params: PMEParams,
                       fluid: FluidParams = REDUCED):
    """A high-accuracy reference ``u = M f`` callable for ``e_p`` measurement.

    Small systems use the dense Ewald matrix with ``tol = 1e-12``;
    larger systems use a PME operator with a finer mesh (``1.5 K``),
    larger cutoff and higher spline order, whose own error is one to two
    orders of magnitude below any practically tuned operator's.
    """
    r = np.asarray(positions, dtype=np.float64)
    n = r.shape[0]
    if n <= DENSE_REFERENCE_LIMIT:
        matrix = EwaldSummation(box=box, fluid=fluid, tol=1e-12).matrix(r)
        return lambda f: matrix @ f
    fine = PMEParams(
        xi=params.xi,
        r_max=min(params.r_max * 1.5, box.length / 2),
        K=int(np.ceil(params.K * 1.5 / 2) * 2),
        p=min(params.p + 2, 10),
    )
    op = PMEOperator(r, box, fine, fluid=fluid)
    return op.apply


def pme_relative_error(op: PMEOperator, n_probe: int = 3, seed: int = 1234,
                       reference=None) -> float:
    """Measured relative error ``e_p`` of a PME operator.

    Applies the operator and a high-accuracy reference to ``n_probe``
    random force vectors and returns the largest relative 2-norm
    deviation.

    Parameters
    ----------
    op:
        The operator under test (its stored positions are used).
    n_probe:
        Number of random probe vectors.
    seed:
        RNG seed for the probes (deterministic by default).
    reference:
        Optional callable ``f -> u`` overriding the automatic choice of
        :func:`reference_operator`.
    """
    if reference is None:
        reference = reference_operator(op.positions, op.box, op.params,
                                       fluid=op.fluid)
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(n_probe):
        f = rng.standard_normal(3 * op.n)
        f /= np.linalg.norm(f)
        u_pme = op.apply(f)
        u_ref = np.asarray(reference(f))
        err = float(np.linalg.norm(u_pme - u_ref) / np.linalg.norm(u_ref))
        worst = max(worst, err)
    return worst
